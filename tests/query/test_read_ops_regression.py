"""Regression tests pinning the Figure-10 read-op unit across every path.

The paper's Figure 10 charges retrieval in *read operations*: one read
per chunk opened on a long list, one read for a bucket short list.  These
tests pin that unit — and pin that ``last_read_ops`` reports the same
number as the returned answer after **any** search method (``search_streamed``
historically left the facade counter stale at 0).
"""

import pytest

from repro.core.index import IndexConfig
from repro.service import IndexSnapshot
from repro.textindex import TextDocumentIndex


@pytest.fixture
def index():
    """A tiny index where "hot" owns a multi-chunk long list and "cold"
    stays bucket-resident."""
    idx = TextDocumentIndex(
        IndexConfig(
            nbuckets=2,
            bucket_size=24,
            block_postings=4,
            ndisks=2,
            nblocks_override=100_000,
            store_contents=True,
        )
    )
    for i in range(40):
        words = ["hot"]
        if i % 13 == 0:
            words.append("cold")
        if i % 2 == 0:
            words.append("warm")
        idx.add_document(" ".join(words))
        if i % 9 == 8:
            idx.flush_batch()
    idx.flush_batch()
    return idx


def expected_ops(index, word):
    """The Figure-10 cost of fetching one word, from the structures."""
    word_id = index.vocabulary.lookup(word)
    assert word_id is not None, word
    entry = index.index.longlists.directory.get(word_id)
    if entry is not None:
        return entry.nchunks
    assert index.index.buckets.get(word_id) is not None
    return 1


def test_fixture_exercises_both_structures(index):
    # "hot" must have overflowed to a multi-chunk long list and "cold"
    # must still live in a bucket, or the pins below prove nothing.
    assert expected_ops(index, "hot") > 1
    assert expected_ops(index, "cold") == 1


def test_boolean_read_ops_are_figure10_units(index):
    for word in ("hot", "cold", "warm"):
        answer = index.search_boolean(word)
        assert answer.read_ops == expected_ops(index, word), word
        assert index.last_read_ops == answer.read_ops, word
    combined = index.search_boolean("hot AND cold")
    assert combined.read_ops == (
        expected_ops(index, "hot") + expected_ops(index, "cold")
    )


def test_unknown_word_costs_zero(index):
    answer = index.search_boolean("absent")
    assert answer.read_ops == 0
    assert index.last_read_ops == 0


def test_streamed_last_read_ops_matches_answer(index):
    """The regression: search_streamed must leave last_read_ops equal to
    the answer's read_ops, not stale at the previous query's value."""
    index.search_boolean("hot AND cold AND warm")  # dirty the counter
    answer = index.search_streamed("hot OR cold")
    assert answer.read_ops > 0
    assert index.last_read_ops == answer.read_ops


def test_streamed_or_charges_full_materialized_cost(index):
    # A disjunction must read everything, so its cost in Figure-10 units
    # equals the materialized evaluator's.
    streamed = index.search_streamed("hot OR cold OR warm")
    boolean = index.search_boolean("hot OR cold OR warm")
    assert streamed.read_ops == boolean.read_ops


def test_streamed_and_never_costs_more(index):
    streamed = index.search_streamed("cold AND hot")
    boolean = index.search_boolean("cold AND hot")
    assert streamed.doc_ids == boolean.doc_ids
    assert streamed.read_ops <= boolean.read_ops


def test_vector_accumulates_same_units(index):
    index.search_vector({"hot": 1.0, "cold": 2.0})
    assert index.last_read_ops == (
        expected_ops(index, "hot") + expected_ops(index, "cold")
    )


def test_served_path_reports_identical_units(index):
    snapshot = IndexSnapshot.publish_from(index, snapshot_id=1)
    for query in ("hot", "cold", "hot AND cold", "(hot OR cold) AND warm"):
        assert (
            snapshot.search_boolean(query).read_ops
            == index.search_boolean(query).read_ops
        ), query
    assert (
        snapshot.search_streamed("hot OR cold").read_ops
        == index.search_streamed("hot OR cold").read_ops
    )
    _, vector_ops = snapshot.search_vector_counted({"hot": 1.0, "cold": 1.0})
    index.search_vector({"hot": 1.0, "cold": 1.0})
    assert vector_ops == index.last_read_ops
