"""Scatter-gather primitives and the sharded differential property.

The satellite claim: a :class:`~repro.core.sharded.ShardedTextIndex` at
*any* shard count and *any* router seed returns byte-identical boolean
and vector answers to the :class:`~repro.query.reference.BruteForceIndex`
oracle (and to the single-volume facade) — deletions included.  The
primitives are pinned separately so a gather regression is localised.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.index import IndexConfig
from repro.core.shard import shard_of
from repro.core.sharded import ShardedTextIndex
from repro.query import BruteForceIndex
from repro.query.scatter import gather_answers, merge_disjoint, scatter_fetch
from repro.textindex import TextDocumentIndex

# -- primitives ---------------------------------------------------------------

# Disjoint sorted runs, the exact shape document-hash sharding produces:
# partition a random id set by a random shard count.
partitioned_ids = st.tuples(
    st.sets(st.integers(min_value=0, max_value=500), max_size=80),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=0, max_value=3),
).map(
    lambda t: [
        sorted(d for d in t[0] if shard_of(d, t[1], t[2]) == s)
        for s in range(t[1])
    ]
)


@settings(max_examples=100, deadline=None)
@given(runs=partitioned_ids)
def test_merge_disjoint_is_sorted_union(runs):
    merged = merge_disjoint(runs)
    assert merged == sorted(set().union(*map(set, runs)) if runs else set())


@settings(max_examples=100, deadline=None)
@given(runs=partitioned_ids, costs=st.lists(st.integers(0, 9), max_size=6))
def test_gather_answers_merges_and_sums(runs, costs):
    answers = [
        (run, costs[i] if i < len(costs) else 1)
        for i, run in enumerate(runs)
    ]
    docs, read_ops = gather_answers(answers)
    assert docs == merge_disjoint(runs)
    assert read_ops == sum(a[1] for a in answers)


def test_scatter_fetch_merges_and_counts():
    tables = [
        {"wa": ([0, 3], 2), "wb": ([3], 1)},
        {"wa": ([1, 5], 1), "wb": ([], 0)},
    ]
    fetchers = [
        lambda w, t=t: t.get(w, ([], 1)) for t in tables
    ]
    fetch, counter = scatter_fetch(fetchers)
    assert fetch("wa") == [0, 1, 3, 5]
    assert counter[0] == 3
    assert fetch("wq") == []
    assert counter[0] == 5  # every shard still charged its miss


# -- the differential property ------------------------------------------------


def _word(n: int) -> str:
    return f"w{chr(ord('a') + n - 1)}"


doc_words = st.lists(
    st.sets(st.integers(min_value=1, max_value=12), min_size=1, max_size=6),
    min_size=1,
    max_size=40,
)
flat_query = st.tuples(
    st.sampled_from(["AND", "OR"]),
    st.lists(st.integers(min_value=1, max_value=14), min_size=1, max_size=4),
)
word_atom = st.integers(min_value=1, max_value=14).map(_word)
boolean_expr = st.recursive(
    word_atom,
    lambda inner: st.one_of(
        st.tuples(inner, st.sampled_from(["AND", "OR"]), inner).map(
            lambda t: f"({t[0]} {t[1]} {t[2]})"
        ),
        st.tuples(inner, inner).map(lambda t: f"({t[0]} AND NOT {t[1]})"),
    ),
    max_leaves=6,
)
nshards = st.integers(min_value=2, max_value=5)
router_seed = st.integers(min_value=0, max_value=1_000)
delete_seed = st.integers(min_value=0, max_value=6)


def build_triple(docs, nshards, router_seed, delete_seed):
    """Sharded index under test, single-volume facade, and the oracle."""
    config = IndexConfig(
        nbuckets=2,
        bucket_size=24,
        block_postings=4,
        ndisks=2,
        nblocks_override=100_000,
        store_contents=True,
    )
    sharded = ShardedTextIndex(
        config, shards=nshards, router_seed=router_seed
    )
    single = TextDocumentIndex(config)
    oracle = BruteForceIndex()
    for doc_id, words in enumerate(docs):
        text = " ".join(_word(w) for w in sorted(words))
        assert sharded.add_document(text) == doc_id
        assert single.add_document(text) == doc_id
        oracle.add_document(doc_id, [_word(w) for w in words])
        if doc_id % 7 == 6:
            sharded.flush_batch()
            single.flush_batch()
    sharded.flush_batch()
    single.flush_batch()
    if delete_seed:
        for doc_id in range(0, len(docs), delete_seed + 1):
            sharded.delete_document(doc_id)
            single.delete_document(doc_id)
            oracle.delete_document(doc_id)
    return sharded, single, oracle


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    docs=doc_words,
    expr=boolean_expr,
    nshards=nshards,
    router_seed=router_seed,
    delete_seed=delete_seed,
)
def test_sharded_boolean_matches_oracle(
    docs, expr, nshards, router_seed, delete_seed
):
    sharded, single, oracle = build_triple(
        docs, nshards, router_seed, delete_seed
    )
    expected = oracle.search_boolean(expr)
    assert sharded.search_boolean(expr).doc_ids == expected, expr
    assert single.search_boolean(expr).doc_ids == expected, expr


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    docs=doc_words,
    query=flat_query,
    nshards=nshards,
    router_seed=router_seed,
    delete_seed=delete_seed,
)
def test_sharded_streamed_matches_oracle(
    docs, query, nshards, router_seed, delete_seed
):
    sharded, single, oracle = build_triple(
        docs, nshards, router_seed, delete_seed
    )
    operator, word_nums = query
    text = f" {operator} ".join(_word(n) for n in word_nums)
    expected = oracle.search_boolean(text)
    assert sharded.search_streamed(text).doc_ids == expected, text
    assert single.search_streamed(text).doc_ids == expected, text


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    docs=doc_words,
    weights=st.dictionaries(
        st.integers(min_value=1, max_value=14).map(_word),
        st.floats(min_value=0.25, max_value=4.0, allow_nan=False),
        min_size=1,
        max_size=4,
    ),
    nshards=nshards,
    router_seed=router_seed,
    delete_seed=delete_seed,
)
def test_sharded_vector_matches_oracle(
    docs, weights, nshards, router_seed, delete_seed
):
    sharded, single, oracle = build_triple(
        docs, nshards, router_seed, delete_seed
    )
    expected = oracle.search_vector(weights, top_k=20)
    got = sharded.search_vector(weights, top_k=20)
    # Byte-identical: same documents, same order, same float scores —
    # the ranker sees the same merged postings, df, and global ndocs.
    assert [(s.doc_id, s.score) for s in got] == [
        (s.doc_id, s.score) for s in expected
    ]
    assert got == single.search_vector(weights, top_k=20)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    docs=doc_words,
    nshards=nshards,
    router_seed=router_seed,
)
def test_fetch_postings_matches_single_volume(docs, nshards, router_seed):
    sharded, single, _ = build_triple(docs, nshards, router_seed, 0)
    for n in range(1, 15):
        word = _word(n)
        assert (
            sharded.fetch_postings(word)[0] == single.fetch_postings(word)[0]
        )
