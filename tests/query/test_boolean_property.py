"""Property-based tests: merge algebra agrees with Python set algebra."""

from hypothesis import given
from hypothesis import strategies as st

from repro.query.boolean import difference, evaluate, intersect, union

sorted_lists = st.lists(
    st.integers(min_value=0, max_value=200), max_size=60, unique=True
).map(sorted)


@given(sorted_lists, sorted_lists)
def test_intersect_matches_sets(a, b):
    assert intersect(a, b) == sorted(set(a) & set(b))


@given(sorted_lists, sorted_lists)
def test_union_matches_sets(a, b):
    assert union(a, b) == sorted(set(a) | set(b))


@given(sorted_lists, sorted_lists)
def test_difference_matches_sets(a, b):
    assert difference(a, b) == sorted(set(a) - set(b))


@given(sorted_lists, sorted_lists)
def test_de_morgan(a, b):
    """NOT (a OR b) == (NOT a) AND (NOT b) over a bounded universe."""
    ndocs = 201
    universe = list(range(ndocs))
    lhs = difference(universe, union(a, b))
    rhs = intersect(difference(universe, a), difference(universe, b))
    assert lhs == rhs


@given(sorted_lists, sorted_lists, sorted_lists)
def test_distributivity(a, b, c):
    """a AND (b OR c) == (a AND b) OR (a AND c)."""
    assert intersect(a, union(b, c)) == union(intersect(a, b), intersect(a, c))


@given(sorted_lists, sorted_lists)
def test_evaluate_matches_set_semantics(a, b):
    lists = {"x": a, "y": b}
    result = evaluate(
        "(x AND y) OR (x AND NOT y)", lists.__getitem__, ndocs=201
    )
    assert result == sorted(set(a))
