"""Unit tests for the vector-space query model."""

import math

import pytest

from repro.query.vector import idf, query_from_document, rank

LISTS = {
    "common": list(range(100)),
    "rare": [5, 42],
    "medium": [1, 5, 9, 13, 42],
}


def fetch(word):
    return LISTS.get(word, [])


class TestIdf:
    def test_rare_words_weigh_more(self):
        assert idf(100, 2) > idf(100, 50)

    def test_absent_word_is_zero(self):
        assert idf(100, 0) == 0.0

    def test_value(self):
        assert idf(100, 10) == pytest.approx(math.log(11.0))


class TestRank:
    def test_doc_with_more_query_words_wins(self):
        results = rank({"rare": 1.0, "medium": 1.0}, fetch, 100, top_k=3)
        assert results[0].doc_id in (5, 42)  # contains both words
        assert results[0].score > results[-1].score

    def test_idf_downweights_common_words(self):
        results = rank({"common": 1.0, "rare": 1.0}, fetch, 100, top_k=100)
        by_doc = {r.doc_id: r.score for r in results}
        # Doc 5 has rare+common+medium-free: beats docs with common only.
        assert by_doc[5] > by_doc[0]

    def test_weights_scale_scores(self):
        light = rank({"rare": 1.0}, fetch, 100, top_k=1)[0].score
        heavy = rank({"rare": 3.0}, fetch, 100, top_k=1)[0].score
        assert heavy == pytest.approx(3 * light)

    def test_top_k_bounds_results(self):
        results = rank({"common": 1.0}, fetch, 100, top_k=7)
        assert len(results) == 7

    def test_scores_sorted_descending(self):
        results = rank({"rare": 1.0, "medium": 0.5}, fetch, 100, top_k=10)
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)

    def test_zero_weight_words_skipped(self):
        assert rank({"rare": 0.0}, fetch, 100, top_k=5) == []

    def test_unknown_words_contribute_nothing(self):
        assert rank({"zebra": 1.0}, fetch, 100, top_k=5) == []

    def test_ties_break_to_lower_doc_id(self):
        results = rank({"rare": 1.0}, fetch, 100, top_k=2)
        assert [r.doc_id for r in results] == [5, 42]

    def test_top_k_validated(self):
        with pytest.raises(ValueError):
            rank({"rare": 1.0}, fetch, 100, top_k=0)


class TestQueryFromDocument:
    def test_term_frequency_weights(self):
        weights = query_from_document(["a", "b", "a", "a"])
        assert weights == {"a": 3.0, "b": 1.0}

    def test_empty_document(self):
        assert query_from_document([]) == {}
