"""Unit tests for the boolean query model."""

import pytest

from repro.query.boolean import (
    QueryParseError,
    difference,
    evaluate,
    intersect,
    parse,
    union,
)

LISTS = {
    "cat": [1, 3, 5, 7],
    "dog": [2, 3, 5, 8],
    "mouse": [4, 5],
}


def fetch(word):
    return LISTS.get(word, [])


def run(query, ndocs=10):
    return evaluate(query, fetch, ndocs)


class TestMerges:
    def test_intersect(self):
        assert intersect([1, 3, 5, 7], [2, 3, 5, 8]) == [3, 5]

    def test_intersect_disjoint(self):
        assert intersect([1, 2], [3, 4]) == []

    def test_union(self):
        assert union([1, 3], [2, 3, 9]) == [1, 2, 3, 9]

    def test_union_with_empty(self):
        assert union([], [1]) == [1]

    def test_difference(self):
        assert difference([1, 2, 3, 4], [2, 4, 9]) == [1, 3]

    def test_difference_empty_subtrahend(self):
        assert difference([1, 2], []) == [1, 2]


class TestEvaluation:
    def test_single_word(self):
        assert run("cat") == [1, 3, 5, 7]

    def test_and(self):
        assert run("cat AND dog") == [3, 5]

    def test_or(self):
        assert run("cat OR mouse") == [1, 3, 4, 5, 7]

    def test_paper_example(self):
        # "(cat and dog) or mouse" from the paper's introduction.
        assert run("(cat AND dog) OR mouse") == [3, 4, 5]

    def test_not_uses_universe(self):
        assert run("NOT cat", ndocs=8) == [0, 2, 4, 6]

    def test_and_not_becomes_difference(self):
        assert run("cat AND NOT dog") == [1, 7]

    def test_not_on_left_of_and(self):
        assert run("NOT dog AND cat") == [1, 7]

    def test_precedence_not_over_and_over_or(self):
        # cat OR dog AND mouse == cat OR (dog AND mouse)
        assert run("cat OR dog AND mouse") == [1, 3, 5, 7]

    def test_keywords_case_insensitive(self):
        assert run("cat and dog") == [3, 5]
        assert run("CAT Or MOUSE") == run("cat OR mouse")

    def test_unknown_word_is_empty(self):
        assert run("zebra") == []
        assert run("cat AND zebra") == []

    def test_nested_parens(self):
        assert run("((cat))") == [1, 3, 5, 7]


class TestParser:
    def test_words_collected(self):
        ast = parse("(cat AND dog) OR NOT mouse")
        assert ast.words() == {"cat", "dog", "mouse"}

    def test_empty_query(self):
        with pytest.raises(QueryParseError):
            parse("")

    def test_unbalanced_parens(self):
        with pytest.raises(QueryParseError):
            parse("(cat AND dog")
        with pytest.raises(QueryParseError):
            parse("cat)")

    def test_dangling_operator(self):
        with pytest.raises(QueryParseError):
            parse("cat AND")
        with pytest.raises(QueryParseError):
            parse("OR cat")

    def test_bad_characters(self):
        with pytest.raises(QueryParseError):
            parse("cat && dog")

    def test_adjacent_words_rejected(self):
        with pytest.raises(QueryParseError):
            parse("cat dog")
