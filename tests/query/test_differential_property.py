"""Differential property tests: every evaluator vs. the brute-force oracle.

The satellite claim: for the same query over the same corpus,
``search_streamed``, ``search_boolean``, and the
:class:`~repro.query.reference.BruteForceIndex` reference model must
return identical document sets — and the streamed evaluator's
``blocks_read`` must never exceed the block count the materialized
evaluator would decode for the same words.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.index import IndexConfig
from repro.query import BruteForceIndex, materialized_blocks
from repro.query import streaming as streaming_query
from repro.textindex import TextDocumentIndex

def _word(n: int) -> str:
    """Purely alphabetic word names — the tokenizer splits on digits."""
    return f"w{chr(ord('a') + n - 1)}"


# Small vocabulary + tiny buckets: documents collide on words constantly,
# lists overflow into the long-list path, queries hit both structures.
doc_words = st.lists(
    st.sets(st.integers(min_value=1, max_value=12), min_size=1, max_size=6),
    min_size=1,
    max_size=50,
)
# Query words range past the vocabulary so unknown words are exercised.
flat_query = st.tuples(
    st.sampled_from(["AND", "OR"]),
    st.lists(st.integers(min_value=1, max_value=14), min_size=1, max_size=4),
)
delete_seed = st.integers(min_value=0, max_value=6)


def build_pair(docs, delete_seed):
    """The index under test and the oracle, fed the same stream."""
    index = TextDocumentIndex(
        IndexConfig(
            nbuckets=2,
            bucket_size=24,
            block_postings=4,
            ndisks=2,
            nblocks_override=100_000,
            store_contents=True,
        )
    )
    oracle = BruteForceIndex()
    for doc_id, words in enumerate(docs):
        text = " ".join(_word(w) for w in sorted(words))
        assert index.add_document(text) == doc_id
        oracle.add_document(doc_id, [_word(w) for w in words])
        if doc_id % 7 == 6:
            index.flush_batch()
    index.flush_batch()
    if delete_seed:
        for doc_id in range(0, len(docs), delete_seed + 1):
            index.delete_document(doc_id)
            oracle.delete_document(doc_id)
    return index, oracle


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(docs=doc_words, query=flat_query, delete_seed=delete_seed)
def test_streamed_boolean_and_oracle_agree(docs, query, delete_seed):
    index, oracle = build_pair(docs, delete_seed)
    operator, word_nums = query
    words = [_word(n) for n in word_nums]
    text = f" {operator} ".join(words)

    streamed = index.search_streamed(text)
    boolean = index.search_boolean(text)
    expected = oracle.search_boolean(text)

    assert streamed.doc_ids == expected, text
    assert boolean.doc_ids == expected, text
    # Both evaluators return sorted, duplicate-free ids — set equality
    # above plus this pins the full answer contract.
    assert streamed.doc_ids == sorted(set(streamed.doc_ids))


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(docs=doc_words, query=flat_query, delete_seed=delete_seed)
def test_streamed_blocks_bounded_by_materialized(docs, query, delete_seed):
    index, _ = build_pair(docs, delete_seed)
    operator, word_nums = query
    words = [_word(n) for n in word_nums]

    word_ids = [
        wid
        for wid in (index.vocabulary.lookup(w) for w in words)
        if wid is not None
    ]
    if operator == "AND" and len(word_ids) < len(words):
        # The facade answers an unknown conjunct with zero I/O; the bound
        # holds trivially.
        return
    if operator == "OR" or len(word_ids) == 1:
        _, stats = streaming_query.streamed_or(index.index, word_ids)
    else:
        _, stats = streaming_query.streamed_and(index.index, word_ids)

    bound = materialized_blocks(index, words)
    assert stats.blocks_read <= bound, (stats.blocks_read, bound)


# A recursive generator for full boolean expressions (parens, NOT).
word_atom = st.integers(min_value=1, max_value=14).map(lambda n: _word(n))
boolean_expr = st.recursive(
    word_atom,
    lambda inner: st.one_of(
        st.tuples(inner, st.sampled_from(["AND", "OR"]), inner).map(
            lambda t: f"({t[0]} {t[1]} {t[2]})"
        ),
        st.tuples(inner, inner).map(lambda t: f"({t[0]} AND NOT {t[1]})"),
    ),
    max_leaves=6,
)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(docs=doc_words, expr=boolean_expr, delete_seed=delete_seed)
def test_general_boolean_matches_oracle(docs, expr, delete_seed):
    index, oracle = build_pair(docs, delete_seed)
    assert index.search_boolean(expr).doc_ids == oracle.search_boolean(expr)
