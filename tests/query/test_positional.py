"""Unit tests for proximity, phrase, and region query conditions."""

import pytest

from repro.core.positional import (
    PositionalPosting,
    PositionalPostings,
    Region,
)
from repro.query.positional import (
    phrase_docs,
    positions_within,
    proximity_docs,
    region_docs,
)


def payload(*entries):
    return PositionalPostings(
        [
            PositionalPosting(doc, tuple(positions), regions)
            for doc, positions, regions in entries
        ]
    )


class TestPositionsWithin:
    def test_hit(self):
        assert positions_within([3, 10], [12, 40], 2)

    def test_miss(self):
        assert not positions_within([3, 10], [14, 40], 2)

    def test_exact_adjacency(self):
        assert positions_within([5], [6], 1)
        assert not positions_within([5], [7], 1)

    def test_zero_k_means_same_position(self):
        assert positions_within([5], [5], 0)
        assert not positions_within([5], [6], 0)

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            positions_within([1], [2], -1)

    def test_empty_lists(self):
        assert not positions_within([], [1], 5)


class TestProximity:
    def test_within_k(self):
        a = payload((0, [1, 50], Region.BODY), (2, [10], Region.BODY))
        b = payload((0, [53], Region.BODY), (2, [100], Region.BODY))
        assert proximity_docs(a, b, 3) == [0]
        assert proximity_docs(a, b, 90) == [0, 2]

    def test_requires_both_words(self):
        a = payload((0, [1], Region.BODY))
        b = payload((1, [1], Region.BODY))
        assert proximity_docs(a, b, 100) == []


class TestPhrase:
    def test_consecutive_positions_match(self):
        cat = payload((0, [4], Region.BODY), (1, [9], Region.BODY))
        sat = payload((0, [5], Region.BODY), (1, [20], Region.BODY))
        assert phrase_docs([cat, sat]) == [0]

    def test_three_word_phrase(self):
        a = payload((7, [10, 30], Region.BODY))
        b = payload((7, [11], Region.BODY))
        c = payload((7, [12], Region.BODY))
        assert phrase_docs([a, b, c]) == [7]
        assert phrase_docs([a, c, b]) == []

    def test_single_word_degenerates(self):
        a = payload((3, [0], Region.BODY), (9, [5], Region.BODY))
        assert phrase_docs([a]) == [3, 9]

    def test_empty(self):
        assert phrase_docs([]) == []
        assert phrase_docs([payload(), payload()]) == []


class TestRegion:
    def test_filters_by_flag(self):
        p = payload(
            (0, [0], Region.TITLE),
            (1, [0], Region.BODY),
            (2, [0], Region.TITLE | Region.BODY),
        )
        assert region_docs(p, Region.TITLE) == [0, 2]
        assert region_docs(p, Region.BODY) == [1, 2]
        assert region_docs(p, Region.AUTHOR) == []
