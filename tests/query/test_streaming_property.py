"""Property tests: streamed merges equal set semantics on random indexes."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.index import DualStructureIndex, IndexConfig
from repro.core.policy import Limit, Policy, Style
from repro.query.streaming import streamed_and, streamed_or

doc_words = st.lists(
    st.sets(st.integers(min_value=1, max_value=10), min_size=1, max_size=5),
    min_size=1,
    max_size=40,
)
queries = st.lists(
    st.integers(min_value=1, max_value=12), min_size=1, max_size=4
)


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(docs=doc_words, query=queries)
def test_streamed_merges_match_set_algebra(docs, query):
    index = DualStructureIndex(
        IndexConfig(
            nbuckets=2,
            bucket_size=24,
            block_postings=4,
            ndisks=2,
            nblocks_override=100_000,
            store_contents=True,
            policy=Policy(style=Style.NEW, limit=Limit.Z),
        )
    )
    reference: dict[int, set[int]] = {}
    for doc_id, words in enumerate(docs):
        index.add_document(sorted(words), doc_id=doc_id)
        for w in words:
            reference.setdefault(w, set()).add(doc_id)
        if doc_id % 7 == 6:
            index.flush_batch()
    index.flush_batch()

    want_and = set.intersection(
        *(reference.get(w, set()) for w in query)
    ) if query else set()
    want_or = set.union(*(reference.get(w, set()) for w in query))

    got_and, _ = streamed_and(index, query)
    got_or, _ = streamed_or(index, query)
    assert got_and == sorted(want_and)
    assert got_or == sorted(want_or)
