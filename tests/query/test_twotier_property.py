"""Hypothesis differential tests for the immediate two-tier read path.

The tentpole claim (DESIGN.md §14): over any interleaving of add /
delete / flush, an immediate-tier answer equals the brute-force oracle's
for all three query modes — documents are queryable the moment they are
ingested, not at the next publish — and charges exactly the read ops the
snapshot tier charges for the same query (memory postings are free of
I/O, the same convention the core applies to the unflushed batch).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.index import IndexConfig
from repro.query.reference import BruteForceIndex
from repro.service import QueryService


def _word(n: int) -> str:
    """Purely alphabetic word names — the tokenizer splits on digits."""
    return f"w{chr(ord('a') + n - 1)}"


# Small vocabulary + tiny buckets + a tiny seal threshold: documents
# collide on words constantly and the buffer exercises the sealed-segment
# path, not just the active one.
doc_words = st.lists(
    st.sets(st.integers(min_value=1, max_value=12), min_size=1, max_size=6),
    min_size=1,
    max_size=30,
)
# 0 = never flush mid-stream (everything stays buffered).
flush_every = st.integers(min_value=0, max_value=7)
delete_seed = st.integers(min_value=0, max_value=6)
flat_query = st.tuples(
    st.sampled_from(["AND", "OR"]),
    st.lists(st.integers(min_value=1, max_value=14), min_size=1, max_size=4),
)
word_atom = st.integers(min_value=1, max_value=14).map(_word)
boolean_expr = st.recursive(
    word_atom,
    lambda inner: st.one_of(
        st.tuples(inner, st.sampled_from(["AND", "OR"]), inner).map(
            lambda t: f"({t[0]} {t[1]} {t[2]})"
        ),
        st.tuples(inner, inner).map(lambda t: f"({t[0]} AND NOT {t[1]})"),
    ),
    max_leaves=6,
)
vector_weights = st.dictionaries(
    word_atom,
    st.integers(min_value=1, max_value=3).map(float),
    min_size=1,
    max_size=4,
)


def _build(docs, every, delete_seed):
    """An immediate-tier service and the oracle, fed one interleaved
    stream of adds, deletes, and mid-stream flushes."""
    service = QueryService(
        IndexConfig(
            nbuckets=2,
            bucket_size=24,
            block_postings=4,
            ndisks=2,
            nblocks_override=100_000,
            store_contents=True,
        ),
        cache_capacity=0,  # differential answers must not be memoized
        track_reference=False,
        read_tier="immediate",
        mem_seal_docs=4,
    )
    oracle = BruteForceIndex()
    for i, words in enumerate(docs):
        doc_id = service.add_document(
            " ".join(_word(w) for w in sorted(words))
        )
        oracle.add_document(doc_id, [_word(w) for w in words])
        if delete_seed and i % (delete_seed + 1) == delete_seed:
            victim = (i * 2654435761) % (doc_id + 1)
            service.delete_document(victim)
            oracle.delete_document(victim)
        if every and i % every == every - 1:
            service.flush_and_publish()
    return service, oracle


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    docs=doc_words,
    every=flush_every,
    delete_seed=delete_seed,
    query=flat_query,
)
def test_flat_queries_match_oracle_mid_buffer(
    docs, every, delete_seed, query
):
    service, oracle = _build(docs, every, delete_seed)
    operator, word_nums = query
    text = f" {operator} ".join(_word(n) for n in word_nums)

    streamed = service.search_streamed(text)
    boolean = service.search_boolean(text)
    expected = oracle.search_boolean(text)

    assert streamed.doc_ids == expected, text
    assert boolean.doc_ids == expected, text
    assert streamed.doc_ids == sorted(set(streamed.doc_ids))


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    docs=doc_words,
    every=flush_every,
    delete_seed=delete_seed,
    expr=boolean_expr,
)
def test_general_boolean_matches_oracle_mid_buffer(
    docs, every, delete_seed, expr
):
    service, oracle = _build(docs, every, delete_seed)
    assert (
        service.search_boolean(expr).doc_ids == oracle.search_boolean(expr)
    ), expr


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    docs=doc_words,
    every=flush_every,
    delete_seed=delete_seed,
    weights=vector_weights,
)
def test_vector_ranking_matches_oracle_mid_buffer(
    docs, every, delete_seed, weights
):
    service, oracle = _build(docs, every, delete_seed)
    got = [
        (d.doc_id, d.score) for d in service.search_vector(weights, top_k=8)
    ]
    want = [
        (d.doc_id, d.score) for d in oracle.search_vector(weights, top_k=8)
    ]
    # Bit-identical scores: the merged fetch feeds the ranker in the same
    # sorted-term order a post-flush ranking uses.
    assert got == want, weights


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    docs=doc_words,
    every=flush_every,
    delete_seed=delete_seed,
    query=flat_query,
)
def test_read_ops_match_the_snapshot_tier(docs, every, delete_seed, query):
    """Memory postings carry no I/O charge: mid-buffer, an immediate
    answer costs exactly what the snapshot tier charges for the same
    query over the same published base."""
    service, oracle = _build(docs, every, delete_seed)
    operator, word_nums = query
    text = f" {operator} ".join(_word(n) for n in word_nums)

    imm_streamed = service.search_streamed(text, tier="immediate")
    snap_streamed = service.search_streamed(text, tier="snapshot")
    assert imm_streamed.read_ops == snap_streamed.read_ops

    imm_boolean = service.search_boolean(text, tier="immediate")
    snap_boolean = service.search_boolean(text, tier="snapshot")
    assert imm_boolean.read_ops == snap_boolean.read_ops

    # After draining the buffer the tiers are byte-identical: same ids,
    # same read ops.
    service.flush_and_publish()
    imm = service.search_streamed(text, tier="immediate")
    snap = service.search_streamed(text, tier="snapshot")
    assert imm.doc_ids == snap.doc_ids == oracle.search_boolean(text)
    assert imm.read_ops == snap.read_ops
