"""Unit tests for streaming (lazy, block-at-a-time) query evaluation."""

import random

import pytest

from repro.core.index import DualStructureIndex, IndexConfig
from repro.core.policy import Limit, Policy, Style
from repro.query.boolean import intersect, union
from repro.query.streaming import (
    ListCursor,
    StreamStats,
    streamed_and,
    streamed_or,
)


def make_index(policy=None, block_postings=8):
    return DualStructureIndex(
        IndexConfig(
            nbuckets=4,
            bucket_size=48,
            block_postings=block_postings,
            ndisks=2,
            nblocks_override=200_000,
            store_contents=True,
            policy=policy or Policy(style=Style.NEW, limit=Limit.Z),
        )
    )


def populate(index, rng_seed=0, batches=8, docs=12, vocab=25):
    rng = random.Random(rng_seed)
    doc = 0
    for _ in range(batches):
        for _ in range(docs):
            words = {1} | {
                rng.randint(2, vocab) for _ in range(rng.randint(2, 6))
            }
            index.add_document(sorted(words), doc_id=doc)
            doc += 1
        index.flush_batch()
    return index


class TestCursor:
    def test_walks_whole_list_in_order(self):
        index = populate(make_index())
        stats = StreamStats()
        cursor = ListCursor(index, 1, stats)
        seen = []
        while not cursor.exhausted:
            seen.append(cursor.current)
            cursor.next()
        expected, _ = index.fetch(1)
        assert seen == expected.doc_ids
        assert stats.postings_decoded == len(seen)

    def test_next_geq_lands_on_first_match(self):
        index = populate(make_index())
        cursor = ListCursor(index, 1, StreamStats())
        cursor.next_geq(37)
        assert cursor.current >= 37

    def test_unknown_word_starts_exhausted(self):
        index = populate(make_index())
        stats = StreamStats()
        cursor = ListCursor(index, 9999, stats)
        assert cursor.exhausted
        assert stats.read_ops == 0

    def test_bucket_word_costs_one_read(self):
        index = make_index()
        index.add_document([7], doc_id=0)
        index.flush_batch()
        stats = StreamStats()
        cursor = ListCursor(index, 7, stats)
        assert cursor.current == 0
        assert stats.read_ops == 1
        assert stats.blocks_read == 0  # bucket is memory-resident

    def test_requires_content_mode(self):
        plain = DualStructureIndex(
            IndexConfig(nbuckets=4, bucket_size=48, block_postings=8)
        )
        with pytest.raises(RuntimeError):
            ListCursor(plain, 1, StreamStats())


class TestCorrectness:
    @pytest.mark.parametrize(
        "policy",
        [
            Policy(style=Style.NEW, limit=Limit.ZERO),
            Policy(style=Style.NEW, limit=Limit.Z),
            Policy(style=Style.FILL, limit=Limit.Z, extent_blocks=2),
            Policy(style=Style.WHOLE, limit=Limit.ZERO),
        ],
        ids=lambda p: p.name,
    )
    def test_streamed_matches_materialized(self, policy):
        index = populate(make_index(policy), rng_seed=3)
        for words in ([1, 2], [2, 3, 5], [1, 9999], [4], [7, 8, 9]):
            lists = [index.fetch(w)[0].doc_ids for w in words]
            want_and = lists[0]
            want_or = lists[0]
            for other in lists[1:]:
                want_and = intersect(want_and, other)
                want_or = union(want_or, other)
            got_and, _ = streamed_and(index, words)
            got_or, _ = streamed_or(index, words)
            assert got_and == want_and, words
            assert got_or == want_or, words

    def test_empty_inputs(self):
        index = populate(make_index())
        assert streamed_and(index, [])[0] == []
        assert streamed_or(index, [])[0] == []


class TestLaziness:
    def test_rare_and_frequent_skips_most_blocks(self):
        """'hot AND early-rare' must stop reading the hot list once the
        rare list is exhausted."""
        index = make_index()
        doc = 0
        for batch in range(10):
            for _ in range(12):
                words = [1]  # hot word in every doc
                if doc == 3:
                    words.append(2)  # the rare word, early in the corpus
                index.add_document(sorted(words), doc_id=doc)
                doc += 1
            index.flush_batch()
        answer, stats = streamed_and(index, [1, 2])
        assert answer == [3]
        total_blocks = sum(
            -(-c.npostings // index.config.block_postings)
            for c in index.directory.get(1).chunks
        )
        assert stats.blocks_read < 0.4 * total_blocks

    def test_union_reads_everything(self):
        index = populate(make_index(), rng_seed=5)
        _, and_stats = streamed_and(index, [1, 2])
        _, or_stats = streamed_or(index, [1, 2])
        assert or_stats.postings_decoded >= and_stats.postings_decoded

    def test_untouched_chunks_not_charged(self):
        """Chunk read ops are charged on first touch, so an early exit
        charges fewer ops than the directory's chunk count."""
        index = make_index(Policy(style=Style.NEW, limit=Limit.ZERO))
        doc = 0
        for batch in range(12):
            for _ in range(10):
                words = [1] + ([2] if doc == 0 else [])
                index.add_document(sorted(set(words)), doc_id=doc)
                doc += 1
            index.flush_batch()
        entry = index.directory.get(1)
        assert entry.nchunks > 3
        _, stats = streamed_and(index, [1, 2])
        assert stats.read_ops < entry.nchunks + 1
