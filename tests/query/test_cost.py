"""Unit tests for the query-cost model (paper §5.2.1)."""

import pytest

from repro.core.directory import Directory
from repro.query.cost import (
    BooleanWorkload,
    QueryCostModel,
    VectorWorkload,
)
from repro.storage.block import Chunk


def make_model(chunks_for_word=None, bucket_words=(), counts=None):
    directory = Directory()
    for word, nchunks in (chunks_for_word or {}).items():
        entry = directory.entry(word)
        for i in range(nchunks):
            entry.chunks.append(
                Chunk(disk=0, start=i * 10, nblocks=1, npostings=10)
            )
    return QueryCostModel(
        directory, set(bucket_words), counts or {}
    )


class TestReadsForWord:
    def test_long_word_costs_chunks(self):
        model = make_model({7: 3}, counts={7: 100})
        assert model.reads_for_word(7) == 3

    def test_bucket_word_costs_one(self):
        model = make_model(bucket_words=[5], counts={5: 2})
        assert model.reads_for_word(5) == 1

    def test_unknown_word_is_free(self):
        model = make_model()
        assert model.reads_for_word(99) == 0


class TestVectorCost:
    def test_frequency_weighting_prefers_long_words(self):
        # One frequent long word (5 chunks) and many rare bucket words:
        # the vector cost should be pulled toward the long word's cost.
        counts = {1: 10_000}
        counts.update({w: 1 for w in range(2, 50)})
        model = make_model({1: 5}, bucket_words=range(2, 50), counts=counts)
        cost = model.vector_cost(VectorWorkload(nqueries=20))
        assert cost > 4.0

    def test_empty_index(self):
        assert make_model().vector_cost() == 0.0


class TestBooleanCost:
    def test_infrequent_words_mostly_buckets(self):
        counts = {1: 10_000}
        counts.update({w: 1 for w in range(2, 200)})
        model = make_model({1: 5}, bucket_words=range(2, 200), counts=counts)
        wl = BooleanWorkload(words_per_query=4, nqueries=50)
        cost = model.boolean_cost(wl)
        # 4 bucket reads per query expected; the long word is excluded by
        # the frequent cutoff.
        assert cost == pytest.approx(4.0, abs=0.5)

    def test_boolean_cheaper_than_vector_on_skewed_index(self):
        counts = {1: 10_000}
        counts.update({w: 1 for w in range(2, 200)})
        model = make_model({1: 8}, bucket_words=range(2, 200), counts=counts)
        vector = model.vector_cost(VectorWorkload(nqueries=20))
        boolean = model.boolean_cost(
            BooleanWorkload(words_per_query=4, nqueries=50)
        )
        # Per *word*, boolean queries touch buckets; vector queries touch
        # the long list.  (boolean_cost is per query of 4 words.)
        assert boolean / 4 < vector

    def test_empty_index(self):
        assert make_model().boolean_cost() == 0.0


class TestWorkloadValidation:
    def test_boolean(self):
        with pytest.raises(ValueError):
            BooleanWorkload(words_per_query=0)
        with pytest.raises(ValueError):
            BooleanWorkload(frequent_cutoff=1.0)

    def test_vector(self):
        with pytest.raises(ValueError):
            VectorWorkload(nqueries=0)
