"""Shared fixtures: small cached experiments so the suite stays fast."""

from __future__ import annotations

import os

import pytest

from repro.pipeline import Experiment, ExperimentConfig
from repro.workload import SyntheticNewsConfig

# The artifact cache is opt-in; a developer's REPRO_CACHE_DIR must never
# leak into unit-test experiments (tests that want a cache pass one).
os.environ.pop("REPRO_CACHE_DIR", None)


def small_experiment_config(**overrides) -> ExperimentConfig:
    """A fast experiment: 24 days, small buckets, same dynamics."""
    workload = overrides.pop(
        "workload",
        SyntheticNewsConfig(days=24, docs_per_day=60, interrupted_day=15),
    )
    defaults = dict(
        workload=workload,
        nbuckets=64,
        bucket_size=512,
        block_postings=64,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


@pytest.fixture(scope="session")
def small_experiment() -> Experiment:
    """One shared small experiment; stages are cached inside it."""
    return Experiment(small_experiment_config())
