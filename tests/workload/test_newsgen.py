"""Unit tests for the text renderer of synthetic documents."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.tokenizer import tokenize_document
from repro.workload.newsgen import (
    generate_articles,
    id_for_word,
    render_article,
    word_for_id,
)
from repro.workload.synthetic import SyntheticNews, SyntheticNewsConfig


class TestWordMapping:
    def test_small_ids(self):
        assert word_for_id(1) == "ba"
        assert word_for_id(2) == "be"

    def test_bijective(self):
        words = [word_for_id(i) for i in range(1, 500)]
        assert len(set(words)) == len(words)

    def test_inverse(self):
        for i in (1, 5, 99, 100, 101, 10_000, 123_456_789):
            assert id_for_word(word_for_id(i)) == i

    def test_words_are_lowercase_alpha(self):
        for i in (1, 100, 12345):
            word = word_for_id(i)
            assert word.isalpha() and word == word.lower()

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            word_for_id(0)
        with pytest.raises(ValueError):
            id_for_word("xyz1")
        with pytest.raises(ValueError):
            id_for_word("")


@given(st.integers(min_value=1, max_value=10**12))
def test_word_mapping_roundtrip_property(word_id):
    assert id_for_word(word_for_id(word_id)) == word_id


class TestRenderArticle:
    def test_tokenizing_recovers_word_set(self):
        ids = [1, 2, 50, 999]
        article = render_article(7, ids, day=3)
        tokens = tokenize_document(article)
        assert sorted(id_for_word(t) for t in tokens) == sorted(ids)

    def test_headers_present_but_skipped(self):
        article = render_article(7, [1], day=3)
        assert "Date:" in article
        assert "Message-ID:" in article
        assert tokenize_document(article) == ["ba"]


class TestGenerateArticles:
    def test_articles_match_day_documents(self):
        news = SyntheticNews(SyntheticNewsConfig(days=3, docs_per_day=10))
        docs = news.day_documents(1)
        articles = list(generate_articles(news, 1, first_doc_id=100))
        assert len(articles) == len(docs)
        assert articles[0].doc_id == 100
        recovered = sorted(
            id_for_word(t) for t in tokenize_document(articles[0].text)
        )
        assert recovered == sorted(docs[0].tolist())
