"""Unit tests for Zipf sampling and fitting."""

import numpy as np
import pytest

from repro.workload.zipf import (
    bounded_zipf_probabilities,
    concentration,
    fit_zipf_exponent,
    sample_bounded_zipf,
    sample_unbounded_zipf,
)


class TestBoundedZipf:
    def test_probabilities_sum_to_one(self):
        probs = bounded_zipf_probabilities(1.2, 1000)
        assert probs.sum() == pytest.approx(1.0)

    def test_probabilities_decrease_with_rank(self):
        probs = bounded_zipf_probabilities(1.2, 100)
        assert all(a > b for a, b in zip(probs, probs[1:]))

    def test_rank_one_dominates(self):
        probs = bounded_zipf_probabilities(1.5, 10_000)
        assert probs[0] > 0.3

    def test_sampling_range(self):
        rng = np.random.default_rng(0)
        samples = sample_bounded_zipf(rng, 1.2, 50, 1000)
        assert samples.min() >= 1 and samples.max() <= 50

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            bounded_zipf_probabilities(0, 10)
        with pytest.raises(ValueError):
            bounded_zipf_probabilities(1.0, 0)


class TestUnboundedZipf:
    def test_requires_s_above_one(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_unbounded_zipf(rng, 1.0, 10)

    def test_samples_start_at_one(self):
        rng = np.random.default_rng(0)
        samples = sample_unbounded_zipf(rng, 1.3, 10_000)
        assert samples.min() == 1

    def test_tail_produces_rare_large_ranks(self):
        rng = np.random.default_rng(0)
        samples = sample_unbounded_zipf(rng, 1.3, 100_000)
        assert samples.max() > 10_000  # heavy tail reaches deep ranks


class TestFit:
    def test_recovers_exponent_roughly(self):
        rng = np.random.default_rng(42)
        s_true = 1.4
        samples = sample_unbounded_zipf(rng, s_true, 500_000)
        _, counts = np.unique(samples, return_counts=True)
        s_hat = fit_zipf_exponent(counts)
        assert s_hat == pytest.approx(s_true, abs=0.35)

    def test_needs_enough_counts(self):
        with pytest.raises(ValueError):
            fit_zipf_exponent(np.array([5, 3]))


class TestConcentration:
    def test_uniform_counts(self):
        counts = np.ones(100)
        assert concentration(counts, 0.1) == pytest.approx(0.1)

    def test_skewed_counts(self):
        counts = np.array([1000] + [1] * 99)
        assert concentration(counts, 0.01) == pytest.approx(1000 / 1099)

    def test_zipf_concentrates(self):
        rng = np.random.default_rng(1)
        samples = sample_unbounded_zipf(rng, 1.3, 200_000)
        _, counts = np.unique(samples, return_counts=True)
        # A tiny fraction of words carries most postings — the Table-1
        # property the dual structure exploits.
        assert concentration(counts, 0.01) > 0.5

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            concentration(np.ones(10), 0.0)
