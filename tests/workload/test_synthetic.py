"""Unit tests for the synthetic News workload."""

import numpy as np
import pytest

from repro.workload.synthetic import SyntheticNews, SyntheticNewsConfig
from repro.workload.zipf import concentration, fit_zipf_exponent


@pytest.fixture(scope="module")
def news():
    return SyntheticNews(SyntheticNewsConfig(days=21, docs_per_day=50))


class TestSizing:
    def test_weekly_profile(self, news):
        # Day 0 is Saturday (smallest); midweek days are larger.
        assert news.docs_on_day(0) < news.docs_on_day(3)
        assert news.docs_on_day(7) == news.docs_on_day(0)

    def test_interrupted_day_is_tiny(self):
        cfg = SyntheticNewsConfig(days=40, docs_per_day=100, interrupted_day=31)
        news = SyntheticNews(cfg)
        assert news.docs_on_day(31) < news.docs_on_day(30) / 5

    def test_scale_multiplies(self):
        big = SyntheticNews(SyntheticNewsConfig(days=7, scale=2.0))
        small = SyntheticNews(SyntheticNewsConfig(days=7, scale=1.0))
        assert big.docs_on_day(3) == pytest.approx(
            2 * small.docs_on_day(3), rel=0.02
        )

    def test_day_out_of_range(self, news):
        with pytest.raises(ValueError):
            news.docs_on_day(21)


class TestDeterminism:
    def test_same_seed_same_batches(self):
        cfg = SyntheticNewsConfig(days=3, docs_per_day=30)
        a = SyntheticNews(cfg).batch_update(2)
        b = SyntheticNews(cfg).batch_update(2)
        assert a.pairs == b.pairs

    def test_different_seed_differs(self):
        a = SyntheticNews(SyntheticNewsConfig(days=3, seed=1)).batch_update(1)
        b = SyntheticNews(SyntheticNewsConfig(days=3, seed=2)).batch_update(1)
        assert a.pairs != b.pairs

    def test_days_are_independent(self):
        # Generating day 5 directly equals generating it after day 4.
        cfg = SyntheticNewsConfig(days=7, docs_per_day=20)
        direct = SyntheticNews(cfg).batch_update(5)
        news = SyntheticNews(cfg)
        news.batch_update(4)
        assert news.batch_update(5).pairs == direct.pairs


class TestDocuments:
    def test_documents_are_distinct_word_sets(self, news):
        for doc in news.day_documents(3)[:20]:
            assert len(np.unique(doc)) == len(doc)
            assert doc.min() >= 1

    def test_batch_counts_documents_containing_word(self, news):
        docs = news.day_documents(2)
        update = news.batch_update(2)
        # Word 1 (the most frequent rank) should appear in nearly all docs.
        count_1 = dict(update.pairs)[1]
        manual = sum(1 for d in docs if 1 in d)
        assert count_1 == manual

    def test_batch_update_metadata(self, news):
        update = news.batch_update(4)
        assert update.day == 4
        assert update.ndocs == news.docs_on_day(4)
        assert update.npostings == sum(len(d) for d in news.day_documents(4))


class TestDistribution:
    def test_corpus_is_zipf_shaped(self):
        news = SyntheticNews(SyntheticNewsConfig(days=14, docs_per_day=80))
        counts = np.array(list(news.word_counts().values()))
        s = fit_zipf_exponent(counts)
        assert 1.0 < s < 2.0

    def test_frequent_words_carry_most_postings(self):
        news = SyntheticNews(SyntheticNewsConfig(days=14, docs_per_day=80))
        counts = np.array(list(news.word_counts().values()))
        assert concentration(counts, 0.01) > 0.5

    def test_new_words_keep_arriving(self):
        """Heaps-like growth: late batches still introduce unseen words."""
        news = SyntheticNews(SyntheticNewsConfig(days=14, docs_per_day=80))
        seen: set[int] = set()
        new_fractions = []
        for update in news.batches():
            words = {w for w, _ in update.pairs}
            new_fractions.append(len(words - seen) / len(words))
            seen |= words
        assert new_fractions[0] == 1.0
        assert new_fractions[-1] > 0.1


class TestUpdateSizeStability:
    def test_frequent_words_have_similar_update_sizes(self):
        """Paper §5.2.2 grounds the k=2 cusp in "multiple updates to the
        same word have approximately the same length"; the workload must
        exhibit that (weekly modulation aside)."""
        news = SyntheticNews(SyntheticNewsConfig(days=21, docs_per_day=80))
        per_word: dict[int, list[int]] = {}
        for update in news.batches():
            for word, count in update.pairs:
                per_word.setdefault(word, []).append(count)
        # The 20 most frequent words: coefficient of variation of their
        # per-update sizes stays moderate.
        frequent = sorted(
            per_word, key=lambda w: -sum(per_word[w])
        )[:20]
        for word in frequent:
            sizes = np.array(per_word[word], dtype=float)
            cv = sizes.std() / sizes.mean()
            assert cv < 0.6, f"word {word} update sizes too erratic"


class TestValidation:
    def test_bad_config(self):
        with pytest.raises(ValueError):
            SyntheticNewsConfig(days=0)
        with pytest.raises(ValueError):
            SyntheticNewsConfig(zipf_s=1.0)
        with pytest.raises(ValueError):
            SyntheticNewsConfig(scale=0)
