"""Unit tests for the named workload presets."""

import numpy as np
import pytest

from repro.workload.presets import email, news, preset, stock
from repro.workload.synthetic import SyntheticNews
from repro.workload.zipf import concentration


class TestLookup:
    def test_by_name(self):
        assert preset("news") == news()
        assert preset("email") == email()
        assert preset("stock") == stock()

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown workload preset"):
            preset("usenet")

    def test_days_and_scale_forwarded(self):
        cfg = preset("email", days=10, scale=0.5)
        assert cfg.days == 10
        assert cfg.scale == 0.5


class TestCharacter:
    def counts(self, cfg):
        return np.array(
            list(SyntheticNews(cfg).word_counts().values())
        )

    def test_stock_is_most_concentrated(self):
        stock_share = concentration(
            self.counts(stock(days=10, scale=0.5)), 0.01
        )
        email_share = concentration(
            self.counts(email(days=10, scale=0.5)), 0.01
        )
        assert stock_share > email_share

    def test_stock_documents_are_terse(self):
        stock_docs = SyntheticNews(stock(days=3, scale=0.5)).day_documents(2)
        news_docs = SyntheticNews(news(days=3, scale=0.5)).day_documents(2)
        stock_len = np.mean([len(d) for d in stock_docs])
        news_len = np.mean([len(d) for d in news_docs])
        assert stock_len < 0.4 * news_len

    def test_email_volume_exceeds_news(self):
        assert SyntheticNews(email()).docs_on_day(3) > (
            SyntheticNews(news()).docs_on_day(3)
        )

    def test_all_presets_generate_valid_batches(self):
        for name in ("news", "email", "stock"):
            cfg = preset(name, days=3, scale=0.3)
            update = SyntheticNews(cfg).batch_update(1)
            assert update.npostings > 0
            assert update.pairs == sorted(update.pairs)
