"""End-to-end integration: raw text articles → index → queries,
and the full Figure-3 pipeline text → invert → buckets → disks → exercise.
"""

import pytest

from repro.core.index import IndexConfig
from repro.core.policy import Limit, Policy, Style
from repro.pipeline.compute_buckets import ComputeBucketsProcess
from repro.pipeline.compute_disks import ComputeDisksProcess, DiskStageConfig
from repro.pipeline.exercise import ExerciseConfig, ExerciseDisksProcess
from repro.pipeline.invert import InvertIndexProcess
from repro.storage.profiles import SEAGATE_SCSI_1994
from repro.text.documents import Document, DocumentBatch
from repro.textindex import TextDocumentIndex
from repro.workload.newsgen import generate_articles, word_for_id
from repro.workload.synthetic import SyntheticNews, SyntheticNewsConfig


class TestTextDocumentIndex:
    @pytest.fixture
    def index(self):
        idx = TextDocumentIndex(
            IndexConfig(
                nbuckets=16,
                bucket_size=128,
                block_postings=16,
                ndisks=2,
                nblocks_override=100_000,
                store_contents=True,
            )
        )
        idx.add_document("Date: ignored\n\nthe cat sat with the dog")
        idx.add_document("a mouse ran past the dog")
        idx.add_document("cats and dogs and mice")
        idx.flush_batch()
        return idx

    def test_boolean_search(self, index):
        assert index.search_boolean("cat AND dog").doc_ids == [0]
        assert index.search_boolean("(cat AND dog) OR mouse").doc_ids == [0, 1]
        assert index.search_boolean("dog AND NOT cat").doc_ids == [1]

    def test_search_reports_read_ops(self, index):
        answer = index.search_boolean("cat AND dog")
        assert answer.read_ops >= 2
        assert index.last_read_ops == answer.read_ops

    def test_vector_search(self, index):
        results = index.search_vector({"dog": 1.0, "mouse": 2.0}, top_k=3)
        assert results[0].doc_id == 1  # has both words

    def test_more_like(self, index):
        results = index.more_like("the mouse and the dog", top_k=2)
        assert results[0].doc_id == 1

    def test_document_frequency(self, index):
        assert index.document_frequency("dog") == 2
        assert index.document_frequency("unicorn") == 0

    def test_unflushed_documents_searchable(self, index):
        index.add_document("a surprise cat appears")
        assert 3 in index.search_boolean("cat").doc_ids

    def test_incremental_batches(self, index):
        index.add_document("another dog day")
        index.flush_batch()
        assert index.search_boolean("dog").doc_ids == [0, 1, 3]

    def test_stats_exposed(self, index):
        assert index.stats().batches == 1


class TestSyntheticArticlesRoundtrip:
    def test_rendered_corpus_is_searchable(self):
        news = SyntheticNews(SyntheticNewsConfig(days=2, docs_per_day=15))
        index = TextDocumentIndex(
            IndexConfig(
                nbuckets=16,
                bucket_size=256,
                block_postings=16,
                ndisks=2,
                nblocks_override=100_000,
                store_contents=True,
            )
        )
        doc_id = 0
        docs_by_id = {}
        for day in range(2):
            for article in generate_articles(news, day, first_doc_id=doc_id):
                got = index.add_document(article.text)
                docs_by_id[got] = article
                doc_id = got + 1
            index.flush_batch()
        # Word id 1 is the most frequent rank; it should hit many docs.
        hot_word = word_for_id(1)
        answer = index.search_boolean(hot_word)
        assert len(answer.doc_ids) > len(docs_by_id) // 2


class TestFullPipeline:
    def test_text_to_exercise(self):
        # Build two days of tiny articles, push them through every stage.
        batches = [
            DocumentBatch(
                day=d,
                documents=[
                    Document(d * 10 + i, f"alpha beta w{d}x{i} gamma " * 3)
                    for i in range(8)
                ],
            )
            for d in range(4)
        ]
        inverted = list(InvertIndexProcess().run(batches))
        assert len(inverted) == 4

        bucket_result = ComputeBucketsProcess(
            nbuckets=4, bucket_size=24
        ).run(inverted)
        assert bucket_result.trace.nbatches == 4
        assert bucket_result.trace.nupdates > 0  # hot words migrated

        disk_result = ComputeDisksProcess(
            DiskStageConfig(
                policy=Policy(style=Style.NEW, limit=Limit.Z),
                bucket_flush_blocks=4,
                block_postings=16,
            )
        ).run(bucket_result.trace)
        assert disk_result.series.nupdates == 4

        outcome = ExerciseDisksProcess(
            ExerciseConfig(profile=SEAGATE_SCSI_1994, ndisks=4)
        ).run(disk_result.trace)
        assert outcome.feasible
        assert outcome.total_s > 0
