"""Integration tests asserting the paper's qualitative results at reduced
scale.  These are the same shape checks the benchmark harness prints; here
they run on the shared small experiment so the ordinary test suite already
guards the reproduction.
"""

import pytest

from repro.analysis.metrics import increasing_slope
from repro.core.policy import Limit, Policy, Style


@pytest.fixture(scope="module")
def runs(small_experiment):
    policies = {
        "new0": Policy(style=Style.NEW, limit=Limit.ZERO),
        "newz": Policy(style=Style.NEW, limit=Limit.Z),
        "fill0": Policy(style=Style.FILL, limit=Limit.ZERO),
        "fillz": Policy(style=Style.FILL, limit=Limit.Z),
        "whole0": Policy(style=Style.WHOLE, limit=Limit.ZERO),
        "wholez": Policy(style=Style.WHOLE, limit=Limit.Z),
    }
    return {
        name: small_experiment.run_policy(p) for name, p in policies.items()
    }


class TestFigure7Shapes:
    def test_new_words_start_at_one_and_fall(self, small_experiment):
        new, _, _ = small_experiment.bucket_stage().category_fraction_series
        assert new[0] == 1.0
        assert new[-1] < 0.6

    def test_long_words_absent_then_rise(self, small_experiment):
        _, _, long_ = small_experiment.bucket_stage().category_fraction_series
        assert long_[0] == 0.0
        assert long_[-1] > 0.05

    def test_bucket_words_rise_then_decline(self, small_experiment):
        _, bucket, _ = small_experiment.bucket_stage().category_fraction_series
        peak = max(range(len(bucket)), key=bucket.__getitem__)
        assert 0 < peak < len(bucket) - 1
        assert bucket[-1] < bucket[peak]


class TestFigure8Shapes:
    def test_curves_have_increasing_slope(self, runs):
        for name in ("new0", "newz", "wholez"):
            assert increasing_slope(runs[name].disks.series.io_ops), name

    def test_in_place_costs_more_ops(self, runs):
        assert (
            runs["newz"].disks.series.io_ops[-1]
            > 1.3 * runs["new0"].disks.series.io_ops[-1]
        )
        assert (
            runs["fillz"].disks.series.io_ops[-1]
            > 1.3 * runs["fill0"].disks.series.io_ops[-1]
        )

    def test_whole_is_the_upper_bound(self, runs):
        whole = runs["wholez"].disks.series.io_ops[-1]
        for name in ("new0", "newz", "fill0", "fillz"):
            assert runs[name].disks.series.io_ops[-1] <= whole

    def test_whole_limits_coincide_in_ops(self, runs):
        # "whole 0 & whole z" is a single curve in the paper's Figure 8.
        assert (
            runs["whole0"].disks.series.io_ops
            == runs["wholez"].disks.series.io_ops
        )


class TestFigure9Shapes:
    def test_whole_has_best_utilization(self, runs):
        whole = runs["wholez"].disks.final_utilization
        for name in ("new0", "newz", "fill0", "fillz"):
            assert runs[name].disks.final_utilization <= whole + 1e-9

    def test_no_in_place_collapses_utilization(self, runs):
        assert (
            runs["fill0"].disks.final_utilization
            < 0.5 * runs["fillz"].disks.final_utilization
        )
        assert (
            runs["new0"].disks.final_utilization
            < runs["newz"].disks.final_utilization
        )


class TestFigure10Shapes:
    def test_whole_reads_exactly_one(self, runs):
        assert runs["wholez"].disks.final_avg_reads == 1.0
        assert runs["whole0"].disks.final_avg_reads == 1.0

    def test_in_place_needed_for_competitive_reads(self, runs):
        assert (
            runs["newz"].disks.final_avg_reads
            < 0.7 * runs["new0"].disks.final_avg_reads
        )

    def test_ordering_whole_fill_new(self, runs):
        assert (
            runs["wholez"].disks.final_avg_reads
            <= runs["fillz"].disks.final_avg_reads
            <= runs["newz"].disks.final_avg_reads
        )


class TestTimingShapes:
    def test_update_optimized_policy_is_fastest(self, small_experiment):
        new0 = small_experiment.run_policy(
            Policy(style=Style.NEW, limit=Limit.ZERO), exercise=True
        )
        whole0 = small_experiment.run_policy(
            Policy(style=Style.WHOLE, limit=Limit.ZERO), exercise=True
        )
        assert new0.exercise.total_s < whole0.exercise.total_s

    def test_time_ratio_exceeds_ops_ratio(self, small_experiment):
        """Paper §5.3: times vary by ×8 where ops vary by ×2, because
        sequential-only policies coalesce."""
        new0 = small_experiment.run_policy(
            Policy(style=Style.NEW, limit=Limit.ZERO), exercise=True
        )
        whole0 = small_experiment.run_policy(
            Policy(style=Style.WHOLE, limit=Limit.ZERO), exercise=True
        )
        ops_ratio = (
            whole0.disks.series.io_ops[-1] / new0.disks.series.io_ops[-1]
        )
        time_ratio = whole0.exercise.total_s / new0.exercise.total_s
        assert time_ratio > ops_ratio
