"""End-to-end positional retrieval: phrase / proximity / region queries
through the text index, across policies, with a reference model."""

import pytest

from repro.core.index import IndexConfig
from repro.core.policy import Limit, Policy, Style
from repro.core.positional import Region
from repro.textindex import TextDocumentIndex

ARTICLES = [
    """Subject: the hungry cat
From: alice

the cat chased the small mouse
the dog slept""",
    """Subject: dog news
From: bob

the big dog chased the cat
a mouse watched from afar""",
    """Subject: mouse takes title
From: carol

mice everywhere
the cat sat far away from everything else here and the
final word was dog""",
]


def make_index(policy=None):
    config = IndexConfig(
        nbuckets=16,
        bucket_size=128,
        block_postings=16,
        ndisks=2,
        nblocks_override=100_000,
        store_contents=True,
        positional=True,
        **({"policy": policy} if policy else {}),
    )
    index = TextDocumentIndex(config)
    for text in ARTICLES:
        index.add_document(text)
    index.flush_batch()
    return index


@pytest.fixture
def index():
    return make_index()


class TestPhrase:
    def test_exact_phrase(self, index):
        assert index.search_phrase("cat chased").doc_ids == [0]
        assert index.search_phrase("dog chased").doc_ids == [1]

    def test_phrase_crossing_lines(self, index):
        # Positions run across lines; "mouse the dog" does not occur but
        # "small mouse" does.
        assert index.search_phrase("small mouse").doc_ids == [0]

    def test_words_present_but_not_adjacent(self, index):
        assert index.search_phrase("cat mouse").doc_ids == []

    def test_title_words_participate(self, index):
        assert index.search_phrase("hungry cat").doc_ids == [0]


class TestProximity:
    def test_within_k(self, index):
        # doc 1: "the cat / a mouse" — positions 8 and 10, 2 apart;
        # doc 0's closest cat–mouse pair is 4 apart.
        assert index.search_near("cat", "mouse", 2).doc_ids == [1]
        assert index.search_near("cat", "mouse", 4).doc_ids == [0, 1]

    def test_wider_window_catches_more(self, index):
        docs = index.search_near("cat", "mouse", 12).doc_ids
        assert 0 in docs and 1 in docs

    def test_far_apart_words_excluded(self, index):
        # doc 2: cat and dog are ~14 words apart.
        assert 2 not in index.search_near("cat", "dog", 5).doc_ids


class TestRegion:
    def test_title_region(self, index):
        assert index.search_region("cat", Region.TITLE).doc_ids == [0]
        assert index.search_region("mouse", Region.TITLE).doc_ids == [2]

    def test_author_region(self, index):
        assert index.search_region("alice", Region.AUTHOR).doc_ids == [0]
        assert index.search_region("bob", Region.AUTHOR).doc_ids == [1]

    def test_body_region(self, index):
        assert index.search_region("dog", Region.BODY).doc_ids == [0, 1, 2]

    def test_word_in_title_and_body(self, index):
        # "cat" is in doc 0's title and body; region flags are or-ed.
        title_docs = index.search_region("cat", Region.TITLE).doc_ids
        body_docs = index.search_region("cat", Region.BODY).doc_ids
        assert 0 in title_docs and 0 in body_docs


class TestAcrossPoliciesAndBatches:
    @pytest.mark.parametrize(
        "policy",
        [
            Policy(style=Style.NEW, limit=Limit.ZERO),
            Policy(style=Style.FILL, limit=Limit.Z, extent_blocks=2),
            Policy(style=Style.WHOLE, limit=Limit.ZERO),
        ],
        ids=lambda p: p.name,
    )
    def test_positions_survive_every_layout(self, policy):
        index = make_index(policy)
        # Force migrations by hammering one hot phrase across batches.
        for batch in range(6):
            for _ in range(10):
                index.add_document("filler words\nthe cat chased the mouse")
            index.flush_batch()
        hits = index.search_phrase("cat chased").doc_ids
        assert hits[0] == 0
        assert len(hits) == 1 + 60  # original + all fillers

    def test_boolean_and_vector_still_work_positionally(self, index):
        assert index.search_boolean("cat AND dog").doc_ids == [0, 1, 2]
        top = index.search_vector({"mouse": 1.0}, top_k=3)
        assert {h.doc_id for h in top} == {0, 1, 2}

    def test_deletion_filters_positional_queries(self, index):
        index.delete_document(0)
        assert index.search_phrase("cat chased").doc_ids == []
        index.sweep_deletions()
        assert index.search_phrase("dog chased").doc_ids == [1]

    def test_nonpositional_index_rejects_positional_queries(self):
        plain = TextDocumentIndex(
            IndexConfig(
                nbuckets=4,
                bucket_size=64,
                block_postings=16,
                ndisks=2,
                nblocks_override=50_000,
                store_contents=True,
            )
        )
        plain.add_document("hello world")
        with pytest.raises(RuntimeError):
            plain.search_phrase("hello world")

    def test_checkpoint_preserves_positions(self, index):
        from repro.core import checkpoint

        restored_core = checkpoint.roundtrip(index.index)
        restored = TextDocumentIndex.__new__(TextDocumentIndex)
        restored.index = restored_core
        restored.vocabulary = index.vocabulary
        restored.tokenizer_config = index.tokenizer_config
        restored.region_rules = index.region_rules
        from repro.core.deletion import DeletionManager

        restored.deletions = DeletionManager(restored_core)
        restored._last_read_ops = 0
        assert restored.search_phrase("cat chased").doc_ids == [0]
        assert restored.search_region("mouse", Region.TITLE).doc_ids == [2]
