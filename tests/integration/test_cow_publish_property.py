"""Property-based differential test for incremental COW publication.

For arbitrary sequences of batches, deletions, and crashes injected at
the ``checkpoint.cow-publish`` barrier, a snapshot assembled by
:func:`checkpoint.clone_incremental` (chained across generations, each
sharing structure with the previous snapshot) must answer every query
identically — including ``read_ops`` — to the full-clone oracle taken
at the same instant.  Earlier generations must keep answering what they
answered when published: structural sharing may never alias mutable
writer state into a snapshot.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.checkpoint import CheckpointError
from repro.core.index import IndexConfig
from repro.storage import faults
from repro.storage.faults import FaultPlan, InjectedCrash
from repro.textindex import TextDocumentIndex

# Letters-only names: the tokenizer splits tokens at digit boundaries.
WORDS = ["w" + chr(ord("a") + i) for i in range(15)]

QUERIES = (
    [w for w in WORDS]
    + [
        "wa AND wb",
        "wa OR wc OR we",
        "(wb AND wc) OR wd",
        "NOT wa",
        "wb AND NOT wc",
    ]
)

doc_strategy = st.lists(
    st.integers(min_value=0, max_value=len(WORDS) - 1),
    min_size=1,
    max_size=8,
)

cycle_strategy = st.fixed_dictionaries(
    {
        "docs": st.lists(doc_strategy, min_size=1, max_size=5),
        "delete": st.booleans(),
        "crash": st.booleans(),
    }
)


def make_writer():
    return TextDocumentIndex(
        IndexConfig(
            nbuckets=4,
            bucket_size=32,
            block_postings=4,
            ndisks=2,
            nblocks_override=200_000,
            store_contents=True,
        )
    )


def answers(index):
    return {q: index.search_boolean(q) for q in QUERIES}


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(cycles=st.lists(cycle_strategy, min_size=1, max_size=6))
def test_cow_chain_matches_full_clone_oracle(cycles):
    writer = make_writer()
    prev = writer.clone()
    writer.index.delta.clear()
    history = []  # (snapshot, expected answers) per generation

    for cycle in cycles:
        for doc in cycle["docs"]:
            writer.add_document(" ".join(WORDS[w] for w in doc))
        if cycle["delete"] and writer.ndocs:
            writer.delete_document((writer.ndocs - 1) // 2)
        writer.flush_batch()
        delta = writer.index.delta

        if cycle["crash"]:
            # A crash at the publish barrier must leave nothing half
            # published: the retry below starts from the same delta.
            faults.install(
                FaultPlan(crash_at="checkpoint.cow-publish", crash_at_hit=1)
            )
            try:
                with pytest.raises(InjectedCrash):
                    writer.clone_incremental(prev, delta)
            finally:
                faults.uninstall()

        try:
            snapshot = writer.clone_incremental(prev, delta)
        except CheckpointError:
            snapshot = writer.clone()  # e.g. requires_full
        oracle = writer.clone()

        expected = answers(oracle)
        got = answers(snapshot)
        for q in QUERIES:
            assert got[q].doc_ids == expected[q].doc_ids, q
            assert got[q].read_ops == expected[q].read_ops, q

        history.append((snapshot, expected))
        prev = snapshot
        delta.clear()

    # Older generations are immutable: later flushes and publishes must
    # not have leaked into any previously published snapshot.
    for snapshot, expected in history:
        for q in QUERIES:
            again = snapshot.search_boolean(q)
            assert again.doc_ids == expected[q].doc_ids, q
            assert again.read_ops == expected[q].read_ops, q
