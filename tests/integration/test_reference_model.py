"""Gold-model test: the dual-structure index must answer every query
exactly like a naive in-memory inverted index, under every policy.

This is the strongest correctness check in the suite: whatever the policy
does to the physical layout — splitting lists into extents, copying whole
chunks, updating blocks in place — the logical index contents must be
indistinguishable from a dictionary of sets.
"""

import random

import pytest

from repro.core.index import DualStructureIndex, IndexConfig
from repro.core.policy import Alloc, Limit, Policy, Style
from repro.query.boolean import evaluate

POLICIES = [
    Policy(style=Style.NEW, limit=Limit.ZERO),
    Policy(style=Style.NEW, limit=Limit.Z),
    Policy(style=Style.NEW, limit=Limit.Z, alloc=Alloc.PROPORTIONAL, k=2.0),
    Policy(style=Style.NEW, limit=Limit.Z, alloc=Alloc.BLOCK, k=2),
    Policy(style=Style.NEW, limit=Limit.Z, alloc=Alloc.CONSTANT, k=50),
    Policy(style=Style.FILL, limit=Limit.ZERO, extent_blocks=2),
    Policy(style=Style.FILL, limit=Limit.Z, extent_blocks=2),
    Policy(style=Style.WHOLE, limit=Limit.ZERO),
    Policy(style=Style.WHOLE, limit=Limit.Z, alloc=Alloc.PROPORTIONAL, k=1.2),
]


class ReferenceIndex:
    """The gold model: a dict of sorted posting lists."""

    def __init__(self):
        self.lists: dict[int, list[int]] = {}
        self.ndocs = 0

    def add_document(self, doc_id, words):
        for word in set(words):
            self.lists.setdefault(word, []).append(doc_id)
        self.ndocs += 1

    def fetch(self, word):
        return self.lists.get(word, [])


def build_both(policy, seed, nbatches=8, docs_per_batch=12, vocab=40):
    rng = random.Random(seed)
    index = DualStructureIndex(
        IndexConfig(
            nbuckets=4,
            bucket_size=48,  # tiny buckets force frequent migrations
            block_postings=8,  # tiny blocks force multi-block chunks
            ndisks=2,
            nblocks_override=200_000,
            store_contents=True,
            policy=policy,
        )
    )
    reference = ReferenceIndex()
    doc_id = 0
    for _ in range(nbatches):
        for _ in range(docs_per_batch):
            # Skewed word choice: low ids are hot, mirroring Zipf.
            words = [
                min(int(rng.paretovariate(0.7)), vocab)
                for _ in range(rng.randint(3, 12))
            ]
            index.add_document(words, doc_id=doc_id)
            reference.add_document(doc_id, words)
            doc_id += 1
        index.flush_batch()
    return index, reference


@pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.name)
@pytest.mark.parametrize("seed", [0, 1])
def test_every_word_matches_reference(policy, seed):
    index, reference = build_both(policy, seed)
    words = set(reference.lists) | {9999}
    for word in words:
        postings, _ = index.fetch(word)
        assert postings.doc_ids == reference.fetch(word), (
            f"word {word} diverged under {policy.name}"
        )


@pytest.mark.parametrize("policy", POLICIES[:4], ids=lambda p: p.name)
def test_boolean_queries_match_reference(policy):
    index, reference = build_both(policy, seed=3)
    def fetch_index(w):
        return index.fetch(int(w))[0].doc_ids
    def fetch_ref(w):
        return reference.fetch(int(w))
    for query in ("1 AND 2", "1 OR 17", "(1 AND 2) OR 3", "1 AND NOT 2"):
        got = evaluate(query, fetch_index, index.ndocs)
        want = evaluate(query, fetch_ref, reference.ndocs)
        assert got == want, f"query {query!r} diverged under {policy.name}"


@pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.name)
def test_posting_counts_match_reference(policy):
    index, reference = build_both(policy, seed=7)
    for word, docs in reference.lists.items():
        assert index.posting_count(word) == len(docs)
