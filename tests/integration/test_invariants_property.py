"""Property-based whole-index invariants under random batched workloads.

Invariants checked after every batch, for randomly drawn policies:

1. A word never has both a short and a long list (§2: "a word w never has
   both a short list and a long list associated with it").
2. No bucket exceeds its capacity after overflow resolution.
3. Postings are conserved: ingested == buckets + long lists.
4. Directory chunks never overlap on disk and all lie in allocated space.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.index import DualStructureIndex, IndexConfig
from repro.core.policy import Alloc, Limit, Policy, Style

policies = st.sampled_from(
    [
        Policy(style=Style.NEW, limit=Limit.ZERO),
        Policy(style=Style.NEW, limit=Limit.Z),
        Policy(
            style=Style.NEW, limit=Limit.Z, alloc=Alloc.PROPORTIONAL, k=2.0
        ),
        Policy(style=Style.FILL, limit=Limit.Z, extent_blocks=2),
        Policy(style=Style.WHOLE, limit=Limit.ZERO),
        Policy(
            style=Style.WHOLE, limit=Limit.Z, alloc=Alloc.PROPORTIONAL, k=1.2
        ),
    ]
)

# Batches of (word, count) pairs; small word space forces collisions,
# heavy counts force migrations.
batches_strategy = st.lists(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=12),
            st.integers(min_value=1, max_value=40),
        ),
        min_size=1,
        max_size=8,
    ),
    min_size=1,
    max_size=6,
)


def check_invariants(index, ingested):
    # 1. exclusive structures
    for word in index.directory.words():
        assert not index.buckets.contains(word)
    # 2. bucket capacity
    for bucket in index.buckets.buckets:
        assert bucket.size <= bucket.capacity
    # 3. conservation
    on_disk = index.directory.total_postings + index.buckets.total_postings
    assert on_disk == ingested
    # 4. chunk geometry
    seen = []
    for entry in index.directory.entries():
        for chunk in entry.chunks:
            assert chunk.npostings <= chunk.capacity(
                index.config.block_postings
            )
            for other in seen:
                assert not chunk.block_range().overlaps(other)
            seen.append(chunk.block_range())


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(policy=policies, batches=batches_strategy)
def test_index_invariants_hold_after_every_batch(policy, batches):
    index = DualStructureIndex(
        IndexConfig(
            nbuckets=2,
            bucket_size=32,
            block_postings=8,
            ndisks=2,
            nblocks_override=100_000,
            policy=policy,
        )
    )
    ingested = 0
    for batch in batches:
        merged: dict[int, int] = {}
        for word, count in batch:
            merged[word] = merged.get(word, 0) + count
        index.add_counts(sorted(merged.items()))
        ingested += sum(merged.values())
        index.flush_batch()
        check_invariants(index, ingested)
