"""Cross-validation of the two operating modes.

The paper's pipeline tracks only list *sizes*; the library tracks real
document ids.  Both run through the same bucket and policy code, so for
the same workload they must agree exactly on every structural quantity:
which words have long lists, every list's posting count, the directory
chunk layout, and the I/O operation count.  Any divergence would mean the
evaluated algorithms and the shipped index are not the same algorithms —
the failure mode the shared-payload design exists to prevent.
"""

import pytest

from repro.core.index import DualStructureIndex, IndexConfig
from repro.core.policy import Limit, Policy, Style
from repro.pipeline.compute_buckets import ComputeBucketsProcess
from repro.pipeline.compute_disks import ComputeDisksProcess, DiskStageConfig
from repro.workload.synthetic import SyntheticNews, SyntheticNewsConfig

WORKLOAD = SyntheticNewsConfig(days=12, docs_per_day=40)
NBUCKETS = 16
BUCKET_SIZE = 256
BLOCK_POSTINGS = 16


@pytest.fixture(scope="module", params=[
    Policy(style=Style.NEW, limit=Limit.ZERO),
    Policy(style=Style.NEW, limit=Limit.Z),
    Policy(style=Style.WHOLE, limit=Limit.ZERO),
    Policy(style=Style.FILL, limit=Limit.Z, extent_blocks=2),
], ids=lambda p: p.name)
def both_modes(request):
    policy = request.param
    news = SyntheticNews(WORKLOAD)

    # Size-only pipeline (the paper's evaluation path).
    bucket_stage = ComputeBucketsProcess(NBUCKETS, BUCKET_SIZE)
    bucket_result = bucket_stage.run(news.batches())
    disks = ComputeDisksProcess(
        DiskStageConfig(
            policy=policy,
            block_postings=BLOCK_POSTINGS,
            bucket_flush_blocks=4,
        )
    ).run(bucket_result.trace)

    # Content-mode library (real doc ids through the same algorithms).
    index = DualStructureIndex(
        IndexConfig(
            nbuckets=NBUCKETS,
            bucket_size=BUCKET_SIZE,
            block_postings=BLOCK_POSTINGS,
            ndisks=4,
            nblocks_override=4_194_304,
            store_contents=True,
            policy=policy,
        )
    )
    doc_id = 0
    for day in range(WORKLOAD.days):
        for words in news.day_documents(day):
            index.add_document([int(w) for w in words], doc_id=doc_id)
            doc_id += 1
        index.flush_batch()
    return disks, index, bucket_result


class TestStructuralAgreement:
    def test_same_long_words(self, both_modes):
        disks, index, _ = both_modes
        assert set(disks.manager.directory.words()) == set(
            index.directory.words()
        )

    def test_same_list_sizes(self, both_modes):
        disks, index, _ = both_modes
        for entry in disks.manager.directory.entries():
            assert (
                index.directory.get(entry.word).npostings == entry.npostings
            ), f"word {entry.word} sizes diverge"

    def test_same_chunk_layout_shape(self, both_modes):
        disks, index, _ = both_modes
        for entry in disks.manager.directory.entries():
            content_entry = index.directory.get(entry.word)
            assert content_entry.nchunks == entry.nchunks
            assert [c.nblocks for c in content_entry.chunks] == [
                c.nblocks for c in entry.chunks
            ]

    def test_same_bucket_population(self, both_modes):
        disks, index, bucket_result = both_modes
        assert set(bucket_result.manager.words()) == set(
            index.buckets.words()
        )
        assert (
            bucket_result.manager.total_postings
            == index.buckets.total_postings
        )

    def test_same_long_list_io_ops(self, both_modes):
        disks, index, _ = both_modes
        assert (
            disks.counters.io_ops == index.longlists.counters.io_ops
        )
        assert (
            disks.counters.in_place_updates
            == index.longlists.counters.in_place_updates
        )

    def test_content_lists_hold_real_docs(self, both_modes):
        disks, index, _ = both_modes
        # Spot-check: the hottest word's content list has exactly as many
        # docs as the size-only pipeline counted.
        hottest = max(
            disks.manager.directory.entries(), key=lambda e: e.npostings
        )
        postings, _ = index.fetch(hottest.word)
        assert len(postings.doc_ids) == hottest.npostings
        assert postings.doc_ids == sorted(postings.doc_ids)
