"""Restartability: resuming from a checkpoint mid-run converges to the
same logical index as an uninterrupted run (the paper's §1 claim that an
aborted incremental update can restart from the last flush).
"""

import io
import random

from repro.core import checkpoint
from repro.core.index import DualStructureIndex, IndexConfig
from repro.core.policy import Limit, Policy, Style


def make_index():
    return DualStructureIndex(
        IndexConfig(
            nbuckets=8,
            bucket_size=64,
            block_postings=16,
            ndisks=2,
            nblocks_override=100_000,
            store_contents=True,
            policy=Policy(style=Style.NEW, limit=Limit.Z),
        )
    )


def batch_documents(rng, first_doc, ndocs=10):
    docs = []
    for i in range(ndocs):
        words = [min(int(rng.paretovariate(0.8)), 30) for _ in range(6)]
        docs.append((first_doc + i, words))
    return docs


def test_resume_from_checkpoint_matches_straight_run():
    batches = [batch_documents(random.Random(b), b * 10) for b in range(8)]

    # Uninterrupted run.
    straight = make_index()
    for batch in batches:
        for doc_id, words in batch:
            straight.add_document(words, doc_id=doc_id)
        straight.flush_batch()

    # Interrupted run: checkpoint after batch 4, "crash", restore, replay.
    interrupted = make_index()
    for batch in batches[:4]:
        for doc_id, words in batch:
            interrupted.add_document(words, doc_id=doc_id)
        interrupted.flush_batch()
    buf = io.BytesIO()
    checkpoint.save(interrupted, buf)
    del interrupted  # the crash
    buf.seek(0)
    resumed = checkpoint.load(buf)
    for batch in batches[4:]:
        for doc_id, words in batch:
            resumed.add_document(words, doc_id=doc_id)
        resumed.flush_batch()

    # Logical contents must be identical word by word.
    words = set(straight.directory.words()) | set(straight.buckets.words())
    assert words == set(resumed.directory.words()) | set(
        resumed.buckets.words()
    )
    for word in words:
        assert (
            resumed.fetch(word)[0].doc_ids == straight.fetch(word)[0].doc_ids
        ), f"word {word} diverged after restart"


def test_unflushed_batch_is_lost_on_crash_not_corrupted():
    """Work since the last flush disappears cleanly: the restored index
    serves the pre-crash flush state."""
    idx = make_index()
    idx.add_document([1, 2], doc_id=0)
    idx.flush_batch()
    buf = io.BytesIO()
    checkpoint.save(idx, buf)
    idx.add_document([1, 3], doc_id=1)  # never flushed, never checkpointed

    buf.seek(0)
    restored = checkpoint.load(buf)
    assert restored.fetch(1)[0].doc_ids == [0]
    assert restored.fetch(3)[0].doc_ids == []
