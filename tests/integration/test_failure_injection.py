"""Failure injection: disk exhaustion must not corrupt recoverable state.

The paper assumes reliable hardware but requires that an aborted
incremental update can be restarted from the last flush (§1).  These tests
drive an index into a genuine out-of-space failure mid-batch and verify
that (a) the failure surfaces as DiskFullError rather than silent
corruption, and (b) a checkpoint taken at the previous batch boundary
still restores a fully functional index — the recovery path a deployment
would take.
"""

import io

import pytest

from repro.core import checkpoint
from repro.core.index import DualStructureIndex, IndexConfig
from repro.core.policy import Limit, Policy, Style
from repro.storage.disk import DiskFullError


def tiny_disk_index(nblocks=96):
    """An index on nearly-full disks (tiny override capacity)."""
    return DualStructureIndex(
        IndexConfig(
            nbuckets=2,
            bucket_size=64,
            block_postings=8,
            ndisks=2,
            nblocks_override=nblocks,
            store_contents=True,
            policy=Policy(style=Style.NEW, limit=Limit.ZERO),
        )
    )


def fill_until_failure(index, snapshot_every=1):
    """Feed batches until the disks overflow; returns the last good
    checkpoint and how many batches committed."""
    last_checkpoint = io.BytesIO()
    checkpoint.save(index, last_checkpoint)
    committed = 0
    doc = 0
    for batch in range(1000):
        for _ in range(4):
            index.add_document([1, 2 + doc % 6], doc_id=doc)
            doc += 1
        try:
            index.flush_batch()
        except DiskFullError:
            return last_checkpoint, committed
        committed += 1
        if committed % snapshot_every == 0:
            last_checkpoint = io.BytesIO()
            checkpoint.save(index, last_checkpoint)
    raise AssertionError("disks never filled up")


class TestDiskExhaustion:
    def test_failure_is_loud(self):
        index = tiny_disk_index()
        with pytest.raises(AssertionError):
            # guard: ensure the helper itself works on a roomy disk
            fill_until_failure(tiny_disk_index(nblocks=100_000))
        # and actually fails loudly on the tiny one
        ckpt, committed = fill_until_failure(index)
        assert committed >= 1

    def test_recovery_from_last_checkpoint(self):
        index = tiny_disk_index()
        ckpt, committed = fill_until_failure(index)
        ckpt.seek(0)
        restored = checkpoint.load(ckpt)
        # The restored index serves all committed batches.
        assert restored.stats().batches == committed
        docs, _ = restored.fetch(1)
        assert len(docs.doc_ids) == committed * 4
        # Internal invariants hold after restore.
        for disk in restored.array.disks:
            disk.freelist.check_invariants()
        for word in restored.directory.words():
            assert not restored.buckets.contains(word)

    def test_restored_index_accepts_more_work_after_cleanup(self):
        """After recovery an operator can continue on bigger disks by
        checkpointing state and reloading (capacity is config-bound);
        here we just verify the restored index still flushes batches."""
        index = tiny_disk_index(nblocks=256)
        ckpt, committed = fill_until_failure(index)
        ckpt.seek(0)
        restored = checkpoint.load(ckpt)
        next_doc = restored.ndocs
        restored.add_document([1], doc_id=next_doc)
        restored.flush_batch()  # at least one more batch fits post-restore
        assert restored.stats().batches == committed + 1


class TestAllocatorConsistencyAfterFailure:
    def test_free_list_consistent_after_failed_flush(self):
        """A flush that dies mid-stripe rolls its allocations back."""
        from repro.core.directory import Directory
        from repro.core.flush import FlushManager
        from repro.storage.diskarray import DiskArray, DiskArrayConfig
        from repro.storage.profiles import SEAGATE_SCSI_1994

        array = DiskArray(
            DiskArrayConfig(
                ndisks=2,
                profile=SEAGATE_SCSI_1994,
                nblocks_override=64,
            )
        )
        flusher = FlushManager(array, block_postings=8)
        flusher.flush(16, Directory())
        allocated = array.allocated_blocks
        with pytest.raises(DiskFullError):
            flusher.flush(100_000, Directory())
        assert array.allocated_blocks == allocated
        for disk in array.disks:
            disk.freelist.check_invariants()
