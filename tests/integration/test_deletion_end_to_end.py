"""End-to-end deletion through the text index: filter semantics, sweep
reclamation, and correctness against a reference model with deletes."""

import random

import pytest

from repro.core.index import IndexConfig
from repro.textindex import TextDocumentIndex


@pytest.fixture
def index():
    idx = TextDocumentIndex(
        IndexConfig(
            nbuckets=16,
            bucket_size=128,
            block_postings=16,
            ndisks=2,
            nblocks_override=100_000,
            store_contents=True,
        )
    )
    idx.add_document("the cat sat")  # 0
    idx.add_document("the dog ran")  # 1
    idx.add_document("cat and dog")  # 2
    idx.flush_batch()
    return idx


class TestFilterSemantics:
    def test_deleted_doc_vanishes_from_boolean_answers(self, index):
        index.delete_document(2)
        assert index.search_boolean("cat").doc_ids == [0]
        assert index.search_boolean("cat AND dog").doc_ids == []

    def test_deleted_doc_vanishes_from_not_queries(self, index):
        index.delete_document(0)
        assert index.search_boolean("NOT dog").doc_ids == []

    def test_deleted_doc_vanishes_from_vector_answers(self, index):
        index.delete_document(2)
        hits = index.search_vector({"cat": 1.0, "dog": 1.0}, top_k=5)
        assert 2 not in [h.doc_id for h in hits]

    def test_document_frequency_reflects_deletes(self, index):
        assert index.document_frequency("cat") == 2
        index.delete_document(0)
        assert index.document_frequency("cat") == 1

    def test_sweep_then_filter_dropped(self, index):
        index.delete_document(2)
        stats = index.sweep_deletions()
        assert stats.complete
        assert index.deletions.ndeleted == 0
        assert index.search_boolean("cat").doc_ids == [0]

    def test_incremental_sweep_steps(self, index):
        index.delete_document(1)
        first = index.sweep_deletions(max_lists=1)
        assert first.lists_swept == 1
        while index.deletions.sweeping:
            index.sweep_deletions(max_lists=1)
        assert index.search_boolean("dog").doc_ids == [2]


class TestReferenceModelWithDeletes:
    def test_random_adds_and_deletes_match_reference(self):
        rng = random.Random(11)
        index = TextDocumentIndex(
            IndexConfig(
                nbuckets=4,
                bucket_size=48,
                block_postings=8,
                ndisks=2,
                nblocks_override=200_000,
                store_contents=True,
            )
        )
        # Pure-alphabetic words: the paper's lexer splits letter and
        # digit runs, so "w0" would index as two tokens.
        vocabulary = [f"w{chr(97 + i)}" for i in range(20)]
        reference: dict[str, set[int]] = {w: set() for w in vocabulary}
        live: set[int] = set()
        doc_id = 0
        for _ in range(6):
            for _ in range(10):
                words = rng.sample(vocabulary, rng.randint(2, 6))
                # The hot word "wa" appears in every document.
                words.append("wa")
                index.add_document(" ".join(words))
                for w in set(words):
                    reference[w].add(doc_id)
                live.add(doc_id)
                doc_id += 1
            index.flush_batch()
            # Delete a few random live docs; sometimes sweep.
            for victim in rng.sample(sorted(live), k=min(3, len(live))):
                index.delete_document(victim)
                live.discard(victim)
                for docs in reference.values():
                    docs.discard(victim)
            if rng.random() < 0.5:
                index.sweep_deletions()
        for w in vocabulary:
            got = index.search_boolean(w).doc_ids
            assert got == sorted(reference[w]), f"word {w} diverged"
