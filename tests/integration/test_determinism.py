"""Determinism: the whole pipeline is reproducible bit-for-bit per seed."""

from repro.core.policy import Limit, Policy, Style
from repro.pipeline.experiment import Experiment, ExperimentConfig
from repro.workload.synthetic import SyntheticNewsConfig


def small_config(seed=3):
    return ExperimentConfig(
        workload=SyntheticNewsConfig(days=10, docs_per_day=40, seed=seed),
        nbuckets=32,
        bucket_size=256,
    )


def run_series(config, exercise=False):
    experiment = Experiment(config)
    run = experiment.run_policy(
        Policy(style=Style.NEW, limit=Limit.Z), exercise=exercise
    )
    out = {
        "io": run.disks.series.io_ops,
        "util": run.disks.series.utilization,
        "reads": run.disks.series.avg_reads,
        "inplace": run.disks.series.in_place,
    }
    if exercise:
        out["time"] = run.exercise.result.cumulative_s
    return out


class TestDeterminism:
    def test_identical_configs_identical_results(self):
        assert run_series(small_config()) == run_series(small_config())

    def test_exercise_timings_deterministic(self):
        a = run_series(small_config(), exercise=True)
        b = run_series(small_config(), exercise=True)
        assert a["time"] == b["time"]

    def test_different_seed_different_results(self):
        a = run_series(small_config(seed=3))
        b = run_series(small_config(seed=4))
        assert a != b

    def test_trace_text_roundtrip_preserves_results(self):
        """Serializing the long-list trace to its Figure-5 text format and
        replaying the parsed copy gives identical disk-stage results —
        the paper's stage decoupling is lossless."""
        import io

        from repro.pipeline.compute_buckets import LongListTrace
        from repro.pipeline.compute_disks import (
            ComputeDisksProcess,
            DiskStageConfig,
        )

        experiment = Experiment(small_config())
        original = experiment.bucket_stage().trace
        buf = io.StringIO()
        original.write_text(buf)
        buf.seek(0)
        parsed = LongListTrace.read_text(buf)

        def run(trace):
            return ComputeDisksProcess(
                DiskStageConfig(
                    policy=Policy(style=Style.NEW, limit=Limit.Z),
                    bucket_flush_blocks=16,
                )
            ).run(trace)

        a, b = run(original), run(parsed)
        assert a.series.io_ops == b.series.io_ops
        assert list(a.trace.ops()) == list(b.trace.ops())

    def test_io_trace_text_roundtrip_preserves_timing(self):
        """Same for the Figure-6 I/O trace: exercise(parse(print(t))) ==
        exercise(t)."""
        import io

        from repro.pipeline.exercise import ExerciseConfig, ExerciseDisksProcess
        from repro.storage.iotrace import IOTrace

        experiment = Experiment(small_config())
        run = experiment.run_policy(Policy(style=Style.NEW, limit=Limit.Z))
        buf = io.StringIO()
        run.disks.trace.write_text(buf)
        buf.seek(0)
        parsed = IOTrace.read_text(buf)
        exerciser = ExerciseDisksProcess(ExerciseConfig())
        assert (
            exerciser.run(run.disks.trace).result.cumulative_s
            == exerciser.run(parsed).result.cumulative_s
        )
