"""Tests for single-file TextDocumentIndex snapshots."""

import io

import pytest

from repro.core.index import IndexConfig
from repro.core.positional import Region
from repro.textindex import TextDocumentIndex


def make_index(positional=False):
    index = TextDocumentIndex(
        IndexConfig(
            nbuckets=16,
            bucket_size=128,
            block_postings=16,
            ndisks=2,
            nblocks_override=100_000,
            store_contents=True,
            positional=positional,
        )
    )
    index.add_document("Subject: cats\n\nthe cat sat with the dog")
    index.add_document("a mouse ran past the dog")
    index.flush_batch()
    return index


def roundtrip(index):
    buf = io.BytesIO()
    index.save(buf)
    buf.seek(0)
    return TextDocumentIndex.load(buf)


class TestSnapshot:
    def test_queries_survive(self):
        restored = roundtrip(make_index())
        assert restored.search_boolean("cat AND dog").doc_ids == [0]
        assert restored.search_boolean("mouse OR cat").doc_ids == [0, 1]

    def test_vocabulary_survives(self):
        original = make_index()
        restored = roundtrip(original)
        assert list(restored.vocabulary.words()) == list(
            original.vocabulary.words()
        )

    def test_positional_queries_survive(self):
        restored = roundtrip(make_index(positional=True))
        assert restored.search_phrase("cat sat").doc_ids == [0]
        assert restored.search_region("cats", Region.TITLE).doc_ids == [0]

    def test_deletion_filter_survives(self):
        index = make_index()
        index.delete_document(0)
        restored = roundtrip(index)
        assert restored.deletions.deleted == {0}
        assert restored.search_boolean("cat").doc_ids == []

    def test_ingestion_continues_after_load(self):
        restored = roundtrip(make_index())
        restored.add_document("another cat appears")
        restored.flush_batch()
        assert restored.search_boolean("cat").doc_ids == [0, 2]

    def test_file_path_roundtrip(self, tmp_path):
        index = make_index()
        path = tmp_path / "snapshot.dstx"
        index.save(path)
        restored = TextDocumentIndex.load(path)
        assert restored.ndocs == index.ndocs

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="not a text-index snapshot"):
            TextDocumentIndex.load(io.BytesIO(b"XXXX"))

    def test_save_requires_flushed_batch(self):
        index = make_index()
        index.add_document("unflushed")
        from repro.core.checkpoint import CheckpointError

        with pytest.raises(CheckpointError):
            index.save(io.BytesIO())
