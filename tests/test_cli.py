"""Tests for the command-line interface."""

import argparse

import pytest

from repro.cli import main, parse_policy
from repro.core.policy import Alloc, Limit, Policy, Style


class TestParsePolicy:
    def test_named(self):
        assert parse_policy("recommended-new") == Policy.recommended_new()
        assert parse_policy("update-optimized") == Policy.update_optimized()
        assert parse_policy("adaptive-new") == Policy.adaptive_new()

    def test_two_part_spec(self):
        assert parse_policy("whole:0") == Policy(
            style=Style.WHOLE, limit=Limit.ZERO
        )

    def test_four_part_spec(self):
        assert parse_policy("new:z:proportional:2.0") == Policy(
            style=Style.NEW, limit=Limit.Z, alloc=Alloc.PROPORTIONAL, k=2.0
        )

    def test_bad_specs(self):
        for bad in ("nope", "new", "new:z:prop", "bogus:z", "new:q"):
            with pytest.raises(argparse.ArgumentTypeError):
                parse_policy(bad)


@pytest.fixture
def corpus(tmp_path):
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "a.txt").write_text("the cat sat with the dog")
    (docs / "b.txt").write_text("a mouse ran past the dog")
    (docs / "c.txt").write_text("cats and dogs and mice")
    return docs


class TestIndexAndQuery:
    def test_index_then_boolean_query(self, corpus, tmp_path, capsys):
        out = tmp_path / "idx.ckpt"
        assert main(["index", str(corpus), "-o", str(out)]) == 0
        assert out.exists()  # one self-contained snapshot file
        capsys.readouterr()

        assert main(["query", str(out), "cat AND dog"]) == 0
        output = capsys.readouterr().out
        assert "1 documents" in output
        assert "doc 0" in output

    def test_positional_index_phrase_and_near(self, corpus, tmp_path, capsys):
        out = tmp_path / "idx.ckpt"
        main(["index", str(corpus), "-o", str(out), "--positional"])
        capsys.readouterr()

        assert main(["query", str(out), "cat sat", "--phrase"]) == 0
        assert "1 documents" in capsys.readouterr().out

        assert main(["query", str(out), "mouse dog", "--near", "6"]) == 0
        assert "1 documents" in capsys.readouterr().out

    def test_near_needs_two_words(self, corpus, tmp_path, capsys):
        out = tmp_path / "idx.ckpt"
        main(["index", str(corpus), "-o", str(out), "--positional"])
        assert main(["query", str(out), "one", "--near", "3"]) == 1

    def test_custom_policy(self, corpus, tmp_path, capsys):
        out = tmp_path / "idx.ckpt"
        assert (
            main(
                [
                    "index",
                    str(corpus),
                    "-o",
                    str(out),
                    "--policy",
                    "whole:z:proportional:1.2",
                ]
            )
            == 0
        )
        assert "whole z prop-1.2" in capsys.readouterr().out

    def test_empty_directory_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        out = tmp_path / "idx.ckpt"
        assert main(["index", str(empty), "-o", str(out)]) == 1


class TestExperimentAndStats:
    def test_experiment_summary(self, capsys):
        code = main(
            [
                "experiment",
                "--days",
                "8",
                "--scale",
                "0.3",
                "--policy",
                "new:0",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "policy:" in output and "new 0" in output
        assert "long-list I/O ops" in output

    def test_experiment_with_exercise(self, capsys):
        code = main(
            ["experiment", "--days", "6", "--scale", "0.3", "--exercise"]
        )
        assert code == 0
        assert "simulated build time" in capsys.readouterr().out

    def test_stats(self, capsys):
        assert main(["stats", "--days", "6", "--scale", "0.3"]) == 0
        output = capsys.readouterr().out
        assert "Total Postings" in output
