"""Tests for the facade's streamed search."""

import pytest

from repro.core.index import IndexConfig
from repro.textindex import TextDocumentIndex


@pytest.fixture
def index():
    idx = TextDocumentIndex(
        IndexConfig(
            nbuckets=8,
            bucket_size=64,
            block_postings=8,
            ndisks=2,
            nblocks_override=100_000,
            store_contents=True,
        )
    )
    idx.add_document("red fox runs")
    idx.add_document("red hen sits")
    idx.add_document("blue fox swims")
    idx.flush_batch()
    return idx


class TestSearchStreamed:
    def test_and(self, index):
        assert index.search_streamed("red AND fox").doc_ids == [0]

    def test_or(self, index):
        assert index.search_streamed("red OR blue").doc_ids == [0, 1, 2]

    def test_single_word(self, index):
        assert index.search_streamed("fox").doc_ids == [0, 2]

    def test_matches_materialized_evaluator(self, index):
        for q in ("red AND fox", "red OR blue", "fox AND swims"):
            assert (
                index.search_streamed(q).doc_ids
                == index.search_boolean(q).doc_ids
            ), q

    def test_keywords_case_insensitive(self, index):
        assert index.search_streamed("red and fox").doc_ids == [0]

    def test_unknown_conjunct_short_circuits(self, index):
        answer = index.search_streamed("red AND zebra")
        assert answer.doc_ids == []
        assert answer.read_ops == 0

    def test_unknown_disjunct_ignored(self, index):
        assert index.search_streamed("red OR zebra").doc_ids == [0, 1]

    def test_sees_unflushed_batch(self, index):
        index.add_document("red panda naps")
        assert index.search_streamed("red").doc_ids == [0, 1, 3]
        assert index.search_streamed("red AND panda").doc_ids == [3]

    def test_deletion_filter_applies(self, index):
        index.delete_document(0)
        assert index.search_streamed("red AND fox").doc_ids == []

    def test_mixed_operators_rejected(self, index):
        with pytest.raises(ValueError):
            index.search_streamed("a AND b OR c")
        with pytest.raises(ValueError):
            index.search_streamed("a NOT b")
        with pytest.raises(ValueError):
            index.search_streamed("a AND")

    def test_reports_read_ops(self, index):
        answer = index.search_streamed("red AND fox")
        assert answer.read_ops >= 2  # at least one read per operand
