"""Direct unit tests for the TextDocumentIndex facade."""

import pytest

from repro.core.index import IndexConfig
from repro.core.policy import Policy
from repro.textindex import QueryAnswer, TextDocumentIndex


def make_index(**overrides):
    defaults = dict(
        nbuckets=16,
        bucket_size=128,
        block_postings=16,
        ndisks=2,
        nblocks_override=100_000,
        store_contents=True,
    )
    defaults.update(overrides)
    return TextDocumentIndex(IndexConfig(**defaults))


class TestConstruction:
    def test_content_mode_forced_on(self):
        index = TextDocumentIndex(IndexConfig(store_contents=False))
        assert index.index.config.store_contents

    def test_default_config(self):
        index = TextDocumentIndex()
        assert index.ndocs == 0
        assert index.index.config.policy == Policy.recommended_new()


class TestIngestion:
    def test_doc_ids_sequential(self):
        index = make_index()
        assert index.add_document("alpha") == 0
        assert index.add_document("beta") == 1

    def test_vocabulary_grows_with_text(self):
        index = make_index()
        index.add_document("alpha beta alpha")
        assert len(index.vocabulary) == 2

    def test_case_folding(self):
        index = make_index()
        index.add_document("Alpha ALPHA alpha")
        index.flush_batch()
        assert index.document_frequency("alpha") == 1
        assert len(index.vocabulary) == 1

    def test_flush_returns_batch_result(self):
        index = make_index()
        index.add_document("one two")
        result = index.flush_batch()
        assert result.nwords == 2
        assert result.npostings == 2


class TestQueries:
    @pytest.fixture
    def index(self):
        idx = make_index()
        idx.add_document("red fox")
        idx.add_document("red hen")
        idx.add_document("blue fox")
        idx.flush_batch()
        return idx

    def test_boolean_answer_type(self, index):
        answer = index.search_boolean("red")
        assert isinstance(answer, QueryAnswer)
        assert answer.doc_ids == [0, 1]
        assert answer.read_ops >= 1

    def test_unknown_word_queries(self, index):
        assert index.search_boolean("zebra").doc_ids == []
        assert index.search_vector({"zebra": 1.0}) == []

    def test_query_casing_normalized(self, index):
        assert index.search_boolean("RED").doc_ids == [0, 1]

    def test_vector_orders_by_idf(self, index):
        # "hen" (df=1) outweighs "red" (df=2) for doc 1.
        hits = index.search_vector({"red": 1.0, "hen": 1.0}, top_k=3)
        assert hits[0].doc_id == 1

    def test_more_like_excludes_nothing_but_ranks(self, index):
        hits = index.more_like("red fox red", top_k=3)
        assert hits[0].doc_id == 0

    def test_read_ops_accumulate_per_query(self, index):
        one = index.search_boolean("red").read_ops
        two = index.search_boolean("red AND fox").read_ops
        assert two > one

    def test_document_frequency(self, index):
        assert index.document_frequency("red") == 2
        assert index.document_frequency("zebra") == 0

    def test_stats_passthrough(self, index):
        assert index.stats().batches == 1


class TestMultiBatchConsistency:
    def test_queries_span_batches(self):
        index = make_index()
        index.add_document("cat one")
        index.flush_batch()
        index.add_document("cat two")
        index.flush_batch()
        index.add_document("cat three")  # unflushed
        assert index.search_boolean("cat").doc_ids == [0, 1, 2]

    def test_empty_batch_flush_is_fine(self):
        index = make_index()
        result = index.flush_batch()
        assert result.nwords == 0
        assert index.search_boolean("anything").doc_ids == []
