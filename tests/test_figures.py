"""Tests for the programmatic figure-regeneration API."""

import pytest

from repro import figures
from repro.cli import main
from repro.pipeline.experiment import Experiment, ExperimentConfig
from repro.workload.synthetic import SyntheticNewsConfig


@pytest.fixture(scope="module")
def experiment():
    return Experiment(
        ExperimentConfig(
            workload=SyntheticNewsConfig(days=16, docs_per_day=50),
            nbuckets=32,
            bucket_size=512,
        )
    )


class TestRegistry:
    def test_all_artifacts_registered(self):
        expected = {
            "table1", "fig1", "fig7", "fig8", "fig9", "fig10",
            "table5", "table6", "fig11", "fig12", "fig13", "fig14",
        }
        assert set(figures.REGISTRY) == expected

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown artifact"):
            figures.regenerate("fig99")


class TestArtifacts:
    def test_table1(self, experiment):
        result = figures.table1(experiment)
        assert "Total Postings" in result.rendered
        assert result.data["stats"].total_postings > 0
        assert 0 < result.data["top1_share"] <= 1

    def test_fig7(self, experiment):
        result = figures.figure7(experiment)
        assert result.data["new"][0] == 1.0
        assert len(result.data["new"]) == 16
        assert "Figure 7" in result.rendered

    def test_series_figures_share_policies(self, experiment):
        f8 = figures.figure8(experiment)
        f9 = figures.figure9(experiment)
        f10 = figures.figure10(experiment)
        keys = set(f8.data["series"])
        assert keys == set(f9.data["series"]) == set(f10.data["series"])
        assert "whole 0&z" in keys
        assert all(len(s) == 16 for s in f8.data["series"].values())

    def test_tables_5_and_6(self, experiment):
        t5 = figures.table5(experiment)
        t6 = figures.table6(experiment)
        assert len(t5.data["rows"]) == len(figures.TABLE5_STRATEGIES)
        assert len(t6.data["rows"]) == len(figures.TABLE6_STRATEGIES)
        assert "Allocation" in t5.rendered

    def test_k_sweeps(self, experiment):
        f11 = figures.figure11(experiment)
        f12 = figures.figure12(experiment)
        assert len(f11.data["sweep"]["new"]) == len(figures.FIGURE11_KS)
        assert len(f12.data["sweep"]["whole"]) == len(figures.FIGURE12_KS)

    def test_timing_figures(self, experiment):
        config = figures.default_exercise_config(
            experiment, physical_blocks=100_000
        )
        f13 = figures.figure13(experiment, config)
        f14 = figures.figure14(experiment, config)
        # Roomy disks: everything feasible at this tiny scale.
        assert f13.data["infeasible"] == []
        assert set(f13.data["series"]) == set(f14.data["series"])
        for series in f13.data["series"].values():
            assert series == sorted(series)  # cumulative

    def test_fig1_standalone(self):
        result = figures.figure1(days=6, docs_per_day=60)
        assert result.data["history"]
        assert "bucket 5" in result.rendered


class TestCLIFigure:
    def test_figure_subcommand(self, capsys, monkeypatch):
        # Shrink the default experiment through the scale env var so the
        # CLI path stays fast.
        monkeypatch.setenv("REPRO_SCALE", "0.2")
        assert main(["figure", "table1"]) == 0
        assert "Total Postings" in capsys.readouterr().out
