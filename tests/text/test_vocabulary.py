"""Unit tests for word ⇄ id mapping."""

import pytest

from repro.text.vocabulary import Vocabulary, alphabetical_ids


class TestVocabulary:
    def test_ids_assigned_in_arrival_order(self):
        v = Vocabulary()
        assert v.id_of("cat") == 0
        assert v.id_of("dog") == 1
        assert v.id_of("cat") == 0
        assert len(v) == 2

    def test_lookup_does_not_assign(self):
        v = Vocabulary()
        assert v.lookup("cat") is None
        assert len(v) == 0

    def test_inverse_lookup(self):
        v = Vocabulary()
        v.id_of("cat")
        assert v.word_of(0) == "cat"
        with pytest.raises(IndexError):
            v.word_of(5)

    def test_contains_and_iteration(self):
        v = Vocabulary()
        v.ids_of(["a", "b", "a"])
        assert "a" in v and "c" not in v
        assert list(v.words()) == ["a", "b"]

    def test_save_load_roundtrip(self, tmp_path):
        v = Vocabulary()
        v.ids_of(["gamma", "alpha", "beta"])
        path = tmp_path / "vocab.txt"
        v.save(path)
        loaded = Vocabulary.load(path)
        assert list(loaded.words()) == ["gamma", "alpha", "beta"]
        assert loaded.id_of("alpha") == 1


class TestAlphabeticalIds:
    def test_sorted_numbering_from_one(self):
        ids = alphabetical_ids(["cat", "ant", "dog", "ant"])
        assert ids == {"ant": 1, "cat": 2, "dog": 3}

    def test_zero_reserved_for_marker(self):
        assert 0 not in alphabetical_ids(["x"]).values()
