"""Unit tests for occurrence-level tokenization with regions."""

from repro.core.positional import Region
from repro.text.occurrences import (
    Occurrence,
    RegionRules,
    tokenize_occurrences,
)
from repro.text.tokenizer import TokenizerConfig

ARTICLE = """Path: ignored!host
Subject: cats and dogs
From: alice
Date: ignored

the cat sat
"""


class TestRegions:
    def test_subject_line_is_title(self):
        occs = list(tokenize_occurrences(ARTICLE))
        titles = [o.word for o in occs if o.region is Region.TITLE]
        assert titles == ["cats", "and", "dogs"]

    def test_from_line_is_author(self):
        occs = list(tokenize_occurrences(ARTICLE))
        authors = [o.word for o in occs if o.region is Region.AUTHOR]
        assert authors == ["alice"]

    def test_body_is_default(self):
        occs = list(tokenize_occurrences(ARTICLE))
        body = [o.word for o in occs if o.region is Region.BODY]
        assert body == ["the", "cat", "sat"]

    def test_header_tag_word_stripped(self):
        words = [o.word for o in tokenize_occurrences(ARTICLE)]
        assert "subject" not in words
        assert "from" not in words

    def test_ignored_lines_stay_ignored(self):
        words = [o.word for o in tokenize_occurrences(ARTICLE)]
        assert "ignored" not in words

    def test_custom_rules(self):
        rules = RegionRules(prefixes={"headline:": Region.TITLE})
        occs = list(
            tokenize_occurrences("Headline: big news\nbody", rules=rules)
        )
        assert [o.region for o in occs] == [
            Region.TITLE, Region.TITLE, Region.BODY,
        ]


class TestPositions:
    def test_positions_are_consecutive_over_kept_tokens(self):
        occs = list(tokenize_occurrences(ARTICLE))
        assert [o.position for o in occs] == list(range(len(occs)))

    def test_skipped_lines_do_not_advance_positions(self):
        occs = list(tokenize_occurrences("Date: zap\none two"))
        assert [(o.word, o.position) for o in occs] == [
            ("one", 0), ("two", 1),
        ]

    def test_repeated_word_gets_both_positions(self):
        occs = list(tokenize_occurrences("cat dog cat"))
        cat_positions = [o.position for o in occs if o.word == "cat"]
        assert cat_positions == [0, 2]

    def test_tokenizer_config_respected(self):
        cfg = TokenizerConfig(max_token_length=3)
        occs = list(tokenize_occurrences("cat elephant dog", cfg))
        assert [o.word for o in occs] == ["cat", "dog"]
        assert [o.position for o in occs] == [0, 1]
