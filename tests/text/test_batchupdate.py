"""Unit tests for batch updates and the Figure-5 text format."""

import io

import pytest

from repro.text.batchupdate import (
    BatchUpdate,
    build_batch_update,
    read_updates,
    write_updates,
)


class TestBatchUpdate:
    def test_aggregates(self):
        u = BatchUpdate(day=0, pairs=[(1, 5), (3, 2)], ndocs=4)
        assert u.nwords == 2
        assert u.npostings == 7
        assert list(u) == [(1, 5), (3, 2)]

    def test_pairs_must_be_sorted_strictly(self):
        with pytest.raises(ValueError):
            BatchUpdate(day=0, pairs=[(3, 1), (1, 1)])
        with pytest.raises(ValueError):
            BatchUpdate(day=0, pairs=[(1, 1), (1, 1)])

    def test_word_zero_reserved(self):
        with pytest.raises(ValueError):
            BatchUpdate(day=0, pairs=[(0, 1)])

    def test_counts_positive(self):
        with pytest.raises(ValueError):
            BatchUpdate(day=0, pairs=[(1, 0)])


class TestBuild:
    def test_counts_documents_containing_word(self):
        update = build_batch_update(
            2, [[1, 2, 2], [2, 3], [1]]
        )
        assert update.day == 2
        assert update.pairs == [(1, 2), (2, 2), (3, 1)]
        assert update.ndocs == 3

    def test_duplicates_within_doc_count_once(self):
        update = build_batch_update(0, [[5, 5, 5]])
        assert update.pairs == [(5, 1)]

    def test_empty_batch(self):
        update = build_batch_update(0, [])
        assert update.pairs == [] and update.ndocs == 0


class TestTextFormat:
    def test_roundtrip(self):
        updates = [
            BatchUpdate(day=0, pairs=[(1, 5), (2, 1)]),
            BatchUpdate(day=1, pairs=[(2, 3)]),
            BatchUpdate(day=2, pairs=[]),
        ]
        buf = io.StringIO()
        write_updates(updates, buf)
        buf.seek(0)
        parsed = list(read_updates(buf))
        assert [u.pairs for u in parsed] == [u.pairs for u in updates]
        assert [u.day for u in parsed] == [0, 1, 2]

    def test_figure5_shape(self):
        buf = io.StringIO()
        write_updates([BatchUpdate(day=0, pairs=[(134416, 1034)])], buf)
        assert buf.getvalue() == "134416 1034\n0 0\n"

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            list(read_updates(io.StringIO("1 2 3\n")))

    def test_trailing_batch_without_marker(self):
        parsed = list(read_updates(io.StringIO("5 2\n")))
        assert parsed[0].pairs == [(5, 2)]
