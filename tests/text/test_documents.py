"""Unit tests for document filters (paper §4.1)."""

import pytest

from repro.text.documents import (
    Document,
    FilterConfig,
    admit,
    filter_batch,
    text_fraction,
)

PROSE = "The quick brown fox jumps over the lazy dog. " * 40  # ~1800 chars
BINARY = "M;5</W@\\`#!(0X'9$#\"1%=S*7^[]{}|" * 60


class TestTextFraction:
    def test_prose_is_texty(self):
        assert text_fraction(PROSE) > 0.95

    def test_uuencoded_blob_is_not(self):
        assert text_fraction(BINARY) < 0.5

    def test_empty(self):
        assert text_fraction("") == 0.0


class TestAdmit:
    def test_long_prose_admitted(self):
        assert admit(Document(0, PROSE))

    def test_short_document_rejected(self):
        assert not admit(Document(0, "short"))

    def test_binary_rejected(self):
        assert not admit(Document(0, BINARY))

    def test_threshold_configurable(self):
        cfg = FilterConfig(min_length=3, min_text_fraction=0.0)
        assert admit(Document(0, "tiny"), cfg)

    def test_boundary_length(self):
        cfg = FilterConfig(min_length=10, min_text_fraction=0.0)
        assert admit(Document(0, "a" * 10), cfg)
        assert not admit(Document(0, "a" * 9), cfg)


class TestFilterBatch:
    def test_keeps_only_admissible(self):
        docs = [
            Document(0, PROSE),
            Document(1, "too short"),
            Document(2, BINARY),
            Document(3, PROSE),
        ]
        batch = filter_batch(5, docs)
        assert batch.day == 5
        assert [d.doc_id for d in batch] == [0, 3]
        assert batch.ndocs == 2


class TestValidation:
    def test_negative_doc_id(self):
        with pytest.raises(ValueError):
            Document(-1, "x")

    def test_bad_filter_config(self):
        with pytest.raises(ValueError):
            FilterConfig(min_length=-1)
        with pytest.raises(ValueError):
            FilterConfig(min_text_fraction=1.5)
