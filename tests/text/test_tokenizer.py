"""Unit tests for the §4.2 lexical analyzer."""

import pytest

from repro.text.tokenizer import (
    TokenizerConfig,
    tokenize,
    tokenize_document,
    tokenize_line,
)


class TestTokenizeLine:
    def test_letter_runs(self):
        assert list(tokenize_line("the cat")) == ["the", "cat"]

    def test_digit_runs(self):
        assert list(tokenize_line("call 555 1234")) == ["call", "555", "1234"]

    def test_mixed_run_splits_letters_and_digits(self):
        # "abc123" is a letter run followed by a digit run.
        assert list(tokenize_line("abc123def")) == ["abc", "123", "def"]

    def test_punctuation_ignored(self):
        assert list(tokenize_line("it's a total flop!")) == [
            "it", "s", "a", "total", "flop",
        ]

    def test_lowercasing(self):
        assert list(tokenize_line("The CAT")) == ["the", "cat"]

    def test_lowercase_disabled(self):
        cfg = TokenizerConfig(lowercase=False)
        assert list(tokenize_line("The CAT", cfg)) == ["The", "CAT"]

    def test_non_ascii_letters_ignored(self):
        assert list(tokenize_line("café au lait")) == [
            "caf", "au", "lait",
        ]

    def test_overlong_tokens_dropped(self):
        cfg = TokenizerConfig(max_token_length=5)
        assert list(tokenize_line("short verylongtoken", cfg)) == ["short"]

    def test_empty_line(self):
        assert list(tokenize_line("")) == []


class TestTokenize:
    def test_date_lines_skipped(self):
        text = "Date: Mon Nov 15 1993\nthe cat\n"
        assert list(tokenize(text)) == ["the", "cat"]

    def test_other_headers_skipped(self):
        text = (
            "Path: news!host\n"
            "Message-ID: <1@x>\n"
            "References: <0@x>\n"
            "body words\n"
        )
        assert list(tokenize(text)) == ["body", "words"]

    def test_header_match_is_case_insensitive(self):
        assert list(tokenize("DATE: now\nword\n")) == ["word"]

    def test_header_like_mid_body_lines_also_skipped(self):
        # The lexer is line-oriented; any line starting with an ignored
        # prefix contributes nothing, wherever it appears.
        assert list(tokenize("word\ndate: whenever\nmore\n")) == [
            "word", "more",
        ]

    def test_custom_prefixes(self):
        cfg = TokenizerConfig(ignored_prefixes=("subject:",))
        text = "Subject: hi\nDate: now\nbody\n"
        assert list(tokenize(text, cfg)) == ["date", "now", "body"]


class TestTokenizeDocument:
    def test_dedupes_preserving_first_appearance(self):
        text = "the cat and the dog and the mouse"
        assert tokenize_document(text) == [
            "the", "cat", "and", "dog", "mouse",
        ]

    def test_paper_figure4_fragment(self):
        # Figure 4 of the paper: the fragment's distinct sorted tokens.
        text = (
            "for years. And it was a total flop. in all the years it was "
            "available\nvery few people ever took advantage of it so it "
            "was dropped.\n"
        )
        expected = sorted(
            "a advantage all and available dropped ever few flop for in it "
            "of people so the took total very was years".split()
        )
        assert sorted(tokenize_document(text)) == expected
