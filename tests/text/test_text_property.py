"""Property-based tests for the text substrate."""

from hypothesis import given
from hypothesis import strategies as st

from repro.text.batchupdate import BatchUpdate, build_batch_update
from repro.text.tokenizer import (
    TokenizerConfig,
    tokenize,
    tokenize_document,
    tokenize_line,
)
from repro.text.vocabulary import Vocabulary, alphabetical_ids

texts = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    max_size=300,
)


@given(texts)
def test_tokens_are_lowercase_alnum_runs(text):
    for token in tokenize_line(text):
        assert token == token.lower()
        assert token.isalpha() or token.isdigit()
        assert 1 <= len(token) <= 64


@given(texts)
def test_tokenization_is_idempotent(text):
    """Re-tokenizing the joined token stream reproduces it exactly."""
    first = list(tokenize_line(text))
    second = list(tokenize_line(" ".join(first)))
    assert second == first


@given(texts)
def test_document_dedup_preserves_set_and_first_order(text):
    # Compare against the line-aware tokenizer so header skipping applies
    # identically on both sides.
    tokens = list(tokenize(text))
    deduped = tokenize_document(text)
    assert set(deduped) == set(tokens)
    assert len(deduped) == len(set(deduped))
    # First-appearance order.
    seen = set()
    expected = [t for t in tokens if not (t in seen or seen.add(t))]
    assert deduped == expected


words_strategy = st.lists(
    st.text(
        alphabet=st.characters(min_codepoint=97, max_codepoint=122),
        min_size=1,
        max_size=8,
    ),
    max_size=60,
)


@given(words_strategy)
def test_vocabulary_is_a_bijection(words):
    vocab = Vocabulary()
    ids = vocab.ids_of(words)
    for word, word_id in zip(words, ids):
        assert vocab.word_of(word_id) == word
        assert vocab.id_of(word) == word_id
    assert len(vocab) == len(set(words))


@given(words_strategy)
def test_alphabetical_ids_order_isomorphic(words):
    mapping = alphabetical_ids(words)
    items = sorted(mapping.items(), key=lambda kv: kv[1])
    assert [w for w, _ in items] == sorted(set(words))
    assert all(i >= 1 for i in mapping.values())


doc_sets = st.lists(
    st.sets(st.integers(min_value=1, max_value=40), max_size=10),
    max_size=20,
)


@given(doc_sets)
def test_batch_update_conserves_postings(docs):
    update = build_batch_update(0, docs)
    assert update.npostings == sum(len(d) for d in docs)
    assert update.ndocs == len(docs)
    counts = dict(update.pairs)
    for word in set().union(*docs) if docs else set():
        assert counts[word] == sum(1 for d in docs if word in d)
