"""Unit tests for stop-word filtering (paper §1's full-text remark)."""

from repro.core.index import IndexConfig
from repro.text.tokenizer import (
    DEFAULT_STOP_WORDS,
    TokenizerConfig,
    tokenize_document,
    tokenize_line,
)
from repro.textindex import TextDocumentIndex


class TestStopWords:
    def test_off_by_default(self):
        assert list(tokenize_line("the cat")) == ["the", "cat"]

    def test_full_text_config_drops_stop_words(self):
        cfg = TokenizerConfig.full_text()
        assert list(tokenize_line("the cat and the dog", cfg)) == [
            "cat", "dog",
        ]

    def test_matching_is_case_insensitive(self):
        cfg = TokenizerConfig.full_text()
        assert list(tokenize_line("The AND tHe", cfg)) == []

    def test_custom_stop_list(self):
        cfg = TokenizerConfig(stop_words=frozenset({"cat"}))
        assert list(tokenize_line("the cat sat", cfg)) == ["the", "sat"]

    def test_stopping_respects_no_lowercase_mode(self):
        cfg = TokenizerConfig(lowercase=False, stop_words=frozenset({"the"}))
        # "The" is preserved in case but still matched against the list.
        assert list(tokenize_line("The Cat", cfg)) == ["Cat"]

    def test_default_list_is_plausible(self):
        assert {"the", "and", "of"} <= DEFAULT_STOP_WORDS
        assert "cat" not in DEFAULT_STOP_WORDS

    def test_document_level(self):
        cfg = TokenizerConfig.full_text()
        assert tokenize_document("the cat is on the mat", cfg) == [
            "cat", "mat",
        ]


class TestIndexIntegration:
    def test_stopped_words_never_indexed(self):
        index = TextDocumentIndex(
            IndexConfig(
                nbuckets=8,
                bucket_size=64,
                block_postings=16,
                ndisks=2,
                nblocks_override=50_000,
                store_contents=True,
            ),
            tokenizer_config=TokenizerConfig.full_text(),
        )
        index.add_document("the cat and the dog")
        index.flush_batch()
        assert index.document_frequency("the") == 0
        assert index.document_frequency("cat") == 1
        # Queries for stop words simply find nothing.
        assert index.search_boolean("the").doc_ids == []
        assert index.search_boolean("cat AND dog").doc_ids == [0]
