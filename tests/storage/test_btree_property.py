"""Property-based tests: the B+tree behaves exactly like a dict."""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.storage.btree import BTree, BTreeConfig

keys = st.integers(min_value=0, max_value=10_000)


@given(st.lists(st.tuples(keys, st.integers()), max_size=300))
def test_matches_dict_after_inserts(pairs):
    tree = BTree(BTreeConfig(order=4))
    reference = {}
    for key, value in pairs:
        tree.insert(key, value)
        reference[key] = value
    assert dict(tree.items()) == reference
    assert len(tree) == len(reference)
    tree.check_invariants()


@given(
    st.lists(st.tuples(keys, st.integers()), max_size=200),
    st.lists(keys, max_size=100),
)
def test_matches_dict_after_deletes(pairs, deletions):
    tree = BTree(BTreeConfig(order=4))
    reference = {}
    for key, value in pairs:
        tree.insert(key, value)
        reference[key] = value
    for key in deletions:
        assert tree.delete(key) == (key in reference)
        reference.pop(key, None)
    tree.check_invariants()
    assert dict(tree.items()) == reference


@given(
    st.lists(keys, max_size=200, unique=True),
    keys,
    keys,
)
def test_range_matches_filter(insert_keys, a, b):
    lo, hi = min(a, b), max(a, b)
    tree = BTree(BTreeConfig(order=5))
    for key in insert_keys:
        tree.insert(key, key)
    expected = sorted(k for k in insert_keys if lo <= k <= hi)
    assert [k for k, _ in tree.range(lo, hi)] == expected


class BTreeMachine(RuleBasedStateMachine):
    """Interleaved operations preserve dict equivalence + invariants."""

    def __init__(self):
        super().__init__()
        self.tree = BTree(BTreeConfig(order=3))  # minimal order: max churn
        self.reference: dict[int, int] = {}

    @rule(key=st.integers(min_value=0, max_value=50), value=st.integers())
    def insert(self, key, value):
        self.tree.insert(key, value)
        self.reference[key] = value

    @rule(key=st.integers(min_value=0, max_value=50))
    def delete(self, key):
        assert self.tree.delete(key) == (key in self.reference)
        self.reference.pop(key, None)

    @rule(key=st.integers(min_value=0, max_value=50))
    def lookup(self, key):
        assert self.tree.get(key) == self.reference.get(key)

    @invariant()
    def structure_sound(self):
        self.tree.check_invariants()

    @invariant()
    def contents_match(self):
        assert dict(self.tree.items()) == self.reference


TestBTreeMachine = BTreeMachine.TestCase
TestBTreeMachine.settings = settings(max_examples=30, stateful_step_count=40)
