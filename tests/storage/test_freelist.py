"""Unit tests for the free-space allocators."""

import pytest

from repro.storage.freelist import (
    BestFitFreeList,
    BuddyFreeList,
    FirstFitFreeList,
    FreeListError,
    make_freelist,
)


class TestFirstFit:
    def test_fresh_disk_is_fully_free(self):
        fl = FirstFitFreeList(100)
        assert fl.free_blocks == 100
        assert fl.allocated_blocks == 0
        assert fl.largest_free_run == 100

    def test_allocates_from_front(self):
        fl = FirstFitFreeList(100)
        assert fl.allocate(10) == 0
        assert fl.allocate(10) == 10
        assert fl.free_blocks == 80

    def test_first_fit_skips_small_holes(self):
        fl = FirstFitFreeList(100)
        a = fl.allocate(10)  # [0,10)
        b = fl.allocate(10)  # [10,20)
        fl.allocate(10)  # [20,30)
        fl.free(a, 10)
        fl.free(b, 10)  # merged hole [0,20)
        # A request of 30 does not fit the hole; goes after 30.
        assert fl.allocate(30) == 30
        # A request of 20 fits the hole exactly.
        assert fl.allocate(20) == 0

    def test_exhaustion_returns_none(self):
        fl = FirstFitFreeList(10)
        assert fl.allocate(10) == 0
        assert fl.allocate(1) is None

    def test_free_merges_neighbours(self):
        fl = FirstFitFreeList(30)
        a = fl.allocate(10)
        b = fl.allocate(10)
        c = fl.allocate(10)
        fl.free(a, 10)
        fl.free(c, 10)
        fl.free(b, 10)
        assert fl.largest_free_run == 30
        assert len(list(fl.intervals())) == 1

    def test_double_free_detected(self):
        fl = FirstFitFreeList(30)
        a = fl.allocate(10)
        fl.free(a, 10)
        with pytest.raises(FreeListError):
            fl.free(a, 10)

    def test_partial_overlap_free_detected(self):
        fl = FirstFitFreeList(30)
        fl.allocate(10)
        fl.free(0, 5)
        with pytest.raises(FreeListError):
            fl.free(4, 4)

    def test_free_outside_disk_detected(self):
        fl = FirstFitFreeList(30)
        with pytest.raises(FreeListError):
            fl.free(25, 10)

    def test_fragmentation_metric(self):
        fl = FirstFitFreeList(40)
        a = fl.allocate(10)
        fl.allocate(10)
        c = fl.allocate(10)
        fl.free(a, 10)
        fl.free(c, 10)
        # Free: [0,10) + [20,40): 30 free, largest run 20.
        assert fl.fragmentation() == pytest.approx(1 - 20 / 30)

    def test_invalid_requests(self):
        fl = FirstFitFreeList(10)
        with pytest.raises(ValueError):
            fl.allocate(0)
        with pytest.raises(ValueError):
            fl.free(0, 0)
        with pytest.raises(ValueError):
            FirstFitFreeList(0)


class TestBestFit:
    def test_prefers_smallest_fitting_hole(self):
        fl = BestFitFreeList(100)
        blocks = [fl.allocate(10) for _ in range(5)]  # [0..50)
        fl.free(blocks[1], 10)  # hole of 10 at 10
        fl.free(blocks[3], 10)  # hole of 10 at 30
        # remaining free: holes at 10, 30 plus tail [50,100).
        assert fl.allocate(5) == 10  # smallest hole wins over tail
        assert fl.allocate(10) == 30  # exact fit

    def test_falls_back_to_larger_hole(self):
        fl = BestFitFreeList(40)
        a = fl.allocate(10)
        fl.allocate(10)
        fl.free(a, 10)
        assert fl.allocate(15) == 20  # tail [20,40) is the only fit


class TestBuddy:
    def test_rounds_to_power_of_two(self):
        fl = BuddyFreeList(64)
        start = fl.allocate(3)  # rounds to 4
        assert start == 0
        assert fl.allocated_blocks == 4

    def test_buddy_coalescing(self):
        fl = BuddyFreeList(16)
        a = fl.allocate(4)
        b = fl.allocate(4)
        fl.free(a, 4)
        fl.free(b, 4)
        assert fl.largest_free_run == 16

    def test_capacity_truncated_to_power_of_two(self):
        fl = BuddyFreeList(100)
        assert fl.capacity == 64

    def test_oversized_request_returns_none(self):
        fl = BuddyFreeList(16)
        assert fl.allocate(32) is None

    def test_free_of_unallocated_detected(self):
        fl = BuddyFreeList(16)
        with pytest.raises(FreeListError):
            fl.free(0, 4)

    def test_free_size_mismatch_detected(self):
        fl = BuddyFreeList(16)
        a = fl.allocate(4)
        with pytest.raises(FreeListError):
            fl.free(a, 8)

    def test_split_and_exhaust(self):
        fl = BuddyFreeList(8)
        starts = {fl.allocate(2) for _ in range(4)}
        assert starts == {0, 2, 4, 6}
        assert fl.allocate(1) is None


class TestFactory:
    def test_known_strategies(self):
        assert isinstance(make_freelist("first-fit", 10), FirstFitFreeList)
        assert isinstance(make_freelist("best-fit", 10), BestFitFreeList)
        assert isinstance(make_freelist("buddy", 16), BuddyFreeList)

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown allocator"):
            make_freelist("next-fit", 10)
