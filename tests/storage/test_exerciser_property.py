"""Property-based tests for the disk exerciser's conservation laws."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.exerciser import DiskExerciser
from repro.storage.iotrace import IOTrace, OpKind, Target, TraceOp
from repro.storage.profiles import SEAGATE_SCSI_1994

PROFILE = SEAGATE_SCSI_1994.with_capacity(4096)

ops_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1),  # disk
        st.integers(min_value=0, max_value=4000),  # start
        st.integers(min_value=1, max_value=32),  # nblocks
        st.booleans(),  # write?
    ),
    max_size=80,
)


def build_trace(raw_ops, batch_every=17):
    trace = IOTrace()
    for i, (disk, start, nblocks, is_write) in enumerate(raw_ops):
        nblocks = min(nblocks, 4096 - start)
        if nblocks <= 0:
            continue
        trace.append(
            TraceOp(
                OpKind.WRITE if is_write else OpKind.READ,
                Target.LONG_LIST,
                disk,
                start,
                nblocks,
                word=1,
                npostings=1,
            )
        )
        if i % batch_every == batch_every - 1:
            trace.end_batch()
    trace.end_batch()
    return trace


@settings(max_examples=60, deadline=None)
@given(ops_strategy)
def test_coalescing_conserves_blocks(raw_ops):
    """Coalescing never changes how many blocks move, only how many
    requests move them."""
    trace = build_trace(raw_ops)
    result = DiskExerciser(PROFILE, 2, buffer_blocks=64).run(trace)
    assert sum(b.blocks_moved for b in result.batch_timings) == (
        trace.count_blocks()
    )
    assert result.total_ops_serviced <= result.total_ops_issued


@settings(max_examples=60, deadline=None)
@given(ops_strategy)
def test_larger_buffer_never_hurts(raw_ops):
    """A bigger coalescing buffer yields no more serviced requests and no
    more elapsed time."""
    trace = build_trace(raw_ops)
    small = DiskExerciser(PROFILE, 2, buffer_blocks=8).run(trace)
    large = DiskExerciser(PROFILE, 2, buffer_blocks=256).run(trace)
    assert large.total_ops_serviced <= small.total_ops_serviced
    assert large.total_s <= small.total_s + 1e-9


@settings(max_examples=60, deadline=None)
@given(ops_strategy)
def test_batch_time_dominated_by_busiest_disk(raw_ops):
    trace = build_trace(raw_ops)
    result = DiskExerciser(PROFILE, 2).run(trace)
    for timing in result.batch_timings:
        assert timing.elapsed_s == max(timing.per_disk_s, default=0.0)
        assert timing.elapsed_s <= sum(timing.per_disk_s) + 1e-9


@settings(max_examples=40, deadline=None)
@given(ops_strategy)
def test_determinism(raw_ops):
    trace = build_trace(raw_ops)
    a = DiskExerciser(PROFILE, 2).run(trace)
    b = DiskExerciser(PROFILE, 2).run(trace)
    assert a.cumulative_s == b.cumulative_s
