"""Unit tests for block-level primitives."""

import pytest

from repro.storage.block import BlockRange, Chunk, blocks_for_postings


class TestBlocksForPostings:
    def test_zero_postings_still_one_block(self):
        assert blocks_for_postings(0, 256) == 1

    def test_exact_fit(self):
        assert blocks_for_postings(256, 256) == 1
        assert blocks_for_postings(512, 256) == 2

    def test_rounds_up(self):
        assert blocks_for_postings(1, 256) == 1
        assert blocks_for_postings(257, 256) == 2
        assert blocks_for_postings(511, 256) == 2

    def test_rejects_negative_postings(self):
        with pytest.raises(ValueError):
            blocks_for_postings(-1, 256)

    def test_rejects_nonpositive_block_size(self):
        with pytest.raises(ValueError):
            blocks_for_postings(10, 0)


class TestBlockRange:
    def test_end(self):
        assert BlockRange(0, 10, 5).end == 15

    def test_adjacency(self):
        a = BlockRange(0, 10, 5)
        assert a.adjacent_to(BlockRange(0, 15, 3))
        assert not a.adjacent_to(BlockRange(0, 16, 3))
        assert not a.adjacent_to(BlockRange(1, 15, 3))  # different disk

    def test_overlap(self):
        a = BlockRange(0, 10, 5)
        assert a.overlaps(BlockRange(0, 14, 1))
        assert a.overlaps(BlockRange(0, 8, 3))
        assert not a.overlaps(BlockRange(0, 15, 2))
        assert not a.overlaps(BlockRange(2, 10, 5))

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockRange(0, 0, 0)
        with pytest.raises(ValueError):
            BlockRange(-1, 0, 1)
        with pytest.raises(ValueError):
            BlockRange(0, -1, 1)


class TestChunk:
    def test_capacity_and_slack(self):
        chunk = Chunk(disk=0, start=0, nblocks=4, npostings=100)
        assert chunk.capacity(64) == 256
        assert chunk.slack(64) == 156

    def test_full_chunk_has_zero_slack(self):
        chunk = Chunk(disk=0, start=0, nblocks=2, npostings=128)
        assert chunk.slack(64) == 0

    def test_last_block(self):
        chunk = Chunk(disk=1, start=10, nblocks=4)
        assert chunk.last_block() == BlockRange(1, 13, 1)

    def test_blocks_touched_by_append_within_partial_block(self):
        # 10 postings in a 64-posting block: an append of 20 touches only
        # the first block.
        chunk = Chunk(disk=0, start=8, nblocks=4, npostings=10)
        touched = chunk.blocks_touched_by_append(20, 64)
        assert touched == BlockRange(0, 8, 1)

    def test_blocks_touched_spanning_blocks(self):
        # 60 postings; appending 60 fills block 0 and spills into block 1
        # (postings 60..119 live in blocks 0 and 1).
        chunk = Chunk(disk=0, start=8, nblocks=4, npostings=60)
        touched = chunk.blocks_touched_by_append(60, 64)
        assert touched == BlockRange(0, 8, 2)

    def test_blocks_touched_spanning_three_blocks(self):
        # Postings 60..129 live in blocks 0, 1 and 2.
        chunk = Chunk(disk=0, start=8, nblocks=4, npostings=60)
        touched = chunk.blocks_touched_by_append(70, 64)
        assert touched == BlockRange(0, 8, 3)

    def test_blocks_touched_starts_at_fresh_block_when_tail_full(self):
        chunk = Chunk(disk=0, start=8, nblocks=4, npostings=64)
        touched = chunk.blocks_touched_by_append(5, 64)
        assert touched == BlockRange(0, 9, 1)

    def test_append_beyond_slack_rejected(self):
        chunk = Chunk(disk=0, start=0, nblocks=1, npostings=60)
        with pytest.raises(ValueError):
            chunk.blocks_touched_by_append(10, 64)

    def test_append_of_zero_rejected(self):
        chunk = Chunk(disk=0, start=0, nblocks=1, npostings=0)
        with pytest.raises(ValueError):
            chunk.blocks_touched_by_append(0, 64)
