"""Unit tests for disk performance profiles."""

import pytest

from repro.storage.profiles import (
    FAST_SCSI_1996,
    MODERN_HDD,
    OPTICAL_1994,
    PROFILES,
    SEAGATE_SCSI_1994,
    DiskProfile,
)


class TestSeekModel:
    def test_zero_distance_is_free(self):
        assert SEAGATE_SCSI_1994.seek_s(0) == 0.0

    def test_seek_is_monotonic(self):
        p = SEAGATE_SCSI_1994
        distances = [1, 10, 1000, 100_000, p.nblocks]
        times = [p.seek_s(d) for d in distances]
        assert times == sorted(times)

    def test_short_seek_near_track_to_track(self):
        p = SEAGATE_SCSI_1994
        assert p.seek_s(1) == pytest.approx(p.track_to_track_ms / 1000, rel=0.1)

    def test_third_stroke_is_average_seek(self):
        p = SEAGATE_SCSI_1994
        assert p.seek_s(p.nblocks // 3) == pytest.approx(
            p.avg_seek_ms / 1000, rel=0.01
        )

    def test_capped_at_max_seek(self):
        p = SEAGATE_SCSI_1994
        assert p.seek_s(p.nblocks * 10) == p.max_seek_ms / 1000

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            SEAGATE_SCSI_1994.seek_s(-1)


class TestTransfer:
    def test_block_transfer_time(self):
        p = SEAGATE_SCSI_1994
        assert p.block_transfer_s == pytest.approx(4096 / 3_000_000)

    def test_transfer_scales_with_blocks(self):
        p = SEAGATE_SCSI_1994
        assert p.transfer_s(10, False) == pytest.approx(
            10 * p.block_transfer_s
        )

    def test_write_penalty(self):
        p = OPTICAL_1994
        assert p.transfer_s(4, True) == pytest.approx(
            2.0 * p.transfer_s(4, False)
        )

    def test_rotational_latency(self):
        assert SEAGATE_SCSI_1994.rotational_latency_s == pytest.approx(
            0.5 * 60 / 5400
        )


class TestScaling:
    def test_scaled_profile_is_faster(self):
        fast = SEAGATE_SCSI_1994.scaled(2.0)
        assert fast.avg_seek_ms == SEAGATE_SCSI_1994.avg_seek_ms / 2
        assert fast.transfer_mb_s == SEAGATE_SCSI_1994.transfer_mb_s * 2
        assert fast.rpm == SEAGATE_SCSI_1994.rpm * 2

    def test_fast_scsi_is_the_2x_profile(self):
        assert FAST_SCSI_1996.avg_seek_ms == pytest.approx(
            SEAGATE_SCSI_1994.avg_seek_ms / 2
        )

    def test_with_capacity(self):
        small = SEAGATE_SCSI_1994.with_capacity(1000)
        assert small.nblocks == 1000
        assert small.avg_seek_ms == SEAGATE_SCSI_1994.avg_seek_ms

    def test_invalid_speedup(self):
        with pytest.raises(ValueError):
            SEAGATE_SCSI_1994.scaled(0)


class TestRegistryAndValidation:
    def test_registry_contains_all(self):
        assert set(PROFILES) == {
            "seagate-scsi-1994",
            "fast-scsi-1996",
            "modern-hdd",
            "optical-1994",
        }

    def test_optical_is_much_slower_at_seeking(self):
        assert OPTICAL_1994.avg_seek_ms > 5 * SEAGATE_SCSI_1994.avg_seek_ms

    def test_modern_is_much_faster_at_transfer(self):
        assert MODERN_HDD.transfer_mb_s > 10 * SEAGATE_SCSI_1994.transfer_mb_s

    def test_seek_ordering_validated(self):
        with pytest.raises(ValueError):
            DiskProfile(
                name="bad",
                nblocks=100,
                block_size=4096,
                track_to_track_ms=5.0,
                avg_seek_ms=2.0,
                max_seek_ms=10.0,
                rpm=5400,
                transfer_mb_s=3.0,
            )
