"""Unit tests for the fault-injection substrate itself.

The crash-recovery sweep (``tests/core/test_crash_recovery.py``) trusts
this machinery; these tests pin down its contract: deterministic Nth-op
crashes, torn writes that persist only a prefix, bounded transient
failures the exerciser retries through, and a crash-point registry that
is idempotent and strict.
"""

import pytest

from repro.storage import faults
from repro.storage.diskarray import DiskArrayConfig
from repro.storage.exerciser import DiskExerciser
from repro.storage.faults import (
    FaultPlan,
    FaultyDisk,
    FaultyDiskArray,
    InjectedCrash,
    TransientIOError,
)
from repro.storage.iotrace import IOTrace, OpKind, Target, TraceOp
from repro.storage.profiles import SEAGATE_SCSI_1994


@pytest.fixture(autouse=True)
def no_leaked_plan():
    yield
    faults.uninstall()


def make_disk(plan, store_contents=True):
    return FaultyDisk(
        SEAGATE_SCSI_1994, store_contents=store_contents, plan=plan
    )


class TestNthOpCrashes:
    def test_crash_on_nth_write(self):
        plan = FaultPlan(crash_on_write=3)
        disk = make_disk(plan)
        disk.allocate(4)
        disk.write_blocks(0, [b"a"])
        disk.write_blocks(1, [b"b"])
        with pytest.raises(InjectedCrash):
            disk.write_blocks(2, [b"c"])
        assert plan.fired == "write #3"
        assert plan.writes == 3

    def test_crash_on_nth_read(self):
        plan = FaultPlan(crash_on_read=2)
        disk = make_disk(plan)
        disk.allocate(4)
        disk.write_blocks(0, [b"a", b"b"])
        disk.read_blocks(0, 1)
        with pytest.raises(InjectedCrash):
            disk.read_blocks(1, 1)

    def test_crash_on_nth_alloc_and_free(self):
        plan = FaultPlan(crash_on_alloc=2)
        disk = make_disk(plan)
        disk.allocate(4)
        with pytest.raises(InjectedCrash):
            disk.allocate(4)

        plan = FaultPlan(crash_on_free=1)
        disk = make_disk(plan)
        start = disk.allocate(4)
        with pytest.raises(InjectedCrash):
            disk.free(start, 4)

    def test_no_triggers_behaves_identically(self):
        plan = FaultPlan()
        disk = make_disk(plan)
        start = disk.allocate(8)
        disk.write_blocks(start, [b"x"] * 8)
        assert disk.read_blocks(start, 8) == [b"x"] * 8
        assert (plan.reads, plan.writes, plan.allocs) == (1, 1, 1)


class TestTornWrites:
    def test_torn_write_persists_only_a_prefix(self):
        payloads = [bytes([i]) for i in range(6)]
        plan = FaultPlan(seed=5, crash_on_write=2, torn_writes=True)
        disk = make_disk(plan)
        disk.allocate(12)
        disk.write_blocks(0, [b"ok"] * 2)
        with pytest.raises(InjectedCrash):
            disk.write_blocks(4, payloads)
        persisted = [b for b in range(4, 10) if b in disk._blocks]
        # Whatever reached the platter is a contiguous prefix.
        assert persisted == list(range(4, 4 + len(persisted)))
        assert len(persisted) < len(payloads)
        for i, block in enumerate(persisted):
            assert disk._blocks[block] == payloads[i]

    def test_untorn_crash_persists_nothing(self):
        plan = FaultPlan(crash_on_write=1, torn_writes=False)
        disk = make_disk(plan)
        disk.allocate(4)
        with pytest.raises(InjectedCrash):
            disk.write_blocks(0, [b"a", b"b"])
        assert 0 not in disk._blocks and 1 not in disk._blocks

    def test_torn_prefix_is_deterministic_per_seed(self):
        a = [FaultPlan(seed=9, torn_writes=True).torn_prefix(10)
             for _ in range(1)][0]
        b = FaultPlan(seed=9, torn_writes=True).torn_prefix(10)
        assert a == b


class TestTransients:
    def test_transient_failures_are_capped_per_op(self):
        plan = FaultPlan(transient_rate=1.0, max_transient_per_op=2)
        disk = make_disk(plan, store_contents=False)
        # The same op (stable key) fails twice, then succeeds.
        with pytest.raises(TransientIOError):
            disk.service(0, 1, False)
        with pytest.raises(TransientIOError):
            disk.service(0, 1, False)
        assert disk.service(0, 1, False) > 0.0
        assert plan.transients_injected == 2

    def test_exerciser_retries_through_transients(self):
        plan = FaultPlan(seed=3, transient_rate=0.4)
        exerciser = DiskExerciser(
            SEAGATE_SCSI_1994, ndisks=2, fault_plan=plan, max_retries=4
        )
        trace = IOTrace()
        for i in range(40):
            trace.append(
                TraceOp(
                    OpKind.WRITE if i % 2 else OpKind.READ,
                    Target.LONG_LIST,
                    disk=i % 2,
                    start=i * 7,
                    nblocks=1,
                )
            )
        trace.end_batch()
        result = exerciser.run(trace)
        assert result.total_retries == plan.transients_injected > 0
        # Backoff time is charged to the stream clock.
        assert result.total_s > 0.0

    def test_exerciser_exhausts_retries(self):
        # More consecutive failures per op than the retry budget.
        plan = FaultPlan(transient_rate=1.0, max_transient_per_op=3)
        exerciser = DiskExerciser(
            SEAGATE_SCSI_1994, ndisks=1, fault_plan=plan, max_retries=1
        )
        trace = IOTrace()
        trace.append(
            TraceOp(OpKind.READ, Target.LONG_LIST, disk=0, start=0, nblocks=1)
        )
        trace.end_batch()
        with pytest.raises(TransientIOError):
            exerciser.run(trace)


class TestCrashPoints:
    def test_registry_is_idempotent_but_strict(self):
        name = faults.register_crash_point("test.point-x", "a test point")
        assert name == "test.point-x"
        try:
            faults.register_crash_point("test.point-x", "a test point")
            with pytest.raises(ValueError):
                faults.register_crash_point("test.point-x", "different")
        finally:
            del faults.CRASH_POINTS["test.point-x"]

    def test_unknown_crash_at_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(crash_at="no.such.point")

    def test_crash_point_noop_without_plan(self):
        faults.uninstall()
        faults.crash_point("flush.begin")  # must not raise

    def test_injected_context_manager(self):
        point = faults.registered_crash_points()[0]
        with faults.injected(FaultPlan(crash_at=point)) as plan:
            with pytest.raises(InjectedCrash):
                faults.crash_point(point)
            assert plan.fired is not None
        # Uninstalled on exit.
        faults.crash_point(point)

    def test_crash_at_hit_counts_arrivals(self):
        point = faults.registered_crash_points()[0]
        plan = FaultPlan(crash_at=point, crash_at_hit=3)
        with faults.injected(plan):
            faults.crash_point(point)
            faults.crash_point(point)
            with pytest.raises(InjectedCrash):
                faults.crash_point(point)
        assert plan.point_hits[point] == 3

    def test_transient_rate_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(transient_rate=1.5)


class TestFaultyDiskArray:
    def test_member_disks_share_the_plan(self):
        plan = FaultPlan(crash_on_alloc=3)
        array = FaultyDiskArray(
            DiskArrayConfig(ndisks=2, nblocks_override=1024), plan
        )
        assert all(isinstance(d, FaultyDisk) for d in array.disks)
        array.disks[0].allocate(2)
        array.disks[1].allocate(2)
        with pytest.raises(InjectedCrash):
            array.disks[0].allocate(2)
