"""Property-based tests: allocator invariants under random workloads."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.storage.freelist import (
    BestFitFreeList,
    BuddyFreeList,
    FirstFitFreeList,
)

DISK_BLOCKS = 256


class _FitAllocatorMachine(RuleBasedStateMachine):
    """Random allocate/free sequences preserve the interval invariants and
    never hand out overlapping space."""

    freelist_cls = FirstFitFreeList

    def __init__(self):
        super().__init__()
        self.fl = self.freelist_cls(DISK_BLOCKS)
        self.live: list[tuple[int, int]] = []

    @rule(n=st.integers(min_value=1, max_value=40))
    def allocate(self, n):
        start = self.fl.allocate(n)
        if start is not None:
            for s, length in self.live:
                assert not (start < s + length and s < start + n), (
                    "allocator handed out overlapping space"
                )
            self.live.append((start, n))

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def free_one(self, data):
        idx = data.draw(st.integers(min_value=0, max_value=len(self.live) - 1))
        start, n = self.live.pop(idx)
        self.fl.free(start, n)

    @invariant()
    def intervals_consistent(self):
        self.fl.check_invariants()

    @invariant()
    def accounting_balances(self):
        allocated = sum(n for _, n in self.live)
        assert self.fl.free_blocks == DISK_BLOCKS - allocated


class TestFirstFitMachine(_FitAllocatorMachine.TestCase):
    pass


class _BestFitMachine(_FitAllocatorMachine):
    freelist_cls = BestFitFreeList


class TestBestFitMachine(_BestFitMachine.TestCase):
    pass


@given(
    ops=st.lists(
        st.integers(min_value=1, max_value=16), min_size=1, max_size=60
    )
)
def test_allocate_free_roundtrip_restores_full_disk(ops):
    """Allocating any sequence then freeing everything restores one run."""
    fl = FirstFitFreeList(1024)
    live = []
    for n in ops:
        start = fl.allocate(n)
        if start is not None:
            live.append((start, n))
    for start, n in reversed(live):
        fl.free(start, n)
    assert fl.free_blocks == 1024
    assert fl.largest_free_run == 1024


@given(
    ops=st.lists(
        st.integers(min_value=1, max_value=16), min_size=1, max_size=40
    )
)
def test_buddy_roundtrip_restores_capacity(ops):
    fl = BuddyFreeList(256)
    live = []
    for n in ops:
        start = fl.allocate(n)
        if start is not None:
            live.append((start, n))
    for start, n in live:
        fl.free(start, n)
    assert fl.free_blocks == fl.capacity
    assert fl.largest_free_run == fl.capacity


@given(
    ops=st.lists(
        st.integers(min_value=1, max_value=32), min_size=1, max_size=60
    )
)
def test_buddy_never_overlaps(ops):
    fl = BuddyFreeList(256)
    live = []
    for n in ops:
        start = fl.allocate(n)
        if start is None:
            continue
        size = 1 << max(0, (n - 1).bit_length())
        for s, sz in live:
            assert not (start < s + sz and s < start + size)
        live.append((start, size))
        fl.check_invariants()
