"""Unit tests for the multi-disk array and round-robin placement."""

import pytest

from repro.storage.diskarray import DiskArray, DiskArrayConfig
from repro.storage.disk import DiskFullError
from repro.storage.profiles import SEAGATE_SCSI_1994


def make_array(ndisks=4, nblocks=1000, **kw):
    return DiskArray(
        DiskArrayConfig(
            ndisks=ndisks,
            profile=SEAGATE_SCSI_1994,
            nblocks_override=nblocks,
            **kw,
        )
    )


class TestRoundRobin:
    def test_chunks_rotate_across_disks(self):
        array = make_array()
        disks = [array.allocate_chunk(10).disk for _ in range(8)]
        assert disks == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_paper_rule_i_plus_one_mod_n(self):
        array = make_array(ndisks=3)
        assert [array.next_disk() for _ in range(5)] == [0, 1, 2, 0, 1]

    def test_full_disk_is_probed_past(self):
        array = make_array(ndisks=2, nblocks=100)
        # Fill disk 0 completely out of rotation.
        assert array.disks[0].allocate(100) == 0
        chunk = array.allocate_chunk(50)  # round-robin points at 0; falls to 1
        assert chunk.disk == 1

    def test_all_disks_full_raises(self):
        array = make_array(ndisks=2, nblocks=10)
        array.allocate_chunk(10)
        array.allocate_chunk(10)
        with pytest.raises(DiskFullError):
            array.allocate_chunk(1)


class TestAllocation:
    def test_allocate_on_specific_disk(self):
        array = make_array()
        chunk = array.allocate_on(2, 10)
        assert chunk.disk == 2 and chunk.start == 0

    def test_allocate_on_full_disk_returns_none(self):
        array = make_array(ndisks=2, nblocks=10)
        array.allocate_on(0, 10)
        assert array.allocate_on(0, 1) is None

    def test_free_chunk_returns_space(self):
        array = make_array()
        chunk = array.allocate_chunk(10)
        assert array.allocated_blocks == 10
        array.free_chunk(chunk)
        assert array.allocated_blocks == 0

    def test_chunk_starts_empty(self):
        array = make_array()
        assert array.allocate_chunk(5).npostings == 0


class TestStats:
    def test_utilization(self):
        array = make_array(ndisks=2, nblocks=100)
        array.allocate_chunk(50)
        assert array.utilization() == pytest.approx(0.25)

    def test_per_disk_allocated(self):
        array = make_array(ndisks=3, nblocks=100)
        array.allocate_chunk(10)
        array.allocate_chunk(20)
        assert array.per_disk_allocated() == [10, 20, 0]

    def test_capacity_override(self):
        array = make_array(ndisks=2, nblocks=123)
        assert array.total_blocks == 246


class TestConfigValidation:
    def test_bad_ndisks(self):
        with pytest.raises(ValueError):
            DiskArrayConfig(ndisks=0)

    def test_bad_override(self):
        with pytest.raises(ValueError):
            DiskArrayConfig(ndisks=1, nblocks_override=0)
