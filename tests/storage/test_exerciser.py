"""Unit tests for the disk exerciser: coalescing, parallelism, feasibility."""

import pytest

from repro.storage.disk import DiskFullError
from repro.storage.exerciser import DiskExerciser
from repro.storage.iotrace import IOTrace, OpKind, Target, TraceOp
from repro.storage.profiles import SEAGATE_SCSI_1994

PROFILE = SEAGATE_SCSI_1994.with_capacity(10_000)


def w(disk, start, nblocks, kind=OpKind.WRITE):
    return TraceOp(kind, Target.LONG_LIST, disk, start, nblocks, word=1,
                   npostings=1)


def run(ops, ndisks=2, buffer_blocks=256):
    trace = IOTrace()
    for op in ops:
        trace.append(op)
    trace.end_batch()
    return DiskExerciser(PROFILE, ndisks, buffer_blocks).run(trace)


class TestCoalescing:
    def test_adjacent_writes_coalesce(self):
        result = run([w(0, 0, 4), w(0, 4, 4), w(0, 8, 4)])
        timing = result.batch_timings[0]
        assert timing.ops_issued == 3
        assert timing.ops_after_coalescing == 1
        assert timing.blocks_moved == 12

    def test_noncontiguous_do_not_coalesce(self):
        result = run([w(0, 0, 4), w(0, 100, 4)])
        assert result.batch_timings[0].ops_after_coalescing == 2

    def test_direction_change_breaks_coalescing(self):
        result = run([w(0, 0, 4), w(0, 4, 4, kind=OpKind.READ)])
        assert result.batch_timings[0].ops_after_coalescing == 2

    def test_buffer_bound_limits_coalescing(self):
        # 4 adjacent 4-block writes with an 8-block buffer → two requests.
        result = run(
            [w(0, i * 4, 4) for i in range(4)], buffer_blocks=8
        )
        assert result.batch_timings[0].ops_after_coalescing == 2

    def test_no_reordering_across_interleaved_holes(self):
        # [0,4) then [8,12) then [4,8): contiguity in trace order only —
        # the middle op breaks the run even though addresses would merge.
        result = run([w(0, 0, 4), w(0, 8, 4), w(0, 4, 4)])
        assert result.batch_timings[0].ops_after_coalescing == 3

    def test_coalescing_across_disks_is_independent(self):
        result = run([w(0, 0, 4), w(1, 0, 4), w(0, 4, 4), w(1, 4, 4)])
        # Per-disk streams each coalesce into one request.
        assert result.batch_timings[0].ops_after_coalescing == 2


class TestParallelism:
    def test_batch_time_is_max_of_disk_streams(self):
        result = run([w(0, 0, 100), w(1, 0, 100)])
        timing = result.batch_timings[0]
        assert timing.elapsed_s == pytest.approx(max(timing.per_disk_s))
        assert timing.per_disk_s[0] > 0 and timing.per_disk_s[1] > 0

    def test_spreading_work_across_disks_is_faster(self):
        one_disk = run([w(0, i * 300, 4) for i in range(8)], ndisks=4)
        four_disks = run(
            [w(i % 4, (i // 4) * 300, 4) for i in range(8)], ndisks=4
        )
        assert four_disks.total_s < one_disk.total_s


class TestBatches:
    def test_cumulative_and_per_update_series(self):
        trace = IOTrace()
        trace.append(w(0, 0, 4))
        trace.end_batch()
        trace.append(w(0, 500, 4))
        trace.end_batch()
        result = DiskExerciser(PROFILE, 1).run(trace)
        per = result.per_update_s
        cum = result.cumulative_s
        assert len(per) == 2
        assert cum[0] == pytest.approx(per[0])
        assert cum[1] == pytest.approx(per[0] + per[1])
        assert result.total_s == pytest.approx(cum[-1])

    def test_sequential_stream_is_much_faster_than_scattered(self):
        n = 50
        sequential = run([w(0, i * 4, 4) for i in range(n)], ndisks=1)
        scattered = run(
            [w(0, (i * 997) % 9000, 4) for i in range(n)], ndisks=1
        )
        assert scattered.total_s > 3 * sequential.total_s


class TestFeasibility:
    def test_address_beyond_capacity_raises(self):
        with pytest.raises(DiskFullError):
            run([w(0, 9_999, 4)])

    def test_disk_id_beyond_array_rejected(self):
        with pytest.raises(ValueError):
            run([w(5, 0, 4)], ndisks=2)

    def test_bad_construction(self):
        with pytest.raises(ValueError):
            DiskExerciser(PROFILE, 0)
        with pytest.raises(ValueError):
            DiskExerciser(PROFILE, 1, buffer_blocks=0)
