"""Unit tests for I/O trace records and the Figure-6 text format."""

import io

import pytest

from repro.storage.iotrace import IOTrace, OpKind, Target, TraceOp


def list_op(word=7, postings=100, disk=0, start=10, nblocks=2, kind=OpKind.WRITE):
    return TraceOp(
        kind=kind,
        target=Target.LONG_LIST,
        disk=disk,
        start=start,
        nblocks=nblocks,
        word=word,
        npostings=postings,
    )


class TestTraceOp:
    def test_long_list_line_roundtrip(self):
        op = list_op()
        assert TraceOp.from_line(op.to_line()) == op

    def test_bucket_line_roundtrip(self):
        op = TraceOp(OpKind.WRITE, Target.BUCKET, disk=1, start=0, nblocks=64)
        assert TraceOp.from_line(op.to_line()) == op

    def test_directory_line_roundtrip(self):
        op = TraceOp(OpKind.WRITE, Target.DIRECTORY, disk=2, start=5, nblocks=1)
        assert TraceOp.from_line(op.to_line()) == op

    def test_line_format_matches_paper_shape(self):
        line = list_op(word=134416, postings=1034, disk=0, start=4576,
                       nblocks=7).to_line()
        assert line == (
            "write list word 134416 postings 1034 disk 0 start 4576 size 7"
        )

    def test_malformed_lines_rejected(self):
        for bad in (
            "",
            "frobnicate bucket disk 0 start 0 size 1",
            "write list word x postings 1 disk 0 start 0 size 1",
            "write bucket disk 0 start 0",
        ):
            with pytest.raises(ValueError):
                TraceOp.from_line(bad)

    def test_malformed_op_rejected(self):
        with pytest.raises(ValueError):
            TraceOp(OpKind.READ, Target.BUCKET, disk=0, start=0, nblocks=0)


class TestIOTrace:
    def make_trace(self):
        trace = IOTrace()
        trace.append(TraceOp(OpKind.WRITE, Target.BUCKET, 0, 0, 64))
        trace.append(list_op(word=1))
        trace.end_batch()
        trace.append(list_op(word=2, kind=OpKind.READ))
        trace.append(list_op(word=2, start=40))
        trace.end_batch()
        return trace

    def test_batch_structure(self):
        trace = self.make_trace()
        batches = list(trace.batches())
        assert [len(b) for b in batches] == [2, 2]
        assert trace.nbatches == 2
        assert trace.nops == 4

    def test_unclosed_batch_still_visible(self):
        trace = self.make_trace()
        trace.append(list_op(word=3))
        assert [len(b) for b in trace.batches()] == [2, 2, 1]

    def test_text_roundtrip(self):
        trace = self.make_trace()
        buf = io.StringIO()
        trace.write_text(buf)
        buf.seek(0)
        parsed = IOTrace.read_text(buf)
        assert list(parsed.ops()) == list(trace.ops())
        assert parsed.nbatches == trace.nbatches

    def test_count_ops_by_target(self):
        trace = self.make_trace()
        assert trace.count_ops(Target.BUCKET) == 1
        assert trace.count_ops(Target.LONG_LIST) == 3
        assert trace.count_ops() == 4

    def test_count_blocks_by_kind(self):
        trace = self.make_trace()
        assert trace.count_blocks(OpKind.READ) == 2
        assert trace.count_blocks(OpKind.WRITE) == 64 + 2 + 2
        assert trace.count_blocks() == 70
