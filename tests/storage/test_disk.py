"""Unit tests for the single-disk simulator."""

import pytest

from repro.storage.disk import DiskFullError, SimulatedDisk
from repro.storage.profiles import SEAGATE_SCSI_1994


@pytest.fixture
def disk():
    return SimulatedDisk(SEAGATE_SCSI_1994.with_capacity(10_000))


class TestTiming:
    def test_sequential_request_pays_transfer_only(self, disk):
        disk.service(100, 10, is_write=True)
        t = disk.service(110, 10, is_write=True)
        assert t == pytest.approx(disk.profile.transfer_s(10, True))
        assert disk.counters.sequential_hits == 1

    def test_random_request_pays_seek_and_rotation(self, disk):
        # The head starts at 0, so the first request streams for free and
        # the second pays a distance-dependent seek plus rotation.
        disk.service(0, 1, is_write=False)
        t = disk.service(5000, 1, is_write=False)
        expected = (
            disk.profile.seek_s(5000 - 1)
            + disk.profile.rotational_latency_s
            + disk.profile.transfer_s(1, False)
        )
        assert t == pytest.approx(expected)
        assert disk.counters.seeks == 1
        assert disk.counters.sequential_hits == 1

    def test_head_tracks_requests(self, disk):
        disk.service(100, 10, is_write=False)
        assert disk.head == 110

    def test_counters_accumulate(self, disk):
        disk.service(0, 5, is_write=True)
        disk.service(5, 5, is_write=True)
        disk.service(100, 2, is_write=False)
        c = disk.counters
        assert c.writes == 2 and c.reads == 1
        assert c.blocks_written == 10 and c.blocks_read == 2
        assert c.busy_s > 0

    def test_request_beyond_capacity_fails(self, disk):
        with pytest.raises(DiskFullError):
            disk.service(9_995, 10, is_write=True)

    def test_farther_seeks_take_longer(self, disk):
        disk.service(0, 1, is_write=False)
        near = disk.service(100, 1, is_write=False)
        disk.service(0, 1, is_write=False)
        far = disk.service(9_000, 1, is_write=False)
        assert far > near


class TestSpace:
    def test_allocate_free_cycle(self, disk):
        start = disk.allocate(100)
        assert start == 0
        assert disk.allocated_blocks == 100
        disk.free(start, 100)
        assert disk.allocated_blocks == 0

    def test_allocate_exhaustion(self, disk):
        assert disk.allocate(10_000) == 0
        assert disk.allocate(1) is None


class TestContents:
    def test_roundtrip(self):
        disk = SimulatedDisk(
            SEAGATE_SCSI_1994.with_capacity(100), store_contents=True
        )
        disk.write_blocks(10, [b"alpha", b"beta"])
        assert disk.read_blocks(10, 2) == [b"alpha", b"beta"]

    def test_unwritten_blocks_read_empty(self):
        disk = SimulatedDisk(
            SEAGATE_SCSI_1994.with_capacity(100), store_contents=True
        )
        assert disk.read_blocks(0, 2) == [b"", b""]

    def test_free_drops_contents(self):
        disk = SimulatedDisk(
            SEAGATE_SCSI_1994.with_capacity(100), store_contents=True
        )
        start = disk.allocate(2)
        disk.write_blocks(start, [b"x", b"y"])
        disk.free(start, 2)
        assert disk.read_blocks(start, 2) == [b"", b""]

    def test_oversized_payload_rejected(self):
        disk = SimulatedDisk(
            SEAGATE_SCSI_1994.with_capacity(100), store_contents=True
        )
        with pytest.raises(ValueError):
            disk.write_blocks(0, [b"x" * 5000])

    def test_contents_disabled_by_default(self):
        disk = SimulatedDisk(SEAGATE_SCSI_1994.with_capacity(100))
        disk.write_blocks(0, [b"ignored"])  # silently a no-op
        with pytest.raises(RuntimeError):
            disk.read_blocks(0, 1)
