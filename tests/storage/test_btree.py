"""Unit tests for the block-oriented B+tree."""

import pytest

from repro.storage.btree import BTree, BTreeConfig


def make_tree(order=4, items=()):
    tree = BTree(BTreeConfig(order=order))
    for key, value in items:
        tree.insert(key, value)
    return tree


class TestConfig:
    def test_order_bounds(self):
        with pytest.raises(ValueError):
            BTreeConfig(order=2)

    def test_for_block(self):
        cfg = BTreeConfig.for_block(4096, entry_bytes=16)
        assert cfg.order == 256
        assert BTreeConfig.for_block(32, entry_bytes=16).order == 3
        with pytest.raises(ValueError):
            BTreeConfig.for_block(0)


class TestBasics:
    def test_empty(self):
        tree = make_tree()
        assert len(tree) == 0
        assert tree.get(1) is None
        assert 1 not in tree
        assert list(tree.items()) == []
        assert tree.height == 1

    def test_insert_and_get(self):
        tree = make_tree(items=[(5, "a"), (1, "b"), (9, "c")])
        assert tree.get(5) == "a"
        assert tree.get(1) == "b"
        assert tree.get(9) == "c"
        assert tree.get(7, "missing") == "missing"
        assert len(tree) == 3

    def test_overwrite(self):
        tree = make_tree(items=[(5, "a")])
        tree.insert(5, "z")
        assert tree.get(5) == "z"
        assert len(tree) == 1

    def test_items_sorted(self):
        keys = [7, 1, 9, 3, 5, 2, 8]
        tree = make_tree(items=[(k, k * 10) for k in keys])
        assert [k for k, _ in tree.items()] == sorted(keys)
        assert [v for _, v in tree.items()] == [
            k * 10 for k in sorted(keys)
        ]


class TestSplitting:
    def test_height_grows_with_inserts(self):
        tree = make_tree(order=3)
        for k in range(50):
            tree.insert(k, k)
        assert tree.height >= 3
        tree.check_invariants()

    def test_all_keys_reachable_after_splits(self):
        tree = make_tree(order=4)
        keys = list(range(0, 500, 3))
        for k in reversed(keys):
            tree.insert(k, -k)
        for k in keys:
            assert tree.get(k) == -k
        tree.check_invariants()

    def test_bigger_order_means_shorter_tree(self):
        small = make_tree(order=4, items=[(k, k) for k in range(300)])
        large = make_tree(order=64, items=[(k, k) for k in range(300)])
        assert large.height < small.height


class TestRange:
    @pytest.fixture
    def tree(self):
        return make_tree(order=4, items=[(k, k) for k in range(0, 100, 5)])

    def test_inclusive_range(self, tree):
        assert [k for k, _ in tree.range(10, 30)] == [10, 15, 20, 25, 30]

    def test_range_between_keys(self, tree):
        assert [k for k, _ in tree.range(11, 14)] == []

    def test_range_spanning_leaves(self, tree):
        assert [k for k, _ in tree.range(0, 95)] == list(range(0, 100, 5))

    def test_empty_range(self, tree):
        assert list(tree.range(50, 40)) == []


class TestDelete:
    def test_delete_present_and_absent(self):
        tree = make_tree(items=[(1, "a"), (2, "b")])
        assert tree.delete(1)
        assert not tree.delete(1)
        assert tree.get(1) is None
        assert len(tree) == 1

    def test_delete_everything(self):
        tree = make_tree(order=4)
        keys = list(range(200))
        for k in keys:
            tree.insert(k, k)
        for k in keys:
            assert tree.delete(k)
            tree.check_invariants()
        assert len(tree) == 0
        assert tree.height == 1

    def test_delete_shrinks_height(self):
        tree = make_tree(order=3)
        for k in range(100):
            tree.insert(k, k)
        tall = tree.height
        for k in range(95):
            tree.delete(k)
        assert tree.height < tall
        tree.check_invariants()

    def test_interleaved_insert_delete(self):
        tree = make_tree(order=4)
        reference = {}
        for i in range(400):
            key = (i * 37) % 97
            if i % 3 == 2:
                assert tree.delete(key) == (key in reference)
                reference.pop(key, None)
            else:
                tree.insert(key, i)
                reference[key] = i
            tree.check_invariants()
        assert dict(tree.items()) == reference


class TestCostMetrics:
    def test_lookup_cost(self):
        tree = make_tree(order=4, items=[(k, k) for k in range(300)])
        assert tree.lookup_cost_blocks(root_cached=True) == tree.height - 1
        assert tree.lookup_cost_blocks(root_cached=False) == tree.height

    def test_node_count_and_occupancy(self):
        tree = make_tree(order=4, items=[(k, k) for k in range(100)])
        assert tree.node_count > 25  # 100 keys at order 4
        assert 0.2 < tree.occupancy() <= 1.0
