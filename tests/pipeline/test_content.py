"""Unit tests for the content-mode experiment builder."""

import pytest

from repro.core.policy import Limit, Policy, Style
from repro.pipeline.content import build_content_index
from repro.workload.synthetic import SyntheticNews, SyntheticNewsConfig

WORKLOAD = SyntheticNewsConfig(days=5, docs_per_day=25)


@pytest.fixture(scope="module")
def index():
    return build_content_index(
        WORKLOAD,
        Policy(style=Style.NEW, limit=Limit.Z),
        nbuckets=16,
        bucket_size=256,
        block_postings=16,
    )


class TestBuildContentIndex:
    def test_one_batch_per_day(self, index):
        assert index.stats().batches == WORKLOAD.days

    def test_all_documents_ingested(self, index):
        news = SyntheticNews(WORKLOAD)
        expected = sum(news.docs_on_day(d) for d in range(WORKLOAD.days))
        assert index.ndocs == expected

    def test_postings_conserved(self, index):
        news = SyntheticNews(WORKLOAD)
        expected = sum(u.npostings for u in news.batches())
        stats = index.stats()
        assert stats.long_postings + stats.bucket_postings == expected

    def test_hot_word_list_matches_workload(self, index):
        news = SyntheticNews(WORKLOAD)
        expected_docs = []
        doc_id = 0
        for day in range(WORKLOAD.days):
            for words in news.day_documents(day):
                if 1 in words:
                    expected_docs.append(doc_id)
                doc_id += 1
        postings, _ = index.fetch(1)
        assert postings.doc_ids == expected_docs

    def test_trace_disabled_for_speed(self, index):
        assert index.trace is None
