"""Unit tests for the experiment runner and its caching."""

import pytest

from repro.core.policy import Limit, Policy, Style
from repro.pipeline.experiment import Experiment, ExperimentConfig
from repro.workload.synthetic import SyntheticNewsConfig


def tiny_config(**overrides):
    defaults = dict(
        workload=SyntheticNewsConfig(days=6, docs_per_day=30),
        nbuckets=16,
        bucket_size=128,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestCaching:
    def test_updates_generated_once(self):
        exp = Experiment(tiny_config())
        assert exp.updates() is exp.updates()

    def test_bucket_stage_cached(self):
        exp = Experiment(tiny_config())
        assert exp.bucket_stage() is exp.bucket_stage()

    def test_policy_runs_cached(self):
        exp = Experiment(tiny_config())
        p = Policy(style=Style.NEW, limit=Limit.ZERO)
        assert exp.run_policy(p) is exp.run_policy(p)

    def test_exercised_run_reuses_disk_stage(self):
        exp = Experiment(tiny_config())
        p = Policy(style=Style.NEW, limit=Limit.ZERO)
        base = exp.run_policy(p)
        exercised = exp.run_policy(p, exercise=True)
        assert exercised.disks is base.disks
        assert exercised.exercise is not None


class TestRuns:
    def test_run_policies_keys_by_name(self):
        exp = Experiment(tiny_config())
        policies = [
            Policy(style=Style.NEW, limit=Limit.ZERO),
            Policy(style=Style.WHOLE, limit=Limit.ZERO),
        ]
        runs = exp.run_policies(policies)
        assert set(runs) == {"new 0", "whole 0"}

    def test_series_cover_all_updates(self):
        exp = Experiment(tiny_config())
        run = exp.run_policy(Policy(style=Style.NEW, limit=Limit.ZERO))
        assert run.disks.series.nupdates == 6

    def test_stats(self):
        exp = Experiment(tiny_config())
        stats = exp.stats(frequent_fraction=0.01)
        assert stats.total_postings > 0
        assert stats.frequent_postings_share > 0.1


class TestConfig:
    def test_bucket_flush_blocks(self):
        cfg = tiny_config()
        expected = -(-16 * 128 * 4 // 4096)
        assert cfg.bucket_flush_blocks == expected

    def test_scaled(self):
        cfg = tiny_config().scaled(2.0)
        assert cfg.workload.scale == 2.0
        assert cfg.nbuckets == 16
