"""Artifact-cache behaviour: keys, round trips, corruption, concurrency."""

from __future__ import annotations

import dataclasses
import io
import json
import threading

import pytest

from repro.pipeline import Experiment
from repro.pipeline.artifacts import (
    ArtifactCache,
    bucket_fingerprint,
    updates_fingerprint,
)
from repro.workload.synthetic import SyntheticNews, SyntheticNewsConfig

from ..conftest import small_experiment_config

WORKLOAD = SyntheticNewsConfig(days=4, docs_per_day=40)


def tiny_config(**overrides):
    return small_experiment_config(
        workload=overrides.pop("workload", WORKLOAD), **overrides
    )


def tiny_updates():
    return list(SyntheticNews(WORKLOAD).batches())


# -- fingerprints --------------------------------------------------------------


def test_fingerprints_are_stable():
    assert updates_fingerprint(WORKLOAD) == updates_fingerprint(
        SyntheticNewsConfig(days=4, docs_per_day=40)
    )
    assert bucket_fingerprint(tiny_config()) == bucket_fingerprint(
        tiny_config()
    )


def test_workload_change_changes_updates_fingerprint():
    changed = dataclasses.replace(WORKLOAD, seed=WORKLOAD.seed + 1)
    assert updates_fingerprint(WORKLOAD) != updates_fingerprint(changed)


def test_bucket_fingerprint_tracks_bucket_geometry_only():
    base = tiny_config()
    # Disk-side parameters cannot change the bucket stage's output, so
    # they must not participate in its key (the staged-pipeline economy).
    assert bucket_fingerprint(base) == bucket_fingerprint(
        tiny_config(ndisks=8, allocator="best-fit")
    )
    assert bucket_fingerprint(base) != bucket_fingerprint(
        tiny_config(bucket_size=base.bucket_size * 2)
    )
    assert bucket_fingerprint(base) != bucket_fingerprint(
        tiny_config(workload=dataclasses.replace(WORKLOAD, days=5))
    )


def test_updates_and_bucket_keys_never_collide():
    assert updates_fingerprint(WORKLOAD) != bucket_fingerprint(tiny_config())


# -- round trips ---------------------------------------------------------------


def test_updates_round_trip(tmp_path):
    cache = ArtifactCache(tmp_path)
    updates = tiny_updates()
    cache.store_updates(WORKLOAD, updates)
    loaded = cache.load_updates(WORKLOAD)
    assert loaded is not None
    assert [u.day for u in loaded] == [u.day for u in updates]
    assert [u.pairs for u in loaded] == [u.pairs for u in updates]
    assert [u.ndocs for u in loaded] == [u.ndocs for u in updates]


def test_bucket_stage_round_trip(tmp_path):
    config = tiny_config(watch_buckets=(0, 1))
    fresh = Experiment(config, cache=ArtifactCache(tmp_path)).bucket_stage()
    cached = Experiment(config, cache=ArtifactCache(tmp_path)).bucket_stage()

    def trace_text(trace):
        buffer = io.StringIO()
        trace.write_text(buffer)
        return buffer.getvalue()

    assert trace_text(cached.trace) == trace_text(fresh.trace)
    assert cached.categories == fresh.categories
    assert cached.category_fraction_series == fresh.category_fraction_series
    assert cached.animations == fresh.animations
    # The lazily rebuilt manager holds the same index state.
    assert sorted(cached.manager.words()) == sorted(fresh.manager.words())
    for word in fresh.manager.words():
        assert len(cached.manager.get(word)) == len(fresh.manager.get(word))
    assert cached.manager.total_postings == fresh.manager.total_postings
    assert cached.manager.occupancy() == fresh.manager.occupancy()


def test_cache_miss_on_config_change(tmp_path):
    cache = ArtifactCache(tmp_path)
    Experiment(tiny_config(), cache=cache).bucket_stage()
    changed = tiny_config(nbuckets=32)
    assert cache.load_bucket_stage(changed) is None


def test_experiment_records_miss_then_hit(tmp_path):
    first = Experiment(tiny_config(), cache=ArtifactCache(tmp_path))
    first.bucket_stage()
    assert first.cache_events == {"updates": "miss", "buckets": "miss"}
    second = Experiment(tiny_config(), cache=ArtifactCache(tmp_path))
    second.bucket_stage()
    # A bucket-stage hit replays the trace without touching generation.
    assert second.cache_events == {"buckets": "hit"}
    assert second.timings.get("generate") == 0.0


# -- validation: corrupt artifacts are misses, never errors --------------------


@pytest.mark.parametrize(
    "corruption",
    ["truncate", "not-json", "bad-sha", "bad-format", "bad-kind"],
)
def test_corrupted_artifact_is_a_miss(tmp_path, corruption):
    cache = ArtifactCache(tmp_path)
    cache.store_updates(WORKLOAD, tiny_updates())
    [path] = tmp_path.glob("updates-*.json")
    document = json.loads(path.read_text())
    if corruption == "truncate":
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
    elif corruption == "not-json":
        path.write_text("{nope")
    elif corruption == "bad-sha":
        document["payload"]["ndocs"][0] += 1
        path.write_text(json.dumps(document))
    elif corruption == "bad-format":
        document["format"] = -1
        path.write_text(json.dumps(document))
    elif corruption == "bad-kind":
        document["kind"] = "buckets"
        path.write_text(json.dumps(document))
    assert cache.load_updates(WORKLOAD) is None


def test_corrupted_artifact_regenerates_through_experiment(tmp_path):
    config = tiny_config()
    Experiment(config, cache=ArtifactCache(tmp_path)).bucket_stage()
    for path in tmp_path.glob("*.json"):
        path.write_text("garbage")
    experiment = Experiment(config, cache=ArtifactCache(tmp_path))
    reference = Experiment(config, cache=None)
    assert experiment.cache_events == {}
    result = experiment.bucket_stage()
    assert experiment.cache_events == {"updates": "miss", "buckets": "miss"}
    assert result.trace.nbatches == reference.bucket_stage().trace.nbatches
    # And the regenerated artifacts are valid again.
    rebuilt = Experiment(config, cache=ArtifactCache(tmp_path))
    rebuilt.bucket_stage()
    assert rebuilt.cache_events == {"buckets": "hit"}


# -- concurrency ---------------------------------------------------------------


def test_concurrent_writers_leave_no_torn_artifacts(tmp_path):
    updates = tiny_updates()
    errors = []

    def writer():
        try:
            cache = ArtifactCache(tmp_path)
            for _ in range(5):
                cache.store_updates(WORKLOAD, updates)
                loaded = cache.load_updates(WORKLOAD)
                # A reader may race a writer, but must never see a torn
                # file: either a full valid artifact or (never) a miss.
                assert loaded is not None
                assert [u.pairs for u in loaded] == [u.pairs for u in updates]
        except BaseException as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=writer) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    # No temp files left behind; exactly one artifact.
    assert len(list(tmp_path.iterdir())) == 1


# -- environment knob ----------------------------------------------------------


def test_from_env_off_by_default():
    assert ArtifactCache.from_env({}) is None
    assert ArtifactCache.from_env({"REPRO_CACHE_DIR": ""}) is None


def test_from_env_enables_cache(tmp_path):
    cache = ArtifactCache.from_env({"REPRO_CACHE_DIR": str(tmp_path)})
    assert cache is not None
    assert cache.root == tmp_path


def test_experiment_defaults_to_no_cache():
    assert Experiment(tiny_config()).cache is None
