"""The sharded evaluation pipeline: update splitting and aggregation.

``split_update`` models document-hash routing at the workload level, so
its contract is conservation: per word, the per-shard counts are
non-negative and sum exactly to the original; per shard, the pair list
stays sorted and valid; and the split is a pure function of
``(day, word, router_seed)``.  :class:`ShardedExperiment` then runs the
paper's pipeline per shard and must aggregate without inventing or
losing work.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policy import Limit, Policy, Style
from repro.pipeline.experiment import Experiment, ExperimentConfig
from repro.pipeline.sharding import (
    ShardedExperiment,
    split_update,
    split_updates,
)
from repro.text.batchupdate import BatchUpdate
from repro.workload.synthetic import SyntheticNewsConfig

updates = st.builds(
    BatchUpdate,
    day=st.integers(min_value=0, max_value=30),
    pairs=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=400),
            st.integers(min_value=1, max_value=300),
        ),
        max_size=30,
        unique_by=lambda p: p[0],
    ).map(lambda ps: sorted(ps)),
    ndocs=st.integers(min_value=0, max_value=200),
)


class TestSplitUpdate:
    @settings(max_examples=100, deadline=None)
    @given(
        update=updates,
        nshards=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_conserves_counts_and_stays_valid(self, update, nshards, seed):
        parts = split_update(update, nshards, seed)
        assert len(parts) == nshards
        for part in parts:
            assert part.day == update.day
            # BatchUpdate's own validator enforces sortedness and
            # positive counts at construction; re-assert the invariant
            # the pipeline depends on.
            words = [w for w, _ in part.pairs]
            assert words == sorted(set(words))
        for word, count in update.pairs:
            shard_counts = [dict(p.pairs).get(word, 0) for p in parts]
            assert all(c >= 0 for c in shard_counts)
            assert sum(shard_counts) == count
        assert sum(p.ndocs for p in parts) == update.ndocs

    @settings(max_examples=50, deadline=None)
    @given(
        update=updates,
        nshards=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_deterministic(self, update, nshards, seed):
        first = split_update(update, nshards, seed)
        second = split_update(update, nshards, seed)
        assert [(p.day, p.pairs, p.ndocs) for p in first] == [
            (p.day, p.pairs, p.ndocs) for p in second
        ]

    def test_single_shard_passthrough(self):
        update = BatchUpdate(day=3, pairs=[(1, 5), (4, 2)], ndocs=7)
        assert split_update(update, 1) == [update]

    def test_large_counts_split_near_evenly(self):
        update = BatchUpdate(day=0, pairs=[(1, 10_000)], ndocs=0)
        parts = split_update(update, 4)
        counts = [dict(p.pairs).get(1, 0) for p in parts]
        assert sum(counts) == 10_000
        assert max(counts) - min(counts) <= 4

    def test_split_updates_streams_by_shard(self):
        stream = [
            BatchUpdate(day=d, pairs=[(1, 9), (2, 9)], ndocs=9)
            for d in range(3)
        ]
        per_shard = split_updates(stream, 3, seed=1)
        assert len(per_shard) == 3
        assert all(len(s) == 3 for s in per_shard)
        for d in range(3):
            assert sum(s[d].ndocs for s in per_shard) == 9


class TestShardedExperiment:
    def _experiment(self):
        return Experiment(
            ExperimentConfig(
                workload=SyntheticNewsConfig(days=6, docs_per_day=30),
                nbuckets=16,
                bucket_size=128,
            )
        )

    def test_rejects_single_shard(self):
        with pytest.raises(ValueError, match="nshards >= 2"):
            ShardedExperiment(self._experiment(), 1)

    def test_report_aggregates_consistently(self):
        sharded = ShardedExperiment(self._experiment(), 3, router_seed=1)
        report = sharded.run_policy(
            Policy(style=Style.NEW, limit=Limit.ZERO)
        )
        assert report.nshards == 3
        assert len(report.shards) == 3
        assert report.io_ops_total == sum(m.io_ops for m in report.shards)
        assert report.io_ops_critical_path == max(
            m.io_ops for m in report.shards
        )
        assert 1.0 <= report.parallel_speedup <= 3.0
        d = report.as_dict()
        assert d["policy"] == "new 0"
        assert len(d["shards"]) == 3

    def test_shards_cover_the_whole_workload(self):
        experiment = self._experiment()
        sharded = ShardedExperiment(experiment, 3)
        streams = sharded.shard_streams()
        total = sum(u.npostings for u in experiment.updates())
        assert (
            sum(u.npostings for s in streams for u in s) == total
        )


class TestSkewedSplit:
    @settings(max_examples=60, deadline=None)
    @given(
        update=updates,
        nshards=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=50),
        doc_skew=st.sampled_from([0.5, 1.0, 2.5]),
    )
    def test_skewed_split_still_conserves(self, update, nshards, seed, doc_skew):
        parts = split_update(update, nshards, seed, doc_skew=doc_skew)
        assert len(parts) == nshards
        for word, count in update.pairs:
            shard_counts = [dict(p.pairs).get(word, 0) for p in parts]
            assert all(c >= 0 for c in shard_counts)
            assert sum(shard_counts) == count
        assert sum(p.ndocs for p in parts) == update.ndocs

    def test_zero_skew_is_the_uniform_path(self):
        update = BatchUpdate(
            day=2, pairs=[(1, 5), (3, 40), (9, 2)], ndocs=11
        )
        assert split_update(update, 3, seed=7, doc_skew=0.0) == split_update(
            update, 3, seed=7
        )

    def test_skew_is_deterministic(self):
        update = BatchUpdate(day=1, pairs=[(1, 30), (2, 7)], ndocs=12)
        first = split_update(update, 4, seed=3, doc_skew=1.5)
        second = split_update(update, 4, seed=3, doc_skew=1.5)
        assert [(p.pairs, p.ndocs) for p in first] == [
            (p.pairs, p.ndocs) for p in second
        ]

    def test_skew_concentrates_mass_on_shard_zero(self):
        update = BatchUpdate(day=0, pairs=[(1, 10_000)], ndocs=10_000)
        parts = split_update(update, 4, seed=0, doc_skew=2.5)
        counts = [dict(p.pairs).get(1, 0) for p in parts]
        assert sum(counts) == 10_000
        # Zipf s=2.5 over 4 shards gives shard 0 ~83% of the mass.
        assert counts[0] > 0.75 * 10_000
        assert counts[0] == max(counts)

    def test_report_surfaces_imbalance_metrics(self):
        experiment = Experiment(
            ExperimentConfig(
                workload=SyntheticNewsConfig(
                    days=6, docs_per_day=30, doc_skew=2.0
                ),
                nbuckets=16,
                bucket_size=128,
            )
        )
        sharded = ShardedExperiment(experiment, 3)
        assert sharded.doc_skew == 2.0  # inherited from the workload
        report = sharded.run_policy(
            Policy(style=Style.NEW, limit=Limit.ZERO)
        )
        assert report.doc_skew == 2.0
        assert report.doc_imbalance > 1.5
        assert report.io_imbalance >= 1.0
        # Splitting the hottest shard in half can only tighten the bound.
        assert report.doc_imbalance_post_split < report.doc_imbalance
        d = report.as_dict()
        assert d["doc_skew"] == 2.0
        assert d["doc_imbalance"] == pytest.approx(
            report.doc_imbalance, abs=1e-4
        )
        # The unskewed pipeline stays near-balanced by comparison.
        flat = ShardedExperiment(self._uniform(), 3).run_policy(
            Policy(style=Style.NEW, limit=Limit.ZERO)
        )
        assert flat.doc_imbalance < report.doc_imbalance

    def _uniform(self):
        return Experiment(
            ExperimentConfig(
                workload=SyntheticNewsConfig(days=6, docs_per_day=30),
                nbuckets=16,
                bucket_size=128,
            )
        )

    def test_negative_skew_rejected(self):
        with pytest.raises(ValueError, match="doc_skew"):
            SyntheticNewsConfig(days=2, docs_per_day=5, doc_skew=-1.0)
