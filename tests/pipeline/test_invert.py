"""Unit tests for the InvertIndex process."""

from repro.pipeline.invert import InvertIndexProcess
from repro.text.documents import Document, DocumentBatch


def batch(day, texts):
    return DocumentBatch(
        day=day,
        documents=[Document(i, t) for i, t in enumerate(texts)],
    )


class TestInvertBatch:
    def test_word_occurrence_counts(self):
        process = InvertIndexProcess()
        update = process.invert_batch(
            batch(0, ["the cat", "the dog", "cat cat"])
        )
        counts = {
            process.vocabulary.word_of(w - 1): c for w, c in update.pairs
        }
        assert counts == {"the": 2, "cat": 2, "dog": 1}
        assert update.ndocs == 3

    def test_word_ids_start_at_one(self):
        process = InvertIndexProcess()
        update = process.invert_batch(batch(0, ["alpha"]))
        assert update.pairs[0][0] == 1

    def test_vocabulary_shared_across_batches(self):
        process = InvertIndexProcess()
        first = process.invert_batch(batch(0, ["cat"]))
        second = process.invert_batch(batch(1, ["cat dog"]))
        cat_id = first.pairs[0][0]
        assert cat_id in dict(second.pairs)

    def test_headers_skipped(self):
        process = InvertIndexProcess()
        update = process.invert_batch(batch(0, ["Date: today\ncat"]))
        words = {
            process.vocabulary.word_of(w - 1) for w, _ in update.pairs
        }
        assert words == {"cat"}

    def test_run_is_lazy_and_ordered(self):
        process = InvertIndexProcess()
        updates = list(
            process.run([batch(0, ["a"]), batch(1, ["b"])])
        )
        assert [u.day for u in updates] == [0, 1]
