"""Unit tests for the ExerciseDisks wrapper."""

import pytest

from repro.pipeline.exercise import ExerciseConfig, ExerciseDisksProcess
from repro.storage.iotrace import IOTrace, OpKind, Target, TraceOp
from repro.storage.profiles import SEAGATE_SCSI_1994


def trace_with(ops):
    trace = IOTrace()
    for disk, start, nblocks in ops:
        trace.append(
            TraceOp(OpKind.WRITE, Target.LONG_LIST, disk, start, nblocks,
                    word=1, npostings=1)
        )
    trace.end_batch()
    return trace


class TestOutcome:
    def test_feasible_trace(self):
        process = ExerciseDisksProcess(
            ExerciseConfig(profile=SEAGATE_SCSI_1994.with_capacity(1000),
                           ndisks=2)
        )
        outcome = process.run(trace_with([(0, 0, 10), (1, 500, 10)]))
        assert outcome.feasible
        assert outcome.total_s > 0
        assert len(outcome.result.batch_timings) == 1

    def test_infeasible_trace_reported_not_raised(self):
        process = ExerciseDisksProcess(
            ExerciseConfig(profile=SEAGATE_SCSI_1994.with_capacity(100),
                           ndisks=2)
        )
        outcome = process.run(trace_with([(0, 500, 10)]))
        assert not outcome.feasible
        assert "does not fit" in outcome.reason

    def test_total_s_on_infeasible_raises(self):
        process = ExerciseDisksProcess(
            ExerciseConfig(profile=SEAGATE_SCSI_1994.with_capacity(100),
                           ndisks=1)
        )
        outcome = process.run(trace_with([(0, 500, 10)]))
        with pytest.raises(RuntimeError):
            outcome.total_s

    def test_default_config(self):
        outcome = ExerciseDisksProcess().run(trace_with([(0, 0, 4)]))
        assert outcome.feasible
