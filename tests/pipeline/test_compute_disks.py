"""Unit tests for the ComputeDisks stage."""

import pytest

from repro.core.policy import Limit, Policy, Style
from repro.pipeline.compute_buckets import LongListTrace, LongListUpdate
from repro.pipeline.compute_disks import ComputeDisksProcess, DiskStageConfig
from repro.storage.iotrace import OpKind, Target


def make_trace(batches):
    trace = LongListTrace()
    for batch in batches:
        trace.batches.append([LongListUpdate(w, n) for w, n in batch])
    return trace


def run(policy, batches, **cfg):
    config = DiskStageConfig(
        policy=policy, bucket_flush_blocks=8, block_postings=64, **cfg
    )
    return ComputeDisksProcess(config).run(make_trace(batches))


class TestSeries:
    def test_one_sample_per_update(self):
        result = run(
            Policy(style=Style.NEW, limit=Limit.ZERO),
            [[(1, 10)], [(1, 10)], [(2, 5)]],
        )
        assert result.series.nupdates == 3
        assert result.series.io_ops == sorted(result.series.io_ops)

    def test_io_ops_include_flush_writes(self):
        result = run(Policy(style=Style.NEW, limit=Limit.ZERO), [[(1, 10)]])
        trace = result.trace
        assert trace.count_ops(Target.BUCKET) == 4  # striped over 4 disks
        assert trace.count_ops(Target.DIRECTORY) == 1
        assert trace.count_ops(Target.LONG_LIST) == 1
        assert result.series.io_ops[-1] == 6

    def test_utilization_tracks_directory(self):
        result = run(
            Policy(style=Style.WHOLE, limit=Limit.ZERO),
            [[(1, 64)], [(1, 64)]],
        )
        assert result.series.utilization[-1] == pytest.approx(1.0)

    def test_in_place_series_cumulative(self):
        result = run(
            Policy(style=Style.NEW, limit=Limit.Z),
            [[(1, 10)], [(1, 10)], [(1, 10)]],
        )
        assert result.series.in_place == [0, 1, 2]

    def test_long_words_series(self):
        result = run(
            Policy(style=Style.NEW, limit=Limit.ZERO),
            [[(1, 10)], [(2, 10)]],
        )
        assert result.series.long_words == [1, 2]


class TestBatchBoundaries:
    def test_release_freed_at_batch_end(self):
        result = run(
            Policy(style=Style.WHOLE, limit=Limit.ZERO),
            [[(1, 100)], [(1, 100)]],
        )
        assert result.manager.release == []

    def test_trace_batches_match_input(self):
        result = run(
            Policy(style=Style.NEW, limit=Limit.ZERO),
            [[(1, 10)], [], [(2, 5)]],
        )
        assert result.trace.nbatches == 3


class TestEndState:
    def test_final_metrics_accessible(self):
        result = run(
            Policy(style=Style.NEW, limit=Limit.ZERO),
            [[(1, 10), (2, 10)], [(1, 10)]],
        )
        # Word 1 has two chunks (two new-style appends), word 2 has one.
        assert result.final_avg_reads == pytest.approx(3 / 2)
        assert 0 < result.final_utilization <= 1.0
        assert result.counters.appends == 3
