"""PolicySweep: parallel/serial equivalence, determinism, fault plumbing."""

from __future__ import annotations

import io
import os

import pytest

from repro.core.policy import Limit, Policy, Style, figure8_policies
from repro.pipeline import Experiment, PolicySweep
from repro.pipeline.sweep import derive_fault_plan
from repro.storage.faults import FaultPlan, InjectedCrash, registered_crash_points
from repro.workload.synthetic import SyntheticNewsConfig

from ..conftest import small_experiment_config

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def sweep_config(**overrides):
    workload = overrides.pop(
        "workload", SyntheticNewsConfig(days=8, docs_per_day=60)
    )
    return small_experiment_config(workload=workload, **overrides)


def trace_text(trace) -> str:
    buffer = io.StringIO()
    trace.write_text(buffer)
    return buffer.getvalue()


def run_sweep(jobs: int, exercise: bool = True, **config_overrides):
    experiment = Experiment(sweep_config(**config_overrides))
    # clamp_to_cpus=False forces a real process pool even on one-CPU CI
    # runners, so the pooled code path is what these tests exercise.
    sweep = PolicySweep(
        experiment,
        figure8_policies(),
        jobs=jobs,
        exercise=exercise,
        clamp_to_cpus=False,
    )
    return experiment, sweep.run()


class TestParallelEquivalence:
    """jobs=4 must be indistinguishable from serial over full Table 2."""

    @pytest.fixture(scope="class")
    def serial(self):
        return run_sweep(jobs=1)

    @pytest.fixture(scope="class")
    def parallel(self):
        return run_sweep(jobs=4)

    def test_pool_actually_ran(self, parallel):
        _, report = parallel
        assert report.mode == "process-pool"
        assert report.jobs_effective == 4

    def test_policy_order_is_input_order(self, serial, parallel):
        names = [p.name for p in figure8_policies()]
        assert [r.name for r in serial[1].reports] == names
        assert [r.name for r in parallel[1].reports] == names

    def test_traces_byte_identical(self, serial, parallel):
        for a, b in zip(serial[1].reports, parallel[1].reports):
            assert trace_text(a.run.disks.trace) == trace_text(
                b.run.disks.trace
            ), a.name

    def test_metric_series_identical(self, serial, parallel):
        for a, b in zip(serial[1].reports, parallel[1].reports):
            assert a.run.disks.series.io_ops == b.run.disks.series.io_ops
            assert (
                a.run.disks.series.utilization
                == b.run.disks.series.utilization
            )
            assert a.run.disks.series.avg_reads == b.run.disks.series.avg_reads

    def test_read_op_counts_identical(self, serial, parallel):
        for a, b in zip(serial[1].reports, parallel[1].reports):
            assert a.run.disks.counters.reads == b.run.disks.counters.reads
            assert a.run.disks.counters.writes == b.run.disks.counters.writes

    def test_exercise_outcomes_identical(self, serial, parallel):
        for a, b in zip(serial[1].reports, parallel[1].reports):
            assert a.run.exercise.feasible == b.run.exercise.feasible
            if a.run.exercise.feasible:
                assert a.run.exercise.total_s == b.run.exercise.total_s

    def test_sweep_populates_experiment_cache(self, parallel):
        experiment, report = parallel
        for policy, row in zip(figure8_policies(), report.reports):
            cached = experiment.run_policy(policy, exercise=True)
            assert cached is row.run
            # The disks stage is shared with the non-exercised key too.
            assert (
                experiment.run_policy(policy, exercise=False).disks
                is row.run.disks
            )


class TestDegradation:
    def test_jobs_one_stays_serial(self):
        _, report = run_sweep(jobs=1)
        assert report.mode == "serial"
        assert report.jobs_effective == 1

    def test_default_clamps_to_cpu_count(self):
        experiment = Experiment(sweep_config())
        sweep = PolicySweep(experiment, figure8_policies(), jobs=64)
        report = sweep.run()
        assert report.jobs_effective <= (os.cpu_count() or 1)
        if report.jobs_effective == 1:
            assert report.mode == "serial"
            assert any("clamped" in w for w in report.warnings)

    def test_jobs_must_be_positive(self):
        experiment = Experiment(sweep_config())
        with pytest.raises(ValueError):
            PolicySweep(experiment, figure8_policies(), jobs=0)

    def test_duplicate_policies_rejected(self):
        experiment = Experiment(sweep_config())
        policy = Policy(style=Style.NEW, limit=Limit.Z)
        with pytest.raises(ValueError):
            PolicySweep(experiment, [policy, policy])


class TestReport:
    def test_json_document_shape(self, tmp_path):
        _, report = run_sweep(jobs=1)
        path = tmp_path / "BENCH_sweep.json"
        report.write_json(path)
        import json

        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro-sweep/1"
        assert doc["jobs"] == {"requested": 1, "effective": 1, "mode": "serial"}
        assert set(doc["stages"]) >= {"generate", "buckets", "disks"}
        assert len(doc["policies"]) == len(figure8_policies())
        for row in doc["policies"]:
            assert row["trace_ops"] > 0
            assert row["disks_seconds"] >= 0
            assert "feasible" in row
        assert doc["total_seconds"] > 0

    def test_per_policy_timings_recorded(self):
        _, report = run_sweep(jobs=1)
        for row in report.reports:
            assert row.run.disks_seconds > 0
            assert row.run.exercise_seconds > 0


class TestFaultPlumbing:
    def test_derived_plans_deterministic_and_distinct(self):
        base = FaultPlan(seed=11, transient_rate=0.02)
        first = [derive_fault_plan(base, i) for i in range(6)]
        second = [derive_fault_plan(base, i) for i in range(6)]
        assert [p.seed for p in first] == [p.seed for p in second]
        assert len({p.seed for p in first}) == 6
        for plan in first:
            assert plan.transient_rate == base.transient_rate
        assert derive_fault_plan(None, 3) is None

    def test_fault_injection_identical_under_any_job_count(self):
        plan = FaultPlan(seed=3, transient_rate=0.05)
        _, serial = run_sweep(jobs=1, fault_plan=plan)
        _, pooled = run_sweep(jobs=3, fault_plan=plan)
        for a, b in zip(serial.reports, pooled.reports):
            assert a.run.exercise.feasible == b.run.exercise.feasible
            if a.run.exercise.feasible:
                # Retry counts and simulated time include the injected
                # faults, so equality means the same faults fired.
                assert a.run.exercise.total_s == b.run.exercise.total_s
                assert (
                    a.run.exercise.result.total_retries
                    == b.run.exercise.result.total_retries
                )

    def test_crash_points_fire_under_the_pool(self):
        # A crash plan must stop the sweep, not be silently dropped by
        # worker processes.
        point = next(
            p for p in registered_crash_points() if "inplace" in p
        )
        plan = FaultPlan(seed=0, crash_at=point)
        for jobs in (1, 2):
            experiment = Experiment(sweep_config(fault_plan=plan))
            sweep = PolicySweep(
                experiment,
                figure8_policies(),
                jobs=jobs,
                exercise=True,
                clamp_to_cpus=False,
            )
            with pytest.raises(InjectedCrash):
                sweep.run()


class TestRunPoliciesIntegration:
    def test_run_policies_jobs_matches_serial(self):
        policies = figure8_policies()
        serial = Experiment(sweep_config()).run_policies(policies)
        experiment = Experiment(sweep_config())
        # Route through the sweep without CPU clamping so the pool is
        # genuinely used even on one-CPU machines.
        PolicySweep(
            experiment, policies, jobs=2, clamp_to_cpus=False
        ).run()
        pooled = {
            p.name: experiment.run_policy(p) for p in policies
        }
        for name, run in serial.items():
            assert (
                run.disks.series.io_ops == pooled[name].disks.series.io_ops
            )
