"""Unit tests for the periodic-rebuild baseline."""

import pytest

from repro.pipeline.rebuild import PeriodicRebuildBaseline
from repro.storage.iotrace import OpKind
from repro.text.batchupdate import BatchUpdate


def updates(days=6, postings_per_day=10):
    return [
        BatchUpdate(
            day=d,
            pairs=[(1, postings_per_day - 2), (2 + d, 2)],
            ndocs=postings_per_day,
        )
        for d in range(days)
    ]


class TestSchedule:
    def test_rebuild_days(self):
        result = PeriodicRebuildBaseline(period_days=2).run(updates(6))
        assert result.rebuild_days == [1, 3, 5]
        assert result.nrebuilds == 3

    def test_daily_rebuild(self):
        result = PeriodicRebuildBaseline(period_days=1).run(updates(4))
        assert result.rebuild_days == [0, 1, 2, 3]

    def test_trailing_days_never_indexed(self):
        result = PeriodicRebuildBaseline(period_days=4).run(updates(6))
        assert result.rebuild_days == [3]
        # Days 4 and 5 never got a rebuild.
        assert result.postings_never_indexed == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicRebuildBaseline(period_days=0)


class TestCosts:
    def test_rebuild_writes_grow_with_the_index(self):
        result = PeriodicRebuildBaseline(period_days=2).run(updates(8))
        assert result.blocks_per_rebuild == sorted(
            result.blocks_per_rebuild
        )
        assert result.blocks_per_rebuild[-1] > (
            result.blocks_per_rebuild[0]
        )

    def test_frequent_rebuilds_write_more_in_total(self):
        daily = PeriodicRebuildBaseline(period_days=1).run(updates(8))
        weekly = PeriodicRebuildBaseline(period_days=4).run(updates(8))
        assert daily.total_blocks_written > weekly.total_blocks_written

    def test_staleness_grows_with_period(self):
        daily = PeriodicRebuildBaseline(period_days=1).run(updates(8))
        slow = PeriodicRebuildBaseline(period_days=4).run(updates(8))
        assert daily.mean_staleness_days == 0.0
        assert slow.mean_staleness_days > 1.0

    def test_staleness_is_posting_weighted_mean(self):
        # Two days, rebuild on day 1: day-0 postings wait 1 day, day-1
        # postings wait 0 → mean weighted by volume.
        result = PeriodicRebuildBaseline(period_days=2).run(updates(2))
        assert result.mean_staleness_days == pytest.approx(0.5)


class TestTrace:
    def test_one_packed_stream_per_disk_per_rebuild(self):
        result = PeriodicRebuildBaseline(period_days=6, ndisks=2).run(
            updates(6)
        )
        ops = list(result.trace.ops())
        # One rebuild, two disks: at most one bulk write per disk, each
        # starting at the head of its (replaced) index region.
        assert 1 <= len(ops) <= 2
        for op in ops:
            assert op.kind is OpKind.WRITE
            assert op.start == 0

    def test_blocks_reflect_gapless_packing(self):
        # 6 days × 10 postings = 60 postings pack into exactly
        # ceil-per-disk blocks at 64 postings per block.
        result = PeriodicRebuildBaseline(
            period_days=6, ndisks=2, block_postings=64
        ).run(updates(6))
        assert result.total_blocks_written == 2  # ~30 postings per disk

    def test_trace_batches_match_days(self):
        result = PeriodicRebuildBaseline(period_days=2).run(updates(6))
        assert result.trace.nbatches == 6
