"""Unit tests for the ComputeBuckets stage."""

import io

import pytest

from repro.pipeline.compute_buckets import (
    ComputeBucketsProcess,
    LongListTrace,
    LongListUpdate,
)
from repro.text.batchupdate import BatchUpdate


def update(day, pairs):
    return BatchUpdate(day=day, pairs=pairs)


class TestCategories:
    def test_first_update_all_new(self):
        process = ComputeBucketsProcess(nbuckets=4, bucket_size=100)
        _, counts = process.process_update(update(0, [(1, 2), (2, 3)]))
        assert counts.new == 2
        assert counts.bucket == 0 and counts.long == 0

    def test_repeat_words_are_bucket_words(self):
        process = ComputeBucketsProcess(nbuckets=4, bucket_size=100)
        process.process_update(update(0, [(1, 2)]))
        _, counts = process.process_update(update(1, [(1, 2), (9, 1)]))
        assert counts.bucket == 1 and counts.new == 1

    def test_migrated_words_are_long_words(self):
        process = ComputeBucketsProcess(nbuckets=1, bucket_size=10)
        events, _ = process.process_update(update(0, [(1, 20)]))
        assert events == [LongListUpdate(1, 20)]
        _, counts = process.process_update(update(1, [(1, 5)]))
        assert counts.long == 1

    def test_fractions_sum_to_one(self):
        process = ComputeBucketsProcess(nbuckets=2, bucket_size=20)
        pairs = [(w, 3) for w in range(1, 10)]
        _, counts = process.process_update(update(0, pairs))
        assert sum(counts.fractions()) == pytest.approx(1.0)


class TestEvents:
    def test_long_word_update_goes_straight_to_trace(self):
        process = ComputeBucketsProcess(nbuckets=1, bucket_size=10)
        process.process_update(update(0, [(1, 20)]))
        events, _ = process.process_update(update(1, [(1, 7)]))
        assert events == [LongListUpdate(1, 7)]

    def test_migration_carries_bucket_postings(self):
        # Word 1 accumulates postings in the bucket over two updates, then
        # a big third update overflows: the migration carries them all.
        process = ComputeBucketsProcess(nbuckets=1, bucket_size=20)
        process.process_update(update(0, [(1, 5)]))
        process.process_update(update(1, [(1, 5)]))
        events, _ = process.process_update(update(2, [(1, 12)]))
        assert events == [LongListUpdate(1, 22)]

    def test_overflow_can_evict_other_word(self):
        process = ComputeBucketsProcess(nbuckets=1, bucket_size=20)
        process.process_update(update(0, [(1, 12)]))  # 13 units
        events, _ = process.process_update(update(1, [(2, 8)]))  # 22 units
        # Word 1 is longest → evicted, word 2 stays.
        assert events == [LongListUpdate(1, 12)]


class TestRun:
    def test_run_collects_everything(self):
        process = ComputeBucketsProcess(
            nbuckets=2, bucket_size=16, watch_buckets=(0,)
        )
        updates = [
            update(0, [(1, 8), (2, 8)]),
            update(1, [(1, 8), (3, 2)]),
        ]
        result = process.run(updates)
        assert result.trace.nbatches == 2
        assert len(result.categories) == 2
        assert 0 in result.animations
        assert result.trace.npostings > 0

    def test_conservation_of_postings(self):
        """bucket contents + long-list trace postings == input postings."""
        process = ComputeBucketsProcess(nbuckets=2, bucket_size=32)
        updates = [
            update(0, [(1, 10), (2, 4), (3, 1)]),
            update(1, [(1, 10), (4, 2)]),
            update(2, [(2, 9), (5, 6)]),
        ]
        result = process.run(updates)
        total_in = sum(u.npostings for u in updates)
        assert (
            result.trace.npostings + result.manager.total_postings == total_in
        )


class TestTraceFormat:
    def test_text_roundtrip(self):
        trace = LongListTrace()
        trace.batches.append([LongListUpdate(5, 10), LongListUpdate(9, 1)])
        trace.batches.append([])
        trace.batches.append([LongListUpdate(5, 2)])
        buf = io.StringIO()
        trace.write_text(buf)
        buf.seek(0)
        parsed = LongListTrace.read_text(buf)
        assert parsed.batches == trace.batches
        assert parsed.nupdates == 3

    def test_figure5_shape(self):
        trace = LongListTrace()
        trace.batches.append([LongListUpdate(134416, 1034)])
        buf = io.StringIO()
        trace.write_text(buf)
        assert buf.getvalue() == "134416 1034\n0 0\n"

    def test_malformed_update_rejected(self):
        with pytest.raises(ValueError):
            LongListUpdate(0, 5)
        with pytest.raises(ValueError):
            LongListUpdate(1, 0)
