"""Unit tests for corpus statistics (Table 1)."""

import pytest

from repro.pipeline.stats import corpus_stats
from repro.text.batchupdate import BatchUpdate


def updates():
    return [
        BatchUpdate(day=0, pairs=[(1, 90), (2, 5), (3, 1)], ndocs=90),
        BatchUpdate(day=1, pairs=[(1, 80), (4, 2)], ndocs=80),
    ]


class TestCorpusStats:
    def test_totals(self):
        stats = corpus_stats(updates(), frequent_fraction=0.25)
        assert stats.total_words == 4
        assert stats.total_postings == 178
        assert stats.documents == 170
        assert stats.avg_postings_per_word == pytest.approx(178 / 4)

    def test_frequent_share(self):
        stats = corpus_stats(updates(), frequent_fraction=0.25)
        assert stats.frequent_words == 1
        assert stats.infrequent_words == 3
        assert stats.frequent_postings_share == pytest.approx(170 / 178)
        assert stats.infrequent_postings_share == pytest.approx(8 / 178)

    def test_shares_sum_to_one(self):
        stats = corpus_stats(updates(), frequent_fraction=0.5)
        assert stats.frequent_postings_share + (
            stats.infrequent_postings_share
        ) == pytest.approx(1.0)

    def test_as_table_renders(self):
        table = corpus_stats(updates(), frequent_fraction=0.25).as_table()
        assert "Total Postings" in table
        assert "178" in table

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            corpus_stats([])

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            corpus_stats(updates(), frequent_fraction=0.0)

    def test_at_least_one_frequent_word(self):
        stats = corpus_stats(updates(), frequent_fraction=0.001)
        assert stats.frequent_words == 1
