"""``python -m repro`` dispatches to the CLI."""

import subprocess
import sys


def test_python_dash_m_repro_runs():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "stats", "--days", "4", "--scale",
         "0.2"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0
    assert "Total Postings" in proc.stdout


def test_python_dash_m_repro_usage_on_no_args():
    proc = subprocess.run(
        [sys.executable, "-m", "repro"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert proc.returncode != 0
    assert "usage" in proc.stderr.lower()
