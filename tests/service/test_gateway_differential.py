"""Differential property battery: the multi-process gateway vs. the
in-process sharded index vs. the brute-force oracle.

The satellite claim: for any operation stream (adds, deletes, flushes)
and any query in any mode, a gateway over N worker processes answers
**byte-identically** — doc ids, scores, and read-op accounting — to an
in-process :class:`ShardedTextIndex` with the same shard count and
router seed, and set-identically to the :class:`BruteForceIndex` oracle,
across shard counts × router seeds × query modes.  A second property
covers queries *racing* a flush: because shards partition documents,
every per-shard slice of a racing answer must equal that shard's pre- or
post-flush boundary state — nothing in between, nothing mixed.
"""

from __future__ import annotations

import asyncio
import threading

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.index import IndexConfig
from repro.core.shard import shard_of
from repro.core.sharded import ShardedTextIndex
from repro.query.reference import BruteForceIndex
from repro.service.gateway import AsyncShardGateway, GatewayService


def small_config() -> IndexConfig:
    return IndexConfig(
        nbuckets=8,
        bucket_size=32,
        block_postings=4,
        ndisks=2,
        nblocks_override=100_000,
        store_contents=True,
    )


def _word(n: int) -> str:
    return f"w{chr(ord('a') + n - 1)}"


# Small vocabulary + tiny buckets: collisions, long-list migrations, and
# posting fragments on every shard.
doc_words = st.lists(
    st.sets(st.integers(min_value=1, max_value=10), min_size=1, max_size=5),
    min_size=4,
    max_size=24,
)
shard_count = st.sampled_from([2, 3])
router_seed = st.sampled_from([0, 1, 97])
delete_stride = st.integers(min_value=0, max_value=4)


def _queries():
    """A fixed probe set hitting every mode, NOT, and unknown words."""
    boolean = [
        "wa AND wb",
        "wb OR wc",
        "(wa AND wb) OR wd",
        "wa AND NOT wb",
        "NOT wa",
        "wz AND wa",  # unknown word
    ]
    streamed = ["wa AND wb", "wc OR wd", "wa AND wb AND wc"]
    vector = [
        {"wa": 2.0, "wb": 1.0},
        {"wc": 1.0, "wd": 3.0, "wa": 1.0},
        {"wz": 1.0, "wb": 2.0},
    ]
    return boolean, streamed, vector


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    docs=doc_words,
    shards=shard_count,
    seed=router_seed,
    stride=delete_stride,
)
def test_gateway_matches_sharded_and_oracle(docs, shards, seed, stride):
    async def main():
        gateway = AsyncShardGateway(
            small_config(), shards=shards, router_seed=seed
        )
        await gateway.start()
        try:
            local = ShardedTextIndex(
                small_config(), shards=shards, router_seed=seed
            )
            oracle = BruteForceIndex()
            boolean, streamed, vector = _queries()
            flush_points = max(2, len(docs) // 3)
            for doc_id, words in enumerate(docs):
                text = " ".join(_word(w) for w in sorted(words))
                assert await gateway.add_document(text) == doc_id
                local.add_document(text)
                oracle.add_document(doc_id, text.split())
                if stride and doc_id % (stride + 2) == stride:
                    victim = doc_id // 2
                    await gateway.delete_document(victim)
                    local.delete_document(victim)
                    oracle.delete_document(victim)
                if doc_id % flush_points == flush_points - 1:
                    await gateway.flush()
                    local.flush_batch()
                    await compare(gateway, local, oracle)
            await gateway.flush()
            local.flush_batch()
            await compare(gateway, local, oracle)
        finally:
            await gateway.close()

    async def compare(gateway, local, oracle):
        boolean, streamed, vector = _queries()
        for query in boolean:
            got = await gateway.search_boolean(query)
            want = local.search_boolean(query)
            assert got.doc_ids == want.doc_ids, query
            assert got.read_ops == want.read_ops, query
            assert got.doc_ids == oracle.search_boolean(query), query
        for query in streamed:
            got = await gateway.search_streamed(query)
            want = local.search_streamed(query)
            assert got.doc_ids == want.doc_ids, query
            assert got.read_ops == want.read_ops, query
            assert got.doc_ids == oracle.search_streamed(query), query
        for weights in vector:
            got, got_ops = await gateway.search_vector_counted(
                weights, top_k=5
            )
            want, want_ops = local.search_vector_counted(weights, top_k=5)
            assert [(d.doc_id, d.score) for d in got] == [
                (d.doc_id, d.score) for d in want
            ], weights
            assert got_ops == want_ops, weights
            ref = oracle.search_vector(weights, top_k=5)
            assert [(d.doc_id, d.score) for d in got] == [
                (d.doc_id, d.score) for d in ref
            ], weights

    asyncio.run(main())


@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=0, max_value=3))
def test_queries_racing_a_flush_see_only_boundary_states(seed):
    """Per-shard slices of racing answers are pre- or post-flush, never
    a state in between (each shard's publish is atomic; staleness skew
    across shards is the gateway's documented weaker guarantee)."""
    shards = 2
    query = "wa AND wb"
    pre = BruteForceIndex()
    post = BruteForceIndex()
    service = GatewayService(
        small_config(), shards=shards, router_seed=seed
    )
    try:
        rng_docs = [
            " ".join(_word(1 + (i + j) % 6) for j in range(3))
            for i in range(12)
        ]
        for doc_id, text in enumerate(rng_docs[:6]):
            service.add_document(text)
            pre.add_document(doc_id, text.split())
            post.add_document(doc_id, text.split())
        service.flush_and_publish()
        for doc_id, text in enumerate(rng_docs[6:], start=6):
            service.add_document(text)
            post.add_document(doc_id, text.split())

        answers: list[list[int]] = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                answers.append(service.search_streamed(query).doc_ids)

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        service.flush_and_publish()  # the racing publish
        stop.set()
        for t in threads:
            t.join(timeout=30.0)

        pre_docs = set(pre.search_streamed(query))
        post_docs = set(post.search_streamed(query))
        pre_slices = [
            {d for d in pre_docs if shard_of(d, shards, seed) == s}
            for s in range(shards)
        ]
        post_slices = [
            {d for d in post_docs if shard_of(d, shards, seed) == s}
            for s in range(shards)
        ]
        assert answers, "readers never completed a query"
        for answer in answers:
            for s in range(shards):
                got = {d for d in answer if shard_of(d, shards, seed) == s}
                assert got in (pre_slices[s], post_slices[s]), (
                    f"shard {s} slice {sorted(got)} is neither the "
                    f"pre-flush {sorted(pre_slices[s])} nor the "
                    f"post-flush {sorted(post_slices[s])} boundary"
                )
    finally:
        service.close()
