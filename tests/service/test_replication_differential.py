"""Differential property battery for the *replicated* gateway.

The tentpole claim: a gateway running k replicas per shard answers
**byte-identically** — doc ids, scores, and read-op accounting — to an
in-process :class:`ShardedTextIndex` with the same shard count and
router seed, and set-identically to the :class:`BruteForceIndex` oracle,
across (shards × replicas × router seeds × read tiers) for boolean,
streamed, and vector queries.  Replication must be *invisible* to
correctness: every replica of a shard applies the same journaled op
sequence, so whichever one the round-robin rotation lands a read on,
the answer is the same.  The battery rotates reads across replicas on
purpose (several probes per boundary) so a divergent replica cannot
hide behind the rotation.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.index import IndexConfig
from repro.core.sharded import ShardedTextIndex
from repro.query.reference import BruteForceIndex
from repro.service.gateway import AsyncShardGateway, GatewayService


def small_config() -> IndexConfig:
    return IndexConfig(
        nbuckets=8,
        bucket_size=32,
        block_postings=4,
        ndisks=2,
        nblocks_override=100_000,
        store_contents=True,
    )


def _word(n: int) -> str:
    return f"w{chr(ord('a') + n - 1)}"


doc_words = st.lists(
    st.sets(st.integers(min_value=1, max_value=10), min_size=1, max_size=5),
    min_size=4,
    max_size=18,
)


def _queries():
    boolean = [
        "wa AND wb",
        "wb OR wc",
        "(wa AND wb) OR wd",
        "wa AND NOT wb",
        "NOT wa",
        "wz AND wa",  # unknown word
    ]
    streamed = ["wa AND wb", "wc OR wd", "wa AND wb AND wc"]
    vector = [
        {"wa": 2.0, "wb": 1.0},
        {"wc": 1.0, "wd": 3.0, "wa": 1.0},
        {"wz": 1.0, "wb": 2.0},
    ]
    return boolean, streamed, vector


async def _compare(gateway, local, oracle):
    """One boundary's probe round.  Each query runs once; consecutive
    reads advance the rotation cursor, so over the probe set every
    replica slot serves some of them."""
    boolean, streamed, vector = _queries()
    for query in boolean:
        got = await gateway.search_boolean(query)
        want = local.search_boolean(query)
        assert got.doc_ids == want.doc_ids, query
        assert got.read_ops == want.read_ops, query
        assert got.doc_ids == oracle.search_boolean(query), query
    for query in streamed:
        got = await gateway.search_streamed(query)
        want = local.search_streamed(query)
        assert got.doc_ids == want.doc_ids, query
        assert got.read_ops == want.read_ops, query
        assert got.doc_ids == oracle.search_streamed(query), query
    for weights in vector:
        got, got_ops = await gateway.search_vector_counted(weights, top_k=5)
        want, want_ops = local.search_vector_counted(weights, top_k=5)
        assert [(d.doc_id, d.score) for d in got] == [
            (d.doc_id, d.score) for d in want
        ], weights
        assert got_ops == want_ops, weights
        ref = oracle.search_vector(weights, top_k=5)
        assert [(d.doc_id, d.score) for d in got] == [
            (d.doc_id, d.score) for d in ref
        ], weights


async def _drive(docs, stride, shards, replicas, seed, read_tier):
    gateway = AsyncShardGateway(
        small_config(),
        shards=shards,
        replicas=replicas,
        router_seed=seed,
        read_tier=read_tier,
    )
    await gateway.start()
    try:
        local = ShardedTextIndex(
            small_config(), shards=shards, router_seed=seed
        )
        oracle = BruteForceIndex()
        flush_points = max(2, len(docs) // 3)
        for doc_id, words in enumerate(docs):
            text = " ".join(_word(w) for w in sorted(words))
            assert await gateway.add_document(text) == doc_id
            local.add_document(text)
            oracle.add_document(doc_id, text.split())
            if stride and doc_id % (stride + 2) == stride:
                victim = doc_id // 2
                await gateway.delete_document(victim)
                local.delete_document(victim)
                oracle.delete_document(victim)
            if doc_id % flush_points == flush_points - 1:
                await gateway.flush()
                local.flush_batch()
                if read_tier == "snapshot":
                    await _compare(gateway, local, oracle)
        await gateway.flush()
        local.flush_batch()
        await _compare(gateway, local, oracle)
        # Replication-specific ledger: no replica disagreed with a
        # sibling on any flush outcome, and nothing went stale.
        assert gateway.repl.replica_divergences == 0
        assert gateway.repl.stale_discarded == 0
        assert gateway.stats.failovers == 0
        report = await gateway.check()
        assert report.ok, report.violations
    finally:
        await gateway.close()


@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    docs=doc_words,
    shards=st.sampled_from([2, 3]),
    replicas=st.sampled_from([1, 2]),
    seed=st.sampled_from([0, 97]),
    stride=st.integers(min_value=0, max_value=3),
)
def test_replicated_gateway_matches_sharded_and_oracle(
    docs, shards, replicas, seed, stride
):
    asyncio.run(_drive(docs, stride, shards, replicas, seed, "snapshot"))


@settings(
    max_examples=3,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    docs=doc_words,
    stride=st.integers(min_value=0, max_value=3),
)
def test_replicated_immediate_tier_matches_at_boundaries(docs, stride):
    """The immediate tier composes with replication: mem-epoch stamps
    ride the version vector and boundary answers still match (mid-buffer
    parity is covered in-process by the memtier battery; here the point
    is that replica rotation + epoch validation don't perturb it)."""
    asyncio.run(_drive(docs, stride, 2, 2, 0, "immediate"))


@pytest.mark.parametrize("read_tier", ["snapshot", "immediate"])
def test_four_shards_two_replicas_deterministic(read_tier):
    """The CI smoke shape: 4 shards × 2 replicas, deletions, multiple
    flushes, full three-way parity at every boundary."""
    docs = [
        {1 + (i % 6), 1 + ((i * 3) % 8), 1 + ((i * 5) % 10)}
        for i in range(24)
    ]
    asyncio.run(_drive(docs, 2, 4, 2, 7, read_tier))


def test_reads_rotate_across_replicas():
    """Load balancing is real: with 2 replicas and several reads, both
    replica slots serve traffic (the rotation cursor advances per read)."""

    async def body():
        gateway = AsyncShardGateway(small_config(), shards=1, replicas=2)
        await gateway.start()
        try:
            for text in ("wa wb", "wb wc", "wa wc"):
                await gateway.add_document(text)
            await gateway.flush()
            before = [
                (await gateway._locked_rpc(r, "stats", ()))["queries"]
                for r in gateway._sets[0].replicas
            ]
            for _ in range(6):
                await gateway.search_streamed("wa AND wb")
            after = [
                (await gateway._locked_rpc(r, "stats", ()))["queries"]
                for r in gateway._sets[0].replicas
            ]
            served = [a - b for a, b in zip(after, before)]
            assert all(s > 0 for s in served), served
            assert gateway.repl.reads_served >= 6
        finally:
            await gateway.close()

    asyncio.run(body())


def test_facade_exposes_replication_stats():
    service = GatewayService(small_config(), shards=2, replicas=2)
    try:
        for i in range(6):
            service.add_document(f"wa wb w{chr(ord('c') + i)}")
        service.flush_and_publish()
        assert service.search_streamed("wa AND wb").doc_ids == list(range(6))
        stats = service.gateway_stats()
        repl = stats["replication"]
        assert repl["replicas"] == 2
        assert repl["reads_served"] >= 2  # one per shard at least
        assert repl["replica_divergences"] == 0
        assert len(stats["workers"]) == 4  # 2 shards x 2 replicas
        # Worker publish counters sum across replicas: each dirty
        # shard published once per replica.
        assert stats["publishes"] == 4
    finally:
        service.close()
