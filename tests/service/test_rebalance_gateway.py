"""Gateway online split/merge battery: answers stay byte-identical to
the in-process sharded index and the brute-force oracle while shards
split and merge under live traffic, and the move survives replica
death mid-protocol.

The protocol under test (DESIGN.md §17): a split checkpoints the
victim at a flush boundary, spawns the new shard from the blob,
tombstones each side's foreign half, and cuts the routing table over
*flip-first* — the overlap window where both shards hold the movers is
exactly what the gateway's unique-merge collapses.  A merge exports
both shards and re-indexes a brand-new union shard, so its cutover has
no overlap at all.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.index import IndexConfig
from repro.core.rebalance import RebalancePolicy
from repro.core.sharded import ShardedTextIndex
from repro.query.reference import BruteForceIndex
from repro.service.gateway import AsyncShardGateway, GatewayService


def small_config() -> IndexConfig:
    return IndexConfig(
        nbuckets=8,
        bucket_size=32,
        block_postings=4,
        ndisks=2,
        nblocks_override=100_000,
        store_contents=True,
    )


def _word(n: int) -> str:
    return f"w{chr(ord('a') + n - 1)}"


BOOLEAN = [
    "wa AND wb",
    "wb OR wc",
    "(wa AND wb) OR wd",
    "wa AND NOT wb",
    "NOT wa",
    "wz AND wa",
]
STREAMED = ["wa AND wb", "wc OR wd", "wa AND wb AND wc"]
VECTORS = [
    {"wa": 2.0, "wb": 1.0},
    {"wc": 1.0, "wd": 3.0, "wa": 1.0},
]


async def _compare(gateway, local, oracle):
    """Three-way parity: gateway ≡ in-process sharded ≡ oracle, for
    answers *and* (vs the local index) read-op accounting."""
    for query in BOOLEAN:
        got = await gateway.search_boolean(query)
        want = local.search_boolean(query)
        assert got.doc_ids == want.doc_ids, query
        assert got.read_ops == want.read_ops, query
        assert got.doc_ids == oracle.search_boolean(query), query
    for query in STREAMED:
        got = await gateway.search_streamed(query)
        want = local.search_streamed(query)
        assert got.doc_ids == want.doc_ids, query
        assert got.doc_ids == oracle.search_streamed(query), query
    for weights in VECTORS:
        got = await gateway.search_vector(weights, top_k=5)
        want = oracle.search_vector(weights, top_k=5)
        assert [(d.doc_id, d.score) for d in got] == [
            (d.doc_id, d.score) for d in want
        ], weights


def _docs(n, stride=5):
    return [
        {1 + (i % stride), 1 + ((i * 3) % 7), 1 + ((i * 5) % 9)}
        for i in range(n)
    ]


async def _ingest(gateway, local, oracle, docs, start=0):
    for i, words in enumerate(docs):
        text = " ".join(_word(w) for w in sorted(words))
        doc_id = await gateway.add_document(text)
        assert doc_id == start + i
        local.add_document(text)
        oracle.add_document(doc_id, text.split())
    await gateway.flush()
    local.flush_batch()


class TestSplitMergeDifferential:
    def test_split_during_traffic_matches_local_and_oracle(self):
        async def body():
            gateway = AsyncShardGateway(
                small_config(), shards=2, replicas=2, router_seed=1
            )
            await gateway.start()
            try:
                local = ShardedTextIndex(
                    small_config(), shards=2, router_seed=1
                )
                oracle = BruteForceIndex()
                await _ingest(gateway, local, oracle, _docs(20))
                await _compare(gateway, local, oracle)
                counts = gateway._shard_doc_counts()
                victim = max(counts, key=counts.get)
                new_id = await gateway.split_shard(victim)
                assert local.split_shard(victim) == new_id
                assert gateway.routing.epoch == 1
                await _compare(gateway, local, oracle)
                # Post-split traffic routes under the new epoch.
                for i, words in enumerate(_docs(6, stride=3), start=20):
                    text = " ".join(_word(w) for w in sorted(words))
                    await gateway.add_document(text)
                    local.add_document(text)
                    oracle.add_document(i, text.split())
                await gateway.delete_document(4)
                local.delete_document(4)
                oracle.delete_document(4)
                await gateway.flush()
                local.flush_batch()
                await _compare(gateway, local, oracle)
                assert gateway.repl.reads_waited_for_rebuild == 0
                assert gateway.rebalance.splits == 1
                assert gateway.rebalance.docs_moved > 0
            finally:
                await gateway.close()

        asyncio.run(body())

    def test_merge_during_traffic_matches_oracle(self):
        async def body():
            gateway = AsyncShardGateway(
                small_config(), shards=3, replicas=1, router_seed=2
            )
            await gateway.start()
            try:
                local = ShardedTextIndex(
                    small_config(), shards=3, router_seed=2
                )
                oracle = BruteForceIndex()
                await _ingest(gateway, local, oracle, _docs(18))
                counts = gateway._shard_doc_counts()
                order = sorted(counts, key=counts.get)
                src, dst = order[0], order[1]
                await gateway.merge_shards(src, dst)
                assert gateway.routing.epoch == 1
                assert gateway.rebalance.merges == 1
                # The local index merges in place (dst keeps its id); the
                # gateway rebuilds a union shard under a fresh id.  Both
                # must keep answering like the oracle.
                local.merge_shards(src, dst)
                await _compare(gateway, local, oracle)
                for i, words in enumerate(_docs(5, stride=4), start=18):
                    text = " ".join(_word(w) for w in sorted(words))
                    await gateway.add_document(text)
                    local.add_document(text)
                    oracle.add_document(i, text.split())
                await gateway.flush()
                local.flush_batch()
                await _compare(gateway, local, oracle)
            finally:
                await gateway.close()

        asyncio.run(body())

    def test_split_then_merge_round_trip(self):
        async def body():
            gateway = AsyncShardGateway(
                small_config(), shards=2, replicas=1, router_seed=0
            )
            await gateway.start()
            try:
                local = ShardedTextIndex(
                    small_config(), shards=2, router_seed=0
                )
                oracle = BruteForceIndex()
                await _ingest(gateway, local, oracle, _docs(16))
                new_id = await gateway.split_shard(0)
                local.split_shard(0)
                await _compare(gateway, local, oracle)
                await gateway.merge_shards(new_id, 0)
                local.merge_shards(2, 0)
                assert gateway.routing.epoch == 2
                await _compare(gateway, local, oracle)
            finally:
                await gateway.close()

        asyncio.run(body())


class TestChaos:
    def test_replica_death_during_split_fails_over(self):
        """SIGKILL one replica of the victim right before the split:
        the boundary checkpoint/tombstone RPCs fail over to the
        surviving sibling, no read ever waits for the rebuild, and
        parity holds afterwards."""

        async def body():
            gateway = AsyncShardGateway(
                small_config(), shards=2, replicas=2, router_seed=1
            )
            await gateway.start()
            try:
                local = ShardedTextIndex(
                    small_config(), shards=2, router_seed=1
                )
                oracle = BruteForceIndex()
                await _ingest(gateway, local, oracle, _docs(20))
                counts = gateway._shard_doc_counts()
                victim = max(counts, key=counts.get)
                gateway.kill_replica(victim, 0)
                new_id = await gateway.split_shard(victim)
                local.split_shard(victim)
                assert new_id == 2
                await gateway.quiesce()
                await _compare(gateway, local, oracle)
                assert gateway.repl.reads_waited_for_rebuild == 0
                assert (await gateway.check()).ok
            finally:
                await gateway.close()

        asyncio.run(body())


class TestPlannerDriven:
    def test_flush_auto_splits_under_skew(self):
        """With rebalance=True, skewed explicit-id placement makes the
        flush-boundary planner split the hot shard on its own; answers
        never diverge from the oracle and imbalance drops."""

        async def body():
            gateway = AsyncShardGateway(
                small_config(),
                shards=2,
                replicas=1,
                router_seed=1,
                rebalance=True,
                rebalance_policy=RebalancePolicy(
                    max_imbalance=1.3,
                    min_docs=12,
                    min_shard_docs=4,
                    cooldown=0,
                ),
            )
            await gateway.start()
            try:
                oracle = BruteForceIndex()
                doc_id = 0
                for cycle in range(3):
                    for _ in range(10):
                        while gateway.routing.route(doc_id) != 0:
                            doc_id += 1
                        text = " ".join(
                            _word(1 + (doc_id + k) % 8) for k in range(3)
                        )
                        await gateway.add_document(text, doc_id)
                        oracle.add_document(doc_id, text.split())
                        doc_id += 1
                    await gateway.flush()
                    for query in BOOLEAN:
                        got = await gateway.search_boolean(query)
                        assert (
                            got.doc_ids == oracle.search_boolean(query)
                        ), query
                assert gateway.rebalance.splits >= 1
                assert gateway.routing.epoch >= 1
                assert gateway.repl.reads_waited_for_rebuild == 0
            finally:
                await gateway.close()

        asyncio.run(body())


class TestGuardsAndStats:
    def test_rebalance_rejected_on_immediate_tier(self):
        with pytest.raises(ValueError, match="requires read_tier"):
            AsyncShardGateway(
                small_config(),
                shards=2,
                read_tier="immediate",
                rebalance=True,
            )

    def test_split_rejected_on_immediate_tier(self):
        async def body():
            gateway = AsyncShardGateway(
                small_config(), shards=2, read_tier="immediate"
            )
            await gateway.start()
            try:
                with pytest.raises(ValueError, match="requires read_tier"):
                    await gateway.split_shard(0)
            finally:
                await gateway.close()

        asyncio.run(body())

    def test_delete_of_never_added_hole_raises(self):
        async def body():
            gateway = AsyncShardGateway(small_config(), shards=2)
            await gateway.start()
            try:
                await gateway.add_document("wa wb", 0)
                await gateway.add_document("wb wc", 5)  # ids 1-4 are holes
                with pytest.raises(ValueError, match="never added"):
                    await gateway.delete_document(3)
            finally:
                await gateway.close()

        asyncio.run(body())

    def test_routing_epoch_rides_stats_and_snapshot(self):
        service = GatewayService(small_config(), shards=2, router_seed=1)
        try:
            for i in range(12):
                service.add_document(f"{_word(1 + i % 5)} {_word(2)}")
            service.flush_and_publish()
            assert service.snapshot().routing_epoch == 0
            assert service.gateway_stats()["routing_epoch"] == 0
            service.split_shard(0)
            assert service.routing_epoch == 1
            assert service.snapshot().routing_epoch == 1
            stats = service.gateway_stats()
            assert stats["routing_epoch"] == 1
            assert stats["rebalance"]["splits"] == 1
            assert stats["rebalance"]["docs_moved"] >= 0
        finally:
            service.close()
