"""Micro-batching + single-flight coalescing battery (DESIGN.md §16).

The tentpole claim is byte-identity: batching changes only how reads
*travel* — frames, not answers.  The battery pins it four ways:

* hypothesis differential — a batched gateway, an unbatched gateway, the
  in-process :class:`ShardedTextIndex`, and the :class:`BruteForceIndex`
  oracle answer identically (doc ids, scores, read-op accounting) across
  shards × replicas × batch sizes × read tiers × publish modes;
* per-member error isolation — a poison member in a mixed batch errors
  alone, at the worker and through the gateway;
* the single-flight staleness guard — a coalesced waiter never receives
  an answer stamped older than its own admission point, even when a
  flush lands between the flight's evaluation and its resolution;
* frame parity — ``max_batch_size=1`` sends every read as its own plain
  ``versioned_read`` frame (zero batch envelopes), i.e. the PR 6 wire
  protocol, while the same workload batched sends zero standalone reads.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.index import IndexConfig
from repro.core.sharded import ShardedTextIndex
from repro.query.reference import BruteForceIndex
from repro.service.gateway import (
    AsyncShardGateway,
    RemoteWorkerError,
    _covers,
    _ReadBatcher,
)
from repro.service.worker import ShardWorker, WorkerSpec


def small_config() -> IndexConfig:
    return IndexConfig(
        nbuckets=8,
        bucket_size=32,
        block_postings=4,
        ndisks=2,
        nblocks_override=100_000,
        store_contents=True,
    )


def _word(n: int) -> str:
    return f"w{chr(ord('a') + n - 1)}"


doc_words = st.lists(
    st.sets(st.integers(min_value=1, max_value=10), min_size=1, max_size=5),
    min_size=4,
    max_size=16,
)


def _queries():
    boolean = [
        "wa AND wb",
        "(wa AND wb) OR wd",
        "wa AND NOT wb",
        "wz AND wa",  # unknown word
    ]
    streamed = ["wa AND wb", "wc OR wd"]
    vector = [{"wa": 2.0, "wb": 1.0}, {"wz": 1.0, "wc": 2.0}]
    return boolean, streamed, vector


async def _compare(batched, unbatched, local, oracle):
    boolean, streamed, vector = _queries()
    for query in boolean:
        got = await batched.search_boolean(query)
        twin = await unbatched.search_boolean(query)
        want = local.search_boolean(query)
        assert got.doc_ids == twin.doc_ids == want.doc_ids, query
        assert got.read_ops == twin.read_ops == want.read_ops, query
        assert got.doc_ids == oracle.search_boolean(query), query
    for query in streamed:
        got = await batched.search_streamed(query)
        twin = await unbatched.search_streamed(query)
        want = local.search_streamed(query)
        assert got.doc_ids == twin.doc_ids == want.doc_ids, query
        assert got.read_ops == twin.read_ops == want.read_ops, query
        assert got.doc_ids == oracle.search_streamed(query), query
    for weights in vector:
        got, got_ops = await batched.search_vector_counted(weights, top_k=5)
        twin, twin_ops = await unbatched.search_vector_counted(
            weights, top_k=5
        )
        want, want_ops = local.search_vector_counted(weights, top_k=5)
        scored = [(d.doc_id, d.score) for d in got]
        assert scored == [(d.doc_id, d.score) for d in twin], weights
        assert scored == [(d.doc_id, d.score) for d in want], weights
        assert got_ops == twin_ops == want_ops, weights
        ref = oracle.search_vector(weights, top_k=5)
        assert scored == [(d.doc_id, d.score) for d in ref], weights


@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    docs=doc_words,
    shards=st.sampled_from([2, 3]),
    replicas=st.sampled_from([1, 2]),
    batch_size=st.sampled_from([2, 4, 16]),
    read_tier=st.sampled_from(["snapshot", "immediate"]),
    publish_mode=st.sampled_from(["cow", "clone"]),
    coalesce=st.booleans(),
)
def test_batched_equals_unbatched_equals_local_equals_oracle(
    docs, shards, replicas, batch_size, read_tier, publish_mode, coalesce
):
    async def main():
        kwargs = dict(
            shards=shards,
            replicas=replicas,
            read_tier=read_tier,
            publish_mode=publish_mode,
        )
        batched = AsyncShardGateway(
            small_config(),
            max_batch_size=batch_size,
            max_batch_delay_us=200,
            coalesce=coalesce,
            **kwargs,
        )
        unbatched = AsyncShardGateway(
            small_config(), max_batch_size=1, **kwargs
        )
        await batched.start()
        await unbatched.start()
        try:
            # No immediate tier in-process: every comparison below sits
            # on a flush boundary, where the tiers answer identically.
            local = ShardedTextIndex(small_config(), shards=shards)
            oracle = BruteForceIndex()
            flush_points = max(2, len(docs) // 3)
            for doc_id, words in enumerate(docs):
                text = " ".join(_word(w) for w in sorted(words))
                assert await batched.add_document(text) == doc_id
                assert await unbatched.add_document(text) == doc_id
                local.add_document(text)
                oracle.add_document(doc_id, text.split())
                if doc_id % flush_points == flush_points - 1:
                    await batched.flush()
                    await unbatched.flush()
                    local.flush_batch()
                    await _compare(batched, unbatched, local, oracle)
            await batched.flush()
            await unbatched.flush()
            local.flush_batch()
            await _compare(batched, unbatched, local, oracle)
            assert batched.batching.single_read_frames == 0
            assert batched.batching.batch_frames > 0
            assert unbatched.batching.batch_frames == 0
        finally:
            await batched.close()
            await unbatched.close()

    asyncio.run(main())


def test_worker_isolates_poison_members_in_a_mixed_batch():
    """One bad member errors alone; batchmates answer, and the whole
    reply carries a single version/mem-epoch stamp."""
    worker = ShardWorker(WorkerSpec(shard_id=0, index_config=small_config()))
    worker.add_document("wa wb", 0)
    worker.add_document("wb wc", 1)
    worker.flush(False, False)

    from repro.service import wire

    members = (
        wire.Request(0, "fetch_postings", ("wb", None, None)),
        wire.Request(1, "add_document", ("sneaky write", 99)),
        wire.Request(2, "search_streamed", ("wa AND", None, None)),
        wire.Request(3, "fetch_postings", ("wa", None, None)),
    )
    responses, version, mem_epoch = worker.batched_read(members)
    assert len(responses) == 4
    good_b, bad_write, bad_query, good_a = responses
    assert good_b.ok and good_b.value[0] == [0, 1]
    assert good_a.ok and good_a.value[0] == [0]
    assert not bad_write.ok and "not a read method" in bad_write.error
    assert not bad_query.ok and bad_query.error
    assert version == worker.writer.batches
    assert mem_epoch == 0
    # The refused write never touched the index.
    assert worker.writer.ndocs == 2


def test_gateway_isolates_poison_members_in_a_mixed_batch():
    """Concurrent reads sharing one batch frame: the poison member's
    waiter gets its typed error, the good member its answer."""

    async def main():
        gateway = AsyncShardGateway(
            small_config(),
            shards=1,
            max_batch_size=8,
            max_batch_delay_us=5000,
        )
        await gateway.start()
        try:
            await gateway.add_document("wa wb")
            await gateway.flush()
            good, bad = await asyncio.gather(
                gateway._read_shard(0, "fetch_postings", ("wa", None, None)),
                gateway._read_shard(0, "bogus_method", ()),
                return_exceptions=True,
            )
            assert good[0] == [0]
            assert isinstance(bad, RemoteWorkerError)
            assert "not a read method" in str(bad)
            # Both members traveled in one envelope.
            assert gateway.batching.histogram.get(2, 0) >= 1
        finally:
            await gateway.close()

    asyncio.run(main())


def test_single_flight_coalesces_identical_concurrent_queries():
    async def main():
        gateway = AsyncShardGateway(
            small_config(), shards=2, coalesce=True
        )
        await gateway.start()
        try:
            for i in range(6):
                await gateway.add_document(f"wa wb w{chr(ord('c') + i)}")
            await gateway.flush()
            gateway._coalesce_hold_s = 0.05  # keep the flight joinable
            answers = await asyncio.gather(
                *(gateway.search_boolean("wa AND wb") for _ in range(5))
            )
            assert all(a.doc_ids == answers[0].doc_ids for a in answers)
            assert all(a.read_ops == answers[0].read_ops for a in answers)
            assert gateway.batching.coalesce_hits >= 1
            assert gateway.batching.coalesce_misses >= 1
            # Distinct queries never share a flight.
            first = await gateway.search_boolean("wa AND wb")
            other = await gateway.search_boolean("wb OR wa")
            assert set(first.doc_ids) <= set(other.doc_ids)
        finally:
            await gateway.close()

    asyncio.run(main())


def test_single_flight_guard_refuses_stale_flight_after_flush():
    """The staleness-guard regression (ISSUE 9 satellite): a flush racing
    a coalesced read.  The leader evaluates, then holds with its future
    unresolved; a flush publishes new state; a later identical query must
    NOT join the held flight — its admission point postdates the flight's
    token — and must see the post-flush answer."""

    async def main():
        gateway = AsyncShardGateway(
            small_config(), shards=2, coalesce=True
        )
        await gateway.start()
        try:
            await gateway.add_document("wa wb")  # doc 0
            await gateway.flush()
            gateway._coalesce_hold_s = 0.4
            leader = asyncio.create_task(
                gateway.search_boolean("wa AND wb")
            )
            await asyncio.sleep(0.1)  # leader has evaluated, now holding
            gateway._coalesce_hold_s = 0.0
            await gateway.add_document("wa wb")  # doc 1
            await gateway.flush()
            joiner = await gateway.search_boolean("wa AND wb")
            # The joiner postdates the flush: it must see doc 1, which
            # the held flight's answer cannot contain.
            assert joiner.doc_ids == [0, 1]
            assert gateway.batching.coalesce_stale_skips >= 1
            leader_answer = await leader
            assert leader_answer.doc_ids == [0]
        finally:
            await gateway.close()

    asyncio.run(main())


def test_covers_token_comparison():
    assert _covers((1, 2), (1, 2))
    assert _covers((2, 2), (1, 2))
    assert not _covers((1, 2), (2, 2))
    assert not _covers((1, 2), (1, 2, 3))  # shape mismatch never joins
    assert not _covers((0, 5), (1, 4))  # must cover every component


def test_batch_size_one_reproduces_unbatched_wire_traffic():
    """Frame-count parity: with ``max_batch_size=1`` every logical read
    is one standalone ``versioned_read`` frame and no batch envelope
    exists anywhere — gateway counters and worker counters agree — while
    the identical workload batched sends only envelopes."""

    async def drive(gateway):
        for i in range(8):
            await gateway.add_document(f"wa wb w{chr(ord('c') + i % 4)}")
        await gateway.flush()
        for _ in range(3):
            await gateway.search_boolean("wa AND wb")
            await gateway.search_streamed("wa OR wc")
            await gateway.search_vector_counted({"wa": 1.0, "wb": 2.0})

    async def main():
        # One replica per shard keeps same-tick scatter reads on one
        # batcher (with k > 1 the rotation spreads consecutive reads
        # over replicas, so lone sequential queries batch at size 1).
        plain = AsyncShardGateway(
            small_config(), shards=2, max_batch_size=1
        )
        batched = AsyncShardGateway(
            small_config(), shards=2, max_batch_size=16
        )
        await plain.start()
        await batched.start()
        try:
            await drive(plain)
            await drive(batched)
            assert plain.batching.batch_frames == 0
            assert plain.batching.batched_reads == 0
            assert (
                plain.batching.single_read_frames
                == plain.repl.reads_served
            )
            for rs in plain._sets:
                for replica in rs.replicas:
                    stats = await plain._call_replica(replica, "stats")
                    assert stats["batch_frames"] == 0
                    assert replica.batcher is None
            # Same logical reads, zero standalone frames when batched.
            assert batched.batching.single_read_frames == 0
            assert (
                batched.batching.batched_reads
                == batched.repl.reads_served
                == plain.repl.reads_served
            )
            assert (
                batched.batching.batch_frames
                < batched.batching.batched_reads
            )
        finally:
            await plain.close()
            await batched.close()

    asyncio.run(main())


def test_adaptive_delay_window_widens_with_depth():
    """Zero wait while recent batches sit below half the cap (a bare
    yield, no timer); widening toward ``max_batch_delay_us`` as the
    depth EWMA approaches the cap."""

    class _Gateway:
        max_batch_size = 16
        max_batch_delay_us = 250

    batcher = _ReadBatcher(_Gateway(), replica=None)
    assert batcher.delay_s() == 0.0  # cold start: flush next tick
    batcher.depth_ewma = 4.0
    assert batcher.delay_s() == 0.0  # below half-full: still free
    batcher.depth_ewma = 9.0
    shallow = batcher.delay_s()
    batcher.depth_ewma = 12.0
    deep = batcher.delay_s()
    batcher.depth_ewma = 64.0
    saturated = batcher.delay_s()
    assert 0.0 < shallow < deep < saturated
    assert saturated == pytest.approx(250e-6)  # capped at the ceiling

    _Gateway.max_batch_delay_us = 0
    assert batcher.delay_s() == 0.0  # delay disabled, batching stays on


def test_member_deadline_is_individual():
    """A member blocked behind a slow worker misses its own deadline as
    ``ShardDeadlineExceeded`` without cancelling the shared batch RPC."""

    async def main():
        gateway = AsyncShardGateway(
            small_config(),
            shards=1,
            max_batch_size=4,
            shard_timeout_s=0.2,
        )
        await gateway.start()
        try:
            await gateway.add_document("wa wb")
            await gateway.flush()
            replica = gateway._sets[0].replicas[0]
            # Stall the worker loop so the batch cannot be answered in
            # time, then watch the member read miss its deadline.
            stall = asyncio.create_task(
                gateway._locked_rpc(replica, "debug_sleep", (0.6,))
            )
            await asyncio.sleep(0.01)
            answer = gateway.search_boolean("wa AND wb")
            from repro.service.gateway import ShardDeadlineExceeded

            with pytest.raises(ShardDeadlineExceeded):
                await answer
            await stall
            # The connection survives: the late batch reply drains and
            # a fresh read succeeds.
            fresh = await gateway.search_boolean("wa AND wb")
            assert fresh.doc_ids == [0]
        finally:
            await gateway.close()

    asyncio.run(main())
