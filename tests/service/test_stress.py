"""The concurrency stress battery.

Acceptance claim of the serving subsystem: with >= 4 reader threads
querying snapshots while the writer flushes >= 20 batches under fault
injection (rotating crash points plus transient disk faults), every
published snapshot passes ``core.invariants.check_index`` and every query
answer matches the brute-force reference model frozen with the snapshot
that served it — zero invariant violations, zero stale-read divergences.
"""

import random
from dataclasses import replace

import pytest

from repro.core.index import IndexConfig
from repro.service import LoadConfig, LoadGenerator, QueryService
from repro.storage import faults
from repro.storage.faults import FaultPlan
from repro.textindex import TextDocumentIndex

STRESS_CONFIG = LoadConfig(
    readers=4,
    flush_cycles=20,
    docs_per_batch=15,
    vocabulary=100,
    seed=42,
    verify=True,
    check_invariants=True,
    delete_every=7,
    crash_every=3,
    transient_rate=0.02,
    pace_s=0.0005,
    differential=True,
)


@pytest.fixture(autouse=True)
def no_leaked_plan():
    yield
    faults.uninstall()


class TestConcurrentStress:
    @pytest.mark.parametrize("publish_mode", ["clone", "cow"])
    def test_readers_vs_faulty_writer(self, publish_mode):
        config = replace(STRESS_CONFIG, publish_mode=publish_mode)
        report = LoadGenerator(config).run()

        # Zero stale-read divergences: every answer matched the reference
        # model of the exact snapshot that served it, and (differential)
        # every published snapshot answered the probe set identically to
        # a fresh full-clone oracle.  A stale query-cache hit would show
        # up here as a divergence — the cache is consulted per snapshot.
        assert report.divergences == 0, report.divergence_examples
        assert report.config["differential_checks"] == config.flush_cycles

        # Every flush published, despite injected crashes and transient
        # faults; every published snapshot passed the invariant checker
        # (a violation raises InvariantError and kills the run).
        service = report.service
        assert service["publishes"] == config.flush_cycles
        assert (
            service["invariant_checks"]
            == config.flush_cycles + 1  # + the initial empty snapshot
        )

        # The fault plans actually fired: the writer recovered at least
        # once (crash_every=3 installs a crash on 6 of the 20 cycles).
        assert service["flush_recoveries"] >= 1

        if publish_mode == "cow":
            # Incremental publication actually ran; recovery cycles fall
            # back to the full clone (requires_full), hence both counters.
            assert service["cow_publishes"] >= 1
            assert (
                service["cow_publishes"] + service["full_clone_publishes"]
                == config.flush_cycles
            )
        else:
            assert service["cow_publishes"] == 0

        # All reader threads survived and did real work.
        assert report.queries > 0
        assert service["documents_ingested"] == (
            config.flush_cycles * config.docs_per_batch
        )
        assert service["documents_deleted"] > 0

    def test_stress_without_faults_is_also_clean(self):
        """The same workload minus fault injection — separates "snapshot
        isolation is broken" from "recovery is broken" on a failure."""
        config = LoadConfig(
            readers=4,
            flush_cycles=8,
            docs_per_batch=15,
            vocabulary=100,
            seed=43,
            verify=True,
            check_invariants=True,
            delete_every=7,
            pace_s=0.0005,
        )
        report = LoadGenerator(config).run()
        assert report.divergences == 0, report.divergence_examples
        assert report.service["publishes"] == config.flush_cycles
        assert report.service["flush_recoveries"] == 0
        assert report.queries > 0


FIXED_QUERIES_BOOLEAN = [
    "wa AND wb",
    "wa OR wi",
    "(wb AND wc) OR wq",
    "wa AND NOT wd",
    "wan OR wao",
]
FIXED_QUERIES_STREAMED = ["wa AND wb", "wa OR wc OR wi", "we AND wf AND wb"]
FIXED_QUERIES_VECTOR = [
    {"wa": 2.0, "wb": 1.0},
    {"wc": 1.0, "wi": 3.0, "wq": 1.0},
]


class TestServingVsOfflineEquivalence:
    def test_final_snapshot_matches_fresh_offline_build(self):
        """Satellite: feed the same document stream to (a) the service —
        incrementally, across many publishes, under fault injection —
        and (b) a fresh offline index built in one batch.  A fixed query
        set must answer identically against the final served snapshot."""
        config = LoadConfig(
            seed=7,
            vocabulary=80,
            crash_every=2,
            transient_rate=0.03,
        )
        service = QueryService(
            config.index_config(),
            cache_capacity=config.cache_capacity,
            check_invariants=True,
        )
        generator = LoadGenerator(config, service=service)
        rng = random.Random(1994)
        texts: list[str] = []
        deletions: list[int] = []

        for cycle in range(12):
            for _ in range(10):
                text = generator._document(rng)
                texts.append(text)
                doc_id = service.add_document(text)
                if doc_id and doc_id % 11 == 0:
                    victim = rng.randrange(doc_id)
                    if victim not in deletions:
                        deletions.append(victim)
                        service.delete_document(victim)
            if cycle % 2 == 1:  # crash roughly every other publish
                faults.install(
                    FaultPlan(
                        crash_at="index.before-shadow-flush", crash_at_hit=1
                    )
                )
            try:
                service.flush_and_publish()
            finally:
                faults.uninstall()
        assert service.stats.flush_recoveries >= 1

        offline = TextDocumentIndex(
            IndexConfig(
                nbuckets=64,
                bucket_size=256,
                block_postings=16,
                ndisks=2,
                nblocks_override=500_000,
                store_contents=True,
            )
        )
        for text in texts:
            offline.add_document(text)
        offline.flush_batch()
        for victim in sorted(set(deletions)):
            offline.delete_document(victim)

        snapshot = service.snapshot()
        assert snapshot.ndocs == len(texts)
        for q in FIXED_QUERIES_BOOLEAN:
            assert (
                service.search_boolean(q, snapshot).doc_ids
                == offline.search_boolean(q).doc_ids
            ), q
        for q in FIXED_QUERIES_STREAMED:
            assert (
                service.search_streamed(q, snapshot).doc_ids
                == offline.search_streamed(q).doc_ids
            ), q
        for weights in FIXED_QUERIES_VECTOR:
            got = service.search_vector(weights, top_k=10, snapshot=snapshot)
            want = offline.search_vector(weights, top_k=10)
            assert [(d.doc_id, d.score) for d in got] == [
                (d.doc_id, d.score) for d in want
            ], weights
