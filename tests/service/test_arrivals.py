"""Open-loop arrival tests: schedule determinism, coordinated-omission
resistance, and percentile edge cases.

The satellite claims pinned here:

* the Poisson schedule is a pure function of the seed — times, kinds,
  and payloads replay identically, so two systems offered "the same"
  load really are offered the same load;
* a latency sample is ``completion − scheduled_arrival``, so when the
  service falls behind the backlog wait lands *in* the histogram
  instead of silently stretching the offered schedule (coordinated
  omission);
* the nearest-rank percentile math survives its degenerate inputs
  (0, 1, and 2 samples) without interpolation inventing latencies no
  query experienced.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.pipeline.profiling import LatencyRecorder, percentile
from repro.service.loadgen import (
    Arrival,
    LoadConfig,
    LoadGenerator,
    _ReaderState,
    open_loop_arrivals,
)


def _make_query(kind, rng):
    if kind == "vector":
        return {f"w{rng.randrange(8)}": 1.0 + rng.random()}
    return f"w{rng.randrange(8)} AND w{rng.randrange(8)}"


class TestScheduleDeterminism:
    def test_same_seed_same_schedule(self):
        a = open_loop_arrivals(200.0, 50, 7, (0.5, 0.3, 0.2), _make_query)
        b = open_loop_arrivals(200.0, 50, 7, (0.5, 0.3, 0.2), _make_query)
        assert a == b  # times, kinds, and payloads all replay

    def test_different_seed_differs(self):
        a = open_loop_arrivals(200.0, 50, 7, (0.5, 0.3, 0.2), _make_query)
        b = open_loop_arrivals(200.0, 50, 8, (0.5, 0.3, 0.2), _make_query)
        assert a != b

    def test_times_are_monotonic_and_positive(self):
        arrivals = open_loop_arrivals(
            500.0, 100, 3, (1.0, 1.0, 1.0), _make_query
        )
        assert len(arrivals) == 100
        assert arrivals[0].at_s > 0.0
        times = [a.at_s for a in arrivals]
        assert times == sorted(times)

    def test_mean_gap_tracks_offered_rate(self):
        rate = 1000.0
        arrivals = open_loop_arrivals(
            rate, 2000, 11, (1.0, 0.0, 0.0), _make_query
        )
        mean_gap = arrivals[-1].at_s / len(arrivals)
        # Exponential gaps with mean 1/rate; 2000 samples keeps the
        # sample mean within a loose factor-of-two band deterministically
        # (the seed is fixed, so this is a regression pin, not a flake).
        assert 0.5 / rate < mean_gap < 2.0 / rate

    def test_degenerate_mix_pins_the_kind(self):
        arrivals = open_loop_arrivals(
            100.0, 40, 5, (1.0, 0.0, 0.0), _make_query
        )
        assert {a.kind for a in arrivals} == {"boolean"}

    def test_generator_schedule_uses_config_seed(self):
        config = LoadConfig(
            flush_cycles=1,
            docs_per_batch=40,
            readers=1,
            arrival="open",
            arrival_rate_qps=300.0,
            arrival_queries=25,
            verify=False,
            seed=42,
        )
        gen = LoadGenerator(config)
        try:
            first = gen.open_schedule()
            second = gen.open_schedule()
        finally:
            close = getattr(gen.service, "close", None)
            if close:
                close()
        assert first == second
        assert len(first) == 25


class _SlowService:
    """A service stub whose every query takes a fixed service time."""

    def __init__(self, service_time_s: float) -> None:
        self.service_time_s = service_time_s
        self.calls = 0

    def snapshot(self):
        return None

    def search_boolean(self, query, snapshot=None):
        self.calls += 1
        time.sleep(self.service_time_s)
        return None


class _FakeGenerator:
    """Just enough of LoadGenerator for ``_open_reader_queries``."""

    def __init__(self, service, config) -> None:
        self.service = service
        self.config = config

    _open_reader_queries = LoadGenerator._open_reader_queries


class TestCoordinatedOmission:
    def test_latency_includes_queue_wait(self):
        """Arrivals all scheduled at ~t=0 against a service that takes
        20 ms per query: the k-th sample must carry ~k service times of
        backlog wait, not just its own service time.  A closed-loop
        (coordinated-omission) measurement would report every sample at
        ~20 ms."""
        service_time = 0.02
        n = 6
        service = _SlowService(service_time)
        config = LoadConfig(
            readers=1, verify=False, arrival="open"
        )
        gen = _FakeGenerator(service, config)
        arrivals = [Arrival(0.0, "boolean", "a AND b") for _ in range(n)]
        state = _ReaderState(seed=0, reader_id=0)
        gen._open_reader_queries(
            arrivals, [0], threading.Lock(), time.perf_counter(), state
        )
        samples = state.recorders["boolean"].samples
        assert len(samples) == n
        assert service.calls == n
        # Sample k waited behind k earlier queries: lower-bound each by
        # its share of the backlog (scheduling jitter only adds wait).
        for k, sample in enumerate(samples):
            assert sample >= (k + 1) * service_time * 0.9, (k, sample)
        assert samples[-1] >= samples[0] + (n - 1) * service_time * 0.9

    def test_late_start_counts_against_latency(self):
        """If the reader pool itself starts an arrival late, the delay is
        charged to the sample — the schedule is never silently shifted."""
        service = _SlowService(0.0)
        config = LoadConfig(
            readers=1, verify=False, arrival="open"
        )
        gen = _FakeGenerator(service, config)
        arrivals = [Arrival(0.0, "boolean", "a AND b")]
        state = _ReaderState(seed=0, reader_id=0)
        t0 = time.perf_counter() - 0.05  # the pool is 50 ms behind
        gen._open_reader_queries(
            arrivals, [0], threading.Lock(), t0, state
        )
        (sample,) = state.recorders["boolean"].samples
        assert sample >= 0.05


class TestPercentileEdgeCases:
    def test_zero_samples_summary_is_count_only(self):
        assert LatencyRecorder().summary() == {"count": 0}

    def test_zero_samples_percentile_is_zero(self):
        assert percentile([], 50) == 0.0
        assert percentile([], 99) == 0.0

    def test_one_sample_is_every_percentile(self):
        recorder = LatencyRecorder()
        recorder.record(0.125)
        summary = recorder.summary()
        assert summary["count"] == 1
        assert summary["p50"] == summary["p95"] == summary["p99"] == 0.125
        assert summary["max"] == 0.125

    def test_two_samples_nearest_rank(self):
        # Nearest-rank: p50 is the first sample (rank ceil(2*0.5)=1),
        # the tail percentiles are the second — never an interpolated
        # value between them.
        recorder = LatencyRecorder()
        recorder.record(0.2)
        recorder.record(0.1)  # out of order: percentile sorts
        summary = recorder.summary()
        assert summary["p50"] == 0.1
        assert summary["p95"] == 0.2
        assert summary["p99"] == 0.2
        assert summary["mean"] == pytest.approx(0.15)

    def test_percentile_domain_is_enforced(self):
        with pytest.raises(ValueError):
            percentile([1.0], 0.0)
        with pytest.raises(ValueError):
            percentile([1.0], -5.0)
        with pytest.raises(ValueError):
            percentile([1.0], 100.1)
        assert percentile([1.0, 2.0, 3.0], 100.0) == 3.0

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-0.001)
