"""Snapshot isolation: published snapshots are immune to writer progress."""

import pytest

from repro.core.index import IndexConfig
from repro.query.reference import BruteForceIndex
from repro.service import IndexSnapshot
from repro.textindex import TextDocumentIndex


def small_config(**overrides):
    defaults = dict(
        nbuckets=8,
        bucket_size=64,
        block_postings=8,
        ndisks=2,
        nblocks_override=100_000,
        store_contents=True,
    )
    defaults.update(overrides)
    return IndexConfig(**defaults)


@pytest.fixture
def writer():
    index = TextDocumentIndex(small_config())
    index.add_document("red fox runs")
    index.add_document("red hen sits")
    index.add_document("blue fox swims")
    index.flush_batch()
    return index


class TestPublication:
    def test_snapshot_matches_writer_at_publish(self, writer):
        snapshot = IndexSnapshot.publish_from(writer, snapshot_id=1)
        assert snapshot.snapshot_id == 1
        assert snapshot.ndocs == 3
        assert snapshot.batch == 1
        assert snapshot.search_boolean("red AND fox").doc_ids == [0]
        assert snapshot.search_streamed("red OR blue").doc_ids == [0, 1, 2]

    def test_snapshot_isolated_from_later_ingest(self, writer):
        snapshot = IndexSnapshot.publish_from(writer, snapshot_id=1)
        writer.add_document("red panda naps")
        writer.flush_batch()
        # The writer sees the new document; the snapshot must not.
        assert writer.search_boolean("red").doc_ids == [0, 1, 3]
        assert snapshot.search_boolean("red").doc_ids == [0, 1]
        assert snapshot.ndocs == 3

    def test_snapshot_isolated_from_later_deletion(self, writer):
        snapshot = IndexSnapshot.publish_from(writer, snapshot_id=1)
        writer.delete_document(0)
        assert writer.search_boolean("red").doc_ids == [1]
        assert snapshot.search_boolean("red").doc_ids == [0, 1]

    def test_snapshot_carries_deletions_made_before_publish(self, writer):
        writer.delete_document(1)
        snapshot = IndexSnapshot.publish_from(writer, snapshot_id=2)
        assert snapshot.search_boolean("red").doc_ids == [0]
        assert snapshot.search_streamed("red").doc_ids == [0]

    def test_publish_requires_batch_boundary(self, writer):
        writer.add_document("pending doc")
        with pytest.raises(Exception):
            IndexSnapshot.publish_from(writer, snapshot_id=1)

    def test_reference_attachment(self, writer):
        reference = BruteForceIndex()
        for doc_id, text in enumerate(
            ["red fox runs", "red hen sits", "blue fox swims"]
        ):
            reference.add_document(doc_id, text.split())
        snapshot = IndexSnapshot.publish_from(
            writer, snapshot_id=1, reference=reference.freeze()
        )
        q = "red AND fox"
        assert snapshot.search_boolean(q).doc_ids == (
            snapshot.reference.search_boolean(q)
        )


class TestSnapshotQueries:
    def test_boolean_read_ops_match_facade(self, writer):
        snapshot = IndexSnapshot.publish_from(writer, snapshot_id=1)
        for q in ("red AND fox", "(red OR blue) AND fox", "red AND NOT hen"):
            want = writer.search_boolean(q)
            got = snapshot.search_boolean(q)
            assert got.doc_ids == want.doc_ids, q
            assert got.read_ops == want.read_ops, q

    def test_streamed_answers_and_ops_match_facade(self, writer):
        snapshot = IndexSnapshot.publish_from(writer, snapshot_id=1)
        for q in ("red AND fox", "red OR blue", "fox"):
            want = writer.search_streamed(q)
            got = snapshot.search_streamed(q)
            assert got.doc_ids == want.doc_ids, q
            assert got.read_ops == want.read_ops, q

    def test_vector_matches_facade(self, writer):
        snapshot = IndexSnapshot.publish_from(writer, snapshot_id=1)
        weights = {"red": 2.0, "fox": 1.0}
        got = snapshot.search_vector(weights, top_k=3)
        want = writer.search_vector(weights, top_k=3)
        assert [(d.doc_id, d.score) for d in got] == [
            (d.doc_id, d.score) for d in want
        ]

    def test_vector_counted_reports_read_ops(self, writer):
        snapshot = IndexSnapshot.publish_from(writer, snapshot_id=1)
        ranked, read_ops = snapshot.search_vector_counted({"red": 1.0})
        assert ranked
        assert read_ops >= 1

    def test_queries_leave_no_shared_accounting(self, writer):
        """Two interleaved boolean evaluations must not bleed read ops
        into each other (the facade's last_read_ops pitfall)."""
        snapshot = IndexSnapshot.publish_from(writer, snapshot_id=1)
        baseline = snapshot.search_boolean("red AND fox").read_ops
        # Interleave: run a second query between fetches by nesting —
        # simplest equivalent is to re-run and verify stability.
        for _ in range(3):
            snapshot.search_boolean("blue OR hen")
            assert snapshot.search_boolean("red AND fox").read_ops == baseline
