"""QueryService behavior: publication, caching, recovery, equivalence."""

import pytest

from repro.core.index import IndexConfig
from repro.service import IndexSnapshot, QueryService, ServiceError
from repro.storage import faults
from repro.storage.faults import FaultPlan, InjectedCrash
from repro.textindex import TextDocumentIndex

DOCS = [
    "red fox runs fast",
    "red hen sits still",
    "blue fox swims far",
    "green hen runs far",
    "red fox and blue hen",
]

QUERIES = [
    "red AND fox",
    "red OR blue",
    "(red OR green) AND hen",
    "fox AND NOT hen",
]


def small_config(**overrides):
    defaults = dict(
        nbuckets=8,
        bucket_size=64,
        block_postings=8,
        ndisks=2,
        nblocks_override=100_000,
        store_contents=True,
    )
    defaults.update(overrides)
    return IndexConfig(**defaults)


@pytest.fixture(autouse=True)
def no_leaked_plan():
    yield
    faults.uninstall()


class TestPublication:
    def test_initial_snapshot_is_empty(self):
        service = QueryService(small_config())
        snapshot = service.snapshot()
        assert snapshot.snapshot_id == 0
        assert snapshot.ndocs == 0
        assert service.search_boolean("anything").doc_ids == []

    def test_documents_invisible_until_publish(self):
        service = QueryService(small_config())
        service.add_document("red fox")
        assert service.search_boolean("red").doc_ids == []
        service.flush_and_publish()
        assert service.search_boolean("red").doc_ids == [0]

    def test_snapshot_ids_monotonic(self):
        service = QueryService(small_config())
        ids = []
        for text in DOCS:
            service.add_document(text)
            _, snapshot = service.flush_and_publish()
            ids.append(snapshot.snapshot_id)
        assert ids == [1, 2, 3, 4, 5]
        assert service.snapshot().snapshot_id == 5
        assert service.stats.publishes == 5

    def test_deletion_visible_after_publish(self):
        service = QueryService(small_config())
        for text in DOCS:
            service.add_document(text)
        service.flush_and_publish()
        held = service.snapshot()
        service.delete_document(0)
        # Not yet published: the served answer still includes doc 0.
        assert 0 in service.search_boolean("red").doc_ids
        service.flush_and_publish()
        assert 0 not in service.search_boolean("red").doc_ids
        # The previously held snapshot is unaffected (readers finish on it).
        assert 0 in held.search_boolean("red").doc_ids

    def test_reference_tracks_served_answers(self):
        service = QueryService(small_config(), track_reference=True)
        for text in DOCS:
            service.add_document(text)
        service.delete_document(1)
        service.flush_and_publish()
        snapshot = service.snapshot()
        assert snapshot.reference is not None
        for q in QUERIES:
            assert (
                service.search_boolean(q, snapshot).doc_ids
                == snapshot.reference.search_boolean(q)
            ), q


class TestCaching:
    def test_repeat_query_hits_cache(self):
        service = QueryService(small_config())
        for text in DOCS:
            service.add_document(text)
        service.flush_and_publish()
        first = service.search_boolean("red AND fox")
        second = service.search_boolean("red AND fox")
        assert second.doc_ids == first.doc_ids
        assert second.read_ops == first.read_ops  # hit reports original cost
        stats = service.cache.stats()
        assert stats.hits == 1

    def test_publish_invalidates_cache(self):
        service = QueryService(small_config())
        service.add_document("red fox")
        service.flush_and_publish()
        service.search_boolean("red")
        assert service.cache.stats().misses == 1
        service.add_document("red hen")
        service.flush_and_publish()
        # Same query text, new snapshot: must re-evaluate, not reuse.
        answer = service.search_boolean("red")
        assert answer.doc_ids == [0, 1]
        stats = service.cache.stats()
        assert stats.invalidations >= 2  # one per publish
        assert stats.misses == 2

    def test_all_three_kinds_cached(self):
        service = QueryService(small_config())
        for text in DOCS:
            service.add_document(text)
        service.flush_and_publish()
        b1 = service.search_boolean("red AND fox")
        s1 = service.search_streamed("red OR blue")
        v1 = service.search_vector({"red": 1.0, "fox": 2.0}, top_k=3)
        b2 = service.search_boolean("red AND fox")
        s2 = service.search_streamed("red OR blue")
        v2 = service.search_vector({"fox": 2.0, "red": 1.0}, top_k=3)
        assert b2.doc_ids == b1.doc_ids
        assert s2.doc_ids == s1.doc_ids
        # Weight-dict ordering must not defeat the vector cache key.
        assert [(d.doc_id, d.score) for d in v2] == [
            (d.doc_id, d.score) for d in v1
        ]
        assert service.cache.stats().hits == 3


class TestFaultRecovery:
    def test_flush_crash_recovers_and_publishes(self):
        service = QueryService(
            small_config(crash_safe=True), check_invariants=True
        )
        for text in DOCS:
            service.add_document(text)
        faults.install(
            FaultPlan(crash_at="index.before-shadow-flush", crash_at_hit=1)
        )
        try:
            result, snapshot = service.flush_and_publish()
        finally:
            faults.uninstall()
        assert service.stats.flush_recoveries >= 1
        assert snapshot.snapshot_id == 1
        assert result.npostings > 0
        for q in QUERIES:
            offline = TextDocumentIndex(small_config())
            for text in DOCS:
                offline.add_document(text)
            offline.flush_batch()
            assert (
                service.search_boolean(q).doc_ids
                == offline.search_boolean(q).doc_ids
            ), q

    def test_publish_clone_crash_is_retried(self):
        # With crash_safe=False the flush path never saves a recovery
        # point, so the first checkpoint.mid-save arrival is the publish
        # clone itself — the retry path, not the recovery path.
        service = QueryService(small_config())
        service.add_document("red fox")
        faults.install(
            FaultPlan(crash_at="checkpoint.mid-save", crash_at_hit=1)
        )
        try:
            _, snapshot = service.flush_and_publish()
        finally:
            faults.uninstall()
        assert service.stats.publish_retries >= 1
        assert service.stats.flush_recoveries == 0
        assert snapshot.search_boolean("red").doc_ids == [0]

    def test_retry_budget_exhaustion_raises_service_error(self):
        service = QueryService(
            small_config(crash_safe=True), max_flush_retries=0
        )
        service.add_document("red fox")
        faults.install(
            FaultPlan(crash_at="index.flush-begin", crash_at_hit=1)
        )
        try:
            with pytest.raises(ServiceError):
                service.flush_and_publish()
        finally:
            faults.uninstall()

    def test_crash_without_crash_safe_propagates(self):
        service = QueryService(small_config())
        service.add_document("red fox")
        faults.install(
            FaultPlan(crash_at="index.flush-begin", crash_at_hit=1)
        )
        try:
            with pytest.raises(InjectedCrash):
                service.flush_and_publish()
        finally:
            faults.uninstall()

    def test_readers_never_see_crashed_flush(self):
        service = QueryService(
            small_config(crash_safe=True), max_flush_retries=0
        )
        service.add_document("red fox")
        service.flush_and_publish()
        before = service.snapshot()
        service.add_document("blue hen")
        faults.install(
            FaultPlan(crash_at="index.before-release", crash_at_hit=1)
        )
        try:
            with pytest.raises(ServiceError):
                service.flush_and_publish()
        finally:
            faults.uninstall()
        # The failed flush must not have published anything.
        assert service.snapshot() is before
        assert service.search_boolean("blue").doc_ids == []


class TestServedPathConsistency:
    def test_served_read_ops_match_snapshot_and_facade(self):
        """Satellite: the served path reports the same Figure-10 read-op
        unit as both facade search methods."""
        service = QueryService(small_config())
        for text in DOCS:
            service.add_document(text)
        service.flush_and_publish()
        snapshot = service.snapshot()
        offline = TextDocumentIndex(small_config())
        for text in DOCS:
            offline.add_document(text)
        offline.flush_batch()
        for q in QUERIES:
            served = service.search_boolean(q, snapshot)
            facade = offline.search_boolean(q)
            assert served.read_ops == facade.read_ops, q
            assert served.read_ops == offline.last_read_ops, q
        streamed_served = service.search_streamed("red OR blue", snapshot)
        streamed_facade = offline.search_streamed("red OR blue")
        assert streamed_served.read_ops == streamed_facade.read_ops
        assert streamed_served.read_ops == offline.last_read_ops


class TestOfflineEquivalence:
    def test_served_answers_match_fresh_offline_build(self):
        """Satellite: a fresh offline index built from the same document
        stream answers a fixed query set identically to the final served
        snapshot."""
        service = QueryService(small_config())
        stream = DOCS * 3
        deletions = [2, 7]
        for i, text in enumerate(stream):
            service.add_document(text)
            if i % 5 == 4:
                service.flush_and_publish()
        for doc_id in deletions:
            service.delete_document(doc_id)
        service.flush_and_publish()

        offline = TextDocumentIndex(small_config())
        for text in stream:
            offline.add_document(text)
        offline.flush_batch()
        for doc_id in deletions:
            offline.delete_document(doc_id)

        snapshot = service.snapshot()
        for q in QUERIES:
            assert (
                service.search_boolean(q, snapshot).doc_ids
                == offline.search_boolean(q).doc_ids
            ), q
            assert (
                service.search_vector({"red": 1.0, "fox": 0.5})
                == offline.search_vector({"red": 1.0, "fox": 0.5})
            )
        assert (
            service.search_streamed("red OR blue", snapshot).doc_ids
            == offline.search_streamed("red OR blue").doc_ids
        )
