"""Chaos battery: SIGKILL a shard worker mid-flush and prove the
gateway notices, replays per-shard recovery, and resumes serving with
zero divergences and zero invariant violations.

The workers reuse the crash-plan machinery from ``storage.faults``:
``kill_on_crash=True`` turns an injected crash at a registered crash
point into ``os.kill(getpid(), SIGKILL)`` — the worker dies exactly the
way a machine does, mid-write, with no chance to flush or apologize.
The parent-side oplog ends with the flush marker, so the failover
replay *finishes the interrupted flush* on the replacement worker.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.index import IndexConfig
from repro.core.sharded import ShardedTextIndex
from repro.service.gateway import AsyncShardGateway, GatewayService
from repro.storage.faults import FaultPlan

# One crash point per phase of the mid-flush danger window: entering the
# flush, about to overwrite the long-list shadow, and mid-checkpoint.
CRASH_POINTS = [
    "index.flush-begin",
    "index.before-shadow-flush",
    "checkpoint.mid-save",
]

DOCS = [
    "apple banana cherry",
    "banana date elderberry",
    "cherry fig grape",
    "apple grape honeydew",
    "kiwi lemon apple banana",
    "mango banana cherry date",
    "nectarine apple fig",
    "banana cherry lemon mango",
    "papaya quince banana",
    "raspberry apple cherry",
]

QUERIES = [
    "apple AND banana",
    "cherry OR fig",
    "banana AND NOT apple",
    "NOT banana",
]


def crash_config() -> IndexConfig:
    return IndexConfig(
        nbuckets=16,
        bucket_size=64,
        block_postings=8,
        ndisks=2,
        nblocks_override=100_000,
        store_contents=True,
        crash_safe=True,
    )


def _local_twin() -> ShardedTextIndex:
    return ShardedTextIndex(crash_config(), shards=2)


@pytest.mark.parametrize("crash_at", CRASH_POINTS)
def test_sigkill_mid_flush_recovers_and_resumes(crash_at):
    async def body():
        gateway = AsyncShardGateway(
            crash_config(),
            shards=2,
            fault_plans={0: FaultPlan(crash_at=crash_at, crash_at_hit=1)},
            kill_on_crash=True,
        )
        await gateway.start()
        try:
            local = _local_twin()
            for text in DOCS[:6]:
                await gateway.add_document(text)
                local.add_document(text)
            await gateway.delete_document(1)
            local.delete_document(1)
            # This flush walks worker 0 into the armed crash point; the
            # worker SIGKILLs itself mid-write.  The gateway must detect
            # the death, respawn, replay the oplog (which ends with the
            # flush marker, completing the interrupted flush), and still
            # return an aggregate result.
            await gateway.flush()
            local.flush_batch()
            assert gateway.stats.failovers >= 1, crash_at
            assert gateway.stats.worker_kills_observed >= 1
            for query in QUERIES:
                got = await gateway.search_boolean(query)
                want = local.search_boolean(query)
                assert got.doc_ids == want.doc_ids, (crash_at, query)
            report = await gateway.check()
            assert report.ok, report.violations
            # Life goes on: the replacement worker (fault plan cleared by
            # respawn_spec) ingests, flushes, and queries normally.
            failovers_after_crash = gateway.stats.failovers
            for text in DOCS[6:]:
                await gateway.add_document(text)
                local.add_document(text)
            await gateway.flush()
            local.flush_batch()
            assert gateway.stats.failovers == failovers_after_crash
            for query in ("apple AND banana", "cherry OR fig"):
                got = await gateway.search_streamed(query)
                want = local.search_streamed(query)
                assert got.doc_ids == want.doc_ids, (crash_at, query)
            for query in QUERIES:
                got = await gateway.search_boolean(query)
                want = local.search_boolean(query)
                assert got.doc_ids == want.doc_ids, (crash_at, query)
            report = await gateway.check()
            assert report.ok, report.violations
        finally:
            await gateway.close()

    asyncio.run(body())


def test_second_hit_crash_spares_first_flush():
    """Arm the crash on the *second* flush: the first publish succeeds
    and seeds a checkpoint, so the failover restores state rather than
    rebuilding from an empty volume."""

    async def body():
        gateway = AsyncShardGateway(
            crash_config(),
            shards=2,
            fault_plans={
                0: FaultPlan(crash_at="index.flush-begin", crash_at_hit=2)
            },
            kill_on_crash=True,
        )
        await gateway.start()
        try:
            local = _local_twin()
            for text in DOCS[:4]:
                await gateway.add_document(text)
                local.add_document(text)
            await gateway.flush()  # survives: hit 1 < crash_at_hit
            local.flush_batch()
            assert gateway.stats.failovers == 0
            for text in DOCS[4:8]:
                await gateway.add_document(text)
                local.add_document(text)
            await gateway.flush()  # hit 2: worker 0 dies mid-flush
            local.flush_batch()
            assert gateway.stats.failovers >= 1
            for query in QUERIES:
                got = await gateway.search_boolean(query)
                want = local.search_boolean(query)
                assert got.doc_ids == want.doc_ids, query
            assert (await gateway.check()).ok
        finally:
            await gateway.close()

    asyncio.run(body())


def test_chaos_through_service_facade():
    """The synchronous facade surfaces none of the violence: a caller
    sees a slow flush, not an error, and the stats ledger records the
    failover."""
    service = GatewayService(
        crash_config(),
        shards=2,
        fault_plans={
            0: FaultPlan(crash_at="index.before-shadow-flush", crash_at_hit=1)
        },
        kill_on_crash=True,
    )
    try:
        local = _local_twin()
        for text in DOCS[:8]:
            service.add_document(text)
            local.add_document(text)
        result, snapshot = service.flush_and_publish()
        local.flush_batch()
        assert snapshot.ndocs == 8
        stats = service.gateway_stats()
        assert stats["failovers"] >= 1
        assert stats["replayed_ops"] > 0
        for query in QUERIES:
            got = service.search_boolean(query)
            want = local.search_boolean(query)
            assert got.doc_ids == want.doc_ids, query
        assert service.check().ok
    finally:
        service.close()
