"""Sharded serving: scatter-gather behind the snapshot machinery.

Extends the stress battery to a document-hash-sharded writer: snapshots
publish the per-shard version *vector* atomically, both publish modes
serve answers identical to the brute-force reference and to a fresh
full-clone oracle (differential), and crash injection recovers without
divergence.  The result cache's shard-vector guard is pinned directly.
"""

from dataclasses import replace

import pytest

from repro.core.sharded import ShardedTextIndex
from repro.service import LoadConfig, LoadGenerator, QueryService
from repro.service.cache import QueryResultCache
from repro.storage import faults

SHARDED_CONFIG = LoadConfig(
    readers=3,
    flush_cycles=10,
    docs_per_batch=12,
    vocabulary=80,
    seed=1994,
    verify=True,
    check_invariants=True,
    delete_every=7,
    pace_s=0.0005,
    differential=True,
    shards=3,
    flush_jobs=3,
)


@pytest.fixture(autouse=True)
def no_leaked_plan():
    yield
    faults.uninstall()


class TestShardedService:
    @pytest.mark.parametrize("publish_mode", ["clone", "cow"])
    def test_sharded_serving_is_divergence_free(self, publish_mode):
        config = replace(SHARDED_CONFIG, publish_mode=publish_mode)
        report = LoadGenerator(config).run()
        assert report.divergences == 0, report.divergence_examples
        assert report.config["shards"] == 3
        assert report.config["differential_checks"] == config.flush_cycles
        service = report.service
        assert service["publishes"] == config.flush_cycles
        assert report.queries > 0
        if publish_mode == "cow":
            assert service["cow_publishes"] >= 1
        else:
            assert service["cow_publishes"] == 0

    def test_sharded_crash_injection_recovers_cleanly(self):
        config = replace(
            SHARDED_CONFIG,
            publish_mode="cow",
            crash_every=3,
            transient_rate=0.01,
        )
        report = LoadGenerator(config).run()
        assert report.divergences == 0, report.divergence_examples
        assert report.service["publishes"] == config.flush_cycles
        assert report.service["flush_recoveries"] >= 1

    def test_writer_is_sharded_and_snapshot_carries_vector(self):
        service = QueryService(shards=3, router_seed=2)
        assert isinstance(service.writer_index, ShardedTextIndex)
        for n in range(8):
            service.add_document(f"wa wb w{chr(ord('c') + n)}")
        service.flush_and_publish()
        snapshot = service.snapshot()
        assert len(snapshot.shard_versions) == 3
        assert sum(snapshot.shard_versions) >= 1
        assert snapshot.ndocs == 8

    def test_single_shard_default_is_single_volume(self):
        service = QueryService()
        assert not isinstance(service.writer_index, ShardedTextIndex)
        assert service.shards == 1
        service.add_document("wa wb")
        service.flush_and_publish()
        assert service.snapshot().shard_versions == (1,)

    def test_service_validates_shard_knobs(self):
        with pytest.raises(ValueError):
            QueryService(shards=0)
        with pytest.raises(ValueError):
            QueryService(shards=2, flush_jobs=0)


class TestCacheShardVector:
    def test_version_mismatch_drops_entry_at_newest_snapshot(self):
        cache = QueryResultCache(capacity=8)
        key = ("boolean", "wa AND wb")
        cache.put(key, (1, 2), snapshot_id=5, versions=(3, 1))
        assert cache.get(key, 5, versions=(3, 1)) == (1, 2)
        # Same snapshot id but a different shard vector: the entry must
        # not be served (shard layout or out-of-band advance) — and it
        # is dropped so the recomputed answer replaces it.
        assert cache.get(key, 5, versions=(3, 2)) is None
        assert cache.get(key, 5, versions=(3, 1)) is None

    def test_publish_delta_advances_vector(self):
        cache = QueryResultCache(capacity=8)
        key = ("boolean", "wa")
        cache.put(
            key, (0,), snapshot_id=1, terms=frozenset({"wa"}),
            versions=(1, 0),
        )
        cache.publish_delta(
            2,
            dirty_terms=frozenset({"wz"}),
            universe_changed=False,
            deletions_changed=False,
            versions=(1, 1),
        )
        assert cache.get(key, 2, versions=(1, 1)) == (0,)
        assert cache.get(key, 2, versions=(1, 0)) is None

    def test_older_snapshot_lookup_skips_vector_check(self):
        cache = QueryResultCache(capacity=8)
        key = ("vector", ("wa",))
        cache.put(key, (9,), snapshot_id=3, versions=(2,))
        cache.publish_delta(
            4,
            dirty_terms=frozenset(),
            universe_changed=False,
            deletions_changed=False,
            versions=(3,),
        )
        # A reader still pinned to snapshot 3 carries the old vector;
        # the interval admits it and the vector guard only applies at
        # the entry's newest snapshot.
        assert cache.get(key, 3, versions=(2,)) == (9,)
