"""Loadgen doc-skew + rebalance knobs: config validation, deterministic
skewed placement, and an end-to-end gateway run where the planner
splits the hot shard under live differential checking.
"""

import pytest

from repro.core.shard import shard_of
from repro.service import LoadConfig, LoadGenerator

SKEWED_CONFIG = LoadConfig(
    readers=2,
    flush_cycles=10,
    docs_per_batch=12,
    vocabulary=60,
    seed=41,
    verify=False,
    delete_every=9,
    pace_s=0.0005,
    differential=True,
    shards=2,
    gateway=True,
    replicas=1,
    doc_skew=2.5,
    rebalance=True,
    rebalance_threshold=1.2,
)


class TestConfigValidation:
    def test_rebalance_requires_gateway(self):
        with pytest.raises(ValueError, match="set gateway=True"):
            LoadConfig(shards=2, rebalance=True)

    def test_rebalance_rejects_immediate_tier(self):
        with pytest.raises(ValueError, match="publish boundaries"):
            LoadConfig(
                shards=2,
                gateway=True,
                verify=False,
                read_tier="immediate",
                rebalance=True,
            )

    def test_threshold_must_exceed_one(self):
        with pytest.raises(ValueError, match="rebalance_threshold"):
            LoadConfig(
                shards=2, gateway=True, verify=False, rebalance=True,
                rebalance_threshold=1.0,
            )

    def test_doc_skew_must_be_non_negative(self):
        with pytest.raises(ValueError, match="doc_skew"):
            LoadConfig(shards=2, doc_skew=-0.1)


class TestSkewedPlacement:
    def _ids(self, seed=7, n=60):
        """Draw the skewed id stream from an in-process (no gateway,
        no worker spawn) generator."""
        import random

        config = LoadConfig(
            shards=2, doc_skew=2.5, verify=False, flush_cycles=1
        )
        gen = LoadGenerator(config)
        rng = random.Random(seed)
        return config, [gen._skewed_doc_id(rng) for _ in range(n)]

    def test_skewed_ids_route_mostly_to_hot_shard(self):
        """The generator's Zipf weights make shard 0 the hot one; the
        explicit ids it emits must actually hash there under the
        epoch-0 router, which is what the imbalance claim rests on."""
        config, ids = self._ids()
        assert ids == sorted(set(ids))  # strictly increasing: valid ingest
        hot = sum(
            1 for d in ids if shard_of(d, 2, config.router_seed) == 0
        )
        # Zipf s=2.5 aims ~85% of docs at shard 0.
        assert hot / len(ids) >= 0.7

    def test_skewed_id_stream_is_deterministic(self):
        _, first = self._ids()
        _, second = self._ids()
        assert first == second


class TestEndToEnd:
    def test_planner_splits_hot_shard_without_divergence(self):
        report = LoadGenerator(SKEWED_CONFIG).run()
        assert report.divergences == 0, report.divergence_examples
        reb = report.gateway["rebalance"]
        assert reb["splits"] >= 1
        assert reb["docs_moved"] > 0
        assert reb["routing_epoch"] >= 1
        assert len(reb["active_shards"]) >= 3
        assert report.gateway["replication"]["reads_waited_for_rebuild"] == 0
        assert report.config["rebalance"] is True
        assert report.config["doc_skew"] == 2.5
