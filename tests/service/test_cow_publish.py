"""Incremental copy-on-write publication: parity, fallback, sharing.

The contract under test (DESIGN.md §11): a snapshot published with
``publish_mode="cow"`` is *observably identical* to one published through
the full checkpoint clone — same answers, same read-op charges — while
costing O(batch) to build and structurally sharing all untouched state
with its predecessor.
"""

import pytest

from repro.core import checkpoint
from repro.core.checkpoint import CheckpointError
from repro.core.delta import FrozenStateError
from repro.core.index import IndexConfig
from repro.core.invariants import check_index, freeze_index
from repro.service import QueryService
from repro.storage import faults
from repro.storage.blockmap import LayeredBlocks
from repro.storage.faults import FaultPlan
from repro.textindex import TextDocumentIndex


def small_config(**overrides):
    base = dict(
        nbuckets=16,
        bucket_size=64,
        block_postings=8,
        ndisks=2,
        nblocks_override=200_000,
        store_contents=True,
    )
    base.update(overrides)
    return IndexConfig(**base)


DOCS = [
    "the cat sat with the dog",
    "a mouse ran past the dog",
    "cat and mouse games all day",
    "dogs chase cats and mice",
    "the quick brown fox jumps",
    "lazy dogs sleep while cats watch",
]

QUERIES = [
    "cat AND dog",
    "cat OR mouse",
    "(dog AND mouse) OR fox",
    "cat AND NOT dog",
]


@pytest.fixture(autouse=True)
def no_leaked_plan():
    yield
    faults.uninstall()


def build_writer(nbatches=3):
    writer = TextDocumentIndex(small_config())
    for batch in range(nbatches):
        for i in range(4):
            writer.add_document(DOCS[(batch * 4 + i) % len(DOCS)])
        writer.flush_batch()
        if batch == 0:
            writer.delete_document(0)
    return writer


def assert_same_answers(a, b):
    for q in QUERIES:
        got, want = a.search_boolean(q), b.search_boolean(q)
        assert got.doc_ids == want.doc_ids, q
        assert got.read_ops == want.read_ops, q
    for word in ("cat", "dog", "mouse", "fox", "the"):
        assert a.document_frequency(word) == b.document_frequency(word)


class TestCloneIncrementalParity:
    def test_cow_clone_matches_full_clone(self):
        writer = TextDocumentIndex(small_config())
        prev = writer.clone()
        for cycle in range(4):
            for i in range(4):
                writer.add_document(DOCS[(cycle + i) % len(DOCS)])
            if cycle == 2:
                writer.delete_document(1)
            writer.flush_batch()
            cow = writer.clone_incremental(prev, writer.index.delta)
            writer.index.delta.clear()
            assert_same_answers(cow, writer.clone())
            assert check_index(cow.index).ok
            prev = cow  # chain: each publish shares with the last

    def test_chained_cow_clones_stay_independent(self):
        """Older snapshots must keep answering their own state after
        newer publishes mutate the writer."""
        writer = TextDocumentIndex(small_config())
        prev = writer.clone()
        generations = []
        for cycle in range(3):
            for i in range(4):
                writer.add_document(DOCS[(cycle + i) % len(DOCS)])
            writer.flush_batch()
            cow = writer.clone_incremental(prev, writer.index.delta)
            writer.index.delta.clear()
            generations.append(
                (cow, {q: cow.search_boolean(q).doc_ids for q in QUERIES})
            )
            prev = cow
        # Every generation still answers exactly what it answered when
        # published, despite later batches touching shared structure.
        for cow, frozen_answers in generations:
            for q, want in frozen_answers.items():
                assert cow.search_boolean(q).doc_ids == want

    def test_shared_structure_is_actually_shared(self):
        """A cow clone's untouched bucket images are the same objects as
        its predecessor's — publication did not copy them."""
        writer = build_writer()
        prev = writer.clone()
        writer.index.delta.clear()
        # One tiny batch: a single new document touching few buckets.
        writer.add_document("zebra unique nonsense")
        writer.flush_batch()
        delta = writer.index.delta
        cow = writer.clone_incremental(prev, delta)
        shared = sum(
            1
            for a, b in zip(
                cow.index.buckets.buckets, prev.index.buckets.buckets
            )
            if a is b
        )
        assert shared == len(cow.index.buckets.buckets) - len(
            delta.dirty_buckets
        )
        assert shared > 0
        # Disk block stores are layered over the predecessor's, not copied.
        assert all(
            isinstance(d._blocks, LayeredBlocks)
            for d in cow.index.index.array.disks
        ) if hasattr(cow.index, "index") else True

    def test_requires_full_after_recovery(self):
        writer = TextDocumentIndex(small_config(crash_safe=True))
        for i in range(6):
            writer.add_document(DOCS[i])
        writer.flush_batch()
        prev = writer.clone()
        writer.index.delta.clear()
        writer.add_document("one more document here")
        faults.install(
            FaultPlan(crash_at="index.before-release", crash_at_hit=1)
        )
        try:
            with pytest.raises(Exception):
                writer.flush_batch()
        finally:
            faults.uninstall()
        writer.index.recover(replay=True)
        assert writer.index.delta.requires_full
        with pytest.raises(CheckpointError):
            writer.clone_incremental(prev, writer.index.delta)

    def test_batch_gap_is_rejected(self):
        """A delta that does not cover the gap between prev and the
        writer (a publish was skipped) must be refused."""
        writer = build_writer()
        prev = writer.clone()
        writer.index.delta.clear()
        for cycle in range(2):
            writer.add_document("gap document text")
            writer.flush_batch()
        writer.index.delta.batches = 1  # claim only one batch observed
        with pytest.raises(CheckpointError):
            writer.clone_incremental(prev, writer.index.delta)


class TestFreezeBarrier:
    def test_frozen_snapshot_rejects_mutation(self):
        writer = build_writer()
        clone = writer.clone()
        freeze_index(clone.index)
        with pytest.raises(FrozenStateError):
            clone.add_document("must not land")
            clone.flush_batch()
        with pytest.raises(FrozenStateError):
            clone.index.buckets.insert(0, clone.index.longlists.content_cls())
        with pytest.raises(FrozenStateError):
            clone.index.array.disks[0].allocate(1)
        with pytest.raises(FrozenStateError):
            clone.delete_document(2)


class TestServicePublishModes:
    def _drive(self, service, cycles=4):
        for cycle in range(cycles):
            for i in range(3):
                service.add_document(DOCS[(cycle + i) % len(DOCS)])
            if cycle == 1:
                service.delete_document(0)
            service.flush_and_publish()

    def test_cow_mode_publishes_incrementally(self):
        service = QueryService(
            small_config(), publish_mode="cow", check_invariants=True
        )
        self._drive(service)
        assert service.stats.cow_publishes == 4
        assert service.stats.full_clone_publishes == 0
        assert service.stats.cow_fallbacks == 0

    def test_modes_answer_identically(self):
        results = {}
        for mode in ("clone", "cow"):
            service = QueryService(small_config(), publish_mode=mode)
            self._drive(service)
            snapshot = service.snapshot()
            results[mode] = {
                q: (
                    snapshot.search_boolean(q).doc_ids,
                    snapshot.search_boolean(q).read_ops,
                )
                for q in QUERIES
            }
        assert results["clone"] == results["cow"]

    def test_delta_scoped_invalidation_keeps_clean_entries(self):
        service = QueryService(small_config(), publish_mode="cow")
        service.add_document("alpha beta gamma")
        service.add_document("delta epsilon zeta")
        service.flush_and_publish()
        assert service.search_boolean("alpha AND beta").doc_ids == [0]
        # A batch that cannot touch 'alpha'/'beta' and adds no documents
        # ... is impossible (any doc changes the universe), but the query
        # has no NOT, so universe growth alone must not evict it.
        service.add_document("eta theta iota")
        service.flush_and_publish()
        stats_before = service.cache.stats()
        assert service.search_boolean("alpha AND beta").doc_ids == [0]
        stats_after = service.cache.stats()
        assert stats_after.hits == stats_before.hits + 1  # served from cache
        assert stats_after.entries_retained >= 1

    def test_dirty_term_is_evicted_and_recomputed(self):
        service = QueryService(small_config(), publish_mode="cow")
        service.add_document("alpha beta gamma")
        service.flush_and_publish()
        assert service.search_boolean("alpha").doc_ids == [0]
        service.add_document("alpha again here")
        service.flush_and_publish()
        # 'alpha' was in the batch's dirty vocabulary: the entry must not
        # serve the stale answer.
        assert service.search_boolean("alpha").doc_ids == [0, 1]

    def test_not_query_evicted_on_universe_growth(self):
        service = QueryService(small_config(), publish_mode="cow")
        service.add_document("alpha beta")
        service.add_document("beta gamma")
        service.flush_and_publish()
        assert service.search_boolean("NOT alpha").doc_ids == [1]
        service.add_document("unrelated words only")
        service.flush_and_publish()
        # None of the query's terms were dirty, but the complement is
        # taken over a grown universe: the entry must have been evicted.
        assert service.search_boolean("NOT alpha").doc_ids == [1, 2]

    def test_deletion_evicts_everything(self):
        service = QueryService(small_config(), publish_mode="cow")
        service.add_document("alpha beta")
        service.add_document("alpha gamma")
        service.flush_and_publish()
        assert service.search_boolean("alpha").doc_ids == [0, 1]
        service.delete_document(0)
        service.add_document("filler noise")
        service.flush_and_publish()
        assert service.search_boolean("alpha").doc_ids == [1]

    def test_cow_crash_is_retried(self):
        service = QueryService(
            small_config(crash_safe=True),
            publish_mode="cow",
        )
        service.add_document(DOCS[0])
        service.flush_and_publish()
        service.add_document(DOCS[1])
        faults.install(
            FaultPlan(crash_at="checkpoint.cow-publish", crash_at_hit=1)
        )
        try:
            _, snapshot = service.flush_and_publish()
        finally:
            faults.uninstall()
        assert service.stats.publish_retries == 1
        assert snapshot.ndocs == 2
        assert service.stats.cow_publishes >= 1

    def test_recovery_forces_full_clone_fallback(self):
        service = QueryService(
            small_config(crash_safe=True),
            publish_mode="cow",
        )
        service.add_document(DOCS[0])
        service.flush_and_publish()
        service.add_document(DOCS[1])
        faults.install(
            FaultPlan(crash_at="index.before-release", crash_at_hit=1)
        )
        try:
            service.flush_and_publish()
        finally:
            faults.uninstall()
        assert service.stats.flush_recoveries == 1
        assert service.stats.cow_fallbacks == 1
        assert service.stats.full_clone_publishes >= 1
        # The fallback published correct state, and the *next* publish
        # can go incremental again (journal coverage restarted).
        assert service.search_boolean("mouse").doc_ids == [1]
        service.add_document(DOCS[2])
        service.flush_and_publish()
        assert service.stats.cow_publishes >= 1


class TestBufferCache:
    def test_hits_do_not_change_read_ops(self):
        service = QueryService(
            small_config(), publish_mode="cow", buffer_cache_blocks=64
        )
        for _ in range(12):
            for i in range(6):
                service.add_document("hot shared words " + DOCS[i])
            service.flush_and_publish()
        snapshot = service.snapshot()
        first = snapshot.search_boolean("hot AND shared")
        second = snapshot.search_boolean("hot AND shared")
        assert first.doc_ids == second.doc_ids
        assert first.read_ops == second.read_ops  # accounting unchanged
        counters = service.buffer_counters
        assert counters.hits > 0

    def test_stale_entries_never_served_across_publish(self):
        """An in-place append extends a chunk beyond its cached span:
        the ``npostings`` self-check forces a re-read (a stale hit would
        drop the appended postings from the answer)."""
        service = QueryService(
            small_config(), publish_mode="cow", buffer_cache_blocks=64
        )
        for _ in range(12):
            for i in range(6):
                service.add_document("hot shared words " + DOCS[i])
            service.flush_and_publish()
        snapshot = service.snapshot()
        snapshot.search_boolean("hot AND shared")  # warm the cache
        for i in range(6):
            service.add_document("hot shared words " + DOCS[i])
        service.flush_and_publish()
        fresh = service.snapshot()
        answer = fresh.search_boolean("hot AND shared")
        assert answer.doc_ids[-1] == fresh.ndocs - 1
        # The re-read repopulated the successor cache: repeats hit.
        hits_before = service.buffer_counters.hits
        assert fresh.search_boolean("hot AND shared").doc_ids == (
            answer.doc_ids
        )
        assert service.buffer_counters.hits > hits_before

    def test_successor_invalidates_rewritten_blocks(self):
        """A deletion sweep rewrites long-list blocks in place; the
        journal records those writes, so the next publish's successor
        cache must drop the overlapping entries."""
        service = QueryService(
            small_config(), publish_mode="cow", buffer_cache_blocks=64
        )
        for _ in range(12):
            for i in range(6):
                service.add_document("hot shared words " + DOCS[i])
            service.flush_and_publish()
        snapshot = service.snapshot()
        snapshot.search_boolean("hot AND shared")  # warm the cache
        service.delete_document(0)
        service.writer_index.sweep_deletions()  # rewrites the lists
        service.add_document("hot shared words again")
        service.flush_and_publish()
        assert service.buffer_counters.invalidated > 0
        fresh = service.snapshot()
        answer = fresh.search_boolean("hot AND shared")
        assert 0 not in answer.doc_ids
        assert answer.doc_ids[-1] == fresh.ndocs - 1
