"""Unit tests for the delta-scoped, validity-ranged query-result cache."""

import threading

import pytest

from repro.service import QueryResultCache


def key(query):
    return ("boolean", query)


def put(cache, query, value, snapshot_id=1, terms=None, universe=False):
    cache.put(
        key(query),
        value,
        snapshot_id,
        terms=frozenset(terms if terms is not None else {query}),
        universe_sensitive=universe,
    )


class TestLRU:
    def test_get_miss_then_hit(self):
        cache = QueryResultCache(capacity=4)
        assert cache.get(key("a"), 1) is None
        put(cache, "a", (1, 2))
        assert cache.get(key("a"), 1) == (1, 2)
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)

    def test_evicts_least_recently_used(self):
        cache = QueryResultCache(capacity=2)
        put(cache, "a", "A")
        put(cache, "b", "B")
        assert cache.get(key("a"), 1) == "A"  # refresh a
        put(cache, "c", "C")  # evicts b
        assert cache.get(key("b"), 1) is None
        assert cache.get(key("a"), 1) == "A"
        assert cache.get(key("c"), 1) == "C"
        assert cache.stats().evictions == 1

    def test_put_for_newer_snapshot_replaces(self):
        cache = QueryResultCache(capacity=2)
        put(cache, "a", "old", snapshot_id=1)
        put(cache, "a", "new", snapshot_id=2)
        assert cache.get(key("a"), 2) == "new"
        assert cache.get(key("a"), 1) is None  # range moved forward

    def test_put_from_older_snapshot_never_downgrades(self):
        cache = QueryResultCache(capacity=2)
        put(cache, "a", "fresh", snapshot_id=3)
        put(cache, "a", "stale", snapshot_id=1)  # lagging reader
        assert cache.get(key("a"), 3) == "fresh"

    def test_capacity_zero_disables_caching(self):
        cache = QueryResultCache(capacity=0)
        put(cache, "a", "A")
        assert cache.get(key("a"), 1) is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            QueryResultCache(capacity=-1)


class TestValidityRange:
    def test_entry_valid_only_within_its_interval(self):
        cache = QueryResultCache(capacity=4)
        put(cache, "a", "A", snapshot_id=2)
        assert cache.get(key("a"), 1) is None  # older reader
        assert cache.get(key("a"), 2) == "A"
        assert cache.get(key("a"), 3) is None  # not yet extended

    def test_clean_entry_extends_across_publish(self):
        cache = QueryResultCache(capacity=4)
        put(cache, "a", "A", snapshot_id=1, terms={"a"})
        dropped = cache.publish_delta(
            2, frozenset({"z"}), universe_changed=False,
            deletions_changed=False,
        )
        assert dropped == 0
        assert cache.get(key("a"), 2) == "A"
        # And the old snapshot id still hits (lagging readers).
        assert cache.get(key("a"), 1) == "A"
        assert cache.stats().entries_retained == 1

    def test_dirty_term_evicts(self):
        cache = QueryResultCache(capacity=4)
        put(cache, "a", "A", snapshot_id=1, terms={"a", "b"})
        put(cache, "c", "C", snapshot_id=1, terms={"c"})
        dropped = cache.publish_delta(
            2, frozenset({"b"}), universe_changed=False,
            deletions_changed=False,
        )
        assert dropped == 1
        assert cache.get(key("a"), 2) is None
        assert cache.get(key("c"), 2) == "C"

    def test_universe_sensitive_evicted_when_docs_added(self):
        cache = QueryResultCache(capacity=4)
        put(cache, "not-q", "N", snapshot_id=1, terms={"a"}, universe=True)
        put(cache, "plain", "P", snapshot_id=1, terms={"a"})
        cache.publish_delta(
            2, frozenset(), universe_changed=True, deletions_changed=False
        )
        assert cache.get(key("not-q"), 2) is None
        assert cache.get(key("plain"), 2) == "P"

    def test_deletion_change_evicts_everything(self):
        cache = QueryResultCache(capacity=4)
        put(cache, "a", "A", snapshot_id=1, terms={"a"})
        put(cache, "b", "B", snapshot_id=1, terms={"b"})
        dropped = cache.publish_delta(
            2, frozenset(), universe_changed=False, deletions_changed=True
        )
        assert dropped == 2
        assert len(cache) == 0

    def test_stranded_entries_dropped(self):
        """An entry that missed a publish_delta window (e.g. written for
        an already-superseded snapshot) cannot be resurrected."""
        cache = QueryResultCache(capacity=4)
        put(cache, "a", "A", snapshot_id=1, terms={"a"})
        # Publish 2 evicts it (dirty); a lagging reader re-puts for id 1.
        cache.publish_delta(
            2, frozenset({"a"}), universe_changed=False,
            deletions_changed=False,
        )
        put(cache, "a", "A", snapshot_id=1, terms={"a"})
        # Publish 3: entry's last_id (1) != 2 -> stranded, dropped even
        # though its terms are clean.
        cache.publish_delta(
            3, frozenset(), universe_changed=False, deletions_changed=False
        )
        assert cache.get(key("a"), 3) is None


class TestCounters:
    def test_per_entry_hit_counters(self):
        cache = QueryResultCache(capacity=4)
        put(cache, "a", "A")
        put(cache, "b", "B")
        for _ in range(3):
            cache.get(key("a"), 1)
        cache.get(key("b"), 1)
        hits = cache.stats().entry_hits
        assert hits[key("a")] == 3
        assert hits[key("b")] == 1

    def test_eviction_drops_entry_counter(self):
        cache = QueryResultCache(capacity=1)
        put(cache, "a", "A")
        cache.get(key("a"), 1)
        put(cache, "b", "B")  # evicts a
        assert key("a") not in cache.stats().entry_hits

    def test_wholesale_invalidation(self):
        cache = QueryResultCache(capacity=8)
        for q in "abc":
            put(cache, q, q)
        dropped = cache.invalidate()
        assert dropped == 3
        assert len(cache) == 0
        stats = cache.stats()
        assert stats.invalidations == 1
        assert stats.entries_invalidated == 3
        assert stats.entry_hits == {}
        assert cache.get(key("a"), 1) is None

    def test_hit_rate(self):
        cache = QueryResultCache(capacity=2)
        put(cache, "a", "A")
        cache.get(key("a"), 1)
        cache.get(key("zzz"), 1)
        assert cache.stats().hit_rate == 0.5

    def test_stats_copy_is_detached(self):
        cache = QueryResultCache(capacity=2)
        put(cache, "a", "A")
        cache.get(key("a"), 1)
        stats = cache.stats()
        cache.get(key("a"), 1)
        assert stats.hits == 1  # the copy does not track later traffic


class TestThreadSafety:
    def test_concurrent_mixed_operations(self):
        cache = QueryResultCache(capacity=32)
        errors = []

        def worker(worker_id):
            try:
                for i in range(500):
                    q = f"q{i % 40}"
                    sid = worker_id % 3 + 1
                    if i % 7 == 0:
                        put(cache, q, (worker_id, i), snapshot_id=sid)
                    elif i % 97 == 0:
                        cache.publish_delta(
                            sid + 1,
                            frozenset({q}),
                            universe_changed=bool(i % 2),
                            deletions_changed=False,
                        )
                    elif i % 193 == 0:
                        cache.invalidate()
                    else:
                        cache.get(key(q), sid)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = cache.stats()
        assert stats.lookups == stats.hits + stats.misses
        assert len(cache) <= 32
