"""Unit tests for the snapshot-keyed LRU query-result cache."""

import threading

import pytest

from repro.service import QueryResultCache


def key(snapshot_id, query):
    return (snapshot_id, "boolean", query)


class TestLRU:
    def test_get_miss_then_hit(self):
        cache = QueryResultCache(capacity=4)
        assert cache.get(key(1, "a")) is None
        cache.put(key(1, "a"), (1, 2))
        assert cache.get(key(1, "a")) == (1, 2)
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)

    def test_evicts_least_recently_used(self):
        cache = QueryResultCache(capacity=2)
        cache.put(key(1, "a"), "A")
        cache.put(key(1, "b"), "B")
        assert cache.get(key(1, "a")) == "A"  # refresh a
        cache.put(key(1, "c"), "C")  # evicts b
        assert cache.get(key(1, "b")) is None
        assert cache.get(key(1, "a")) == "A"
        assert cache.get(key(1, "c")) == "C"
        assert cache.stats().evictions == 1

    def test_put_refreshes_existing_key(self):
        cache = QueryResultCache(capacity=2)
        cache.put(key(1, "a"), "old")
        cache.put(key(1, "b"), "B")
        cache.put(key(1, "a"), "new")  # refresh, not insert
        cache.put(key(1, "c"), "C")  # evicts b (a was refreshed)
        assert cache.get(key(1, "a")) == "new"
        assert cache.get(key(1, "b")) is None

    def test_capacity_zero_disables_caching(self):
        cache = QueryResultCache(capacity=0)
        cache.put(key(1, "a"), "A")
        assert cache.get(key(1, "a")) is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            QueryResultCache(capacity=-1)


class TestCounters:
    def test_per_entry_hit_counters(self):
        cache = QueryResultCache(capacity=4)
        cache.put(key(1, "a"), "A")
        cache.put(key(1, "b"), "B")
        for _ in range(3):
            cache.get(key(1, "a"))
        cache.get(key(1, "b"))
        hits = cache.stats().entry_hits
        assert hits[key(1, "a")] == 3
        assert hits[key(1, "b")] == 1

    def test_eviction_drops_entry_counter(self):
        cache = QueryResultCache(capacity=1)
        cache.put(key(1, "a"), "A")
        cache.get(key(1, "a"))
        cache.put(key(1, "b"), "B")  # evicts a
        assert key(1, "a") not in cache.stats().entry_hits

    def test_wholesale_invalidation(self):
        cache = QueryResultCache(capacity=8)
        for q in "abc":
            cache.put(key(1, q), q)
        dropped = cache.invalidate()
        assert dropped == 3
        assert len(cache) == 0
        stats = cache.stats()
        assert stats.invalidations == 1
        assert stats.entries_invalidated == 3
        assert stats.entry_hits == {}
        # Old-snapshot keys miss afterwards.
        assert cache.get(key(1, "a")) is None

    def test_hit_rate(self):
        cache = QueryResultCache(capacity=2)
        cache.put(key(1, "a"), "A")
        cache.get(key(1, "a"))
        cache.get(key(1, "zzz"))
        assert cache.stats().hit_rate == 0.5

    def test_stats_copy_is_detached(self):
        cache = QueryResultCache(capacity=2)
        cache.put(key(1, "a"), "A")
        cache.get(key(1, "a"))
        stats = cache.stats()
        cache.get(key(1, "a"))
        assert stats.hits == 1  # the copy does not track later traffic


class TestThreadSafety:
    def test_concurrent_mixed_operations(self):
        cache = QueryResultCache(capacity=32)
        errors = []

        def worker(worker_id):
            try:
                for i in range(500):
                    k = key(worker_id % 3, f"q{i % 40}")
                    if i % 7 == 0:
                        cache.put(k, (worker_id, i))
                    elif i % 97 == 0:
                        cache.invalidate()
                    else:
                        cache.get(k)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = cache.stats()
        assert stats.lookups == stats.hits + stats.misses
        assert len(cache) <= 32
