"""Gateway unit tests: the shard-worker seam, deadlines, backpressure,
and checkpoint+oplog failover.

The tentpole claims pinned here:

* :class:`ShardProxy` *is* an :class:`IndexShard` — the runtime-checkable
  protocol seam holds across the process boundary, including pinned
  remote clones.
* A per-shard deadline surfaces as the typed partial failure
  :class:`ShardDeadlineExceeded` naming the late shards, and the
  connection survives (the stale response is discarded, not misread as
  the next call's reply).
* Admission control sheds load with :class:`GatewayOverloaded` once the
  bounded wait queue fills — it never queues unboundedly.
* A SIGKILLed worker is rebuilt from the parent-side checkpoint plus the
  replayed op log with no acknowledged operation lost.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.index import IndexConfig
from repro.core.shard import IndexShard
from repro.core.sharded import ShardedTextIndex
from repro.service.gateway import (
    AsyncShardGateway,
    GatewayOverloaded,
    GatewayService,
    RemoteWorkerError,
    ShardDeadlineExceeded,
    ShardProxy,
    WorkerProcess,
)
from repro.service.worker import WorkerSpec


def small_config(**overrides) -> IndexConfig:
    defaults = dict(
        nbuckets=16,
        bucket_size=64,
        block_postings=8,
        ndisks=2,
        nblocks_override=100_000,
        store_contents=True,
    )
    defaults.update(overrides)
    return IndexConfig(**defaults)


DOCS = [
    "apple banana cherry",
    "banana date elderberry",
    "cherry fig grape",
    "apple grape honeydew",
    "kiwi lemon apple banana",
    "mango banana cherry date",
    "nectarine apple fig",
    "banana cherry lemon mango",
]


@pytest.fixture
def worker():
    process = WorkerProcess(
        WorkerSpec(shard_id=0, index_config=small_config())
    )
    yield process
    process.close()


class TestShardProxy:
    def test_satisfies_index_shard_protocol(self, worker):
        assert isinstance(ShardProxy(worker), IndexShard)

    def test_ingest_flush_query(self, worker):
        proxy = ShardProxy(worker)
        for doc_id, text in enumerate(DOCS):
            assert proxy.add_document(text, doc_id) == doc_id
        result = proxy.flush_batch()
        assert result.batch == 0  # the volume's own 0-based batch number
        assert proxy.ndocs == len(DOCS)
        assert proxy.batches == 1
        assert proxy.shard_versions == (1,)
        answer = proxy.search_boolean("apple AND banana")
        assert answer.doc_ids == [0, 4]
        assert proxy.fetch_postings("banana")[0] == [0, 1, 4, 5, 7]

    def test_matches_local_index_exactly(self, worker):
        from repro.textindex import TextDocumentIndex

        proxy = ShardProxy(worker)
        local = TextDocumentIndex(small_config())
        for doc_id, text in enumerate(DOCS):
            proxy.add_document(text, doc_id)
            local.add_document(text)
        proxy.delete_document(2)
        local.delete_document(2)
        proxy.flush_batch()
        local.flush_batch()
        for query in ("apple AND banana", "NOT banana", "fig OR lemon"):
            remote = proxy.search_boolean(query)
            want = local.search_boolean(query)
            assert remote.doc_ids == want.doc_ids
            assert remote.read_ops == want.read_ops

    def test_pinned_clone_is_immutable(self, worker):
        proxy = ShardProxy(worker)
        for doc_id, text in enumerate(DOCS[:3]):
            proxy.add_document(text, doc_id)
        proxy.flush_batch()
        pinned = proxy.clone()
        before = pinned.search_boolean("cherry").doc_ids
        proxy.add_document("cherry cherry cherry", 3)
        proxy.flush_batch()
        # The live proxy sees the new document; the pin does not.
        assert 3 in proxy.search_boolean("cherry").doc_ids
        assert pinned.search_boolean("cherry").doc_ids == before
        pinned.release()

    def test_clone_incremental_matches_clone(self, worker):
        proxy = ShardProxy(worker)
        proxy.add_document(DOCS[0], 0)
        proxy.flush_batch()
        pinned = proxy.clone_incremental(None, None)
        assert pinned.search_boolean("apple").doc_ids == [0]
        pinned.release()

    def test_check_and_dirty_terms_cross_the_wire(self, worker):
        proxy = ShardProxy(worker)
        proxy.add_document(DOCS[0], 0)
        proxy.flush_batch()
        report = proxy.check()
        assert report.ok and report.checks > 0
        assert proxy.dirty_terms() == frozenset()

    def test_remote_errors_are_typed(self, worker):
        proxy = ShardProxy(worker)
        with pytest.raises(RemoteWorkerError, match="ValueError"):
            proxy.delete_document(999)
        with pytest.raises(RemoteWorkerError, match="UnknownMethod"):
            worker.call("no_such_method")
        # The connection survives a handler error.
        assert proxy.ndocs == 0


def run_gateway(coro_fn, **gateway_kwargs):
    """Run an async test body against a started gateway, then close it."""

    async def main():
        gateway_kwargs.setdefault("config", small_config())
        gateway = AsyncShardGateway(**gateway_kwargs)
        await gateway.start()
        try:
            return await coro_fn(gateway)
        finally:
            await gateway.close()

    return asyncio.run(main())


class TestDeadlines:
    def test_slow_shard_raises_typed_partial_failure(self):
        async def body(gateway):
            with pytest.raises(ShardDeadlineExceeded) as info:
                await gateway.ping(shard=0, delay=1.0, timeout=0.1)
            assert info.value.shards == (0,)
            assert gateway.stats.deadline_exceeded == 1
            # The stale response is discarded: the next call on the same
            # connection gets its own reply, not the sleeper's.
            pong = await gateway.ping(shard=0)
            assert pong["shard"] == 0

        run_gateway(body, shards=2)

    def test_deadline_covers_queue_wait(self):
        async def body(gateway):
            # Occupy the single-threaded worker; the query behind it
            # must count its wait against the deadline.
            sleeper = asyncio.create_task(
                gateway.ping(shard=0, delay=0.6)
            )
            await asyncio.sleep(0.05)
            gateway.shard_timeout_s = 0.15
            with pytest.raises(ShardDeadlineExceeded) as info:
                await gateway.search_boolean("apple AND banana")
            assert 0 in info.value.shards
            await sleeper

        run_gateway(body, shards=2)


class TestAdmissionControl:
    def test_bounded_queue_sheds_load(self):
        async def body(gateway):
            first = asyncio.create_task(
                gateway.ping(shard=0, delay=0.5, admit=True)
            )
            await asyncio.sleep(0.05)
            second = asyncio.create_task(
                gateway.ping(shard=0, delay=0.0, admit=True)
            )
            await asyncio.sleep(0.05)
            # max_inflight=1 is executing, queue_limit=1 is waiting: the
            # third arrival must be shed immediately, not queued.
            with pytest.raises(GatewayOverloaded):
                await gateway.ping(shard=0, admit=True)
            assert gateway.stats.shed == 1
            await first
            await second

        run_gateway(body, shards=1, max_inflight=1, queue_limit=1)

    def test_admission_recovers_after_drain(self):
        async def body(gateway):
            blocker = asyncio.create_task(
                gateway.ping(shard=0, delay=0.2, admit=True)
            )
            await asyncio.sleep(0.05)
            queued = asyncio.create_task(
                gateway.ping(shard=0, admit=True)
            )
            await asyncio.sleep(0.05)
            with pytest.raises(GatewayOverloaded):
                await gateway.ping(shard=0, admit=True)
            await blocker
            await queued
            # Once the queue drains, admission resumes.
            pong = await gateway.ping(shard=0, admit=True)
            assert pong["shard"] == 0

        run_gateway(body, shards=1, max_inflight=1, queue_limit=1)


class TestFailover:
    def test_sigkill_then_query_recovers_acked_state(self):
        async def body(gateway):
            local = ShardedTextIndex(small_config(), shards=2)
            for text in DOCS:
                await gateway.add_document(text)
                local.add_document(text)
            await gateway.flush()
            local.flush_batch()
            # Unflushed tail: these live only in worker memory + oplog.
            await gateway.add_document("papaya quince apple")
            local.add_document("papaya quince apple")
            gateway.workers[0].process.kill()
            gateway.workers[1].process.kill()
            answer = await gateway.search_boolean("apple AND banana")
            want = local.search_boolean("apple AND banana")
            assert answer.doc_ids == want.doc_ids
            assert gateway.stats.failovers == 2
            # The unflushed tail survived the murder: flush and see it.
            await gateway.flush()
            local.flush_batch()
            got = await gateway.search_boolean("papaya")
            assert got.doc_ids == local.search_boolean("papaya").doc_ids
            report = await gateway.check()
            assert report.ok

        run_gateway(body, shards=2)

    def test_failover_respects_checkpoint_cadence(self):
        async def body(gateway):
            local = ShardedTextIndex(small_config(), shards=2)
            for cycle in range(3):
                for text in DOCS[cycle * 2 : cycle * 2 + 2]:
                    await gateway.add_document(text)
                    local.add_document(text)
                await gateway.flush()
                local.flush_batch()
            # checkpoint_every=2: flush 3's ops are still in the log.
            assert any(len(log) for log in gateway._oplogs)
            gateway.workers[0].process.kill()
            answer = await gateway.search_streamed("banana AND cherry")
            want = local.search_streamed("banana AND cherry")
            assert answer.doc_ids == want.doc_ids
            assert gateway.stats.failovers == 1
            assert gateway.stats.replayed_ops > 0

        run_gateway(body, shards=2, checkpoint_every=2)


class TestGatewayService:
    def test_facade_roundtrip_and_stats(self):
        service = GatewayService(small_config(), shards=2)
        try:
            for text in DOCS:
                service.add_document(text)
            service.delete_document(1)
            result, snapshot = service.flush_and_publish()
            assert result.batch == 1
            assert snapshot.ndocs == len(DOCS)
            assert snapshot.deleted == frozenset({1})
            local = ShardedTextIndex(small_config(), shards=2)
            for text in DOCS:
                local.add_document(text)
            local.delete_document(1)
            local.flush_batch()
            got = service.search_boolean("banana OR fig", snapshot)
            want = local.search_boolean("banana OR fig")
            assert got.doc_ids == want.doc_ids
            assert got.read_ops == want.read_ops
            got = service.search_streamed("apple AND banana")
            want = local.search_streamed("apple AND banana")
            assert got.doc_ids == want.doc_ids
            gv = service.search_vector({"banana": 2.0, "fig": 1.0}, top_k=4)
            lv = local.search_vector({"banana": 2.0, "fig": 1.0}, top_k=4)
            assert [(d.doc_id, d.score) for d in gv] == [
                (d.doc_id, d.score) for d in lv
            ]
            assert service.check().ok
            stats = service.gateway_stats()
            assert stats["publishes"] == 2  # one per dirty shard
            assert stats["failovers"] == 0
            assert service.stats.documents_ingested == len(DOCS)
            assert service.stats.queries_served == 3
        finally:
            service.close()

    def test_close_is_idempotent(self):
        service = GatewayService(small_config(), shards=1)
        service.close()
        service.close()


class TestReplicaVersionGuard:
    """The version-vector guard: a replica lagging the published
    boundary must be excluded from rotation, and an answer whose stamp
    trails the vector must be discarded and the replica resynced."""

    def test_lagging_replica_excluded_from_rotation(self):
        async def body(gateway):
            for text in DOCS[:4]:
                await gateway.add_document(text)
            await gateway.flush()
            rs = gateway._sets[0]
            lagger = rs.replicas[0]
            # Simulate the gateway learning replica 0 trails the
            # published vector: it must leave the read rotation.
            real_version = lagger.version
            lagger.version = rs.expected_version - 1
            assert not rs.eligible(lagger)
            before = gateway.repl.read_failovers
            for _ in range(4):
                got = await gateway.search_streamed("apple AND banana")
                assert got.doc_ids == [0]
            # Every read skipped the lagger (rotation was short-handed).
            assert gateway.repl.read_failovers == before + 4
            lagger.version = real_version
            assert rs.eligible(lagger)

        run_gateway(body, shards=1, replicas=2)

    def test_stale_stamp_discarded_and_replica_resynced(self):
        async def body(gateway):
            for text in DOCS[:3]:
                await gateway.add_document(text)
            await gateway.flush()
            rs = gateway._sets[0]
            victim = rs.replicas[0]
            # Stage a real lag: hide replica 0 from one flush's fan-out,
            # then forge its bookkeeping back to "current" — the shape
            # of a gateway whose ledger lies about a replica's state.
            from repro.service.replication import ReplicaState

            victim.state = ReplicaState.RECOVERING
            victim.rebuild_task = None
            await gateway.add_document(DOCS[3])
            await gateway.flush()  # victim misses this publish
            victim.state = ReplicaState.HEALTHY
            victim.version = rs.expected_version
            victim.log_pos = len(rs.oplog)
            rs._cursor = 0  # next rotation starts at the forged victim
            # "apple OR grape" distinguishes the states: doc 3 ("apple
            # grape honeydew") exists only in the publish the victim
            # missed, so its stale answer would be [0, 2].
            got = await gateway.search_streamed("apple OR grape")
            # The worker's stamp exposed the lie: answer discarded,
            # victim pulled for resync, sibling served the true state.
            assert got.doc_ids == [0, 2, 3]
            assert gateway.repl.stale_discarded == 1
            assert victim.state is not ReplicaState.HEALTHY
            # The resync makes the liar honest again.
            await gateway.quiesce()
            assert victim.state is ReplicaState.HEALTHY
            assert rs.eligible(victim)
            rs._cursor = 0
            got = await gateway.search_streamed("apple OR grape")
            assert got.doc_ids == [0, 2, 3]
            assert gateway.repl.stale_discarded == 1  # no new discards

        run_gateway(body, shards=1, replicas=2, checkpoint_every=100)

    def test_slow_replica_fails_over_to_sibling(self):
        async def body(gateway):
            for text in DOCS[:4]:
                await gateway.add_document(text)
            await gateway.flush()
            # Park replica 0 behind a long debug_sleep; a read under a
            # short deadline must fail over to the idle sibling instead
            # of surfacing the deadline.
            blocker = asyncio.ensure_future(
                gateway.ping(shard=0, replica=0, delay=1.0)
            )
            await asyncio.sleep(0.05)
            gateway.shard_timeout_s = 0.15
            gateway._sets[0]._cursor = 0  # rotation starts at the slug
            got = await gateway.search_streamed("apple AND banana")
            assert got.doc_ids == [0]
            assert gateway.stats.deadline_exceeded >= 1
            assert gateway.repl.read_failovers >= 1
            await blocker

        run_gateway(body, shards=1, replicas=2)

    def test_all_replicas_slow_surfaces_deadline(self):
        async def body(gateway):
            for text in DOCS[:4]:
                await gateway.add_document(text)
            await gateway.flush()
            blockers = [
                asyncio.ensure_future(
                    gateway.ping(shard=0, replica=j, delay=1.0)
                )
                for j in range(2)
            ]
            await asyncio.sleep(0.05)
            gateway.shard_timeout_s = 0.15
            with pytest.raises(ShardDeadlineExceeded) as info:
                await gateway.search_streamed("apple AND banana")
            assert 0 in info.value.shards
            await asyncio.gather(*blockers)
            # Both replicas are alive — slow is not dead.
            got = await gateway.search_streamed("apple AND banana")
            assert got.doc_ids == [0]
            assert gateway.stats.failovers == 0

        run_gateway(body, shards=1, replicas=2)
