"""Replication chaos battery: SIGKILL one replica mid-flush and prove
the shard never stops answering.

PR 6's chaos battery proved a *single-worker* shard recovers from a
mid-flush SIGKILL — at the cost of reads stalling until checkpoint
restore + op-log replay completes.  With ``replicas=2`` the same murder
must be invisible to readers: the surviving replica completes the flush
and keeps serving (zero divergences against the in-process twin, zero
invariant violations) while the victim is rebuilt in the background and
replays its op log.  The test holds the rebuild open
(``_rebuild_hold_s``) to *prove* reads land on the survivor during the
recovery window rather than racing past it.

The k=1 degenerate case is pinned too: without a sibling, a read during
recovery must wait out the rebuild — the full-recovery-latency path the
replication bench quantifies.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.index import IndexConfig
from repro.core.sharded import ShardedTextIndex
from repro.service.gateway import AsyncShardGateway
from repro.service.replication import ReplicaState
from repro.storage.faults import FaultPlan

# One crash point per phase of the mid-flush danger window.
CRASH_POINTS = [
    "index.flush-begin",
    "index.before-word-append",
    "index.before-shadow-flush",
    "index.before-release",
    "index.before-clear",
]

DOCS = [
    "apple banana cherry",
    "banana date elderberry",
    "cherry fig grape",
    "apple grape honeydew",
    "kiwi lemon apple banana",
    "mango banana cherry date",
    "nectarine apple fig",
    "banana cherry lemon mango",
    "papaya quince banana",
    "raspberry apple cherry",
]

QUERIES = [
    "apple AND banana",
    "cherry OR fig",
    "banana AND NOT apple",
    "NOT banana",
]


def crash_config() -> IndexConfig:
    return IndexConfig(
        nbuckets=16,
        bucket_size=64,
        block_postings=8,
        ndisks=2,
        nblocks_override=100_000,
        store_contents=True,
        crash_safe=True,
    )


def _local_twin() -> ShardedTextIndex:
    return ShardedTextIndex(crash_config(), shards=2)


async def _assert_parity(gateway, local, context):
    for query in QUERIES:
        got = await gateway.search_boolean(query)
        want = local.search_boolean(query)
        assert got.doc_ids == want.doc_ids, (context, query)
    for query in QUERIES[:2]:
        got = await gateway.search_streamed(query)
        want = local.search_streamed(query)
        assert got.doc_ids == want.doc_ids, (context, query)


@pytest.mark.slow
@pytest.mark.parametrize("crash_at", CRASH_POINTS)
def test_sigkill_one_replica_mid_flush_survivor_serves(crash_at):
    async def body():
        gateway = AsyncShardGateway(
            crash_config(),
            shards=2,
            replicas=2,
            fault_plans={(0, 0): FaultPlan(crash_at=crash_at, crash_at_hit=1)},
            kill_on_crash=True,
        )
        # Hold every rebuild open long enough that the post-crash reads
        # demonstrably run *during* the recovery window.
        gateway._rebuild_hold_s = 0.5
        await gateway.start()
        try:
            local = _local_twin()
            for text in DOCS[:6]:
                await gateway.add_document(text)
                local.add_document(text)
            await gateway.delete_document(1)
            local.delete_document(1)
            # Replica (0, 0) SIGKILLs itself inside this flush; replica
            # (0, 1) completes it, so the flush returns a real outcome
            # without waiting for the victim's rebuild.
            await gateway.flush()
            local.flush_batch()
            assert gateway.stats.failovers == 1, crash_at
            assert gateway.stats.worker_kills_observed == 1
            victim = gateway._sets[0].replicas[0]
            assert victim.state is ReplicaState.RECOVERING
            # Availability during recovery: every query answers, from
            # the survivor, without waiting for the rebuild.
            await _assert_parity(gateway, local, crash_at)
            assert victim.state is ReplicaState.RECOVERING, (
                "reads should not have waited out the rebuild"
            )
            assert gateway.repl.reads_waited_for_rebuild == 0
            assert gateway.repl.read_failovers > 0
            # The victim comes back: checkpoint restore + op-log replay.
            await gateway.quiesce()
            assert victim.state is ReplicaState.HEALTHY
            assert gateway.repl.rebuilds_completed == 1
            assert gateway.stats.replayed_ops > 0
            # Life goes on, replicated: ingest, flush, full parity, and
            # the rebuilt replica is back in the write fan-out.
            for text in DOCS[6:]:
                await gateway.add_document(text)
                local.add_document(text)
            await gateway.flush()
            local.flush_batch()
            assert gateway.stats.failovers == 1  # no new deaths
            assert gateway.repl.replica_divergences == 0
            await _assert_parity(gateway, local, crash_at)
            report = await gateway.check()
            assert report.ok, report.violations
        finally:
            await gateway.close()

    asyncio.run(body())


@pytest.mark.slow
def test_unreplicated_read_waits_out_recovery():
    """k=1 control arm: a murder with no sibling forces the next read
    to wait for checkpoint restore + replay (PR 6 behavior, the
    full-recovery-latency baseline the bench compares against).  The
    kill is out-of-band so a *read* — not a flush — discovers the
    corpse and pays the wait."""

    async def body():
        gateway = AsyncShardGateway(crash_config(), shards=2, replicas=1)
        await gateway.start()
        try:
            local = _local_twin()
            for text in DOCS[:6]:
                await gateway.add_document(text)
                local.add_document(text)
            await gateway.flush()
            local.flush_batch()
            gateway.kill_replica(0, 0)
            await _assert_parity(gateway, local, "k=1")
            assert gateway.repl.reads_waited_for_rebuild > 0
            assert gateway.repl.rebuilds_completed == 1
            assert (await gateway.check()).ok
        finally:
            await gateway.close()

    asyncio.run(body())


@pytest.mark.slow
def test_kill_replica_between_flushes_is_invisible():
    """An out-of-band SIGKILL (no crash plan — the bench's murder
    weapon) between flushes: reads keep flowing, the next flush fans to
    the survivor, and the rebuilt victim rejoins with zero divergence."""

    async def body():
        gateway = AsyncShardGateway(
            crash_config(), shards=2, replicas=2
        )
        await gateway.start()
        try:
            local = _local_twin()
            for text in DOCS[:5]:
                await gateway.add_document(text)
                local.add_document(text)
            await gateway.flush()
            local.flush_batch()
            gateway.kill_replica(0, 0)
            # The gateway has not noticed yet; the next operations
            # discover the corpse and fail over inline.
            for text in DOCS[5:8]:
                await gateway.add_document(text)
                local.add_document(text)
            await gateway.flush()
            local.flush_batch()
            await _assert_parity(gateway, local, "kill_replica")
            await gateway.quiesce()
            assert gateway.repl.rebuilds_completed == 1
            assert gateway.repl.replica_divergences == 0
            for text in DOCS[8:]:
                await gateway.add_document(text)
                local.add_document(text)
            await gateway.flush()
            local.flush_batch()
            await _assert_parity(gateway, local, "kill_replica post")
            assert (await gateway.check()).ok
        finally:
            await gateway.close()

    asyncio.run(body())


@pytest.mark.slow
def test_checkpoint_deferred_while_victim_rebuilds():
    """The op-log truncation invariant under fire: a checkpoint round
    landing while one replica is mid-rebuild must be deferred (clearing
    the log would orphan the victim's catch-up replay), then succeed
    once the set is whole again."""

    async def body():
        gateway = AsyncShardGateway(
            crash_config(), shards=1, replicas=2, checkpoint_every=1
        )
        gateway._rebuild_hold_s = 0.5
        await gateway.start()
        try:
            for text in DOCS[:4]:
                await gateway.add_document(text)
            await gateway.flush()
            assert gateway._sets[0].oplog == []  # checkpointed + cleared
            gateway.kill_replica(0, 1)
            for text in DOCS[4:7]:
                await gateway.add_document(text)
            await gateway.flush()  # discovers the corpse mid-fan-out
            assert gateway.repl.checkpoints_deferred >= 1
            assert len(gateway._sets[0].oplog) > 0  # log retained
            await gateway.quiesce()
            for text in DOCS[7:]:
                await gateway.add_document(text)
            await gateway.flush()  # whole again: checkpoint + truncate
            assert gateway._sets[0].oplog == []
            assert all(
                r.log_pos == 0 for r in gateway._sets[0].replicas
            )
            assert (await gateway.check()).ok
        finally:
            await gateway.close()

    asyncio.run(body())
