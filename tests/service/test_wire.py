"""Wire-protocol unit tests: framing, corruption, and budget rejection.

The satellite claim: truncated and oversized frames are rejected as
*typed* errors at the framing layer — before a byte of a sick payload
reaches pickle — and a clean EOF between frames is a distinguishable
non-error, because the gateway's failover path keys on exactly that
distinction (peer closed vs. peer died mid-sentence).
"""

from __future__ import annotations

import asyncio
import socket

import pytest

from repro.service import wire


def roundtrip(message):
    return wire.decode(wire.encode(message))


class TestFraming:
    def test_request_roundtrip(self):
        request = wire.Request(7, "search_boolean", ("a AND b", None))
        assert roundtrip(request) == request

    def test_response_roundtrip(self):
        response = wire.Response(7, True, value=[1, 2, 3])
        assert roundtrip(response) == response

    def test_error_response_roundtrip(self):
        response = wire.Response(9, False, error="ValueError: nope")
        assert roundtrip(response) == response

    def test_header_size_is_stable(self):
        # The frame layout is a wire contract; a drive-by struct change
        # must fail a test, not silently desynchronize mixed versions.
        assert wire.HEADER_BYTES == 8
        assert wire.MAGIC == b"RSW1"


class TestRejection:
    def test_bad_magic_rejected(self):
        frame = bytearray(wire.encode(wire.Request(1, "ping")))
        frame[0:4] = b"XXXX"
        with pytest.raises(wire.BadFrame):
            wire.decode(bytes(frame))

    def test_truncated_header_rejected(self):
        with pytest.raises(wire.TruncatedFrame):
            wire.decode_header(b"RS")

    def test_truncated_payload_rejected(self):
        frame = wire.encode(wire.Request(1, "ping"))
        with pytest.raises(wire.TruncatedFrame):
            wire.decode(frame[:-3])

    def test_oversized_encode_rejected_before_send(self):
        big = wire.Request(1, "add_document", ("x" * 4096,))
        with pytest.raises(wire.FrameTooLarge):
            wire.encode(big, max_frame=64)

    def test_oversized_declared_length_rejected(self):
        # The receiver refuses the frame from its header alone.
        header = wire._HEADER.pack(wire.MAGIC, 2**31)
        with pytest.raises(wire.FrameTooLarge):
            wire.decode_header(header, max_frame=1024)


class TestBlockingSocket:
    def test_send_recv_roundtrip(self):
        a, b = socket.socketpair()
        try:
            wire.send_message(a, wire.Request(3, "ping"))
            got = wire.recv_message(b)
            assert got == wire.Request(3, "ping")
        finally:
            a.close()
            b.close()

    def test_clean_eof_between_frames_is_none(self):
        a, b = socket.socketpair()
        wire.send_message(a, wire.Request(3, "ping"))
        a.close()
        try:
            assert wire.recv_message(b) == wire.Request(3, "ping")
            assert wire.recv_message(b) is None  # EOF at a boundary
        finally:
            b.close()

    def test_mid_frame_eof_is_truncated(self):
        a, b = socket.socketpair()
        frame = wire.encode(wire.Request(3, "ping"))
        a.sendall(frame[: len(frame) - 2])
        a.close()
        try:
            with pytest.raises(wire.TruncatedFrame):
                wire.recv_message(b)
        finally:
            b.close()

    def test_oversized_incoming_frame_rejected(self):
        a, b = socket.socketpair()
        try:
            wire.send_message(a, wire.Request(1, "x", ("y" * 512,)))
            with pytest.raises(wire.FrameTooLarge):
                wire.recv_message(b, max_frame=64)
        finally:
            a.close()
            b.close()


class TestAsyncReader:
    def _reader_with(self, data: bytes) -> asyncio.StreamReader:
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return reader

    def test_async_roundtrip(self):
        async def go():
            reader = self._reader_with(
                wire.encode(wire.Response(5, True, value="ok"))
            )
            return await wire.read_message_async(reader)

        assert asyncio.run(go()) == wire.Response(5, True, value="ok")

    def test_async_clean_eof_is_none(self):
        async def go():
            return await wire.read_message_async(self._reader_with(b""))

        assert asyncio.run(go()) is None

    def test_async_mid_header_eof_is_truncated(self):
        async def go():
            return await wire.read_message_async(self._reader_with(b"RS"))

        with pytest.raises(wire.TruncatedFrame):
            asyncio.run(go())

    def test_async_mid_payload_eof_is_truncated(self):
        frame = wire.encode(wire.Request(2, "ping"))

        async def go():
            return await wire.read_message_async(
                self._reader_with(frame[:-1])
            )

        with pytest.raises(wire.TruncatedFrame):
            asyncio.run(go())

    def test_async_oversized_frame_rejected(self):
        frame = wire.encode(wire.Request(1, "x", ("y" * 512,)))

        async def go():
            return await wire.read_message_async(
                self._reader_with(frame), max_frame=64
            )

        with pytest.raises(wire.FrameTooLarge):
            asyncio.run(go())


class TestBatchMessages:
    def test_batch_request_roundtrip(self):
        batch = wire.BatchRequest(
            41,
            (
                wire.Request(0, "fetch_postings", ("wa", None, None)),
                wire.Request(1, "search_streamed", ("wa AND wb", None, None)),
            ),
        )
        assert roundtrip(batch) == batch

    def test_batch_response_roundtrip(self):
        reply = wire.BatchResponse(
            41,
            (
                wire.Response(0, True, value=([1, 2], 3)),
                wire.Response(1, False, error="ValueError: nope"),
            ),
            version=7,
            mem_epoch=2,
        )
        assert roundtrip(reply) == reply
        assert reply.responses[0].ok and not reply.responses[1].ok

    def test_batch_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            batch = wire.BatchRequest(
                5, tuple(wire.Request(i, "ping") for i in range(16))
            )
            wire.send_message(a, batch)
            assert wire.recv_message(b) == batch
        finally:
            a.close()
            b.close()


class TestCopyElimination:
    def test_encode_parts_matches_encode(self):
        message = wire.Request(9, "search_boolean", ("a AND b", None))
        header, payload = wire.encode_parts(message)
        assert header + payload == wire.encode(message)
        assert len(header) == wire.HEADER_BYTES
        assert wire.decode_header(header) == len(payload)

    def test_encode_parts_enforces_frame_budget(self):
        big = wire.Request(1, "add_document", ("x" * 4096,))
        with pytest.raises(wire.FrameTooLarge):
            wire.encode_parts(big, max_frame=64)

    def test_scatter_write_survives_partial_sends(self):
        """A multi-MB payload overflows the socket buffer, forcing
        ``sendmsg`` down its partial-write continuation path; the
        receiver must still see one intact frame."""
        import threading

        a, b = socket.socketpair()
        try:
            blob = b"\x5a" * (4 * 1024 * 1024)
            message = wire.Response(3, True, value=blob)
            received = []

            def drain():
                received.append(wire.recv_message(b))

            t = threading.Thread(target=drain)
            t.start()
            wire.send_message(a, message)
            t.join(timeout=30.0)
            assert received and received[0].value == blob
        finally:
            a.close()
            b.close()

    def test_recv_exact_returns_bytes_like(self):
        """``_recv_exact`` fills one preallocated buffer via
        ``recv_into`` and hands back a bytes-like object ``struct`` and
        ``pickle`` both accept — no chunk list, no join copy."""
        a, b = socket.socketpair()
        try:
            a.sendall(b"abcdef")
            got = wire._recv_exact(b, 6)
            assert isinstance(got, bytearray)
            assert bytes(got) == b"abcdef"
            assert wire._recv_exact(b, 0) == bytearray()
            a.close()
            assert wire._recv_exact(b, 4) is None  # EOF at a boundary
        finally:
            b.close()

    def test_recv_exact_mid_read_eof_is_truncated(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"abc")
            a.close()
            with pytest.raises(wire.TruncatedFrame):
                wire._recv_exact(b, 8)
        finally:
            b.close()
