"""Service-level tests for the immediate read tier (DESIGN.md §14).

The serving claims pinned here:

* read-your-writes: a document is queryable the moment ``add_document``
  returns, deletions hide documents the moment ``delete_document``
  returns — no flush required;
* answers are invariant across the flush boundary (the two-tier merge is
  byte-identical to the post-flush evaluation);
* the result cache keeps immediate-tier entries across *unrelated*
  buffered writes (epoch revalidation) and drops exactly the entries
  whose terms / universe / deletion set the buffer touched;
* :class:`BackgroundMerger` drains the buffer through the ordinary
  flush/publish path without the writer ever calling flush;
* the tier rides the sharded scatter path and the multi-process gateway
  (memory epochs on the shard-version vector).
"""

from __future__ import annotations

import pytest

from repro.core.index import IndexConfig
from repro.query.reference import BruteForceIndex
from repro.service import (
    BackgroundMerger,
    GatewayService,
    LoadConfig,
    LoadGenerator,
    QueryService,
)


def small_config(**overrides) -> IndexConfig:
    defaults = dict(
        nbuckets=16,
        bucket_size=64,
        block_postings=8,
        ndisks=2,
        nblocks_override=100_000,
        store_contents=True,
    )
    defaults.update(overrides)
    return IndexConfig(**defaults)


def immediate_service(**overrides) -> QueryService:
    kwargs = dict(
        cache_capacity=64,
        track_reference=False,
        read_tier="immediate",
    )
    kwargs.update(overrides)
    return QueryService(small_config(), **kwargs)


class TestReadYourWrites:
    def test_add_visible_before_any_flush(self):
        service = immediate_service()
        doc_id = service.add_document("alpha bravo")
        assert service.search_streamed("alpha").doc_ids == [doc_id]
        assert service.search_boolean("alpha AND bravo").doc_ids == [doc_id]
        ranked = service.search_vector({"alpha": 1.0}, top_k=5)
        assert [d.doc_id for d in ranked] == [doc_id]
        # Nothing was published: the snapshot tier still answers empty.
        assert service.search_streamed("alpha", tier="snapshot").doc_ids == []

    def test_delete_hides_before_any_flush(self):
        service = immediate_service()
        a = service.add_document("alpha bravo")
        b = service.add_document("alpha charlie")
        service.flush_and_publish()
        c = service.add_document("alpha delta")
        service.delete_document(a)  # snapshot-resident victim
        service.delete_document(c)  # buffered victim
        assert service.search_streamed("alpha").doc_ids == [b]

    def test_answers_invariant_across_flush(self):
        service = immediate_service()
        for text in (
            "alpha bravo",
            "bravo charlie",
            "alpha charlie delta",
        ):
            service.add_document(text)
        queries = [
            ("boolean", "alpha AND bravo"),
            ("boolean", "alpha AND NOT charlie"),
            ("streamed", "alpha OR delta"),
        ]
        before = {
            q: getattr(service, f"search_{kind}")(q).doc_ids
            for kind, q in queries
        }
        vector_before = [
            (d.doc_id, d.score)
            for d in service.search_vector({"alpha": 1.0, "bravo": 2.0})
        ]
        service.flush_and_publish()
        for kind, q in queries:
            assert getattr(service, f"search_{kind}")(q).doc_ids == before[q]
        vector_after = [
            (d.doc_id, d.score)
            for d in service.search_vector({"alpha": 1.0, "bravo": 2.0})
        ]
        assert vector_after == vector_before

    def test_immediate_tier_requires_configuration(self):
        service = QueryService(small_config(), track_reference=False)
        with pytest.raises(ValueError):
            service.search_streamed("alpha", tier="immediate")
        with pytest.raises(ValueError):
            QueryService(
                small_config(), track_reference=False, read_tier="bogus"
            )


class TestEpochCacheInteraction:
    def test_unrelated_write_revalidates_cached_entry(self):
        service = immediate_service()
        service.add_document("alpha bravo")
        assert service.search_streamed("alpha").doc_ids == [0]
        # A buffered write touching disjoint terms must not recompute
        # the cached answer — the epoch ledger proves it clean.
        service.add_document("zulu yankee")
        assert service.search_streamed("alpha").doc_ids == [0]
        stats = service.cache.stats()
        assert stats.epoch_revalidations >= 1
        assert stats.hits >= 1

    def test_touching_write_invalidates_cached_entry(self):
        service = immediate_service()
        a = service.add_document("alpha bravo")
        assert service.search_streamed("alpha").doc_ids == [a]
        b = service.add_document("alpha charlie")
        assert service.search_streamed("alpha").doc_ids == [a, b]
        assert service.cache.stats().epoch_invalidations >= 1

    def test_delete_invalidates_even_disjoint_entries(self):
        service = immediate_service()
        a = service.add_document("alpha bravo")
        service.add_document("zulu")
        assert service.search_streamed("alpha").doc_ids == [a]
        service.delete_document(1)
        # Deletion dirties every cached entry (the filter is global).
        assert service.search_streamed("alpha").doc_ids == [a]
        assert service.cache.stats().epoch_invalidations >= 1


class TestBackgroundMerger:
    def test_drains_without_writer_flushes(self):
        service = immediate_service()
        merger = BackgroundMerger(
            service, interval=0.005, min_buffered=8
        ).start()
        try:
            ids = [
                service.add_document(f"alpha doc{chr(97 + i % 7)}")
                for i in range(40)
            ]
        finally:
            merger.stop()
        stats = merger.stats()
        assert stats["merges"] >= 1
        assert stats["errors"] == 0
        # Everything drained into the published snapshot...
        assert service.memtier_stats()["buffered_postings"] == 0
        assert (
            service.search_streamed("alpha", tier="snapshot").doc_ids == ids
        )
        # ...and immediate answers were never wrong along the way (spot
        # check the final state).
        assert service.search_streamed("alpha").doc_ids == ids

    def test_requires_an_immediate_service(self):
        service = QueryService(small_config(), track_reference=False)
        with pytest.raises(ValueError):
            BackgroundMerger(service)


class TestShardedImmediate:
    def test_scattered_immediate_answers_match_oracle(self):
        service = immediate_service(shards=3)
        oracle = BruteForceIndex()
        texts = [
            "alpha bravo",
            "bravo charlie",
            "alpha delta echo",
            "delta echo",
            "alpha charlie",
        ]
        for i, text in enumerate(texts):
            doc_id = service.add_document(text)
            oracle.add_document(doc_id, text.split())
            if i == 2:
                service.flush_and_publish()
        service.delete_document(1)
        oracle.delete_document(1)
        for query in ("alpha AND NOT bravo", "bravo OR delta"):
            assert (
                service.search_boolean(query).doc_ids
                == oracle.search_boolean(query)
            ), query
        got = [
            (d.doc_id, d.score)
            for d in service.search_vector({"alpha": 1.0, "echo": 2.0})
        ]
        want = [
            (d.doc_id, d.score)
            for d in oracle.search_vector({"alpha": 1.0, "echo": 2.0})
        ]
        assert got == want


class TestGatewayImmediate:
    def test_cross_process_reads_before_flush(self):
        service = GatewayService(
            small_config(), shards=2, read_tier="immediate"
        )
        try:
            oracle = BruteForceIndex()
            for text in (
                "alpha bravo",
                "bravo charlie",
                "alpha delta",
                "charlie delta echo",
            ):
                doc_id = service.add_document(text)
                oracle.add_document(doc_id, text.split())
            # Nothing flushed: every worker's published snapshot is empty,
            # yet the scattered immediate answers see all four documents.
            for query in ("alpha OR charlie", "alpha AND NOT bravo"):
                assert (
                    service.search_boolean(query).doc_ids
                    == oracle.search_boolean(query)
                ), query
            assert service.search_streamed(
                "bravo AND charlie"
            ).doc_ids == oracle.search_streamed("bravo AND charlie")
            got = [
                (d.doc_id, d.score)
                for d in service.search_vector({"delta": 1.0, "alpha": 1.0})
            ]
            want = [
                (d.doc_id, d.score)
                for d in oracle.search_vector({"delta": 1.0, "alpha": 1.0})
            ]
            assert got == want
            # Publishing moves the buffered epochs onto the version vector.
            service.flush_and_publish()
            assert len(service.gateway.snapshot().mem_epochs) == 2
        finally:
            service.close()


class TestLoadgenImmediate:
    def test_immediate_loadgen_smoke(self):
        report = LoadGenerator(
            LoadConfig(
                readers=2,
                flush_cycles=3,
                docs_per_batch=8,
                vocabulary=30,
                verify=False,
                read_tier="immediate",
                differential=True,
                differential_probes=2,
                delete_every=7,
            )
        ).run()
        assert report.divergences == 0, report.divergence_examples
        assert report.visibility["misses"] == 0
        assert report.visibility["count"] == 3
        assert report.memtier["rebases"] == 3

    def test_background_merge_loadgen_smoke(self):
        report = LoadGenerator(
            LoadConfig(
                readers=2,
                flush_cycles=3,
                docs_per_batch=8,
                vocabulary=30,
                verify=False,
                read_tier="immediate",
                background_merge=True,
                differential=True,
                differential_probes=2,
                pace_s=0.005,
            )
        ).run()
        assert report.divergences == 0, report.divergence_examples
        assert report.visibility["misses"] == 0
        assert report.memtier["merger"]["errors"] == 0
        assert report.memtier["merger"]["merges"] >= 1

    def test_config_rejects_unverifiable_combinations(self):
        with pytest.raises(ValueError):
            LoadConfig(read_tier="immediate")  # verify defaults to True
        with pytest.raises(ValueError):
            LoadConfig(read_tier="bogus", verify=False)
        with pytest.raises(ValueError):
            LoadConfig(verify=False, background_merge=True)
        with pytest.raises(ValueError):
            LoadConfig(
                verify=False,
                read_tier="immediate",
                background_merge=True,
                gateway=True,
            )
        with pytest.raises(ValueError):
            LoadConfig(
                verify=False, read_tier="immediate", crash_every=4
            )
