"""Unit tests for table/series rendering."""

import pytest

from repro.analysis.reporting import format_series, format_table, ratio


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table(
            ("name", "value"),
            [("alpha", 1), ("beta", 22_000)],
            title="T",
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "22,000" in lines[-1]

    def test_float_formats(self):
        out = format_table(("v",), [(0.123456,), (12.34,), (1234.5,)])
        assert "0.123" in out
        assert "12.3" in out
        assert "1,234" in out  # thousands get comma formatting

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [(1,)])

    def test_columns_align(self):
        out = format_table(("col",), [(1,), (100,)])
        data_lines = out.splitlines()[2:]
        assert len({len(line) for line in data_lines}) == 1


class TestFormatSeries:
    def test_downsampling_includes_final(self):
        series = {"a": list(range(100)), "b": [x * 2 for x in range(100)]}
        out = format_series(series, max_points=5)
        assert out.splitlines()[-1].split()[0] == "100"  # final update shown

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            format_series({"a": [1, 2], "b": [1]})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            format_series({"a": []})

    def test_short_series(self):
        out = format_series({"a": [5.0]}, max_points=10)
        assert "5" in out


class TestRatio:
    def test_normal(self):
        assert ratio(10, 4) == 2.5

    def test_zero_denominator(self):
        assert ratio(1, 0) == float("inf")
