"""Unit tests for the §5.4 bottom-line recommendation logic."""

import pytest

from repro.analysis.bottomline import (
    PolicyMeasurement,
    Preference,
    Recommendation,
    bottom_line,
    comparison_table,
)
from repro.core.policy import Limit, Policy, Style


def measurements():
    return [
        PolicyMeasurement(
            Policy.update_optimized(), build_time_s=15.0,
            reads_per_list=18.6, utilization=0.41,
        ),
        PolicyMeasurement(
            Policy.recommended_new(), build_time_s=57.0,
            reads_per_list=2.8, utilization=0.78,
        ),
        PolicyMeasurement(
            Policy.balanced(), build_time_s=72.0,
            reads_per_list=3.3, utilization=0.75,
        ),
        PolicyMeasurement(
            Policy.recommended_whole(), build_time_s=169.0,
            reads_per_list=1.0, utilization=0.89,
        ),
    ]


class TestBottomLine:
    def test_update_preference_picks_fast_but_usable(self):
        rec = bottom_line(measurements(), Preference.UPDATE_TIME)
        # new-0 is fastest but falls below the utilization floor; the
        # recommended new style wins — the paper's own bottom line.
        assert rec.policy == Policy.recommended_new()

    def test_update_preference_without_floor_picks_new0(self):
        rec = bottom_line(
            measurements(), Preference.UPDATE_TIME, min_utilization=0.0
        )
        assert rec.policy == Policy.update_optimized()

    def test_query_preference_picks_whole(self):
        rec = bottom_line(measurements(), Preference.QUERY_TIME)
        assert rec.policy.style is Style.WHOLE

    def test_balanced_prefers_reserved_new(self):
        rec = bottom_line(measurements(), Preference.BALANCED)
        assert rec.policy == Policy.recommended_new()

    def test_reason_is_populated(self):
        rec = bottom_line(measurements(), Preference.QUERY_TIME)
        assert "reads/list" in rec.reason

    def test_floor_relaxes_when_nothing_qualifies(self):
        only_bad = [
            PolicyMeasurement(
                Policy.update_optimized(), 10.0, 20.0, 0.1
            )
        ]
        rec = bottom_line(only_bad, Preference.UPDATE_TIME)
        assert rec.policy == Policy.update_optimized()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bottom_line([], Preference.BALANCED)


class TestComparisonTable:
    def test_sorted_by_build_time(self):
        table = comparison_table(measurements())
        lines = table.splitlines()
        assert lines[3].strip().startswith("new 0")
        assert "whole z" in lines[-1]

    def test_contains_all_columns(self):
        table = comparison_table(measurements())
        for fragment in ("build time", "reads/list", "utilization", "78%"):
            assert fragment in table


class TestMeasurementValidation:
    def test_bounds(self):
        with pytest.raises(ValueError):
            PolicyMeasurement(Policy.balanced(), -1, 1, 0.5)
        with pytest.raises(ValueError):
            PolicyMeasurement(Policy.balanced(), 1, 1, 1.5)
