"""Unit tests for measurement series."""

import pytest

from repro.analysis.metrics import CategoryCounts, UpdateSeries, increasing_slope


class TestCategoryCounts:
    def test_fractions(self):
        counts = CategoryCounts(new=2, bucket=5, long=3)
        assert counts.total == 10
        assert counts.fractions() == (0.2, 0.5, 0.3)

    def test_empty_update(self):
        assert CategoryCounts().fractions() == (0.0, 0.0, 0.0)


class TestUpdateSeries:
    def test_final(self):
        series = UpdateSeries(io_ops=[1, 5, 9])
        assert series.final("io_ops") == 9
        assert series.nupdates == 3

    def test_final_on_empty_raises(self):
        with pytest.raises(ValueError):
            UpdateSeries().final("io_ops")


class TestIncreasingSlope:
    def test_convex_series(self):
        assert increasing_slope([x * x for x in range(20)])

    def test_linear_series_is_not(self):
        assert not increasing_slope(list(range(20)))

    def test_concave_series_is_not(self):
        assert not increasing_slope([x**0.5 for x in range(1, 21)])

    def test_needs_enough_points(self):
        with pytest.raises(ValueError):
            increasing_slope([1, 2, 3])
