"""Unit tests for the serial/parallel list read-time model."""

import pytest

from repro.analysis.readtime import (
    chunk_read_time,
    list_read_time,
    longest_entries,
)
from repro.core.directory import Directory, LongListEntry
from repro.storage.block import Chunk
from repro.storage.profiles import SEAGATE_SCSI_1994

BP = 64


def entry(word, chunks):
    e = LongListEntry(word)
    for disk, nblocks, npostings in chunks:
        e.chunks.append(
            Chunk(disk=disk, start=0, nblocks=nblocks, npostings=npostings)
        )
    return e


class TestChunkReadTime:
    def test_components(self):
        chunk = Chunk(disk=0, start=0, nblocks=4, npostings=200)
        t = chunk_read_time(chunk, SEAGATE_SCSI_1994, BP)
        p = SEAGATE_SCSI_1994
        expected = (
            p.seek_s(p.nblocks // 3)
            + p.rotational_latency_s
            + p.transfer_s(4, False)
        )
        assert t == pytest.approx(expected)

    def test_only_data_blocks_transfer(self):
        # 10 postings in a 4-block chunk: only 1 block is read.
        slim = Chunk(disk=0, start=0, nblocks=4, npostings=10)
        full = Chunk(disk=0, start=0, nblocks=4, npostings=256)
        assert chunk_read_time(slim, SEAGATE_SCSI_1994, BP) < (
            chunk_read_time(full, SEAGATE_SCSI_1994, BP)
        )


class TestListReadTime:
    def test_single_chunk_parallel_equals_serial(self):
        e = entry(1, [(0, 4, 200)])
        serial = list_read_time(e, SEAGATE_SCSI_1994, BP, parallel=False)
        parallel = list_read_time(e, SEAGATE_SCSI_1994, BP, parallel=True)
        assert serial == parallel > 0

    def test_perfect_striping_divides_by_disks(self):
        chunks = [(d, 4, 256) for d in range(4)]
        e = entry(1, chunks)
        serial = list_read_time(e, SEAGATE_SCSI_1994, BP, parallel=False)
        parallel = list_read_time(e, SEAGATE_SCSI_1994, BP, parallel=True)
        assert parallel == pytest.approx(serial / 4)

    def test_skewed_placement_bounded_by_busiest_disk(self):
        e = entry(1, [(0, 4, 256), (0, 4, 256), (1, 4, 256)])
        parallel = list_read_time(e, SEAGATE_SCSI_1994, BP, parallel=True)
        one_chunk = list_read_time(
            entry(2, [(0, 4, 256)]), SEAGATE_SCSI_1994, BP, parallel=True
        )
        assert parallel == pytest.approx(2 * one_chunk)

    def test_empty_entry(self):
        assert list_read_time(
            entry(1, []), SEAGATE_SCSI_1994, BP, parallel=True
        ) == 0.0


class TestLongestEntries:
    def test_ranked_by_postings(self):
        d = Directory()
        for word, n in ((1, 10), (2, 300), (3, 50)):
            e = d.entry(word)
            e.chunks.append(Chunk(disk=0, start=0, nblocks=8, npostings=n))
        top = longest_entries(d, 2)
        assert [e.word for e in top] == [2, 3]
