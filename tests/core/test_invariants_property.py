"""Property test: :func:`check_index` holds after every flush.

Random document batches under random Table-2 policies, in both content
mode (documents via ``add_document``) and count mode (word-occurrence
pairs via ``add_counts``, the evaluation pipeline's path).  The single
property is the one the whole-index checker formalizes: after any flush,
the dual structure satisfies every invariant of §2–§3 — structure
exclusivity, bucket capacity, chunk geometry, allocation partition,
posting conservation, and stats accounting.

This complements ``tests/integration/test_invariants_property.py``, which
asserts a hand-picked subset of invariants inline; here the production
checker itself is the oracle, so any invariant added to it is
automatically property-tested.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.index import DualStructureIndex, IndexConfig
from repro.core.invariants import check_index
from repro.core.policy import Alloc, Limit, Policy, Style

# The Table-2 policy space: every style x limit, plus allocation variants.
policies = st.sampled_from(
    [
        Policy(style=Style.NEW, limit=Limit.ZERO),
        Policy(style=Style.NEW, limit=Limit.Z),
        Policy(style=Style.NEW, limit=Limit.Z, alloc=Alloc.PROPORTIONAL, k=2.0),
        Policy(style=Style.FILL, limit=Limit.ZERO, extent_blocks=2),
        Policy(style=Style.FILL, limit=Limit.Z, extent_blocks=2),
        Policy(style=Style.WHOLE, limit=Limit.ZERO),
        Policy(style=Style.WHOLE, limit=Limit.Z, alloc=Alloc.PROPORTIONAL, k=1.2),
    ]
)

# A small word space forces bucket collisions and long-list migrations.
document = st.lists(
    st.integers(min_value=0, max_value=15), min_size=1, max_size=25
)
document_batches = st.lists(
    st.lists(document, min_size=1, max_size=10), min_size=1, max_size=5
)

count_batch = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=1, max_value=40),
    ),
    min_size=1,
    max_size=20,
)
count_batches = st.lists(count_batch, min_size=1, max_size=5)

SETTINGS = settings(
    deadline=None,
    max_examples=40,
    suppress_health_check=[HealthCheck.too_slow],
)


@SETTINGS
@given(policy=policies, batches=document_batches)
def test_content_mode_invariants_after_every_flush(policy, batches):
    index = DualStructureIndex(
        IndexConfig(
            policy=policy, store_contents=True, nbuckets=4, bucket_size=24
        )
    )
    for batch in batches:
        for doc in batch:
            index.add_document(doc)
        index.flush_batch()
        check_index(index).raise_if_failed()


@SETTINGS
@given(policy=policies, batches=count_batches)
def test_count_mode_invariants_after_every_flush(policy, batches):
    index = DualStructureIndex(
        IndexConfig(policy=policy, nbuckets=4, bucket_size=24)
    )
    for batch in batches:
        index.add_counts(batch)
        index.flush_batch()
        check_index(index).raise_if_failed()


@SETTINGS
@given(policy=policies, batches=document_batches)
def test_crash_safe_mode_preserves_invariants(policy, batches):
    """crash_safe bookkeeping (snapshots + recovery points) must not
    perturb the on-disk structures."""
    index = DualStructureIndex(
        IndexConfig(
            policy=policy,
            store_contents=True,
            nbuckets=4,
            bucket_size=24,
            crash_safe=True,
        )
    )
    for batch in batches:
        for doc in batch:
            index.add_document(doc)
        index.flush_batch()
        check_index(index).raise_if_failed()
