"""Unit tests for checkpoint/restore."""

import io

import pytest

from repro.core import checkpoint
from repro.core.checkpoint import CheckpointError
from repro.core.index import DualStructureIndex, IndexConfig
from repro.core.policy import Limit, Policy, Style


def make_index(**overrides):
    defaults = dict(
        nbuckets=8,
        bucket_size=64,
        block_postings=16,
        ndisks=2,
        nblocks_override=50_000,
        store_contents=True,
    )
    defaults.update(overrides)
    return DualStructureIndex(IndexConfig(**defaults))


def populate(idx, batches=6, docs=15):
    for batch in range(batches):
        for doc in range(docs):
            idx.add_document([1, 2, 3 + (batch * docs + doc) % 25])
        idx.flush_batch()
    return idx


class TestRoundtrip:
    def test_directory_and_buckets_survive(self):
        idx = populate(make_index())
        restored = checkpoint.roundtrip(idx)
        assert sorted(restored.directory.words()) == sorted(
            idx.directory.words()
        )
        assert restored.buckets.total_units == idx.buckets.total_units
        assert restored.stats() == idx.stats()

    def test_queries_work_after_restore(self):
        idx = populate(make_index())
        expected = {w: idx.fetch(w)[0].doc_ids for w in (1, 2, 3, 10)}
        restored = checkpoint.roundtrip(idx)
        for word, docs in expected.items():
            assert restored.fetch(word)[0].doc_ids == docs

    def test_updates_continue_after_restore(self):
        idx = populate(make_index())
        restored = checkpoint.roundtrip(idx)
        before = restored.posting_count(1)
        restored.add_document([1])
        restored.flush_batch()
        assert restored.posting_count(1) == before + 1

    def test_counters_survive(self):
        idx = populate(make_index())
        restored = checkpoint.roundtrip(idx)
        assert (
            restored.longlists.counters.in_place_updates
            == idx.longlists.counters.in_place_updates
        )
        assert restored.longlists.counters.appends == (
            idx.longlists.counters.appends
        )

    def test_free_space_maps_survive(self):
        idx = populate(make_index())
        restored = checkpoint.roundtrip(idx)
        assert [d.free_blocks for d in restored.array.disks] == [
            d.free_blocks for d in idx.array.disks
        ]

    def test_policy_survives(self):
        idx = populate(
            make_index(policy=Policy(style=Style.WHOLE, limit=Limit.ZERO))
        )
        restored = checkpoint.roundtrip(idx)
        assert restored.config.policy == idx.config.policy

    def test_size_only_mode_roundtrips(self):
        idx = make_index(store_contents=False)
        for _ in range(4):
            idx.add_counts([(1, 40), (2, 3)])
            idx.flush_batch()
        restored = checkpoint.roundtrip(idx)
        assert restored.stats() == idx.stats()


class TestFileIO:
    def test_save_load_path(self, tmp_path):
        idx = populate(make_index())
        path = tmp_path / "index.ckpt"
        checkpoint.save(idx, path)
        restored = checkpoint.load(path)
        assert restored.stats() == idx.stats()


class TestErrors:
    def test_dirty_memory_rejected(self):
        idx = make_index()
        idx.add_document([1])
        with pytest.raises(CheckpointError, match="empty in-memory batch"):
            checkpoint.save(idx, io.BytesIO())

    def test_bad_magic_rejected(self):
        with pytest.raises(CheckpointError, match="not a dual-structure"):
            checkpoint.load(io.BytesIO(b"NOPE" + b"\x01"))

    def test_truncated_rejected(self):
        idx = populate(make_index(), batches=2)
        buf = io.BytesIO()
        checkpoint.save(idx, buf)
        truncated = io.BytesIO(buf.getvalue()[: len(buf.getvalue()) // 2])
        with pytest.raises(CheckpointError):
            checkpoint.load(truncated)

    def test_buddy_allocator_rejected(self):
        idx = make_index(allocator="buddy", nblocks_override=65_536)
        idx.add_document([1])
        idx.flush_batch()
        with pytest.raises(CheckpointError, match="buddy"):
            checkpoint.save(idx, io.BytesIO())
