"""Cross-mode consistency: count mode must mirror content mode exactly.

The evaluation pipeline runs the index in count mode (``CountPostings``
via ``add_counts``) while retrieval runs it in content mode
(``DocPostings`` via ``add_document``).  The paper's figures are computed
from the count-mode runs, so the two modes must agree not just on final
state but *per batch*: same :class:`BatchResult` numbers, same directory
list sizes, and the same I/O trace length for every batch.  A divergence
would mean the reported update costs do not describe the index users
actually query.
"""

import random

import pytest

from repro.core.index import DualStructureIndex, IndexConfig
from repro.core.invariants import check_index
from repro.core.policy import Limit, Policy, Style

POLICIES = [
    ("new", Policy(style=Style.NEW, limit=Limit.Z)),
    ("whole", Policy(style=Style.WHOLE, limit=Limit.Z)),
    ("fill", Policy(style=Style.FILL, limit=Limit.Z)),
]


def seeded_batches(nbatches=8, seed=271):
    rng = random.Random(seed)
    return [
        [
            [rng.randrange(16) for _ in range(rng.randrange(4, 28))]
            for _ in range(12)
        ]
        for _ in range(nbatches)
    ]


def counts_for(batch):
    """The count-mode image of a document batch: one posting per distinct
    word per document, exactly what ``InMemoryIndex.add_document`` keeps."""
    totals: dict[int, int] = {}
    for doc in batch:
        for word in set(doc):
            totals[word] = totals.get(word, 0) + 1
    return sorted(totals.items())


def make_index(policy, store_contents):
    return DualStructureIndex(
        IndexConfig(
            policy=policy,
            store_contents=store_contents,
            nbuckets=4,
            bucket_size=24,
        )
    )


@pytest.mark.parametrize("pname,policy", POLICIES, ids=[p[0] for p in POLICIES])
def test_count_and_doc_modes_agree_per_batch(pname, policy):
    batches = seeded_batches()
    content = make_index(policy, store_contents=True)
    counts = make_index(policy, store_contents=False)

    for batch_no, batch in enumerate(batches):
        for doc in batch:
            content.add_document(doc)
        counts.add_counts(counts_for(batch))

        content_result = content.flush_batch()
        counts_result = counts.flush_batch()
        assert content_result == counts_result, (
            f"{pname}: batch {batch_no} BatchResult diverges between modes"
        )

        # Same long-list shape, word by word.
        content_dir = {
            e.word: (e.npostings, e.nchunks)
            for e in content.directory.entries()
        }
        counts_dir = {
            e.word: (e.npostings, e.nchunks)
            for e in counts.directory.entries()
        }
        assert content_dir == counts_dir, f"{pname}: batch {batch_no}"

        check_index(content).raise_if_failed()
        check_index(counts).raise_if_failed()

    # Identical per-batch I/O trace lengths (and identical ops: count mode
    # must schedule exactly the writes content mode performs).
    content_batches = list(content.trace.batches())
    counts_batches = list(counts.trace.batches())
    assert len(content_batches) == len(counts_batches)
    for batch_no, (a, b) in enumerate(zip(content_batches, counts_batches)):
        assert len(a) == len(b), (
            f"{pname}: batch {batch_no} trace lengths differ "
            f"({len(a)} vs {len(b)})"
        )
        assert a == b, f"{pname}: batch {batch_no} trace ops differ"

    assert content.stats() == counts.stats()
