"""Unit tests for filter-and-sweep document deletion (paper §3)."""

import pytest

from repro.core.deletion import DeletionManager
from repro.core.index import DualStructureIndex, IndexConfig
from repro.core.policy import Alloc, Limit, Policy, Style


def make_index(policy=None, **overrides):
    defaults = dict(
        nbuckets=4,
        bucket_size=48,
        block_postings=8,
        ndisks=2,
        nblocks_override=200_000,
        store_contents=True,
    )
    if policy is not None:
        defaults["policy"] = policy
    defaults.update(overrides)
    return DualStructureIndex(IndexConfig(**defaults))


def populate(index, batches=6, docs_per_batch=10):
    doc = 0
    for _ in range(batches):
        for _ in range(docs_per_batch):
            # Word 1 is hot (every doc); words 2..6 rotate.
            index.add_document([1, 2 + doc % 5], doc_id=doc)
            doc += 1
        index.flush_batch()
    return index


class TestFilter:
    def test_delete_hides_document_immediately(self):
        index = populate(make_index())
        mgr = DeletionManager(index)
        mgr.delete(3)
        docs, _ = index.fetch(1)
        assert 3 in docs.doc_ids  # raw index unchanged
        assert 3 not in mgr.filter(docs.doc_ids)

    def test_filter_preserves_order(self):
        index = populate(make_index())
        mgr = DeletionManager(index)
        mgr.delete(5)
        mgr.delete(2)
        filtered = mgr.filter([1, 2, 3, 5, 8])
        assert filtered == [1, 3, 8]

    def test_empty_filter_is_cheap_identity(self):
        index = populate(make_index())
        mgr = DeletionManager(index)
        assert mgr.filter([1, 2]) == [1, 2]

    def test_delete_validates_doc_id(self):
        index = populate(make_index())
        mgr = DeletionManager(index)
        with pytest.raises(ValueError):
            mgr.delete(-1)
        with pytest.raises(ValueError):
            mgr.delete(index.ndocs)

    def test_requires_content_mode(self):
        index = make_index(store_contents=False)
        with pytest.raises(ValueError):
            DeletionManager(index)


class TestSweep:
    @pytest.mark.parametrize(
        "policy",
        [
            Policy(style=Style.NEW, limit=Limit.Z),
            Policy(style=Style.FILL, limit=Limit.Z, extent_blocks=2),
            Policy(
                style=Style.WHOLE, limit=Limit.Z, alloc=Alloc.PROPORTIONAL,
                k=1.2,
            ),
        ],
        ids=lambda p: p.name,
    )
    def test_sweep_physically_removes_postings(self, policy):
        index = populate(make_index(policy))
        mgr = DeletionManager(index)
        for doc in (0, 7, 13, 42):
            mgr.delete(doc)
        before = index.directory.total_postings + index.buckets.total_postings
        stats = mgr.sweep_all()
        after = index.directory.total_postings + index.buckets.total_postings
        assert stats.complete
        assert stats.postings_removed > 0
        assert before - after == stats.postings_removed
        # The swept documents are gone from the raw lists.
        docs, _ = index.fetch(1)
        for doc in (0, 7, 13, 42):
            assert doc not in docs.doc_ids

    def test_filter_set_discarded_after_sweep(self):
        index = populate(make_index())
        mgr = DeletionManager(index)
        mgr.delete(1)
        mgr.sweep_all()
        assert mgr.ndeleted == 0

    def test_deletes_during_sweep_survive_it(self):
        index = populate(make_index())
        mgr = DeletionManager(index)
        mgr.delete(1)
        mgr.begin_sweep()
        mgr.delete(2)  # arrives mid-sweep
        while mgr.sweeping:
            mgr.sweep_step()
        assert mgr.deleted == {2}
        # Document 2 is still filtered from answers.
        docs, _ = index.fetch(1)
        assert 2 in docs.doc_ids
        assert 2 not in mgr.filter(docs.doc_ids)

    def test_incremental_steps_bound_work(self):
        index = populate(make_index())
        mgr = DeletionManager(index)
        mgr.delete(0)
        queued = mgr.begin_sweep()
        stats = mgr.sweep_step(max_lists=2)
        assert stats.lists_swept == 2
        assert stats.lists_remaining == queued - 2
        assert mgr.sweeping

    def test_sweep_can_empty_a_list_entirely(self):
        index = make_index()
        index.add_document([9], doc_id=0)
        index.flush_batch()
        mgr = DeletionManager(index)
        mgr.delete(0)
        mgr.sweep_all()
        docs, _ = index.fetch(9)
        assert docs.doc_ids == []
        assert not index.buckets.contains(9)

    def test_sweep_requires_begin(self):
        mgr = DeletionManager(populate(make_index()))
        with pytest.raises(RuntimeError):
            mgr.sweep_step()

    def test_double_begin_rejected(self):
        mgr = DeletionManager(populate(make_index()))
        mgr.delete(0)
        mgr.begin_sweep()
        with pytest.raises(RuntimeError):
            mgr.begin_sweep()

    def test_updates_continue_after_sweep(self):
        index = populate(make_index())
        mgr = DeletionManager(index)
        mgr.delete(0)
        mgr.sweep_all()
        next_doc = index.ndocs
        index.add_document([1], doc_id=next_doc)
        index.flush_batch()
        docs, _ = index.fetch(1)
        assert docs.doc_ids[-1] == next_doc

    def test_space_reclaimed_after_flush(self):
        policy = Policy(style=Style.WHOLE, limit=Limit.ZERO)
        index = populate(make_index(policy), batches=8, docs_per_batch=12)
        mgr = DeletionManager(index)
        # Delete most documents; sweeping should shrink long-list blocks.
        for doc in range(0, index.ndocs, 2):
            mgr.delete(doc)
        blocks_before = index.directory.total_blocks
        mgr.sweep_all()
        index.flush_batch()  # frees the RELEASE list
        assert index.directory.total_blocks <= blocks_before


class TestLongListRewrite:
    def test_rewrite_unknown_word_raises(self):
        index = populate(make_index())
        from repro.core.postings import DocPostings

        with pytest.raises(KeyError):
            index.longlists.rewrite(99_999, DocPostings([1]))

    def test_rewrite_empty_removes_entry(self):
        index = populate(make_index())
        from repro.core.postings import DocPostings

        word = next(iter(index.directory.words()))
        index.longlists.rewrite(word, DocPostings())
        assert word not in index.directory
