"""Property-based checkpoint tests: random states roundtrip exactly."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import checkpoint
from repro.core.index import DualStructureIndex, IndexConfig
from repro.core.policy import Alloc, Limit, Policy, Style

policies = st.sampled_from(
    [
        Policy(style=Style.NEW, limit=Limit.ZERO),
        Policy(style=Style.NEW, limit=Limit.Z),
        Policy.adaptive_new(),
        Policy(style=Style.FILL, limit=Limit.Z, extent_blocks=2),
        Policy(
            style=Style.WHOLE, limit=Limit.Z, alloc=Alloc.PROPORTIONAL, k=1.2
        ),
    ]
)

batches_strategy = st.lists(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10),  # word
            st.lists(
                st.integers(min_value=0, max_value=10),
                min_size=1,
                max_size=4,
            ),  # extra words per doc
        ),
        min_size=1,
        max_size=6,
    ),
    min_size=1,
    max_size=5,
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(policy=policies, batches=batches_strategy)
def test_random_states_roundtrip(policy, batches):
    index = DualStructureIndex(
        IndexConfig(
            nbuckets=2,
            bucket_size=24,
            block_postings=4,
            ndisks=2,
            nblocks_override=100_000,
            store_contents=True,
            policy=policy,
        )
    )
    doc_id = 0
    for batch in batches:
        for word, extras in batch:
            index.add_document([word] + extras, doc_id=doc_id)
            doc_id += 1
        index.flush_batch()
    restored = checkpoint.roundtrip(index)

    assert restored.stats() == index.stats()
    words = set(index.directory.words()) | set(index.buckets.words())
    for word in words:
        assert restored.fetch(word)[0] == index.fetch(word)[0]
    for a, b in zip(index.array.disks, restored.array.disks):
        assert list(a.freelist.intervals()) == list(b.freelist.intervals())
    # Continued ingestion behaves identically on both copies.
    index.add_document([0, 1], doc_id=doc_id)
    restored.add_document([0, 1], doc_id=doc_id)
    index.flush_batch()
    restored.flush_batch()
    assert restored.fetch(0)[0] == index.fetch(0)[0]
