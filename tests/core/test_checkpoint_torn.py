"""Torn checkpoints: a truncated image must fail loudly, never load.

A crash during checkpointing leaves a prefix of the image on disk.  The
DSIX format's framed readers (``_r_u32`` .. ``_r_chunk``) must reject any
short read with :class:`CheckpointError` — a checkpoint that silently
loads from a prefix would resurrect a corrupt index, which is worse than
the crash it was meant to survive.  Truncation is swept at every 1/8
boundary of the image (plus the empty and off-by-one-byte cases) so tears
land inside every section of the format, not just at its tail.
"""

import io
import random

import pytest

from repro.core import checkpoint
from repro.core.checkpoint import CheckpointError
from repro.core.index import DualStructureIndex, IndexConfig
from repro.core.policy import Limit, Policy, Style


def checkpointed_index_bytes():
    index = DualStructureIndex(
        IndexConfig(
            policy=Policy(style=Style.NEW, limit=Limit.Z),
            store_contents=True,
            nbuckets=4,
            bucket_size=16,
        )
    )
    rng = random.Random(42)
    for _ in range(4):
        for _ in range(10):
            index.add_document(
                [rng.randrange(12) for _ in range(rng.randrange(5, 25))]
            )
        index.flush_batch()
    buf = io.BytesIO()
    checkpoint.save(index, buf)
    return index, buf.getvalue()


INDEX, IMAGE = checkpointed_index_bytes()


def test_full_image_round_trips():
    restored = checkpoint.load(io.BytesIO(IMAGE))
    assert restored.stats() == INDEX.stats()


@pytest.mark.parametrize("eighths", range(8))
def test_truncation_at_every_eighth_boundary(eighths):
    cut = len(IMAGE) * eighths // 8
    with pytest.raises(CheckpointError):
        checkpoint.load(io.BytesIO(IMAGE[:cut]))


def test_truncation_one_byte_short():
    with pytest.raises(CheckpointError):
        checkpoint.load(io.BytesIO(IMAGE[:-1]))


@pytest.mark.parametrize("cut", [1, 2, 3, 5, 7, 11])
def test_truncation_inside_header(cut):
    with pytest.raises(CheckpointError):
        checkpoint.load(io.BytesIO(IMAGE[:cut]))
