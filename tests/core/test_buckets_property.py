"""Property-based tests: bucket-manager invariants under random traffic."""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.buckets import BucketManager
from repro.core.postings import CountPostings


class BucketMachine(RuleBasedStateMachine):
    """Random inserts preserve capacity bounds and conserve postings."""

    def __init__(self):
        super().__init__()
        self.manager = BucketManager(nbuckets=3, bucket_size=40)
        self.migrated: dict[int, int] = {}
        self.inserted_postings = 0

    @rule(
        word=st.integers(min_value=1, max_value=30),
        count=st.integers(min_value=1, max_value=25),
    )
    def insert(self, word, count):
        # Mirror the real pipeline: words already promoted bypass buckets.
        if word in self.migrated:
            self.migrated[word] += count
            return
        self.inserted_postings += count
        for mword, payload in self.manager.insert(word, CountPostings(count)):
            self.migrated[mword] = self.migrated.get(mword, 0) + len(payload)

    @invariant()
    def buckets_never_over_capacity(self):
        for bucket in self.manager.buckets:
            assert bucket.size <= bucket.capacity

    @invariant()
    def postings_conserved(self):
        in_buckets = self.manager.total_postings
        # Migrated counts include post-promotion traffic; subtract the
        # postings that never entered the buckets.
        promoted_after = sum(self.migrated.values())
        assert in_buckets <= self.inserted_postings
        assert in_buckets + promoted_after >= self.inserted_postings

    @invariant()
    def words_live_in_their_hash_bucket(self):
        for i, bucket in enumerate(self.manager.buckets):
            for word in bucket.lists:
                assert self.manager.bucket_of(word) == i

    @invariant()
    def no_word_in_two_places(self):
        bucket_words = set(self.manager.words())
        assert not (bucket_words & set(self.migrated))


TestBucketMachine = BucketMachine.TestCase
TestBucketMachine.settings = settings(
    max_examples=40, stateful_step_count=50, deadline=None
)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=20),
            st.integers(min_value=1, max_value=30),
        ),
        max_size=60,
    )
)
def test_eviction_always_picks_a_longest_list(pairs):
    manager = BucketManager(nbuckets=1, bucket_size=50)
    for word, count in pairs:
        bucket = manager.buckets[0]
        before = {w: len(p) for w, p in bucket.lists.items()}
        before[word] = before.get(word, 0) + count
        migrations = manager.insert(word, CountPostings(count))
        if migrations:
            evicted_len = len(migrations[0][1])
            assert evicted_len == max(before.values())
        # Re-sync for next step: drop evicted words from our mirror.
        for mword, _ in migrations:
            before.pop(mword, None)
