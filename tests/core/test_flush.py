"""Unit tests for batch-boundary shadow flushes."""

import pytest

from repro.core.directory import Directory
from repro.core.flush import FlushManager
from repro.storage.block import Chunk
from repro.storage.diskarray import DiskArray, DiskArrayConfig
from repro.storage.disk import DiskFullError
from repro.storage.iotrace import IOTrace, OpKind, Target
from repro.storage.profiles import SEAGATE_SCSI_1994


def make_flusher(ndisks=4, nblocks=10_000):
    array = DiskArray(
        DiskArrayConfig(
            ndisks=ndisks,
            profile=SEAGATE_SCSI_1994,
            nblocks_override=nblocks,
        )
    )
    trace = IOTrace()
    return FlushManager(array, block_postings=64, trace=trace), array, trace


class TestFlush:
    def test_buckets_striped_across_all_disks(self):
        flusher, array, trace = make_flusher(ndisks=4)
        flusher.flush(256, Directory())
        bucket_ops = [
            op for op in trace.ops() if op.target is Target.BUCKET
        ]
        assert len(bucket_ops) == 4
        assert {op.disk for op in bucket_ops} == {0, 1, 2, 3}
        assert all(op.nblocks == 64 for op in bucket_ops)
        assert all(op.kind is OpKind.WRITE for op in bucket_ops)

    def test_directory_written_once(self):
        flusher, _, trace = make_flusher()
        flusher.flush(256, Directory())
        dir_ops = [op for op in trace.ops() if op.target is Target.DIRECTORY]
        assert len(dir_ops) == 1

    def test_directory_size_tracks_chunks(self):
        flusher, _, trace = make_flusher()
        directory = Directory()
        entry = directory.entry(1)
        for i in range(600):  # 600 chunks × 16 B → 3 blocks
            entry.chunks.append(Chunk(disk=0, start=i, nblocks=1, npostings=1))
        flusher.flush(64, directory)
        (dir_op,) = [op for op in trace.ops() if op.target is Target.DIRECTORY]
        assert dir_op.nblocks == 3

    def test_shadow_semantics_allocate_before_free(self):
        flusher, array, _ = make_flusher()
        flusher.flush(256, Directory())
        first_regions = [
            (c.disk, c.start) for c in flusher._bucket_regions
        ]
        resident_after_first = array.allocated_blocks
        flusher.flush(256, Directory())
        second_regions = [
            (c.disk, c.start) for c in flusher._bucket_regions
        ]
        # New regions differ from the old (old freed only after write).
        assert first_regions != second_regions
        # Steady state: same residency, not doubled.
        assert array.allocated_blocks == resident_after_first

    def test_resident_blocks(self):
        flusher, _, _ = make_flusher()
        assert flusher.resident_blocks == 0
        flusher.flush(256, Directory())
        assert flusher.resident_blocks == 256 + 1  # buckets + empty directory

    def test_counters(self):
        flusher, _, _ = make_flusher()
        flusher.flush(256, Directory())
        flusher.flush(256, Directory())
        assert flusher.counters.flushes == 2
        assert flusher.counters.bucket_writes == 8
        assert flusher.counters.directory_writes == 2

    def test_failed_stripe_rolls_back(self):
        flusher, array, _ = make_flusher(ndisks=2, nblocks=100)
        with pytest.raises(DiskFullError):
            flusher.flush(100_000, Directory())
        assert array.allocated_blocks == 0
