"""Unit tests for the immediate-access memory tier (DESIGN.md §14)."""

import threading

import pytest

from repro.core.compression import CODECS
from repro.core.memtier import ActiveSegment, MemTier, SealedSegment


class _Base:
    """A stand-in disk snapshot: the tier only reads ``ndocs``."""

    def __init__(self, ndocs: int) -> None:
        self.ndocs = ndocs


class TestSealedSegment:
    def test_round_trips_every_codec(self):
        lists = {"wa": [0, 3, 7], "wb": [3], "wc": [0, 1, 2, 3]}
        for codec in CODECS:
            segment = SealedSegment(lists, ndocs=4, codec=codec)
            for term, docs in lists.items():
                assert segment.postings(term) == docs, codec
            assert segment.postings("missing") == []
            assert segment.npostings == 8
            assert segment.min_doc == 0
            assert segment.max_doc == 7

    def test_contains_and_terms(self):
        segment = SealedSegment({"wa": [1]}, ndocs=1, codec="delta")
        assert "wa" in segment
        assert "wb" not in segment
        assert set(segment.terms()) == {"wa"}


class TestActiveSegment:
    def test_watermark_slices_out_unpublished_tail(self):
        active = ActiveSegment()
        active.add(0, ["wa", "wb"])
        active.add(1, ["wa"])
        active.add(5, ["wa", "wc"])
        assert active.postings_upto("wa", 1) == [0, 1]
        assert active.postings_upto("wa", 4) == [0, 1]
        assert active.postings_upto("wa", 5) == [0, 1, 5]
        assert active.postings_upto("wc", 1) == []
        assert active.postings_upto("missing", 99) == []


class TestMemTier:
    def test_add_is_immediately_visible(self):
        tier = MemTier()
        tier.add_document(0, ["Alpha", "beta", "alpha"])
        view = tier.view()
        assert view.postings("alpha") == [0]  # lowercased, deduped
        assert view.postings("beta") == [0]
        assert view.ndocs == 1
        assert view.buffered_docs == 1

    def test_doc_ids_must_ascend_past_the_watermark(self):
        tier = MemTier(base=_Base(ndocs=5))
        with pytest.raises(ValueError):
            tier.add_document(4, ["wa"])  # already covered by the base
        tier.add_document(5, ["wa"])
        with pytest.raises(ValueError):
            tier.add_document(5, ["wb"])

    def test_seal_rotates_at_doc_threshold(self):
        tier = MemTier(seal_docs=2)
        tier.add_document(0, ["wa"])
        assert tier.stats()["sealed_segments"] == 0
        tier.add_document(1, ["wa", "wb"])
        stats = tier.stats()
        assert stats["sealed_segments"] == 1
        assert stats["active_docs"] == 0
        assert stats["seals"] == 1
        # Sealed postings still answer, merged with later active ones.
        tier.add_document(2, ["wa"])
        assert tier.view().postings("wa") == [0, 1, 2]

    def test_seal_rotates_at_posting_threshold(self):
        tier = MemTier(seal_docs=1000, seal_postings=3)
        tier.add_document(0, ["wa", "wb"])
        assert tier.stats()["sealed_segments"] == 0
        tier.add_document(1, ["wc"])
        assert tier.stats()["sealed_segments"] == 1

    def test_tombstones_ride_the_view_unfiltered(self):
        tier = MemTier()
        tier.add_document(0, ["wa"])
        tier.delete_document(0)
        view = tier.view()
        # The merge layer filters; the tier just records.
        assert view.postings("wa") == [0]
        assert view.tombstones == frozenset({0})

    def test_old_views_survive_later_mutations(self):
        tier = MemTier(seal_docs=2)
        tier.add_document(0, ["wa"])
        old = tier.view()
        tier.add_document(1, ["wa"])  # triggers a seal
        tier.add_document(2, ["wa"])
        tier.delete_document(0)
        assert old.postings("wa") == [0]
        assert old.tombstones == frozenset()
        assert tier.view().postings("wa") == [0, 1, 2]

    def test_rebase_drops_covered_and_keeps_the_rest(self):
        tier = MemTier(seal_docs=2)
        for doc_id in range(4):
            tier.add_document(doc_id, ["wa"])
        tier.delete_document(1)
        tier.delete_document(3)
        # The publish covered ids [0, 3); id 3 and its tombstone survive.
        tier.rebase(_Base(ndocs=3))
        view = tier.view()
        assert view.postings("wa") == [3]
        assert view.tombstones == frozenset({3})
        assert view.base_ndocs == 3
        assert view.ndocs == 4
        assert tier.stats()["rebases"] == 1
        # A full publish drains everything.
        tier.rebase(_Base(ndocs=4))
        view = tier.view()
        assert view.postings("wa") == []
        assert view.tombstones == frozenset()
        assert view.is_empty()

    def test_rebase_preserves_old_view_contents(self):
        tier = MemTier()
        tier.add_document(0, ["wa"])
        tier.add_document(1, ["wb"])
        old = tier.view()
        tier.rebase(_Base(ndocs=2))
        # The old view still answers from the retired structures.
        assert old.postings("wa") == [0]
        assert old.postings("wb") == [1]

    def test_epoch_ledger_clean_since(self):
        tier = MemTier()
        tier.add_document(0, ["wa"])
        e0 = tier.epoch
        assert tier.clean_since(["wa"], e0, universe_sensitive=False)
        assert tier.clean_since(["wb"], e0, universe_sensitive=False)

        tier.add_document(1, ["wb"])
        # wa untouched since e0; wb and the universe moved.
        assert tier.clean_since(["wa"], e0, universe_sensitive=False)
        assert not tier.clean_since(["wb"], e0, universe_sensitive=False)
        assert not tier.clean_since(["wa"], e0, universe_sensitive=True)

        e1 = tier.epoch
        tier.delete_document(0)
        # A deletion dirties every entry, terms regardless.
        assert not tier.clean_since(["wz"], e1, universe_sensitive=False)

    def test_rebase_resets_the_ledger(self):
        tier = MemTier()
        tier.add_document(0, ["wa"])
        tier.delete_document(0)
        tier.rebase(_Base(ndocs=1))
        # Post-rebase the drained buffer is clean for any older epoch.
        assert tier.clean_since(["wa"], 0, universe_sensitive=True)

    def test_view_ndocs_tracks_the_merged_universe(self):
        tier = MemTier(base=_Base(ndocs=10))
        assert tier.view().ndocs == 10
        assert tier.view().is_empty()
        tier.add_document(12, ["wa"])  # sparse ids (sharded ingest)
        view = tier.view()
        assert view.ndocs == 13
        assert view.buffered_docs == 3

    def test_concurrent_readers_never_see_torn_state(self):
        """Readers hammer view() while the writer ingests and seals; every
        captured answer must be a prefix of the ingest stream."""
        tier = MemTier(seal_docs=8)
        ndocs = 300
        errors: list[str] = []
        stop = threading.Event()

        def read_loop():
            while not stop.is_set():
                view = tier.view()
                docs = view.postings("wa")
                if docs != list(range(len(docs))):
                    errors.append(f"non-prefix answer {docs!r}")
                    return

        readers = [threading.Thread(target=read_loop) for _ in range(4)]
        for thread in readers:
            thread.start()
        for doc_id in range(ndocs):
            tier.add_document(doc_id, ["wa", f"w{chr(97 + doc_id % 7)}"])
        stop.set()
        for thread in readers:
            thread.join()
        assert not errors, errors[:3]
        assert tier.view().postings("wa") == list(range(ndocs))

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            MemTier(codec="no-such-codec")
        with pytest.raises(ValueError):
            MemTier(seal_docs=0)
        with pytest.raises(ValueError):
            MemTier(seal_postings=0)
