"""Unit tests for the in-memory batching index."""

import pytest

from repro.core.memindex import InMemoryIndex
from repro.core.postings import CountPostings, DocPostings


class TestDocuments:
    def test_add_document_dedupes_words(self):
        idx = InMemoryIndex()
        idx.add_document(0, [1, 2, 1, 3, 2])
        assert len(idx) == 3
        assert idx.npostings == 3
        assert idx.get(1).doc_ids == [0]

    def test_postings_accumulate_across_documents(self):
        idx = InMemoryIndex()
        idx.add_document(0, [1, 2])
        idx.add_document(1, [2, 3])
        assert idx.get(2).doc_ids == [0, 1]
        assert idx.ndocs == 2
        assert idx.npostings == 4

    def test_size_units_counts_words_plus_postings(self):
        idx = InMemoryIndex()
        idx.add_document(0, [1, 2])
        idx.add_document(1, [2])
        assert idx.size_units == 2 + 3

    def test_items_sorted_by_word(self):
        idx = InMemoryIndex()
        idx.add_document(0, [9, 1, 5])
        assert [w for w, _ in idx.items()] == [1, 5, 9]

    def test_clear(self):
        idx = InMemoryIndex()
        idx.add_document(0, [1])
        idx.clear()
        assert len(idx) == 0
        assert idx.ndocs == 0
        assert idx.npostings == 0


class TestCounts:
    def test_add_counts(self):
        idx = InMemoryIndex()
        idx.add_counts([(1, 5), (2, 3)])
        idx.add_counts([(1, 2)])
        assert isinstance(idx.get(1), CountPostings)
        assert len(idx.get(1)) == 7
        assert idx.npostings == 10

    def test_nonpositive_count_rejected(self):
        idx = InMemoryIndex()
        with pytest.raises(ValueError):
            idx.add_counts([(1, 0)])

    def test_contains(self):
        idx = InMemoryIndex()
        idx.add_counts([(4, 1)])
        assert 4 in idx
        assert 5 not in idx
