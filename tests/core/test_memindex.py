"""Unit tests for the in-memory batching index."""

import pytest

from repro.core.memindex import InMemoryIndex
from repro.core.postings import CountPostings, DocPostings


class TestDocuments:
    def test_add_document_dedupes_words(self):
        idx = InMemoryIndex()
        idx.add_document(0, [1, 2, 1, 3, 2])
        assert len(idx) == 3
        assert idx.npostings == 3
        assert idx.get(1).doc_ids == [0]

    def test_postings_accumulate_across_documents(self):
        idx = InMemoryIndex()
        idx.add_document(0, [1, 2])
        idx.add_document(1, [2, 3])
        assert idx.get(2).doc_ids == [0, 1]
        assert idx.ndocs == 2
        assert idx.npostings == 4

    def test_size_units_counts_words_plus_postings(self):
        idx = InMemoryIndex()
        idx.add_document(0, [1, 2])
        idx.add_document(1, [2])
        assert idx.size_units == 2 + 3

    def test_items_sorted_by_word(self):
        idx = InMemoryIndex()
        idx.add_document(0, [9, 1, 5])
        assert [w for w, _ in idx.items()] == [1, 5, 9]

    def test_clear(self):
        idx = InMemoryIndex()
        idx.add_document(0, [1])
        idx.clear()
        assert len(idx) == 0
        assert idx.ndocs == 0
        assert idx.npostings == 0


class TestOrderedIterationCache:
    def test_items_stay_sorted_as_words_arrive(self):
        idx = InMemoryIndex()
        idx.add_document(0, [9, 1, 5])
        assert [w for w, _ in idx.items()] == [1, 5, 9]
        # New words invalidate the cached order; appends to existing
        # lists must not.
        idx.add_document(1, [3, 9])
        assert [w for w, _ in idx.items()] == [1, 3, 5, 9]
        idx.add_document(2, [5, 1])
        assert [w for w, _ in idx.items()] == [1, 3, 5, 9]
        assert idx.get(5).doc_ids == [0, 2]

    def test_append_only_batch_reuses_the_cached_order(self):
        idx = InMemoryIndex()
        idx.add_document(0, [2, 1])
        list(idx.items())
        cached = idx._sorted_words
        assert cached == [1, 2]
        idx.add_document(1, [1, 2])  # no new words
        assert idx._sorted_words is cached
        idx.add_document(2, [7])  # new word: stale
        assert idx._sorted_words is None
        assert [w for w, _ in idx.items()] == [1, 2, 7]

    def test_items_by_bucket_matches_word_order_after_cache_reuse(self):
        idx = InMemoryIndex()
        for doc_id, words in enumerate([[4, 8, 15], [16, 23], [42, 4]]):
            idx.add_document(doc_id, words)
        grouped = [
            word
            for _, pairs in idx.items_by_bucket(lambda w: w, 3)
            for word, _ in pairs
        ]
        assert sorted(grouped) == [w for w, _ in idx.items()]

    def test_clear_resets_the_cache(self):
        idx = InMemoryIndex()
        idx.add_document(0, [3, 1])
        list(idx.items())
        idx.clear()
        idx.add_document(0, [2])
        assert [w for w, _ in idx.items()] == [2]


class TestSnapshotRestore:
    def test_restore_round_trips_contents(self):
        idx = InMemoryIndex()
        idx.add_document(0, [1, 2])
        idx.add_document(1, [2, 3])
        snap = idx.snapshot()
        idx.add_document(2, [4])
        idx.restore(snap)
        assert idx.ndocs == 2
        assert idx.npostings == 4
        assert idx.get(4) is None
        assert [w for w, _ in idx.items()] == [1, 2, 3]

    def test_snapshot_payloads_are_independent_of_the_live_index(self):
        idx = InMemoryIndex()
        idx.add_document(0, [1])
        snap = idx.snapshot()
        idx.add_document(1, [1])  # mutates the live payload in place
        assert idx.get(1).doc_ids == [0, 1]
        idx.restore(snap)
        assert idx.get(1).doc_ids == [0]

    def test_restore_moves_payloads_without_recopying(self):
        idx = InMemoryIndex()
        idx.add_document(0, [1])
        snap = idx.snapshot()
        idx.clear()
        idx.restore(snap)
        # Move semantics: the restored payload IS the snapshot's object
        # (the docstring's consumed-once contract).
        assert idx.get(1) is snap[0][0][1]


class TestCounts:
    def test_add_counts(self):
        idx = InMemoryIndex()
        idx.add_counts([(1, 5), (2, 3)])
        idx.add_counts([(1, 2)])
        assert isinstance(idx.get(1), CountPostings)
        assert len(idx.get(1)) == 7
        assert idx.npostings == 10

    def test_nonpositive_count_rejected(self):
        idx = InMemoryIndex()
        with pytest.raises(ValueError):
            idx.add_counts([(1, 0)])

    def test_contains(self):
        idx = InMemoryIndex()
        idx.add_counts([(4, 1)])
        assert 4 in idx
        assert 5 not in idx
