"""ShardedTextIndex: routing, flush modes, recovery, and publication.

The tentpole claims pinned here:

* the router is a pure function of ``(doc_id, nshards, seed)`` — the
  same corpus always lands on the same shards, in any process;
* serial, thread-parallel, and process-parallel flushes produce
  identical search results and identical shard-version vectors (shards
  share no mutable state, so execution order cannot matter);
* a crash inside one shard's flush leaves completed sibling results in
  the in-flight table, and :meth:`recover` replays *only* the crashed
  shard before finishing the same global batch;
* copy-on-write cloning degrades per shard — one unprovable shard falls
  back to a full clone without dragging its siblings along.
"""

import io
import random
from dataclasses import replace

import pytest

from repro.core.checkpoint import CheckpointError
from repro.core.index import IndexConfig
from repro.core.shard import IndexShard, shard_of
from repro.core.sharded import ShardedTextIndex, build_text_index
from repro.storage.faults import FaultPlan, InjectedCrash
from repro.textindex import TextDocumentIndex

WORDS = [f"w{c}" for c in "abcdefghijkl"]


def small_config(**overrides):
    base = dict(
        nbuckets=2,
        bucket_size=24,
        block_postings=4,
        ndisks=2,
        nblocks_override=100_000,
        store_contents=True,
    )
    base.update(overrides)
    return IndexConfig(**base)


def corpus(ndocs=40, seed=7):
    rng = random.Random(seed)
    return [
        " ".join(rng.sample(WORDS, rng.randint(2, 6))) for _ in range(ndocs)
    ]


def build(docs, flush_every=9, **kwargs):
    kwargs.setdefault("config", small_config())
    index = ShardedTextIndex(**kwargs)
    for n, text in enumerate(docs):
        index.add_document(text)
        if n % flush_every == flush_every - 1:
            index.flush_batch()
    index.flush_batch()
    return index


QUERIES = ["wa AND wb", "wa OR wk", "wc AND NOT wd", "(wa OR wb) AND we"]


def answers(index):
    return {q: index.search_boolean(q).doc_ids for q in QUERIES}


class TestRouter:
    def test_stable_and_total(self):
        for seed in (0, 1, 99):
            for doc_id in range(500):
                s = shard_of(doc_id, 4, seed)
                assert 0 <= s < 4
                assert s == shard_of(doc_id, 4, seed)

    def test_seed_changes_partition(self):
        a = [shard_of(d, 4, 0) for d in range(256)]
        b = [shard_of(d, 4, 1) for d in range(256)]
        assert a != b

    def test_spreads_sequential_ids(self):
        # Sequential global ids must not pile onto one shard — every
        # shard of 4 sees a decent slice of 400 docs.
        counts = [0] * 4
        for d in range(400):
            counts[shard_of(d, 4, 0)] += 1
        assert min(counts) > 50

    def test_route_matches_module_function(self):
        index = ShardedTextIndex(small_config(), shards=3, router_seed=5)
        for d in range(64):
            assert index.route(d) == shard_of(d, 3, 5)


class TestConstruction:
    def test_rejects_single_shard(self):
        with pytest.raises(ValueError, match="shards >= 2"):
            ShardedTextIndex(small_config(), shards=1)

    def test_rejects_unknown_executor(self):
        with pytest.raises(ValueError, match="flush_executor"):
            ShardedTextIndex(small_config(), shards=2, flush_executor="mpi")

    def test_build_text_index_dispatch(self):
        assert isinstance(
            build_text_index(small_config(), shards=1), TextDocumentIndex
        )
        sharded = build_text_index(small_config(), shards=3)
        assert isinstance(sharded, ShardedTextIndex)
        assert sharded.nshards == 3
        assert isinstance(sharded, IndexShard)

    def test_satisfies_protocol(self):
        assert isinstance(ShardedTextIndex(small_config()), IndexShard)
        assert isinstance(TextDocumentIndex(small_config()), IndexShard)


class TestIngestAndRouting:
    def test_docs_land_on_routed_shard(self):
        index = build(corpus(30), shards=3)
        for shard_i, shard in enumerate(index.shards):
            # Every doc a shard holds routes back to it.
            for q in WORDS:
                for doc_id in shard.fetch_postings(q)[0]:
                    assert index.route(doc_id) == shard_i

    def test_global_ndocs_and_ids(self):
        docs = corpus(25)
        index = build(docs, shards=4)
        assert index.ndocs == len(docs)
        with pytest.raises(ValueError, match="non-decreasing"):
            index.add_document("wa", doc_id=3)

    def test_delete_routes_and_validates(self):
        index = build(corpus(20), shards=3)
        index.delete_document(11)
        assert 11 in index.shards[index.route(11)].deletions.deleted
        for q in QUERIES:
            assert 11 not in index.search_boolean(q).doc_ids
        with pytest.raises(ValueError):
            index.delete_document(20)

    def test_document_frequency_sums(self):
        docs = corpus(30)
        index = build(docs, shards=3)
        single = TextDocumentIndex(small_config())
        for text in docs:
            single.add_document(text)
        single.flush_batch()
        for w in WORDS:
            assert index.document_frequency(w) == single.document_frequency(w)


class TestFlushModes:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(flush_jobs=1),
            dict(flush_jobs=4, flush_executor="thread"),
            dict(
                flush_jobs=4,
                flush_executor="process",
                config=small_config(crash_safe=False),
            ),
        ],
        ids=["serial", "thread", "process"],
    )
    def test_mode_identical_to_serial(self, kwargs):
        docs = corpus(40)
        baseline = build(docs, shards=3, flush_jobs=1)
        other = build(docs, shards=3, **kwargs)
        assert answers(other) == answers(baseline)
        assert other.shard_versions == baseline.shard_versions
        assert other.ndocs == baseline.ndocs

    def test_empty_shard_version_stands_still(self):
        index = ShardedTextIndex(small_config(), shards=4)
        # Add exactly one document: only its shard's counter may move.
        index.add_document("wa wb")
        owner = index.route(0)
        index.flush_batch()
        for i, v in enumerate(index.shard_versions):
            assert v == (1 if i == owner else 0)
        assert index.batches == 1

    def test_process_mode_refuses_unserializable_config(self):
        index = ShardedTextIndex(
            small_config(crash_safe=True),
            shards=2,
            flush_jobs=2,
            flush_executor="process",
        )
        for text in corpus(12):
            index.add_document(text)
        assert all(len(s.index.memory) for s in index.shards)
        with pytest.raises(ValueError, match="crash_safe"):
            index.flush_batch()

    def test_aggregate_sums_postings(self):
        docs = corpus(20)
        index = ShardedTextIndex(small_config(), shards=3)
        single = TextDocumentIndex(small_config())
        for text in docs:
            index.add_document(text)
            single.add_document(text)
        result = index.flush_batch()
        expected = single.flush_batch()
        # Documents are partitioned, postings are not duplicated: the
        # global batch carries exactly the single-volume posting count.
        assert result.batch == 1
        assert result.npostings == expected.npostings


class TestCrashRecovery:
    def _faulty_sharded(self, crash_on_write=3):
        """Three crash-safe shards; shard 1 carries a write-crash plan."""
        config = small_config(crash_safe=True)
        index = ShardedTextIndex(config, shards=3)
        faulty = replace(
            config, fault_plan=FaultPlan(crash_on_write=crash_on_write)
        )
        index.shards[1] = TextDocumentIndex(faulty)
        return index

    def test_one_faulty_shard_does_not_disturb_siblings(self):
        docs = corpus(36, seed=3)
        clean = build(
            docs,
            flush_every=len(docs) + 1,  # one global batch, like the crash run
            shards=3,
            config=small_config(crash_safe=True),
        )

        index = self._faulty_sharded()
        for text in docs:
            index.add_document(text)
        with pytest.raises(InjectedCrash):
            index.flush_batch()

        # Only the faulty shard needs recovery; its siblings either
        # completed (result parked in the in-flight table) or never
        # started — none of them rolled anything back.
        assert index.needs_recovery
        assert not index.shards[0].needs_recovery
        assert index.shards[1].needs_recovery
        assert not index.shards[2].needs_recovery
        completed = set(index._inflight)
        assert 1 not in completed

        result = index.recover(replay=True)
        assert result is not None
        assert not index.needs_recovery
        assert index.batches == 1

        # Completed siblings were not re-flushed by the replay.
        for i in completed:
            assert index.shards[i].batches == 1
        # And the recovered whole answers exactly like a clean run.
        assert answers(index) == answers(clean)
        assert index.shard_versions == clean.shard_versions

    def test_recover_without_replay_discards_inflight(self):
        index = self._faulty_sharded()
        for text in corpus(36, seed=3):
            index.add_document(text)
        with pytest.raises(InjectedCrash):
            index.flush_batch()
        index.recover(replay=False)
        assert index._inflight == {}
        assert not index.needs_recovery

    def test_recover_requires_crash_safe(self):
        index = ShardedTextIndex(small_config(), shards=2)
        with pytest.raises(RuntimeError, match="crash_safe"):
            index.recover()

    def test_recover_on_healthy_index_is_noop(self):
        index = build(
            corpus(10), shards=2, config=small_config(crash_safe=True)
        )
        assert index.recover(replay=True) is None


class TestPublication:
    def test_clone_is_independent(self):
        index = build(corpus(30), shards=3)
        snap = answers(index)
        clone = index.clone()
        index.add_document("wa wb wc")
        index.flush_batch()
        assert answers(clone) == snap
        assert clone.check().ok

    def test_clone_incremental_matches_clone(self):
        index = build(corpus(30), shards=3)
        prev = index.clone()
        index.delta.clear()
        for text in corpus(12, seed=9):
            index.add_document(text)
        index.flush_batch()
        cow = index.clone_incremental(prev, index.delta)
        assert answers(cow) == answers(index.clone())
        assert cow.check().ok
        assert cow.shard_versions == index.shard_versions

    def test_clone_incremental_rejects_layout_mismatch(self):
        index = build(corpus(10), shards=3)
        other = build(corpus(10), shards=2)
        with pytest.raises(CheckpointError, match="shard layout"):
            index.clone_incremental(other, index.delta)
        reseeded = build(corpus(10), shards=3, router_seed=1)
        with pytest.raises(CheckpointError, match="shard layout"):
            index.clone_incremental(reseeded, index.delta)

    def test_check_prefixes_shard_violations(self):
        index = build(corpus(60), shards=2)
        report = index.check()
        assert report.ok and report.checks > 0
        # Corrupt one shard's directory: the merged report localises it.
        core = index.shards[1].index
        entries = [e for e in core.directory.entries() if e.chunks]
        assert entries, "corpus too small to overflow into long lists"
        entries[0].chunks[0].npostings += 1
        broken = index.check()
        assert not broken.ok
        assert all("shard 1:" in v.detail for v in broken.violations)

    def test_process_flush_keeps_cow_fallback_local(self):
        # A process-mode flush voids CoW coverage for flushed shards;
        # clone_incremental must still succeed by per-shard fallback.
        docs = corpus(24)
        index = build(
            docs,
            shards=3,
            config=small_config(crash_safe=False),
            flush_jobs=3,
            flush_executor="process",
        )
        prev = index.clone()
        index.delta.clear()
        for text in corpus(9, seed=11):
            index.add_document(text)
        index.flush_batch()
        cow = index.clone_incremental(prev, index.delta)
        assert answers(cow) == answers(index.clone())
        assert cow.check().ok

    def test_checkpoint_roundtrip_per_shard(self):
        index = build(corpus(20), shards=2)
        for shard in index.shards:
            buf = io.BytesIO()
            shard.save(buf)
            loaded = TextDocumentIndex.load(io.BytesIO(buf.getvalue()))
            for q in WORDS:
                assert (
                    loaded.fetch_postings(q)[0] == shard.fetch_postings(q)[0]
                )
