"""Unit tests for the long-list directory and its evaluation metrics."""

import pytest

from repro.core.directory import Directory, LongListEntry
from repro.storage.block import Chunk


def chunk(disk=0, start=0, nblocks=1, npostings=10):
    return Chunk(disk=disk, start=start, nblocks=nblocks, npostings=npostings)


class TestEntry:
    def test_aggregates(self):
        e = LongListEntry(7)
        e.chunks.append(chunk(npostings=10, nblocks=1))
        e.chunks.append(chunk(start=5, npostings=30, nblocks=2))
        assert e.npostings == 40
        assert e.nblocks == 3
        assert e.nchunks == 2
        assert e.last_chunk is e.chunks[-1]

    def test_empty_entry(self):
        e = LongListEntry(7)
        assert e.last_chunk is None
        assert e.npostings == 0


class TestDirectory:
    def test_entry_creates_on_demand(self):
        d = Directory()
        assert d.get(1) is None
        e = d.entry(1)
        assert d.get(1) is e
        assert 1 in d
        assert len(d) == 1

    def test_remove(self):
        d = Directory()
        d.entry(1)
        d.remove(1)
        assert 1 not in d

    def test_iteration(self):
        d = Directory()
        for w in (3, 1, 2):
            d.entry(w)
        assert sorted(d.words()) == [1, 2, 3]
        assert len(list(d.entries())) == 3


class TestMetrics:
    def make_directory(self):
        d = Directory()
        e1 = d.entry(1)
        e1.chunks.append(chunk(npostings=64, nblocks=1))
        e2 = d.entry(2)
        e2.chunks.append(chunk(npostings=100, nblocks=2))
        e2.chunks.append(chunk(start=10, npostings=28, nblocks=1))
        return d

    def test_totals(self):
        d = self.make_directory()
        assert d.nwords == 2
        assert d.total_chunks == 3
        assert d.total_postings == 192
        assert d.total_blocks == 4

    def test_avg_reads_is_chunks_over_words(self):
        d = self.make_directory()
        assert d.avg_reads_per_list() == pytest.approx(1.5)

    def test_avg_reads_empty_directory(self):
        assert Directory().avg_reads_per_list() == 0.0

    def test_utilization(self):
        d = self.make_directory()
        # 192 postings in 4 blocks of 64 → 0.75
        assert d.utilization(64) == pytest.approx(0.75)

    def test_utilization_empty_is_one(self):
        # The paper's Figure 9 spikes to 1.0 before any long list exists.
        assert Directory().utilization(64) == 1.0


class TestFlushSizing:
    def test_empty_directory_writes_one_block(self):
        # Figure 6 shows the empty-directory write at trace start.
        assert Directory().flush_blocks(4096) == 1

    def test_grows_with_chunks(self):
        d = Directory()
        e = d.entry(1)
        for i in range(600):
            e.chunks.append(chunk(start=i * 2, npostings=1))
        # 600 chunks × 16 B = 9600 B → 3 blocks of 4096.
        assert d.flush_blocks(4096, entry_bytes=16) == 3
