"""Unit tests for positional/region postings."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.positional import (
    PositionalPosting,
    PositionalPostings,
    Region,
)


def posting(doc, positions=(0,), regions=Region.BODY):
    return PositionalPosting(doc, tuple(positions), regions)


class TestPosting:
    def test_validation(self):
        with pytest.raises(ValueError):
            PositionalPosting(-1, (0,))
        with pytest.raises(ValueError):
            PositionalPosting(0, ())
        with pytest.raises(ValueError):
            PositionalPosting(0, (3, 1))
        with pytest.raises(ValueError):
            PositionalPosting(0, (0,), Region(0))

    def test_region_flags_combine(self):
        p = posting(0, regions=Region.TITLE | Region.BODY)
        assert p.regions & Region.TITLE
        assert p.regions & Region.BODY
        assert not p.regions & Region.AUTHOR


class TestPayloadProtocol:
    def test_len_counts_postings_not_positions(self):
        payload = PositionalPostings(
            [posting(0, (0, 5, 9)), posting(3, (1,))]
        )
        assert len(payload) == 2  # the accounting the policies rely on

    def test_doc_ids(self):
        payload = PositionalPostings([posting(0), posting(4)])
        assert payload.doc_ids == [0, 4]

    def test_extend_keeps_order(self):
        a = PositionalPostings([posting(0)])
        a.extend(PositionalPostings([posting(2)]))
        assert a.doc_ids == [0, 2]
        with pytest.raises(ValueError):
            a.extend(PositionalPostings([posting(2)]))

    def test_split_partitions(self):
        payload = PositionalPostings([posting(d) for d in range(5)])
        head, tail = payload.split(2)
        assert head.doc_ids == [0, 1]
        assert tail.doc_ids == [2, 3, 4]

    def test_copy_independent(self):
        a = PositionalPostings([posting(0)])
        b = a.copy()
        b.extend(PositionalPostings([posting(1)]))
        assert len(a) == 1

    def test_constructor_validates_order(self):
        with pytest.raises(ValueError):
            PositionalPostings([posting(2), posting(1)])

    def test_cannot_mix_kinds(self):
        from repro.core.postings import DocPostings

        with pytest.raises(TypeError):
            PositionalPostings().extend(DocPostings([1]))


class TestCodec:
    def test_roundtrip(self):
        payload = PositionalPostings(
            [
                posting(0, (0, 7, 100), Region.TITLE | Region.BODY),
                posting(5, (3,), Region.AUTHOR),
                posting(1000, (0, 1, 2), Region.ABSTRACT),
            ]
        )
        assert PositionalPostings.decode(payload.encode()) == payload

    def test_empty(self):
        assert PositionalPostings.decode(b"") == PositionalPostings()

    def test_dense_positions_compact(self):
        payload = PositionalPostings(
            [posting(0, tuple(range(100)))]
        )
        assert len(payload.encode()) < 120


positions_strategy = st.lists(
    st.integers(min_value=0, max_value=5000), min_size=1, max_size=20,
    unique=True,
).map(sorted)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10_000),
            positions_strategy,
            st.sampled_from(
                [Region.BODY, Region.TITLE, Region.BODY | Region.AUTHOR]
            ),
        ),
        max_size=30,
        unique_by=lambda t: t[0],
    )
)
def test_codec_roundtrip_property(entries):
    entries.sort(key=lambda t: t[0])
    payload = PositionalPostings(
        [PositionalPosting(d, tuple(p), r) for d, p, r in entries]
    )
    assert PositionalPostings.decode(payload.encode()) == payload


class TestPositionsFor:
    def test_binary_search(self):
        payload = PositionalPostings(
            [posting(d, (d, d + 1)) for d in range(0, 20, 2)]
        )
        assert payload.positions_for(4) == (4, 5)
        assert payload.positions_for(5) is None
        assert payload.positions_for(18) == (18, 19)
        assert payload.positions_for(99) is None
