"""Unit tests for positional document ingestion in the memory index."""

import pytest

from repro.core.memindex import InMemoryIndex
from repro.core.positional import PositionalPostings, Region


def occ(word, position, region=Region.BODY):
    return (word, position, region)


class TestAddDocumentOccurrences:
    def test_positions_collected_per_word(self):
        idx = InMemoryIndex()
        idx.add_document_occurrences(
            0, [occ(1, 0), occ(2, 1), occ(1, 2)]
        )
        payload = idx.get(1)
        assert isinstance(payload, PositionalPostings)
        assert payload.entries[0].positions == (0, 2)
        assert idx.npostings == 2  # one posting per distinct word

    def test_region_flags_or_together(self):
        idx = InMemoryIndex()
        idx.add_document_occurrences(
            0,
            [occ(1, 0, Region.TITLE), occ(1, 5, Region.BODY)],
        )
        regions = idx.get(1).entries[0].regions
        assert regions & Region.TITLE and regions & Region.BODY

    def test_duplicate_positions_deduped(self):
        idx = InMemoryIndex()
        idx.add_document_occurrences(0, [occ(1, 3), occ(1, 3)])
        assert idx.get(1).entries[0].positions == (3,)

    def test_multiple_documents_accumulate(self):
        idx = InMemoryIndex()
        idx.add_document_occurrences(0, [occ(1, 0)])
        idx.add_document_occurrences(1, [occ(1, 7)])
        payload = idx.get(1)
        assert payload.doc_ids == [0, 1]
        assert payload.entries[1].positions == (7,)
        assert idx.ndocs == 2

    def test_size_units_match_plain_accounting(self):
        positional = InMemoryIndex()
        positional.add_document_occurrences(
            0, [occ(1, 0), occ(2, 1), occ(1, 5)]
        )
        plain = InMemoryIndex()
        plain.add_document(0, [1, 2, 1])
        assert positional.size_units == plain.size_units
