"""The §4.3 memory optimization: merging in bucket order is equivalent.

"The cost of maintaining all the buckets in memory during the update
process can be avoided by sorting the in-memory lists into bucket order
and then merging the in-memory list with the buckets, requiring only one
bucket to be in memory at any single point in time."

The paper asserts an implementation doing so "would produce the same set
of long lists"; these tests prove it for our implementation: replaying a
workload bucket-by-bucket yields byte-identical migrations and final
bucket contents.
"""

import random

from repro.core.buckets import BucketManager
from repro.core.memindex import InMemoryIndex
from repro.core.postings import CountPostings


def random_batch(rng, nwords=40):
    idx = InMemoryIndex()
    pairs = {}
    for _ in range(nwords):
        word = rng.randint(1, 30)
        pairs[word] = pairs.get(word, 0) + rng.randint(1, 15)
    idx.add_counts(sorted(pairs.items()))
    return idx


def run_word_order(batches, nbuckets=4, bucket_size=64):
    manager = BucketManager(nbuckets, bucket_size)
    migrations = []
    for batch in batches:
        for word, payload in batch.items():
            for mword, mpayload in manager.insert(word, payload.copy()):
                migrations.append((mword, len(mpayload)))
    return manager, migrations


def run_bucket_order(batches, nbuckets=4, bucket_size=64):
    manager = BucketManager(nbuckets, bucket_size)
    migrations = []
    for batch in batches:
        for _bucket_id, group in batch.items_by_bucket(
            manager.hash_fn, nbuckets
        ):
            for word, payload in group:
                for mword, mpayload in manager.insert(word, payload.copy()):
                    migrations.append((mword, len(mpayload)))
    return manager, migrations


class TestEquivalence:
    def test_same_migrations_and_buckets(self):
        rng = random.Random(5)
        batches = [random_batch(rng) for _ in range(10)]
        by_word, migrations_word = run_word_order(batches)
        by_bucket, migrations_bucket = run_bucket_order(batches)
        # Same long lists created with the same sizes (as multisets in
        # the same per-bucket order; cross-bucket interleaving differs).
        assert sorted(migrations_word) == sorted(migrations_bucket)
        # Identical final bucket contents.
        for a, b in zip(by_word.buckets, by_bucket.buckets):
            assert {w: len(p) for w, p in a.lists.items()} == {
                w: len(p) for w, p in b.lists.items()
            }

    def test_per_bucket_migration_order_identical(self):
        rng = random.Random(9)
        batches = [random_batch(rng) for _ in range(8)]
        manager_probe = BucketManager(4, 64)
        _, migrations_word = run_word_order(batches)
        _, migrations_bucket = run_bucket_order(batches)
        for bucket_id in range(4):
            in_word = [
                m
                for m in migrations_word
                if manager_probe.bucket_of(m[0]) == bucket_id
            ]
            in_bucket = [
                m
                for m in migrations_bucket
                if manager_probe.bucket_of(m[0]) == bucket_id
            ]
            assert in_word == in_bucket


class TestGrouping:
    def test_groups_cover_all_words_once(self):
        idx = InMemoryIndex()
        idx.add_counts([(w, 1) for w in range(1, 21)])
        groups = list(idx.items_by_bucket(lambda w: w, 4))
        seen = [w for _, group in groups for w, _ in group]
        assert sorted(seen) == list(range(1, 21))
        assert [b for b, _ in groups] == sorted({w % 4 for w in range(1, 21)})

    def test_words_sorted_within_group(self):
        idx = InMemoryIndex()
        idx.add_counts([(w, 1) for w in (9, 1, 5, 13)])
        ((bucket_id, group),) = list(idx.items_by_bucket(lambda w: 0, 4))
        assert bucket_id == 0
        assert [w for w, _ in group] == [1, 5, 9, 13]

    def test_empty_index(self):
        assert list(InMemoryIndex().items_by_bucket(lambda w: w, 4)) == []
