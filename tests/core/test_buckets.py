"""Unit tests for buckets and the overflow/eviction algorithm (paper §2)."""

import pytest

from repro.core.buckets import Bucket, BucketManager, modular_hash
from repro.core.postings import CountPostings, DocPostings


class TestBucket:
    def test_size_counts_words_and_postings(self):
        b = Bucket(100)
        b.insert(1, CountPostings(5))
        b.insert(2, CountPostings(3))
        assert b.nwords == 2
        assert b.npostings == 8
        assert b.size == 10  # one unit per word + one per posting

    def test_insert_merges_same_word(self):
        b = Bucket(100)
        b.insert(1, CountPostings(5))
        b.insert(1, CountPostings(3))
        assert b.nwords == 1
        assert len(b.lists[1]) == 8

    def test_insert_copies_payload(self):
        b = Bucket(100)
        payload = CountPostings(5)
        b.insert(1, payload)
        payload.extend(CountPostings(10))
        assert len(b.lists[1]) == 5

    def test_remove_longest_picks_longest(self):
        b = Bucket(100)
        b.insert(1, CountPostings(5))
        b.insert(2, CountPostings(9))
        b.insert(3, CountPostings(2))
        word, payload = b.remove_longest()
        assert word == 2
        assert len(payload) == 9
        assert b.size == 5 + 2 + 2

    def test_remove_longest_ties_break_to_lowest_word(self):
        b = Bucket(100)
        b.insert(7, CountPostings(5))
        b.insert(3, CountPostings(5))
        word, _ = b.remove_longest()
        assert word == 3

    def test_remove_longest_empty_raises(self):
        with pytest.raises(ValueError):
            Bucket(10).remove_longest()

    def test_overflowing_flag(self):
        b = Bucket(10)
        b.insert(1, CountPostings(8))
        assert not b.overflowing  # size 9
        b.insert(2, CountPostings(1))
        assert b.overflowing  # size 11


class TestModularHash:
    def test_is_word_mod_buckets(self):
        h = modular_hash(16)
        assert h(5) == 5
        assert h(21) == 5
        assert h(16) == 0


class TestBucketManager:
    def test_insert_without_overflow_returns_nothing(self):
        mgr = BucketManager(4, 100)
        assert mgr.insert(1, CountPostings(5)) == []
        assert mgr.contains(1)
        assert len(mgr.get(1)) == 5

    def test_overflow_evicts_longest(self):
        mgr = BucketManager(1, 10)
        mgr.insert(1, CountPostings(3))  # size 4
        mgr.insert(2, CountPostings(2))  # size 7
        migrations = mgr.insert(3, CountPostings(4))  # size 12 > 10
        assert [(w, len(p)) for w, p in migrations] == [(3, 4)]
        assert not mgr.contains(3)
        assert mgr.contains(1) and mgr.contains(2)

    def test_cascade_eviction_until_fits(self):
        mgr = BucketManager(1, 10)
        mgr.insert(1, CountPostings(4))  # 5 units
        mgr.insert(2, CountPostings(3))  # 9 units
        migrations = mgr.insert(3, CountPostings(7))  # 17 units
        # Evicts 3 (8 units) → 9 units ≤ 10: one eviction suffices.
        assert [w for w, _ in migrations] == [3]

    def test_giant_list_passes_straight_through(self):
        mgr = BucketManager(2, 10)
        migrations = mgr.insert(1, CountPostings(50))
        assert [(w, len(p)) for w, p in migrations] == [(1, 50)]
        assert mgr.total_units == 0

    def test_words_route_by_hash(self):
        mgr = BucketManager(4, 100)
        mgr.insert(5, CountPostings(1))
        assert mgr.buckets[1].nwords == 1  # 5 mod 4
        assert mgr.bucket_of(5) == 1

    def test_custom_hash_validated(self):
        mgr = BucketManager(4, 100, hash_fn=lambda w: 99)
        with pytest.raises(ValueError):
            mgr.insert(1, CountPostings(1))

    def test_remove(self):
        mgr = BucketManager(4, 100)
        mgr.insert(1, CountPostings(5))
        payload = mgr.remove(1)
        assert len(payload) == 5
        assert not mgr.contains(1)

    def test_occupancy_and_capacity(self):
        mgr = BucketManager(4, 100)
        mgr.insert(1, CountPostings(9))
        assert mgr.capacity_units == 400
        assert mgr.total_units == 10
        assert mgr.occupancy() == pytest.approx(10 / 400)

    def test_words_iterator(self):
        mgr = BucketManager(4, 100)
        for w in (1, 2, 7):
            mgr.insert(w, CountPostings(1))
        assert sorted(mgr.words()) == [1, 2, 7]

    def test_works_with_doc_postings(self):
        mgr = BucketManager(2, 10)
        mgr.insert(1, DocPostings([1, 2, 3]))
        mgr.insert(1, DocPostings([9]))
        assert mgr.get(1).doc_ids == [1, 2, 3, 9]

    def test_flush_blocks_from_bytes(self):
        mgr = BucketManager(nbuckets=256, bucket_size=1024)
        # 256 × 1024 units × 4 B = 1 MiB → 256 blocks of 4 KiB.
        assert mgr.flush_blocks(4096, unit_bytes=4) == 256

    def test_flush_blocks_validation(self):
        mgr = BucketManager(2, 10)
        with pytest.raises(ValueError):
            mgr.flush_blocks(0)


class TestAnimation:
    def test_watched_bucket_records_every_change(self):
        mgr = BucketManager(1, 10)
        mgr.watch(0)
        mgr.insert(1, CountPostings(3))
        mgr.insert(2, CountPostings(6))  # size 11 > 10 → evict 2
        history = mgr.history(0)
        # insert, insert, eviction = 3 samples
        assert len(history) == 3
        assert history[0].nwords == 1 and history[0].npostings == 3
        assert history[1].size == 11
        assert history[2].size == 4  # word 2 evicted

    def test_eviction_shows_downward_spike(self):
        mgr = BucketManager(1, 10)
        mgr.watch(0)
        mgr.insert(1, CountPostings(8))
        mgr.insert(2, CountPostings(7))
        sizes = [s.size for s in mgr.history(0)]
        assert sizes[-1] < sizes[-2]

    def test_unwatched_bucket_has_no_history(self):
        mgr = BucketManager(2, 10)
        mgr.insert(1, CountPostings(1))
        with pytest.raises(KeyError):
            mgr.history(1)

    def test_steps_are_monotonic(self):
        mgr = BucketManager(1, 100)
        mgr.watch(0)
        for w in range(5):
            mgr.insert(w, CountPostings(1))
        steps = [s.step for s in mgr.history(0)]
        assert steps == sorted(steps)
