"""Unit tests for the policy space (the paper's Table 2)."""

import pytest

from repro.core.policy import Alloc, Limit, Policy, Style, figure8_policies


class TestValidation:
    def test_limit_zero_forces_constant_zero(self):
        # Paper §3.1: with Limit = 0 reserved space is never used.
        Policy(style=Style.NEW, limit=Limit.ZERO)  # ok: constant k=0
        with pytest.raises(ValueError):
            Policy(
                style=Style.NEW,
                limit=Limit.ZERO,
                alloc=Alloc.PROPORTIONAL,
                k=1.5,
            )
        with pytest.raises(ValueError):
            Policy(style=Style.NEW, limit=Limit.ZERO, k=100)

    def test_proportional_requires_k_ge_1(self):
        with pytest.raises(ValueError):
            Policy(style=Style.NEW, alloc=Alloc.PROPORTIONAL, k=0.5)

    def test_block_requires_integer_k_ge_1(self):
        with pytest.raises(ValueError):
            Policy(style=Style.NEW, alloc=Alloc.BLOCK, k=0)
        with pytest.raises(ValueError):
            Policy(style=Style.NEW, alloc=Alloc.BLOCK, k=2.5)

    def test_constant_requires_nonnegative_k(self):
        with pytest.raises(ValueError):
            Policy(style=Style.NEW, alloc=Alloc.CONSTANT, k=-1)

    def test_extent_blocks_positive(self):
        with pytest.raises(ValueError):
            Policy(style=Style.FILL, extent_blocks=0)


class TestReservedSpace:
    BP = 64  # postings per block

    def test_constant_adds_k_postings(self):
        p = Policy(style=Style.NEW, alloc=Alloc.CONSTANT, k=100)
        # 50 + 100 = 150 postings → 3 blocks of 64
        assert p.chunk_blocks(50, self.BP) == 3

    def test_constant_zero_rounds_to_blocks(self):
        p = Policy(style=Style.NEW, alloc=Alloc.CONSTANT, k=0)
        assert p.chunk_blocks(1, self.BP) == 1
        assert p.chunk_blocks(65, self.BP) == 2

    def test_block_rounds_to_multiple(self):
        p = Policy(style=Style.NEW, alloc=Alloc.BLOCK, k=4)
        assert p.chunk_blocks(1, self.BP) == 4
        assert p.chunk_blocks(64 * 4, self.BP) == 4
        assert p.chunk_blocks(64 * 4 + 1, self.BP) == 8

    def test_proportional_multiplies(self):
        p = Policy(style=Style.NEW, alloc=Alloc.PROPORTIONAL, k=2.0)
        # 2 × 100 = 200 postings → 4 blocks
        assert p.chunk_blocks(100, self.BP) == 4

    def test_proportional_never_shrinks(self):
        p = Policy(style=Style.NEW, alloc=Alloc.PROPORTIONAL, k=1.0)
        assert p.chunk_blocks(100, self.BP) == 2

    def test_fill_always_extent_size(self):
        p = Policy(style=Style.FILL, extent_blocks=4)
        assert p.chunk_blocks(1, self.BP) == 4
        assert p.chunk_blocks(10_000, self.BP) == 4


class TestInPlaceLimit:
    def test_zero_limit(self):
        p = Policy(style=Style.NEW, limit=Limit.ZERO)
        assert p.in_place_limit(500) == 0

    def test_z_limit_is_slack(self):
        p = Policy(style=Style.NEW, limit=Limit.Z)
        assert p.in_place_limit(500) == 500


class TestNamedPolicies:
    def test_update_optimized(self):
        p = Policy.update_optimized()
        assert p.style is Style.NEW and p.limit is Limit.ZERO

    def test_query_optimized(self):
        p = Policy.query_optimized()
        assert p.style is Style.WHOLE and p.limit is Limit.Z
        assert p.alloc is Alloc.PROPORTIONAL

    def test_balanced(self):
        p = Policy.balanced()
        assert p.style is Style.FILL and p.limit is Limit.Z

    def test_recommended_constants(self):
        assert Policy.recommended_new().k == 2.0
        assert Policy.recommended_whole().k == 1.2


class TestNaming:
    def test_names_are_distinct(self):
        names = [p.name for p in figure8_policies()]
        assert len(names) == len(set(names))

    def test_name_shapes(self):
        assert Policy(style=Style.NEW, limit=Limit.ZERO).name == "new 0"
        assert Policy(style=Style.FILL, limit=Limit.Z).name == "fill z e=4"
        assert (
            Policy.recommended_new().name == "new z prop-2"
        )

    def test_figure8_set(self):
        styles = {(p.style, p.limit) for p in figure8_policies()}
        assert len(styles) == 6  # all style × limit combinations


class TestHashability:
    def test_policies_usable_as_dict_keys(self):
        d = {p: i for i, p in enumerate(figure8_policies())}
        assert len(d) == 6
