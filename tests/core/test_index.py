"""Unit tests for the dual-structure index facade."""

import pytest

from repro.core.index import DualStructureIndex, IndexConfig, WordCategory
from repro.core.policy import Limit, Policy, Style


def make_index(**overrides):
    defaults = dict(
        nbuckets=8,
        bucket_size=64,
        block_postings=16,
        ndisks=2,
        nblocks_override=100_000,
        store_contents=True,
    )
    defaults.update(overrides)
    return DualStructureIndex(IndexConfig(**defaults))


class TestIngest:
    def test_doc_ids_assigned_in_order(self):
        idx = make_index()
        assert idx.add_document([1, 2]) == 0
        assert idx.add_document([2]) == 1
        assert idx.ndocs == 2

    def test_explicit_doc_ids_must_not_regress(self):
        idx = make_index()
        idx.add_document([1], doc_id=5)
        with pytest.raises(ValueError):
            idx.add_document([1], doc_id=3)

    def test_flush_moves_memory_to_buckets(self):
        idx = make_index()
        idx.add_document([1, 2, 3])
        result = idx.flush_batch()
        assert result.nwords == 3
        assert result.new_words == 3
        assert len(idx.memory) == 0
        assert idx.buckets.contains(1)

    def test_second_batch_sees_bucket_words(self):
        idx = make_index()
        idx.add_document([1, 2])
        idx.flush_batch()
        idx.add_document([1, 9])
        result = idx.flush_batch()
        assert result.bucket_words == 1
        assert result.new_words == 1


class TestMigration:
    def fill_until_migration(self, idx, word=1):
        """Feed batches of one hot word until it owns a long list."""
        for batch in range(50):
            for doc in range(20):
                idx.add_document([word, 1000 + batch * 20 + doc])
            idx.flush_batch()
            if word in idx.directory:
                return batch
        raise AssertionError("hot word never migrated")

    def test_hot_word_migrates_to_long_list(self):
        idx = make_index()
        self.fill_until_migration(idx)
        assert idx.classify(1) is WordCategory.LONG
        assert not idx.buckets.contains(1)

    def test_word_never_in_both_structures(self):
        idx = make_index()
        self.fill_until_migration(idx)
        for word in list(idx.directory.words()):
            assert not idx.buckets.contains(word)

    def test_long_word_updates_bypass_buckets(self):
        idx = make_index()
        self.fill_until_migration(idx)
        postings_before = idx.directory.get(1).npostings
        idx.add_document([1])
        result = idx.flush_batch()
        assert result.long_words >= 1
        assert idx.directory.get(1).npostings == postings_before + 1


class TestClassify:
    def test_three_way_classification(self):
        idx = make_index()
        assert idx.classify(1) is WordCategory.NEW
        idx.add_document([1])
        idx.flush_batch()
        assert idx.classify(1) is WordCategory.BUCKET

    def test_category_fractions_sum_to_one(self):
        idx = make_index()
        idx.add_document([1, 2, 3, 4])
        result = idx.flush_batch()
        fractions = result.category_fractions
        assert sum(fractions.values()) == pytest.approx(1.0)


class TestRetrieval:
    def test_fetch_from_bucket(self):
        idx = make_index()
        idx.add_document([7])
        idx.add_document([7, 8])
        idx.flush_batch()
        postings, reads = idx.fetch(7)
        assert postings.doc_ids == [0, 1]
        assert reads == 1  # one bucket read

    def test_fetch_unknown_word(self):
        idx = make_index()
        postings, reads = idx.fetch(99)
        assert postings.doc_ids == []
        assert reads == 0

    def test_fetch_includes_unflushed_batch(self):
        idx = make_index()
        idx.add_document([7])
        idx.flush_batch()
        idx.add_document([7])  # still in memory
        postings, _ = idx.fetch(7)
        assert postings.doc_ids == [0, 1]

    def test_fetch_long_word_costs_chunk_reads(self):
        idx = make_index(policy=Policy(style=Style.NEW, limit=Limit.ZERO))
        TestMigration().fill_until_migration(idx)
        entry = idx.directory.get(1)
        postings, reads = idx.fetch(1)
        assert reads == entry.nchunks
        assert len(postings.doc_ids) == entry.npostings

    def test_fetch_requires_content_mode(self):
        idx = make_index(store_contents=False)
        idx.add_counts([(1, 5)])
        idx.flush_batch()
        with pytest.raises(RuntimeError):
            idx.fetch(1)

    def test_posting_count_spans_structures(self):
        idx = make_index()
        idx.add_document([7])
        idx.flush_batch()
        idx.add_document([7])
        assert idx.posting_count(7) == 2


class TestStatsAndTrace:
    def test_stats_reflect_state(self):
        idx = make_index()
        idx.add_document([1, 2])
        idx.flush_batch()
        stats = idx.stats()
        assert stats.batches == 1
        assert stats.bucket_words == 2
        assert stats.bucket_postings == 2
        assert 0 < stats.bucket_occupancy < 1

    def test_trace_collects_batches(self):
        idx = make_index()
        idx.add_document([1])
        idx.flush_batch()
        idx.add_document([2])
        idx.flush_batch()
        assert idx.trace.nbatches == 2

    def test_trace_disabled(self):
        idx = make_index(trace_enabled=False)
        idx.add_document([1])
        idx.flush_batch()
        assert idx.trace is None

    def test_conservation_across_structures(self):
        """Every posting ingested is in exactly one place."""
        idx = make_index()
        total = 0
        for batch in range(10):
            for doc in range(10):
                words = [1, 2 + (batch * 10 + doc) % 30]
                idx.add_document(words)
                total += len(set(words))
            idx.flush_batch()
        stats = idx.stats()
        assert stats.long_postings + stats.bucket_postings == total
