"""Exhaustive crash-recovery sweep over every registered crash point.

The paper's restartability claim (§1, §3): shadow flushes plus the RELEASE
list mean an aborted incremental update can be restarted from the last
flush.  These tests kill the process (an :class:`InjectedCrash`) at every
named crash point on the update path, run :meth:`DualStructureIndex.recover`,
and require that

* :func:`check_index` reports zero invariant violations afterwards, and
* the recovered index answers a fixed query set identically to an index
  built cleanly from the completed batches (including the re-applied
  aborted batch when ``replay=True``).

The sweep enumerates ``registered_crash_points()`` rather than a hand-kept
list, so adding a new crash point automatically extends the test; the
final coverage assertion fails if any registered point never fired under
any policy — a crash point the sweep cannot reach is a hole in the
recovery story.
"""

import random

import pytest

from repro.core import checkpoint
from repro.core.index import DualStructureIndex, IndexConfig
from repro.core.invariants import check_index
from repro.core.policy import Limit, Policy, Style
from repro.storage import faults
from repro.storage.faults import FaultPlan, InjectedCrash

# A deliberately hot workload: a tiny vocabulary and long documents push
# every word through bucket overflow into the long-list machinery within a
# few batches, so even the WHOLE-only crash points (whole-list read,
# RELEASE-list freeing) are reachable.
VOCAB = 12
DOCS_PER_BATCH = 20
WORDS_PER_DOC = 30
NBATCHES = 10
QUERY_WORDS = tuple(range(VOCAB))

# One policy per Table-2 style; together they drive every crash point.
POLICIES = [
    ("new", Policy(style=Style.NEW, limit=Limit.Z)),
    ("whole", Policy(style=Style.WHOLE, limit=Limit.Z)),
    ("fill", Policy(style=Style.FILL, limit=Limit.Z)),
]


def synthetic_batches(nbatches=NBATCHES, seed=1994):
    rng = random.Random(seed)
    return [
        [
            [rng.randrange(VOCAB) for _ in range(WORDS_PER_DOC)]
            for _ in range(DOCS_PER_BATCH)
        ]
        for _ in range(nbatches)
    ]


BATCHES = synthetic_batches()


def make_index(policy, crash_safe=True):
    return DualStructureIndex(
        IndexConfig(
            policy=policy,
            store_contents=True,
            nbuckets=4,
            bucket_size=16,
            crash_safe=crash_safe,
        )
    )


def answers(index):
    """The fixed query set: every vocabulary word's full posting list."""
    return {w: index.fetch(w)[0].doc_ids for w in QUERY_WORDS}


def clean_answers(policy):
    """Query answers after each batch of an uninterrupted run."""
    index = make_index(policy, crash_safe=False)
    per_batch = []
    for batch in BATCHES:
        for doc in batch:
            index.add_document(doc)
        index.flush_batch()
        per_batch.append(answers(index))
    return per_batch


@pytest.fixture(autouse=True)
def no_leaked_plan():
    """Every test must leave the global fault plan uninstalled."""
    yield
    faults.uninstall()


def crash_then_recover(policy, point, crash_at_hit=1):
    """Feed batches until ``point`` fires, then recover with replay.

    Returns ``(index, crashed_batch)``; ``crashed_batch`` is ``None`` when
    the point is unreachable under this policy (it lies on a code path the
    policy never takes).
    """
    index = make_index(policy)
    for batch_no, batch in enumerate(BATCHES):
        for doc in batch:
            index.add_document(doc)
        faults.install(FaultPlan(crash_at=point, crash_at_hit=crash_at_hit))
        try:
            index.flush_batch()
        except InjectedCrash:
            faults.uninstall()
            result = index.recover(replay=True)
            assert result is not None, "replay must re-flush the batch"
            return index, batch_no
        finally:
            faults.uninstall()
    return index, None


class TestExhaustiveSweep:
    @pytest.mark.parametrize(
        "pname,policy", POLICIES, ids=[p[0] for p in POLICIES]
    )
    def test_every_reachable_point_recovers(self, pname, policy):
        baselines = clean_answers(policy)
        fired = set()
        for point in faults.registered_crash_points():
            index, crashed_batch = crash_then_recover(policy, point)
            if crashed_batch is None:
                continue
            fired.add(point)
            report = check_index(index)
            assert report.ok, f"{pname}/{point}: {report}"
            assert answers(index) == baselines[crashed_batch], (
                f"{pname}/{point}: recovered index answers differ from a "
                f"clean build of batches 0..{crashed_batch}"
            )
        # Record per-policy coverage for the union assertion below.
        _FIRED_BY_POLICY[pname] = fired
        assert fired, f"no crash point fired under policy {pname}"

    def test_union_coverage_is_exhaustive(self):
        """Every registered crash point must fire under some policy.

        Runs after the per-policy sweeps (pytest executes the class in
        definition order); any policy result missing means the sweep above
        failed already.  Publication-path points live outside
        ``flush_batch`` and are exercised here directly.
        """
        assert set(_FIRED_BY_POLICY) == {p[0] for p in POLICIES}
        union = set().union(*_FIRED_BY_POLICY.values())
        union |= _exercise_cow_publish_point()
        missing = set(faults.registered_crash_points()) - union
        assert not missing, (
            f"crash points never exercised by any policy: {sorted(missing)}"
        )


_FIRED_BY_POLICY: dict[str, set] = {}


def _exercise_cow_publish_point():
    """Fire ``checkpoint.cow-publish`` and prove the publish is safely
    retryable: nothing was published when the crash hit, so a second
    attempt from the same delta must succeed and answer identically to
    the full-clone oracle."""
    index = make_index(POLICIES[0][1], crash_safe=False)
    for doc in BATCHES[0]:
        index.add_document(doc)
    index.flush_batch()
    prev = checkpoint.clone(index)
    index.delta.clear()
    for doc in BATCHES[1]:
        index.add_document(doc)
    index.flush_batch()
    faults.install(
        FaultPlan(crash_at="checkpoint.cow-publish", crash_at_hit=1)
    )
    try:
        with pytest.raises(InjectedCrash):
            checkpoint.clone_incremental(index, prev, index.delta)
    finally:
        faults.uninstall()
    retried = checkpoint.clone_incremental(index, prev, index.delta)
    oracle = checkpoint.clone(index)
    assert {w: retried.fetch(w)[0].doc_ids for w in QUERY_WORDS} == {
        w: oracle.fetch(w)[0].doc_ids for w in QUERY_WORDS
    }
    return {"checkpoint.cow-publish"}


class TestCrashDepth:
    """Crash points inside loops, at later-than-first arrivals."""

    # With a 12-word vocabulary, hit 9 lands the crash deep inside the
    # per-word append loop of one flush.
    @pytest.mark.parametrize("hit", [1, 9])
    def test_mid_word_loop_crash(self, hit):
        policy = Policy(style=Style.NEW, limit=Limit.Z)
        baselines = clean_answers(policy)
        index, crashed_batch = crash_then_recover(
            policy, "index.before-word-append", crash_at_hit=hit
        )
        assert crashed_batch is not None
        check_index(index).raise_if_failed()
        assert answers(index) == baselines[crashed_batch]

    @pytest.mark.parametrize("hit", [2, 3])
    def test_repeated_fill_extent_crash(self, hit):
        policy = Policy(style=Style.FILL, limit=Limit.Z)
        baselines = clean_answers(policy)
        index, crashed_batch = crash_then_recover(
            policy, "longlists.fill-extent", crash_at_hit=hit
        )
        assert crashed_batch is not None
        check_index(index).raise_if_failed()
        assert answers(index) == baselines[crashed_batch]


class TestRecoverySemantics:
    def test_recover_without_replay_rolls_back(self):
        """``replay=False`` restores the last completed flush exactly."""
        policy = Policy(style=Style.NEW, limit=Limit.Z)
        baselines = clean_answers(policy)
        index = make_index(policy)
        for batch in BATCHES[:3]:
            for doc in batch:
                index.add_document(doc)
            index.flush_batch()
        for doc in BATCHES[3]:
            index.add_document(doc)
        faults.install(FaultPlan(crash_at="flush.begin"))
        with pytest.raises(InjectedCrash):
            index.flush_batch()
        faults.uninstall()
        assert index.recover(replay=False) is None
        check_index(index).raise_if_failed()
        assert answers(index) == baselines[2]
        assert index.memory.npostings == 0

    def test_recover_requires_crash_safe(self):
        index = make_index(Policy(style=Style.NEW, limit=Limit.Z),
                           crash_safe=False)
        with pytest.raises(RuntimeError):
            index.recover()

    def test_crash_during_recovery_point_save_loses_nothing(self):
        """A crash while checkpointing batch N replays N from the N-1
        state — the swap-on-success discipline means the torn recovery
        point is never adopted."""
        policy = Policy(style=Style.WHOLE, limit=Limit.Z)
        baselines = clean_answers(policy)
        index, crashed_batch = crash_then_recover(
            policy, "checkpoint.mid-save"
        )
        assert crashed_batch is not None
        check_index(index).raise_if_failed()
        assert answers(index) == baselines[crashed_batch]

    def test_repeated_crashes_same_run(self):
        """Crash, recover, keep ingesting, crash again, recover again."""
        policy = Policy(style=Style.NEW, limit=Limit.Z)
        baselines = clean_answers(policy)
        index = make_index(policy)
        crash_batches = {2: "flush.after-bucket-writes", 5: "index.before-clear"}
        for batch_no, batch in enumerate(BATCHES[:8]):
            for doc in batch:
                index.add_document(doc)
            point = crash_batches.get(batch_no)
            if point is None:
                index.flush_batch()
                continue
            faults.install(FaultPlan(crash_at=point))
            with pytest.raises(InjectedCrash):
                index.flush_batch()
            faults.uninstall()
            index.recover(replay=True)
            check_index(index).raise_if_failed()
        assert answers(index) == baselines[7]


class TestCleanRunInvariants:
    @pytest.mark.parametrize(
        "pname,policy", POLICIES, ids=[p[0] for p in POLICIES]
    )
    def test_twenty_batch_clean_run(self, pname, policy):
        """Zero invariant violations after every batch of a clean run."""
        batches = synthetic_batches(nbatches=20, seed=81)
        index = make_index(policy)
        for batch in batches:
            for doc in batch:
                index.add_document(doc)
            index.flush_batch()
            report = check_index(index)
            assert report.ok, f"{pname}: {report}"
