"""Unit and property tests for the gap-compression codecs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.compression import (
    CODECS,
    BitReader,
    BitWriter,
    bytes_per_posting,
    delta_decode,
    delta_encode,
    gamma_decode,
    gamma_encode,
    implied_block_postings,
)


class TestBitIO:
    def test_roundtrip_bits(self):
        w = BitWriter()
        w.write_bits(0b1011, 4)
        w.write_bit(1)
        w.write_bits(0b000000001, 9)
        r = BitReader(w.getvalue())
        assert r.read_bits(4) == 0b1011
        assert r.read_bit() == 1
        assert r.read_bits(9) == 1

    def test_unary(self):
        w = BitWriter()
        w.write_unary(0)
        w.write_unary(5)
        r = BitReader(w.getvalue())
        assert r.read_unary() == 0
        assert r.read_unary() == 5

    def test_exhaustion(self):
        r = BitReader(b"")
        with pytest.raises(ValueError):
            r.read_bit()


class TestGamma:
    def test_known_codes(self):
        # gamma(1) = "1"; gamma(2) = "010"; gamma(5) = "00101".
        w = BitWriter()
        from repro.core.compression import _gamma_write

        _gamma_write(w, 1)
        _gamma_write(w, 2)
        _gamma_write(w, 5)
        bits = "".join(
            str((w.getvalue()[i // 8] >> (7 - i % 8)) & 1)
            for i in range(1 + 3 + 5)
        )
        assert bits == "1" + "010" + "00101"

    def test_roundtrip(self):
        ids = [0, 1, 5, 100, 101, 10_000]
        assert gamma_decode(gamma_encode(ids), len(ids)) == ids

    def test_dense_runs_are_one_bit_per_gap(self):
        ids = list(range(1000))
        assert len(gamma_encode(ids)) == pytest.approx(1000 / 8, abs=1)


class TestDelta:
    def test_roundtrip(self):
        ids = [3, 70, 71, 5000, 123_456]
        assert delta_decode(delta_encode(ids), len(ids)) == ids

    def test_delta_beats_gamma_on_large_gaps(self):
        ids = list(range(0, 1_000_000, 10_000))  # gaps of 10 000
        assert len(delta_encode(ids)) < len(gamma_encode(ids))

    def test_gamma_beats_delta_on_tiny_gaps(self):
        ids = list(range(500))
        assert len(gamma_encode(ids)) <= len(delta_encode(ids))


doc_lists = st.lists(
    st.integers(min_value=0, max_value=2**24), max_size=150, unique=True
).map(sorted)


@given(doc_lists)
def test_all_codecs_roundtrip(ids):
    for name, (encode, decode) in CODECS.items():
        assert decode(encode(ids), len(ids)) == ids, name


@given(doc_lists)
def test_bit_codecs_beat_varint_floor_on_dense_lists(ids):
    """Varint costs ≥1 byte/posting; gamma costs ≥1 bit/posting."""
    if len(ids) < 8:
        return
    assert len(gamma_encode(ids)) <= 8 * max(1, len(ids))


class TestRates:
    def test_bytes_per_posting(self):
        ids = list(range(100))
        assert bytes_per_posting("varint", ids) == pytest.approx(1.0)
        assert bytes_per_posting("gamma", ids) < 0.5
        assert bytes_per_posting("varint", []) == 0.0

    def test_implied_block_postings(self):
        assert implied_block_postings(16.0, 4096) == 256
        assert implied_block_postings(0.2, 4096) == 20_480
        with pytest.raises(ValueError):
            implied_block_postings(0, 4096)
