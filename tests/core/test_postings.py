"""Unit tests for posting payloads and the varint codec."""

import pytest

from repro.core.postings import (
    CountPostings,
    DocPostings,
    decode_doc_ids,
    decode_varint,
    empty_like,
    encode_doc_ids,
    encode_varint,
)


class TestVarint:
    def test_small_values_single_byte(self):
        assert encode_varint(0) == b"\x00"
        assert encode_varint(127) == b"\x7f"

    def test_multibyte(self):
        assert encode_varint(128) == b"\x80\x01"
        assert encode_varint(300) == b"\xac\x02"

    def test_roundtrip_boundaries(self):
        for v in (0, 1, 127, 128, 16383, 16384, 2**32, 2**63):
            value, offset = decode_varint(encode_varint(v))
            assert value == v
            assert offset == len(encode_varint(v))

    def test_decode_at_offset(self):
        data = encode_varint(5) + encode_varint(300)
        v1, off = decode_varint(data, 0)
        v2, end = decode_varint(data, off)
        assert (v1, v2) == (5, 300)
        assert end == len(data)

    def test_truncated_raises(self):
        with pytest.raises(ValueError):
            decode_varint(b"\x80")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)


class TestDocIdCodec:
    def test_roundtrip(self):
        ids = [0, 1, 5, 100, 101, 10_000]
        assert decode_doc_ids(encode_doc_ids(ids)) == ids

    def test_empty(self):
        assert decode_doc_ids(encode_doc_ids([])) == []

    def test_dense_ids_encode_to_one_byte_each(self):
        data = encode_doc_ids(list(range(100)))
        assert len(data) == 100

    def test_non_increasing_rejected(self):
        with pytest.raises(ValueError):
            encode_doc_ids([3, 3])
        with pytest.raises(ValueError):
            encode_doc_ids([5, 2])


class TestCountPostings:
    def test_len_and_extend(self):
        p = CountPostings(5)
        p.extend(CountPostings(7))
        assert len(p) == 12

    def test_split(self):
        head, tail = CountPostings(10).split(4)
        assert (len(head), len(tail)) == (4, 6)

    def test_split_beyond_length(self):
        head, tail = CountPostings(3).split(10)
        assert (len(head), len(tail)) == (3, 0)

    def test_copy_is_independent(self):
        p = CountPostings(5)
        q = p.copy()
        q.extend(CountPostings(1))
        assert len(p) == 5

    def test_cannot_mix_kinds(self):
        with pytest.raises(TypeError):
            CountPostings(1).extend(DocPostings([1]))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CountPostings(-1)

    def test_equality(self):
        assert CountPostings(3) == CountPostings(3)
        assert CountPostings(3) != CountPostings(4)


class TestDocPostings:
    def test_len_and_extend(self):
        p = DocPostings([1, 2])
        p.extend(DocPostings([5, 9]))
        assert p.doc_ids == [1, 2, 5, 9]

    def test_extend_must_keep_sorted(self):
        p = DocPostings([5])
        with pytest.raises(ValueError):
            p.extend(DocPostings([5]))
        with pytest.raises(ValueError):
            p.extend(DocPostings([3]))

    def test_extend_empty_is_noop(self):
        p = DocPostings([1])
        p.extend(DocPostings())
        assert p.doc_ids == [1]

    def test_split(self):
        head, tail = DocPostings([1, 2, 3, 4]).split(3)
        assert head.doc_ids == [1, 2, 3]
        assert tail.doc_ids == [4]

    def test_encode_decode_roundtrip(self):
        p = DocPostings([0, 7, 8, 5000])
        assert DocPostings.decode(p.encode()) == p

    def test_constructor_validates_order(self):
        with pytest.raises(ValueError):
            DocPostings([2, 1])
        with pytest.raises(ValueError):
            DocPostings([-1, 3])

    def test_cannot_mix_kinds(self):
        with pytest.raises(TypeError):
            DocPostings([1]).extend(CountPostings(1))


class TestEmptyLike:
    def test_count(self):
        assert empty_like(CountPostings(5)) == CountPostings(0)

    def test_doc(self):
        assert empty_like(DocPostings([1])) == DocPostings()

    def test_unknown_kind(self):
        with pytest.raises(TypeError):
            empty_like(object())
