"""Unit tests for the Figure-2 long-list update algorithm.

These tests pin the exact operation accounting the paper's evaluation is
built on: what UPDATE, READ, WRITE and WRITE_RESERVED cost, when in-place
updates fire, and how each style lays chunks out.
"""

import pytest

from repro.core.longlists import LongListManager
from repro.core.policy import Alloc, Limit, Policy, Style
from repro.core.postings import CountPostings, DocPostings
from repro.storage.diskarray import DiskArray, DiskArrayConfig
from repro.storage.iotrace import IOTrace, OpKind, Target
from repro.storage.profiles import SEAGATE_SCSI_1994

BP = 64  # postings per block


def make_manager(policy, ndisks=2, nblocks=100_000, store_contents=False):
    array = DiskArray(
        DiskArrayConfig(
            ndisks=ndisks,
            profile=SEAGATE_SCSI_1994,
            nblocks_override=nblocks,
            store_contents=store_contents,
        )
    )
    trace = IOTrace()
    return LongListManager(policy, array, BP, trace=trace)


class TestNewStyle:
    def test_first_append_creates_one_chunk(self):
        mgr = make_manager(Policy(style=Style.NEW, limit=Limit.ZERO))
        mgr.append(1, CountPostings(10))
        entry = mgr.directory.get(1)
        assert entry.nchunks == 1
        assert entry.npostings == 10
        assert mgr.counters.writes == 1
        assert mgr.counters.reads == 0

    def test_limit_zero_always_new_chunk(self):
        mgr = make_manager(Policy(style=Style.NEW, limit=Limit.ZERO))
        for _ in range(5):
            mgr.append(1, CountPostings(10))
        entry = mgr.directory.get(1)
        assert entry.nchunks == 5
        assert mgr.counters.in_place_updates == 0
        assert mgr.counters.io_ops == 5  # one write each, never a read

    def test_limit_z_fills_block_slack(self):
        mgr = make_manager(Policy(style=Style.NEW, limit=Limit.Z))
        mgr.append(1, CountPostings(10))  # chunk of 1 block, slack 54
        mgr.append(1, CountPostings(20))  # fits slack → in-place
        entry = mgr.directory.get(1)
        assert entry.nchunks == 1
        assert entry.npostings == 30
        assert mgr.counters.in_place_updates == 1
        # in-place = 1 read (tail block) + 1 write
        assert mgr.counters.reads == 1
        assert mgr.counters.writes == 2

    def test_limit_z_overflow_opens_new_chunk(self):
        mgr = make_manager(Policy(style=Style.NEW, limit=Limit.Z))
        mgr.append(1, CountPostings(60))  # slack 4
        mgr.append(1, CountPostings(10))  # does not fit → new chunk
        entry = mgr.directory.get(1)
        assert entry.nchunks == 2
        assert mgr.counters.in_place_updates == 0

    def test_in_memory_list_never_split_for_in_place(self):
        # Slack 4; an update of 5 postings must NOT put 4 in the slack
        # and 1 elsewhere (paper §3 consequence of lines 1-2).
        mgr = make_manager(Policy(style=Style.NEW, limit=Limit.Z))
        mgr.append(1, CountPostings(60))
        mgr.append(1, CountPostings(5))
        entry = mgr.directory.get(1)
        assert [c.npostings for c in entry.chunks] == [60, 5]

    def test_proportional_reserve_enables_more_in_place(self):
        plain = make_manager(Policy(style=Style.NEW, limit=Limit.Z))
        reserved = make_manager(
            Policy(
                style=Style.NEW, limit=Limit.Z, alloc=Alloc.PROPORTIONAL, k=2.0
            )
        )
        for mgr in (plain, reserved):
            for _ in range(4):
                mgr.append(1, CountPostings(60))
        assert (
            reserved.counters.in_place_updates
            > plain.counters.in_place_updates
        )

    def test_reserved_blocks_allocated_but_not_written(self):
        mgr = make_manager(
            Policy(
                style=Style.NEW, limit=Limit.Z, alloc=Alloc.CONSTANT, k=200
            )
        )
        mgr.append(1, CountPostings(10))
        entry = mgr.directory.get(1)
        # 210 postings target → 4 blocks allocated; 1 block written.
        assert entry.chunks[0].nblocks == 4
        (op,) = list(mgr.trace.ops())
        assert op.nblocks == 1


class TestFillStyle:
    def test_small_update_one_extent(self):
        mgr = make_manager(Policy(style=Style.FILL, limit=Limit.ZERO,
                                  extent_blocks=4))
        mgr.append(1, CountPostings(10))
        entry = mgr.directory.get(1)
        assert entry.nchunks == 1
        assert entry.chunks[0].nblocks == 4  # full extent allocated

    def test_large_update_multiple_extents(self):
        mgr = make_manager(Policy(style=Style.FILL, limit=Limit.ZERO,
                                  extent_blocks=4))
        mgr.append(1, CountPostings(600))  # extent holds 256 postings
        entry = mgr.directory.get(1)
        assert entry.nchunks == 3
        assert [c.npostings for c in entry.chunks] == [256, 256, 88]
        assert mgr.counters.writes == 3  # one WRITE per extent

    def test_extents_rotate_across_disks(self):
        mgr = make_manager(Policy(style=Style.FILL, limit=Limit.ZERO,
                                  extent_blocks=4), ndisks=2)
        mgr.append(1, CountPostings(600))
        disks = [c.disk for c in mgr.directory.get(1).chunks]
        assert disks == [0, 1, 0]

    def test_limit_z_fills_last_extent_slack(self):
        mgr = make_manager(Policy(style=Style.FILL, limit=Limit.Z,
                                  extent_blocks=4))
        mgr.append(1, CountPostings(100))  # slack 156 in extent
        mgr.append(1, CountPostings(100))  # in place
        entry = mgr.directory.get(1)
        assert entry.nchunks == 1
        assert mgr.counters.in_place_updates == 1

    def test_limit_z_wasted_slack_when_update_too_big(self):
        mgr = make_manager(Policy(style=Style.FILL, limit=Limit.Z,
                                  extent_blocks=4))
        mgr.append(1, CountPostings(100))  # slack 156
        mgr.append(1, CountPostings(200))  # too big → fresh extent, slack lost
        entry = mgr.directory.get(1)
        assert entry.nchunks == 2
        assert entry.chunks[0].npostings == 100  # old slack never refilled


class TestWholeStyle:
    def test_list_is_always_one_chunk(self):
        mgr = make_manager(Policy(style=Style.WHOLE, limit=Limit.ZERO))
        for _ in range(5):
            mgr.append(1, CountPostings(100))
        entry = mgr.directory.get(1)
        assert entry.nchunks == 1
        assert entry.npostings == 500

    def test_each_append_costs_read_plus_write(self):
        mgr = make_manager(Policy(style=Style.WHOLE, limit=Limit.ZERO))
        mgr.append(1, CountPostings(100))  # create: write only
        mgr.append(1, CountPostings(100))  # move: read + write
        mgr.append(1, CountPostings(100))
        assert mgr.counters.writes == 3
        assert mgr.counters.reads == 2

    def test_old_chunk_retires_to_release_list(self):
        mgr = make_manager(Policy(style=Style.WHOLE, limit=Limit.ZERO))
        mgr.append(1, CountPostings(100))
        first = mgr.directory.get(1).chunks[0]
        mgr.append(1, CountPostings(100))
        assert first in mgr.release
        allocated_before = mgr.array.allocated_blocks
        mgr.end_batch()
        assert mgr.release == []
        assert mgr.array.allocated_blocks < allocated_before

    def test_limit_z_updates_in_place_with_same_op_count(self):
        # Paper: whole costs one read + one write per append whether or
        # not the update is in place — in-place reads 1 block, not the list.
        mgr = make_manager(
            Policy(
                style=Style.WHOLE,
                limit=Limit.Z,
                alloc=Alloc.PROPORTIONAL,
                k=2.0,
            )
        )
        mgr.append(1, CountPostings(100))
        mgr.append(1, CountPostings(50))  # fits in proportional reserve
        assert mgr.counters.in_place_updates == 1
        assert mgr.directory.get(1).nchunks == 1
        assert mgr.counters.reads == 1 and mgr.counters.writes == 2

    def test_whole_move_blocks_grow_with_list(self):
        mgr = make_manager(Policy(style=Style.WHOLE, limit=Limit.ZERO))
        for _ in range(4):
            mgr.append(1, CountPostings(200))
        reads = [
            op.nblocks
            for op in mgr.trace.ops()
            if op.kind is OpKind.READ
        ]
        assert reads == sorted(reads)
        assert reads[-1] > reads[0]


class TestAccounting:
    def test_appends_to_existing_counts_possible_in_place(self):
        mgr = make_manager(Policy(style=Style.NEW, limit=Limit.ZERO))
        mgr.append(1, CountPostings(10))
        mgr.append(1, CountPostings(10))
        mgr.append(2, CountPostings(10))
        assert mgr.counters.appends == 3
        assert mgr.counters.appends_to_existing == 1
        assert mgr.counters.lists_created == 2
        assert mgr.counters.in_place_fraction == 0.0

    def test_zero_posting_append_rejected(self):
        mgr = make_manager(Policy(style=Style.NEW, limit=Limit.ZERO))
        with pytest.raises(ValueError):
            mgr.append(1, CountPostings(0))

    def test_trace_records_word_and_postings(self):
        mgr = make_manager(Policy(style=Style.NEW, limit=Limit.ZERO))
        mgr.append(42, CountPostings(10))
        (op,) = list(mgr.trace.ops())
        assert op.target is Target.LONG_LIST
        assert op.word == 42
        assert op.npostings == 10

    def test_postings_conserved_on_disk(self):
        for policy in (
            Policy(style=Style.NEW, limit=Limit.Z),
            Policy(style=Style.FILL, limit=Limit.Z),
            Policy(style=Style.WHOLE, limit=Limit.ZERO),
        ):
            mgr = make_manager(policy)
            total = 0
            for i, n in enumerate((10, 300, 7, 64, 128, 1)):
                mgr.append(1 + i % 2, CountPostings(n))
                total += n
            assert mgr.directory.total_postings == total


class TestContentMode:
    def content_manager(self, policy):
        return make_manager(policy, store_contents=True)

    @pytest.mark.parametrize(
        "policy",
        [
            Policy(style=Style.NEW, limit=Limit.ZERO),
            Policy(style=Style.NEW, limit=Limit.Z),
            Policy(
                style=Style.NEW, limit=Limit.Z, alloc=Alloc.PROPORTIONAL,
                k=2.0,
            ),
            Policy(style=Style.FILL, limit=Limit.Z, extent_blocks=2),
            Policy(style=Style.WHOLE, limit=Limit.ZERO),
            Policy(
                style=Style.WHOLE, limit=Limit.Z, alloc=Alloc.PROPORTIONAL,
                k=1.2,
            ),
        ],
        ids=lambda p: p.name,
    )
    def test_postings_roundtrip_through_disk(self, policy):
        mgr = self.content_manager(policy)
        expected: list[int] = []
        doc = 0
        for batch_size in (10, 70, 5, 130, 64):
            ids = list(range(doc, doc + batch_size))
            doc += batch_size
            mgr.append(1, DocPostings(ids))
            expected.extend(ids)
        assert mgr.read_postings(1).doc_ids == expected

    def test_read_costs_one_op_per_chunk(self):
        mgr = self.content_manager(Policy(style=Style.NEW, limit=Limit.ZERO))
        mgr.append(1, DocPostings([1]))
        mgr.append(1, DocPostings([2]))
        reads_before = mgr.counters.reads
        mgr.read_postings(1)
        assert mgr.counters.reads - reads_before == 2

    def test_unknown_word_reads_empty(self):
        mgr = self.content_manager(Policy(style=Style.NEW, limit=Limit.ZERO))
        assert mgr.read_postings(9).doc_ids == []

    def test_content_mode_requires_doc_postings(self):
        mgr = self.content_manager(Policy(style=Style.NEW, limit=Limit.ZERO))
        with pytest.raises(TypeError):
            mgr.append(1, CountPostings(5))

    def test_read_postings_requires_content_mode(self):
        mgr = make_manager(Policy(style=Style.NEW, limit=Limit.ZERO))
        with pytest.raises(RuntimeError):
            mgr.read_postings(1)
