"""Unit tests for dynamic bucket-space growth (paper §7)."""

import pytest

from repro.core.buckets import BucketManager
from repro.core.index import DualStructureIndex, IndexConfig
from repro.core.postings import CountPostings
from repro.core.rebalance import BucketGrower, GrowthPolicy


def fill_manager(manager, nwords, postings_each=3):
    for word in range(1, nwords + 1):
        manager.insert(word, CountPostings(postings_each))


class TestGrowthPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            GrowthPolicy(occupancy_threshold=0.0)
        with pytest.raises(ValueError):
            GrowthPolicy(occupancy_threshold=1.0)
        with pytest.raises(ValueError):
            GrowthPolicy(factor=1)
        with pytest.raises(ValueError):
            GrowthPolicy(max_buckets=-1)


class TestTrigger:
    def test_fires_above_threshold(self):
        manager = BucketManager(4, 40)
        grower = BucketGrower(GrowthPolicy(occupancy_threshold=0.5))
        fill_manager(manager, 24)  # 24 words × 4 units = 96/160 = 0.6
        assert grower.should_grow(manager)

    def test_quiet_below_threshold(self):
        manager = BucketManager(4, 40)
        grower = BucketGrower(GrowthPolicy(occupancy_threshold=0.5))
        fill_manager(manager, 8)  # 32/160 = 0.2
        assert not grower.should_grow(manager)

    def test_respects_ceiling(self):
        manager = BucketManager(4, 40)
        grower = BucketGrower(
            GrowthPolicy(occupancy_threshold=0.1, max_buckets=4)
        )
        fill_manager(manager, 24)
        assert not grower.should_grow(manager)


class TestGrow:
    def test_doubles_buckets_and_preserves_contents(self):
        manager = BucketManager(4, 40)
        fill_manager(manager, 24)
        words_before = sorted(manager.words())
        units_before = manager.total_units
        grower = BucketGrower()
        event = grower.grow(manager, batch=7)
        assert manager.nbuckets == 8
        assert sorted(manager.words()) == words_before
        assert manager.total_units == units_before
        assert event.old_nbuckets == 4 and event.new_nbuckets == 8
        assert event.batch == 7
        assert grower.events == [event]

    def test_rehash_routes_by_new_modulus(self):
        manager = BucketManager(4, 400)
        manager.insert(5, CountPostings(1))  # bucket 1 of 4
        manager.insert(7, CountPostings(1))  # bucket 3 of 4
        BucketGrower().grow(manager)
        assert manager.bucket_of(5) == 5
        assert manager.bucket_of(7) == 7
        assert manager.contains(5) and manager.contains(7)

    def test_growth_halves_occupancy(self):
        manager = BucketManager(4, 40)
        fill_manager(manager, 24)
        occupancy_before = manager.occupancy()
        BucketGrower().grow(manager)
        assert manager.occupancy() == pytest.approx(occupancy_before / 2)

    def test_no_bucket_overflows_after_growth(self):
        manager = BucketManager(2, 60)
        fill_manager(manager, 20)
        BucketGrower(GrowthPolicy(factor=4)).grow(manager)
        for bucket in manager.buckets:
            assert bucket.size <= bucket.capacity

    def test_maybe_grow(self):
        manager = BucketManager(4, 40)
        grower = BucketGrower(GrowthPolicy(occupancy_threshold=0.5))
        assert grower.maybe_grow(manager) is None
        fill_manager(manager, 24)
        assert grower.maybe_grow(manager) is not None


class TestIndexIntegration:
    def make_index(self, grow):
        return DualStructureIndex(
            IndexConfig(
                nbuckets=2,
                bucket_size=64,
                block_postings=16,
                ndisks=2,
                nblocks_override=100_000,
                grow_buckets=grow,
                growth=GrowthPolicy(occupancy_threshold=0.5),
            )
        )

    def load(self, index, batches=8):
        word = 0
        for _ in range(batches):
            pairs = [(1 + (word + i) % 60, 2) for i in range(20)]
            word += 20
            merged = {}
            for w, c in pairs:
                merged[w] = merged.get(w, 0) + c
            index.add_counts(sorted(merged.items()))
            index.flush_batch()

    def test_auto_growth_reduces_migrations(self):
        fixed = self.make_index(grow=False)
        growing = self.make_index(grow=True)
        self.load(fixed)
        self.load(growing)
        assert growing.grower is not None
        assert growing.grower.events, "growth never triggered"
        assert growing.buckets.nbuckets > fixed.buckets.nbuckets
        # Fewer words forced out into long lists.
        assert (
            growing.directory.nwords <= fixed.directory.nwords
        )
        # Postings conserved through growth.
        assert (
            growing.directory.total_postings
            + growing.buckets.total_postings
            == fixed.directory.total_postings + fixed.buckets.total_postings
        )

    def test_growth_enlarges_flush_region(self):
        growing = self.make_index(grow=True)
        self.load(growing)
        # The bucket region that gets flushed grows with the bucket count
        # ("expanded and written in a larger region of disk").
        assert growing.buckets.nbuckets > 2
        assert growing.buckets.flush_blocks(512, 4) > (
            BucketManager(2, 64).flush_blocks(512, 4)
        )


class TestRebuildScheduler:
    def test_serializes_grants_fifo(self):
        from repro.core.rebalance import RebuildScheduler

        sched = RebuildScheduler()
        assert sched.grant([2, 0, 1]) == frozenset({2})
        assert sched.grant([]) == frozenset({0})
        assert sched.grant([2]) == frozenset({1})  # 2 re-queues behind
        assert sched.grant([]) == frozenset({2})
        assert sched.grant([]) == frozenset()
        assert sched.granted == 4
        assert sched.rounds == 5

    def test_requeue_is_idempotent(self):
        from repro.core.rebalance import RebuildScheduler

        sched = RebuildScheduler()
        sched.grant([0, 1])
        # Shard 1 keeps announcing until granted; it must not multiply.
        sched.grant([1])
        assert sched.pending == ()
        assert sched.grant([]) == frozenset()

    def test_max_concurrent_widens_the_round(self):
        from repro.core.rebalance import RebuildScheduler

        sched = RebuildScheduler(max_concurrent=2)
        assert sched.grant([0, 1, 2]) == frozenset({0, 1})
        assert sched.grant([]) == frozenset({2})
        with pytest.raises(ValueError):
            RebuildScheduler(max_concurrent=0)

    def test_deterministic_across_replays(self):
        from repro.core.rebalance import RebuildScheduler

        history = [[1, 3], [], [2], [0], [], []]
        runs = []
        for _ in range(2):
            sched = RebuildScheduler()
            runs.append([sched.grant(list(w)) for w in history])
        assert runs[0] == runs[1]

    def test_as_dict_counters(self):
        from repro.core.rebalance import RebuildScheduler

        sched = RebuildScheduler()
        sched.grant([0, 1, 2])
        d = sched.as_dict()
        assert d["rounds"] == 1
        assert d["granted"] == 1
        assert d["deferred"] == 2
        assert d["pending"] == [1, 2]


class TestShardedStagger:
    def _sharded(self, stagger):
        from repro.core.sharded import ShardedTextIndex

        return ShardedTextIndex(
            IndexConfig(
                nbuckets=2,
                bucket_size=64,
                block_postings=16,
                ndisks=2,
                nblocks_override=100_000,
                store_contents=True,
                grow_buckets=True,
                growth=GrowthPolicy(occupancy_threshold=0.5),
            ),
            shards=3,
            rebuild_stagger=stagger,
        )

    def _load(self, index, cycles=6):
        sizes = []
        doc = 0
        for _ in range(cycles):
            for _ in range(12):
                index.add_document(
                    " ".join(
                        f"w{chr(ord('a') + (doc * 3 + k) % 24)}"
                        for k in range(6)
                    )
                )
                doc += 1
            before = [s.index.buckets.nbuckets for s in index.shards]
            index.flush_batch()
            after = [s.index.buckets.nbuckets for s in index.shards]
            sizes.append(
                sum(1 for b, a in zip(before, after) if a > b)
            )
        return sizes

    def test_at_most_one_growth_per_round(self):
        staggered = self._sharded(stagger=True)
        growths_per_round = self._load(staggered)
        assert max(growths_per_round) <= 1
        assert sum(growths_per_round) >= 1, "growth never triggered"
        assert staggered.rebuild_scheduler.granted == sum(
            growths_per_round
        )

    def test_unscheduled_growth_can_storm(self):
        free = self._sharded(stagger=False)
        growths_per_round = self._load(free)
        # Uniform routing pushes every shard over the threshold in the
        # same round: the storm the scheduler exists to prevent.
        assert max(growths_per_round) >= 2

    def test_staggered_answers_match_unscheduled(self):
        staggered = self._sharded(stagger=True)
        free = self._sharded(stagger=False)
        self._load(staggered)
        self._load(free)
        for query in ("wa AND wb", "wc OR wd", "wa AND we"):
            assert (
                staggered.search_boolean(query).doc_ids
                == free.search_boolean(query).doc_ids
            ), query


class TestGrownCheckpointRoundTrip:
    def test_grown_index_survives_save_load(self):
        """Regression: checkpoint serialization used the *config's*
        bucket count while growth only updated the live manager, so a
        grown index came back with too few buckets (and cow publication
        stayed broken forever after the fingerprint mismatch)."""
        import io

        from repro.textindex import TextDocumentIndex

        index = TextDocumentIndex(
            IndexConfig(
                nbuckets=2,
                bucket_size=64,
                block_postings=16,
                ndisks=2,
                nblocks_override=100_000,
                store_contents=True,
                grow_buckets=True,
                growth=GrowthPolicy(occupancy_threshold=0.5),
            )
        )
        doc = 0
        for _ in range(6):
            for _ in range(12):
                index.add_document(
                    " ".join(
                        f"w{chr(ord('a') + (doc * 3 + k) % 24)}"
                        for k in range(6)
                    )
                )
                doc += 1
            index.flush_batch()
        assert index.index.grower.events, "growth never triggered"
        assert (
            index.index.config.nbuckets == index.index.buckets.nbuckets
        )
        buf = io.BytesIO()
        index.save(buf)
        buf.seek(0)
        restored = TextDocumentIndex.load(buf)
        assert (
            restored.index.buckets.nbuckets == index.index.buckets.nbuckets
        )
        for query in ("wa AND wb", "wc OR wd"):
            assert (
                restored.search_boolean(query).doc_ids
                == index.search_boolean(query).doc_ids
            ), query

    def test_cow_publication_survives_growth(self):
        """After a growth round forces one full-clone publish, cow must
        resume (config re-synced to the grown manager, fingerprints
        equal again) instead of falling back forever."""
        from repro.core.checkpoint import CheckpointError
        from repro.textindex import TextDocumentIndex

        index = TextDocumentIndex(
            IndexConfig(
                nbuckets=2,
                bucket_size=64,
                block_postings=16,
                ndisks=2,
                nblocks_override=100_000,
                store_contents=True,
                grow_buckets=True,
                growth=GrowthPolicy(occupancy_threshold=0.5),
            )
        )
        published = index.clone()
        index.delta.clear()
        doc = 0
        saw_growth_fallback = False
        cow_after_growth = False
        grown = False
        for _ in range(8):
            for _ in range(10):
                index.add_document(
                    " ".join(
                        f"w{chr(ord('a') + (doc * 3 + k) % 24)}"
                        for k in range(6)
                    )
                )
                doc += 1
            events_before = len(index.index.grower.events)
            index.flush_batch()
            grew = len(index.index.grower.events) > events_before
            try:
                published = index.clone_incremental(published, index.delta)
                if grown and not grew:
                    cow_after_growth = True
            except CheckpointError:
                assert grew, "cow fallback without a growth this round"
                saw_growth_fallback = True
                published = index.clone()
            index.delta.clear()
            grown = grown or grew
        assert grown, "growth never triggered"
        assert saw_growth_fallback
        assert cow_after_growth, "cow never resumed after growth"
