"""Unit tests for dynamic bucket-space growth (paper §7)."""

import pytest

from repro.core.buckets import BucketManager
from repro.core.index import DualStructureIndex, IndexConfig
from repro.core.postings import CountPostings
from repro.core.rebalance import BucketGrower, GrowthPolicy


def fill_manager(manager, nwords, postings_each=3):
    for word in range(1, nwords + 1):
        manager.insert(word, CountPostings(postings_each))


class TestGrowthPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            GrowthPolicy(occupancy_threshold=0.0)
        with pytest.raises(ValueError):
            GrowthPolicy(occupancy_threshold=1.0)
        with pytest.raises(ValueError):
            GrowthPolicy(factor=1)
        with pytest.raises(ValueError):
            GrowthPolicy(max_buckets=-1)


class TestTrigger:
    def test_fires_above_threshold(self):
        manager = BucketManager(4, 40)
        grower = BucketGrower(GrowthPolicy(occupancy_threshold=0.5))
        fill_manager(manager, 24)  # 24 words × 4 units = 96/160 = 0.6
        assert grower.should_grow(manager)

    def test_quiet_below_threshold(self):
        manager = BucketManager(4, 40)
        grower = BucketGrower(GrowthPolicy(occupancy_threshold=0.5))
        fill_manager(manager, 8)  # 32/160 = 0.2
        assert not grower.should_grow(manager)

    def test_respects_ceiling(self):
        manager = BucketManager(4, 40)
        grower = BucketGrower(
            GrowthPolicy(occupancy_threshold=0.1, max_buckets=4)
        )
        fill_manager(manager, 24)
        assert not grower.should_grow(manager)


class TestGrow:
    def test_doubles_buckets_and_preserves_contents(self):
        manager = BucketManager(4, 40)
        fill_manager(manager, 24)
        words_before = sorted(manager.words())
        units_before = manager.total_units
        grower = BucketGrower()
        event = grower.grow(manager, batch=7)
        assert manager.nbuckets == 8
        assert sorted(manager.words()) == words_before
        assert manager.total_units == units_before
        assert event.old_nbuckets == 4 and event.new_nbuckets == 8
        assert event.batch == 7
        assert grower.events == [event]

    def test_rehash_routes_by_new_modulus(self):
        manager = BucketManager(4, 400)
        manager.insert(5, CountPostings(1))  # bucket 1 of 4
        manager.insert(7, CountPostings(1))  # bucket 3 of 4
        BucketGrower().grow(manager)
        assert manager.bucket_of(5) == 5
        assert manager.bucket_of(7) == 7
        assert manager.contains(5) and manager.contains(7)

    def test_growth_halves_occupancy(self):
        manager = BucketManager(4, 40)
        fill_manager(manager, 24)
        occupancy_before = manager.occupancy()
        BucketGrower().grow(manager)
        assert manager.occupancy() == pytest.approx(occupancy_before / 2)

    def test_no_bucket_overflows_after_growth(self):
        manager = BucketManager(2, 60)
        fill_manager(manager, 20)
        BucketGrower(GrowthPolicy(factor=4)).grow(manager)
        for bucket in manager.buckets:
            assert bucket.size <= bucket.capacity

    def test_maybe_grow(self):
        manager = BucketManager(4, 40)
        grower = BucketGrower(GrowthPolicy(occupancy_threshold=0.5))
        assert grower.maybe_grow(manager) is None
        fill_manager(manager, 24)
        assert grower.maybe_grow(manager) is not None


class TestIndexIntegration:
    def make_index(self, grow):
        return DualStructureIndex(
            IndexConfig(
                nbuckets=2,
                bucket_size=64,
                block_postings=16,
                ndisks=2,
                nblocks_override=100_000,
                grow_buckets=grow,
                growth=GrowthPolicy(occupancy_threshold=0.5),
            )
        )

    def load(self, index, batches=8):
        word = 0
        for _ in range(batches):
            pairs = [(1 + (word + i) % 60, 2) for i in range(20)]
            word += 20
            merged = {}
            for w, c in pairs:
                merged[w] = merged.get(w, 0) + c
            index.add_counts(sorted(merged.items()))
            index.flush_batch()

    def test_auto_growth_reduces_migrations(self):
        fixed = self.make_index(grow=False)
        growing = self.make_index(grow=True)
        self.load(fixed)
        self.load(growing)
        assert growing.grower is not None
        assert growing.grower.events, "growth never triggered"
        assert growing.buckets.nbuckets > fixed.buckets.nbuckets
        # Fewer words forced out into long lists.
        assert (
            growing.directory.nwords <= fixed.directory.nwords
        )
        # Postings conserved through growth.
        assert (
            growing.directory.total_postings
            + growing.buckets.total_postings
            == fixed.directory.total_postings + fixed.buckets.total_postings
        )

    def test_growth_enlarges_flush_region(self):
        growing = self.make_index(grow=True)
        self.load(growing)
        # The bucket region that gets flushed grows with the bucket count
        # ("expanded and written in a larger region of disk").
        assert growing.buckets.nbuckets > 2
        assert growing.buckets.flush_blocks(512, 4) > (
            BucketManager(2, 64).flush_blocks(512, 4)
        )
