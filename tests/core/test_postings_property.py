"""Property-based tests for payload codecs and split/extend algebra."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.postings import (
    CountPostings,
    DocPostings,
    decode_doc_ids,
    decode_varint,
    encode_doc_ids,
    encode_varint,
)

doc_id_lists = st.lists(
    st.integers(min_value=0, max_value=2**40), max_size=200, unique=True
).map(sorted)


@given(st.integers(min_value=0, max_value=2**64))
def test_varint_roundtrip(value):
    decoded, offset = decode_varint(encode_varint(value))
    assert decoded == value
    assert offset == len(encode_varint(value))


@given(doc_id_lists)
def test_doc_id_codec_roundtrip(ids):
    assert decode_doc_ids(encode_doc_ids(ids)) == ids


@given(doc_id_lists)
def test_doc_codec_size_bounded_by_gaps(ids):
    """Delta coding: total bytes never exceed raw 8-byte-per-id encoding
    and dense runs cost one byte per id."""
    data = encode_doc_ids(ids)
    assert len(data) <= 8 * max(1, len(ids))


@given(doc_id_lists, st.integers(min_value=0, max_value=250))
def test_doc_split_partitions(ids, at):
    p = DocPostings(ids)
    head, tail = p.split(at)
    assert head.doc_ids + tail.doc_ids == ids
    assert len(head) == min(at, len(ids))


@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=0, max_value=10_000),
)
def test_count_split_conserves(total, at):
    head, tail = CountPostings(total).split(at)
    assert len(head) + len(tail) == total


@given(doc_id_lists, st.integers(min_value=0, max_value=250))
def test_split_then_extend_is_identity(ids, at):
    p = DocPostings(ids)
    head, tail = p.split(at)
    head.extend(tail)
    assert head.doc_ids == ids


@given(st.lists(st.integers(min_value=0, max_value=500), max_size=20))
def test_count_extend_is_addition(counts):
    total = CountPostings(0)
    for c in counts:
        total.extend(CountPostings(c))
    assert len(total) == sum(counts)
