"""In-process split/merge differential: a ShardedTextIndex that
rebalances mid-stream answers identically to the brute-force oracle.

The structural moves relocate documents (clone + tombstones for a
split, export + re-index for a merge), so the risk surface is answer
corruption: a mover answered twice, a stayer lost, a complement
computed over the wrong universe.  The battery interleaves splits and
merges with adds and deletes and re-checks full query parity after
every step.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.index import IndexConfig
from repro.core.rebalance import RebalancePlanner
from repro.core.sharded import ShardedTextIndex
from repro.query.reference import BruteForceIndex


def small_config() -> IndexConfig:
    return IndexConfig(
        nbuckets=8,
        bucket_size=32,
        block_postings=4,
        ndisks=2,
        nblocks_override=100_000,
        store_contents=True,
    )


def _word(n: int) -> str:
    return f"w{chr(ord('a') + n - 1)}"


QUERIES = [
    "wa AND wb",
    "wb OR wc",
    "(wa AND wb) OR wd",
    "wa AND NOT wb",
    "NOT wa",
    "wz AND wa",
]
STREAMED = ["wa AND wb", "wc OR wd", "wa AND wb AND wc"]
VECTORS = [
    {"wa": 2.0, "wb": 1.0},
    {"wc": 1.0, "wd": 3.0, "wa": 1.0},
]


def _check(index: ShardedTextIndex, oracle: BruteForceIndex) -> None:
    for query in QUERIES:
        assert (
            index.search_boolean(query).doc_ids
            == oracle.search_boolean(query)
        ), query
    for query in STREAMED:
        assert (
            index.search_streamed(query).doc_ids
            == oracle.search_streamed(query)
        ), query
    for weights in VECTORS:
        got = index.search_vector(weights, top_k=5)
        want = oracle.search_vector(weights, top_k=5)
        assert [(d.doc_id, d.score) for d in got] == [
            (d.doc_id, d.score) for d in want
        ], weights


def _ingest(index, oracle, docs, start=0):
    for i, words in enumerate(docs):
        text = " ".join(_word(w) for w in sorted(words))
        doc_id = index.add_document(text)
        assert doc_id == start + i
        oracle.add_document(doc_id, text.split())
    index.flush_batch()


class TestSplitDifferential:
    def test_split_preserves_all_answers(self):
        index = ShardedTextIndex(small_config(), shards=2, router_seed=1)
        oracle = BruteForceIndex()
        docs = [
            {1 + (i % 5), 1 + ((i * 3) % 7), 1 + ((i * 5) % 9)}
            for i in range(20)
        ]
        _ingest(index, oracle, docs)
        _check(index, oracle)
        counts = index.shard_doc_counts()
        victim = counts.index(max(counts))
        new_id = index.split_shard(victim)
        assert new_id == 2
        assert index.routing_epoch == 1
        _check(index, oracle)
        # The moved mass really moved: three shards all hold documents.
        post = index.shard_doc_counts()
        assert len(post) == 3 and sum(post) == sum(counts)

    def test_split_then_traffic_then_check(self):
        index = ShardedTextIndex(small_config(), shards=2, router_seed=0)
        oracle = BruteForceIndex()
        docs = [{1 + (i % 6), 1 + ((i * 7) % 8)} for i in range(16)]
        _ingest(index, oracle, docs)
        index.split_shard(0)
        for i, words in enumerate(
            [{2, 3}, {1, 4, 5}, {6}, {2, 5, 7}], start=16
        ):
            text = " ".join(_word(w) for w in sorted(words))
            index.add_document(text)
            oracle.add_document(i, text.split())
        index.delete_document(3)
        oracle.delete_document(3)
        index.flush_batch()
        _check(index, oracle)


class TestMergeDifferential:
    def test_merge_preserves_all_answers(self):
        index = ShardedTextIndex(small_config(), shards=3, router_seed=2)
        oracle = BruteForceIndex()
        docs = [
            {1 + (i % 4), 1 + ((i * 3) % 6), 1 + ((i * 5) % 8)}
            for i in range(18)
        ]
        _ingest(index, oracle, docs)
        index.delete_document(5)
        oracle.delete_document(5)
        index.flush_batch()
        index.merge_shards(2, 1)
        assert index.routing_epoch == 1
        _check(index, oracle)
        # Post-merge traffic still routes correctly.
        index.add_document("wa wb wc")
        oracle.add_document(18, ["wa", "wb", "wc"])
        index.flush_batch()
        _check(index, oracle)


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    docs=st.lists(
        st.sets(st.integers(min_value=1, max_value=9), min_size=1, max_size=4),
        min_size=8,
        max_size=24,
    ),
    shards=st.sampled_from([2, 3]),
    seed=st.sampled_from([0, 97]),
    moves=st.lists(
        st.sampled_from(["split", "merge"]), min_size=1, max_size=3
    ),
)
def test_random_move_sequences_match_oracle(docs, shards, seed, moves):
    """Any planner-shaped sequence of splits and merges, interleaved
    with ingest, preserves full differential parity."""
    index = ShardedTextIndex(small_config(), shards=shards, router_seed=seed)
    oracle = BruteForceIndex()
    _ingest(index, oracle, docs)
    next_id = len(docs)
    for move in moves:
        counts = index.shard_doc_counts()
        active = list(index.routing.shard_ids)
        if move == "split":
            victim = max(active, key=lambda s: counts[s])
            index.split_shard(victim)
        else:
            if len(active) < 3:
                continue  # keep >= 2 shards, like the planner does
            order = sorted(active, key=lambda s: counts[s])
            index.merge_shards(order[0], order[1])
        _check(index, oracle)
        text = "wa wb"
        index.add_document(text)
        oracle.add_document(next_id, ["wa", "wb"])
        next_id += 1
        index.flush_batch()
        _check(index, oracle)


class TestPlannerDriven:
    def test_planner_converges_under_skew(self):
        """Feeding skewed placement through plan() drives imbalance
        below the bound without ever losing parity."""
        index = ShardedTextIndex(small_config(), shards=2, router_seed=1)
        oracle = BruteForceIndex()
        planner = RebalancePlanner()
        planner.policy.min_docs = 8
        planner.policy.min_shard_docs = 2
        planner.policy.cooldown = 0
        # Explicit ids all targeting shard 0's slice: scan ids whose
        # route is 0.
        doc_id = 0
        added = 0
        while added < 24:
            while index.route(doc_id) != 0:
                doc_id += 1
            text = " ".join(
                _word(1 + (doc_id % 6)) for _ in range(2)
            )
            index.add_document(text, doc_id)
            oracle.add_document(doc_id, text.split())
            doc_id += 1
            added += 1
        index.flush_batch()
        before = RebalancePlanner.imbalance(index.shard_doc_counts())
        assert before == pytest.approx(2.0)
        for _ in range(4):
            all_counts = index.shard_doc_counts()
            counts = {
                s: all_counts[s] for s in index.routing.shard_ids
            }
            move = planner.plan(counts)
            if move is None:
                break
            if move[0] == "split":
                index.split_shard(move[1])
            else:
                index.merge_shards(move[1], move[2])
            _check(index, oracle)
        all_counts = index.shard_doc_counts()
        after = RebalancePlanner.imbalance(
            [all_counts[s] for s in index.routing.shard_ids]
        )
        assert after < before
