"""RoutingTable properties: the epoch-0 ≡ ``shard_of`` contract, the
routing-preserving refinement, and the split/merge/reassign moves.

The load-bearing claim is the degenerate-epoch equivalence: every layer
that replaced a raw ``shard_of`` call with ``table.route`` must behave
frame-for-frame identically until the first structural move, which is
only true if the epoch-0 table *is* the static router.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.routing import RoutingTable
from repro.core.shard import shard_of

doc_ids = st.integers(min_value=0, max_value=2**40)


class TestEpochZeroEquivalence:
    @given(
        doc_id=doc_ids,
        nshards=st.integers(min_value=1, max_value=16),
        seed=st.sampled_from([0, 1, 7, 97, 12345]),
    )
    def test_route_matches_shard_of(self, doc_id, nshards, seed):
        table = RoutingTable.initial(nshards, seed)
        assert table.epoch == 0
        assert table.route(doc_id) == shard_of(doc_id, nshards, seed)

    def test_identity_layout(self):
        table = RoutingTable.initial(4, 3)
        assert table.owners == (0, 1, 2, 3)
        assert table.nslots == 4
        assert table.shard_ids == (0, 1, 2, 3)
        assert table.nshards == 4
        assert all(table.doc_share(s) == 0.25 for s in range(4))

    def test_single_shard_degenerate(self):
        table = RoutingTable.initial(1)
        assert table.route(12345) == 0 == shard_of(12345, 1)


class TestRefinement:
    @given(
        doc_id=doc_ids,
        nshards=st.integers(min_value=1, max_value=8),
        seed=st.sampled_from([0, 5]),
        rounds=st.integers(min_value=1, max_value=3),
    )
    def test_refine_preserves_every_route(self, doc_id, nshards, seed, rounds):
        table = RoutingTable.initial(nshards, seed)
        refined = table
        for _ in range(rounds):
            refined = refined.refine()
        assert refined.route(doc_id) == table.route(doc_id)
        assert refined.nslots == table.nslots * 2**rounds
        assert refined.epoch == rounds

    def test_refine_keeps_shares(self):
        table = RoutingTable.initial(3, 1).refine()
        for s in range(3):
            assert table.doc_share(s) == pytest.approx(1 / 3)


class TestSplit:
    def test_split_moves_only_victim_documents(self):
        table = RoutingTable.initial(4, 0)
        after = table.split(2, 4)
        assert after.epoch == 1
        for doc_id in range(2000):
            before_owner = table.route(doc_id)
            after_owner = after.route(doc_id)
            if before_owner != 2:
                assert after_owner == before_owner
            else:
                assert after_owner in (2, 4)

    def test_split_single_slot_refines_first(self):
        table = RoutingTable.initial(2, 0)
        after = table.split(0, 2)
        assert after.nslots == 4  # refined from 2
        assert after.epoch == 1  # one bump, not two
        assert set(after.shard_ids) == {0, 1, 2}
        # Both halves of the old shard-0 slice are non-empty.
        assert after.slots_of(0) and after.slots_of(2)

    def test_split_halves_the_share(self):
        table = RoutingTable.initial(2, 0)
        after = table.split(0, 2)
        assert after.doc_share(0) == pytest.approx(0.25)
        assert after.doc_share(2) == pytest.approx(0.25)
        assert after.doc_share(1) == pytest.approx(0.5)

    def test_split_rejects_existing_owner(self):
        table = RoutingTable.initial(3, 0)
        with pytest.raises(ValueError, match="already owns"):
            table.split(0, 1)

    def test_split_rejects_empty_victim(self):
        table = RoutingTable.initial(2, 0)
        with pytest.raises(ValueError, match="owns no slots"):
            table.split(7, 9)


class TestMergeAndReassign:
    def test_merge_redirects_all_src_routes(self):
        table = RoutingTable.initial(4, 0)
        after = table.merge(3, 1)
        assert after.epoch == 1
        assert 3 not in after.shard_ids
        for doc_id in range(2000):
            want = table.route(doc_id)
            assert after.route(doc_id) == (1 if want == 3 else want)

    def test_merge_validations(self):
        table = RoutingTable.initial(3, 0)
        with pytest.raises(ValueError, match="into itself"):
            table.merge(1, 1)
        with pytest.raises(ValueError, match="owns no slots"):
            table.merge(9, 0)
        with pytest.raises(ValueError, match="owns no slots"):
            table.merge(0, 9)

    def test_reassign_keeps_partition_shape(self):
        """Rewriting ids moves no document relative to its cohabitants:
        two docs share a shard before iff they share one after."""
        table = RoutingTable.initial(3, 0)
        after = table.reassign({0: 5, 2: 5})
        assert after.epoch == 1
        for doc_id in range(500):
            before = table.route(doc_id)
            assert after.route(doc_id) == {0: 5, 2: 5}.get(before, before)

    def test_split_then_merge_restores_routes(self):
        table = RoutingTable.initial(3, 0)
        after = table.split(1, 3).merge(3, 1)
        assert after.epoch == 2
        for doc_id in range(2000):
            assert after.route(doc_id) == table.route(doc_id)


class TestIdentity:
    def test_equality_and_hash_cover_epoch_and_layout(self):
        a = RoutingTable.initial(2, 0)
        assert a == RoutingTable.initial(2, 0)
        assert a != a.refine()
        assert a != RoutingTable.initial(2, 1)
        assert hash(a) == hash(RoutingTable.initial(2, 0))

    def test_as_dict_round_trip_fields(self):
        table = RoutingTable.initial(2, 9).split(0, 2)
        d = table.as_dict()
        assert d == {
            "epoch": 1,
            "seed": 9,
            "nslots": table.nslots,
            "owners": list(table.owners),
        }

    def test_owners_must_cover_slots(self):
        with pytest.raises(ValueError):
            RoutingTable(0, 0, 3, (0, 1))
