"""Unit tests for the adaptive allocation strategy (related work)."""

import pytest

from repro.core.longlists import LongListManager
from repro.core.policy import Alloc, Limit, Policy, Style
from repro.core.postings import CountPostings
from repro.storage.diskarray import DiskArray, DiskArrayConfig
from repro.storage.profiles import SEAGATE_SCSI_1994

BP = 64


def make_manager(policy):
    array = DiskArray(
        DiskArrayConfig(
            ndisks=2, profile=SEAGATE_SCSI_1994, nblocks_override=100_000
        )
    )
    return LongListManager(policy, array, BP)


class TestPolicyValidation:
    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            Policy(style=Style.NEW, alloc=Alloc.ADAPTIVE, k=0)

    def test_ewma_alpha_validated(self):
        with pytest.raises(ValueError):
            Policy(style=Style.NEW, alloc=Alloc.ADAPTIVE, k=1, ewma_alpha=0)
        with pytest.raises(ValueError):
            Policy(style=Style.NEW, alloc=Alloc.ADAPTIVE, k=1, ewma_alpha=1.5)

    def test_named_constructor(self):
        p = Policy.adaptive_new()
        assert p.alloc is Alloc.ADAPTIVE and p.limit is Limit.Z

    def test_name(self):
        assert Policy.adaptive_new(k=1.0).name == "new z adap-1"


class TestChunkSizing:
    def test_reserve_scales_with_prediction(self):
        p = Policy.adaptive_new(k=1.0)
        small = p.chunk_blocks(64, BP, predicted_update=10)
        large = p.chunk_blocks(64, BP, predicted_update=500)
        assert large > small

    def test_zero_prediction_means_no_reserve(self):
        p = Policy.adaptive_new(k=1.0)
        assert p.chunk_blocks(64, BP, predicted_update=0) == 1

    def test_k_multiplies_prediction(self):
        p1 = Policy.adaptive_new(k=1.0)
        p3 = Policy.adaptive_new(k=3.0)
        assert p3.chunk_blocks(10, BP, predicted_update=100) > (
            p1.chunk_blocks(10, BP, predicted_update=100)
        )


class TestManagerIntegration:
    def test_steady_updates_become_in_place(self):
        """After the first write observes the word's update size, steady
        same-sized updates land in the adaptive reserve."""
        mgr = make_manager(Policy.adaptive_new(k=1.0, ewma_alpha=1.0))
        for _ in range(6):
            mgr.append(1, CountPostings(100))
        # First append creates the list; with k=1 the reserve then holds
        # exactly one more 100-posting update each time a chunk is written.
        assert mgr.counters.in_place_updates >= 2
        assert mgr.directory.get(1).npostings == 600

    def test_ewma_tracks_shrinking_updates(self):
        mgr = make_manager(Policy.adaptive_new(k=1.0, ewma_alpha=1.0))
        mgr.append(1, CountPostings(500))
        big_chunk = mgr.directory.get(1).chunks[-1].nblocks
        mgr2 = make_manager(Policy.adaptive_new(k=1.0, ewma_alpha=1.0))
        mgr2.append(2, CountPostings(20))
        small_chunk = mgr2.directory.get(2).chunks[-1].nblocks
        assert big_chunk > small_chunk

    def test_adaptive_beats_proportional_on_mixed_sizes(self):
        """Adaptive sizes the reserve per word; proportional over-reserves
        for large bulk migrations that never grow again."""
        adaptive = make_manager(Policy.adaptive_new(k=1.0))
        proportional = make_manager(
            Policy(
                style=Style.NEW, limit=Limit.Z, alloc=Alloc.PROPORTIONAL,
                k=2.0,
            )
        )
        for mgr in (adaptive, proportional):
            # One huge one-shot list (a migration) ...
            mgr.append(1, CountPostings(5000))
            # ... plus steady small updates on other words.
            for word in range(2, 12):
                for _ in range(3):
                    mgr.append(word, CountPostings(30))
        util_a = adaptive.directory.utilization(BP)
        util_p = proportional.directory.utilization(BP)
        assert util_a > util_p

    def test_counts_and_postings_conserved(self):
        mgr = make_manager(Policy.adaptive_new(k=2.0))
        total = 0
        for i, n in enumerate((10, 300, 7, 64, 128, 1)):
            mgr.append(1 + i % 3, CountPostings(n))
            total += n
        assert mgr.directory.total_postings == total
