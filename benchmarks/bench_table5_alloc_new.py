"""Table 5 — allocation strategies for the new style (with in-place).

Columns as in the paper: average reads per long list ("Read"), internal
utilization ("Util"), total in-place updates ("In-place"), and the fraction
of possible in-place updates achieved ("Frac").

Paper claim reproduced: at comparable utilization (the paper tuned each
strategy's constant to ≈70% utilization), the proportional strategy offers
the best read performance.
"""

from _common import base_experiment, report
from repro import figures
from repro.core.policy import Alloc


def test_table5_allocation_strategies_new_style(benchmark, capfd):
    result = benchmark.pedantic(
        lambda: figures.table5(base_experiment()), rounds=1, iterations=1
    )
    rows = result.data["rows"]
    report("table5_alloc_new", result.rendered, capfd)

    # The paper's bottom line: among strategies at comparable utilization,
    # proportional gives the best reads.  Compare each strategy's variant
    # closest to the utilization of proportional k=2.
    prop = rows[(Alloc.PROPORTIONAL, 2.0)]
    target_util = prop.final_utilization
    for alloc in (Alloc.CONSTANT, Alloc.BLOCK):
        closest = min(
            (d for (a, _), d in rows.items() if a is alloc),
            key=lambda d: abs(d.final_utilization - target_util),
        )
        assert prop.final_avg_reads <= closest.final_avg_reads * 1.05, (
            f"proportional not best vs {alloc.value}"
        )
    # Larger reserves trade utilization for reads and in-place fraction.
    assert (
        rows[(Alloc.PROPORTIONAL, 2.0)].final_avg_reads
        < rows[(Alloc.PROPORTIONAL, 1.5)].final_avg_reads
    )
    assert (
        rows[(Alloc.PROPORTIONAL, 2.0)].counters.in_place_fraction
        > rows[(Alloc.PROPORTIONAL, 1.5)].counters.in_place_fraction
    )
