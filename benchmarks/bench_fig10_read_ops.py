"""Figure 10 — average read operations to read a word with a long list.

Paper claims reproduced: the whole style guarantees exactly one read; the
Limit=0 policies degrade steadily as chunks proliferate; in-place updates
are necessary for competitive query performance; at the final index, whole
beats fill-z by a small factor and new-z by a larger one (the paper cites
≈1.5× and ≈6×).
"""

from _common import base_experiment, report
from repro import figures
from repro.analysis.reporting import ratio


def test_fig10_avg_reads_per_long_list(benchmark, capfd):
    result = benchmark.pedantic(
        lambda: figures.figure10(base_experiment()), rounds=1, iterations=1
    )
    series = result.data["series"]
    report("fig10_read_ops", result.rendered, capfd)

    finals = {name: s[-1] for name, s in series.items()}

    # Whole style: always exactly one read.
    assert all(v == 1.0 for v in series["whole 0&z"] if v > 0)
    # Limit=0 policies are the worst and keep degrading.
    worst_two = sorted(finals, key=finals.get, reverse=True)[:2]
    assert set(worst_two) == {"new 0", "fill 0"}
    assert finals["new 0"] > 10
    # In-place updates are needed for competitive reads.
    assert finals["new z"] < 0.5 * finals["new 0"]
    assert finals["fill z"] < 0.5 * finals["fill 0"]
    # Final-index ratios against whole (paper: ≈1.5× fill z, ≈6× new z;
    # bounds kept loose enough to hold across REPRO_SCALE settings).
    assert 1.5 < ratio(finals["fill z"], finals["whole 0&z"]) < 8
    assert 2.5 < ratio(finals["new z"], finals["whole 0&z"]) < 14
