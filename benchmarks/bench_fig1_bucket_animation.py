"""Figure 1 — animation of one bucket's contents over time.

Paper setup: a small system of 100 buckets (capacity 8000 units each), one
bucket watched; the trace shows words rising slowly, postings climbing
steeply, and downward spikes when the longest short list overflows into a
long list.
"""

from _common import report
from repro import figures


def test_fig1_bucket_animation(benchmark, capfd):
    result = benchmark.pedantic(figures.figure1, rounds=1, iterations=1)
    history = result.data["history"]
    capacity = result.data["capacity"]
    assert len(history) > 50, "watched bucket saw too few changes"

    words = [s.nwords for s in history]
    postings = [s.npostings for s in history]
    totals = [s.size for s in history]
    report("fig1_bucket_animation", result.rendered, capfd)

    # Words rise slowly and stay far below postings (top vs bottom lines).
    assert words[-1] > words[0]
    assert max(postings) > 3 * max(words)
    # The bucket filled up and evicted: at least one downward spike, and
    # the size never exceeds capacity at rest.
    drops = [
        i
        for i in range(1, len(totals))
        if totals[i] < totals[i - 1] - 100
    ]
    assert drops, "no eviction spike observed"
    assert totals[-1] <= capacity
    # Postings climb steeply while the bucket fills (the middle line).
    assert max(postings) > 0.5 * capacity
