"""Extension X5 — free-space allocator ablation (paper §3 / related work).

The paper fixes first-fit and names best-fit and the buddy system (used by
Cutting & Pedersen) as alternatives left unstudied.  This bench runs the
whole-z policy — the most allocation-intensive one, constantly freeing and
re-allocating moved lists — under all three allocators.

Reproduced/extended claims:

* logical results (I/O operation counts, utilization, reads per list) are
  allocator-independent — allocation strategy only moves chunks around;
* the buddy system pays internal rounding: its peak allocated footprint
  exceeds the fit allocators' (the related-work section's "expected space
  utilization is lower" remark).
"""

from _common import base_config, base_experiment, report
from repro.analysis.reporting import format_table
from repro.core.policy import Alloc, Limit, Policy, Style
from repro.pipeline.compute_disks import ComputeDisksProcess, DiskStageConfig

ALLOCATORS = ("first-fit", "best-fit", "buddy")


def run_allocators():
    experiment = base_experiment()
    policy = Policy(
        style=Style.WHOLE, limit=Limit.Z, alloc=Alloc.PROPORTIONAL, k=1.2
    )
    out = {}
    for allocator in ALLOCATORS:
        process = ComputeDisksProcess(
            DiskStageConfig(
                policy=policy,
                ndisks=base_config().ndisks,
                block_postings=base_config().block_postings,
                bucket_flush_blocks=base_config().bucket_flush_blocks,
                allocator=allocator,
            )
        )
        result = process.run(experiment.bucket_stage().trace)
        peak_address = max(
            op.start + op.nblocks for op in result.trace.ops()
        )
        out[allocator] = (result, peak_address)
    return out


def test_ext_allocator_ablation(benchmark, capfd):
    results = benchmark.pedantic(run_allocators, rounds=1, iterations=1)
    rows = [
        (
            allocator,
            r.series.io_ops[-1],
            round(r.final_utilization, 3),
            round(r.final_avg_reads, 2),
            peak,
        )
        for allocator, (r, peak) in results.items()
    ]
    report(
        "ext_allocator",
        format_table(
            ("allocator", "io ops", "util", "reads/list", "peak block addr"),
            rows,
            title="X5: free-space allocator ablation (whole z prop-1.2)",
        ),
        capfd,
    )

    first_fit, ff_peak = results["first-fit"]
    for allocator in ("best-fit", "buddy"):
        other, _ = results[allocator]
        # Logical behaviour identical: same ops, same index quality.
        assert other.series.io_ops == first_fit.series.io_ops, allocator
        assert other.final_utilization == first_fit.final_utilization
        assert other.final_avg_reads == first_fit.final_avg_reads
    # Buddy's power-of-two rounding spreads chunks further out on disk.
    _, buddy_peak = results["buddy"]
    assert buddy_peak > ff_peak
