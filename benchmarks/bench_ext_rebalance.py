"""Extension X-rebalance — online shard split/merge under a skewed
open loop.

Two arms over the *same* skewed document stream (~6 of 7 documents
hash-routed to shard 0 under the epoch-0 table), one artifact
(``benchmarks/results/BENCH_rebalance.json``):

**Control (epoch 0).** Rebalancing off: the routing table never moves,
so the hot shard keeps ~85% of the corpus and the max/mean doc
imbalance converges to ~1.7x.  Zero divergences — this arm doubles as
the frame-for-frame regression check that the versioned routing table
at epoch 0 *is* the static ``shard_of`` router.

**Rebalance.** The flush-boundary planner watches the same stream and
splits the hot shard's hash slice online (flip-first cutover: publish
the refined table, then tombstone the movers out of the victim).  The
structural claims, all asserted:

* every answer, on every probe cycle of both arms, is byte-identical
  to the brute-force oracle — including probes issued immediately
  after a cutover (zero divergences);
* no read ever waits on a rebuild or errors during a move (zero
  availability gaps, ``reads_waited_for_rebuild == 0``);
* at least one split actually fires, the routing epoch advances, and
  the final doc imbalance lands below the control's and below the
  1.5x reporting bound.

Cutover cost (wall seconds spent inside split windows) and per-cycle
read p95s for both arms are archived so the latency price of a move is
visible next to the balance it buys.
"""

import asyncio
import json
import time

from _common import RESULTS_DIR, report
from repro.core.index import IndexConfig
from repro.core.rebalance import RebalancePlanner, RebalancePolicy
from repro.core.shard import shard_of
from repro.query.reference import BruteForceIndex
from repro.service.gateway import AsyncShardGateway

SHARDS = 2
ROUTER_SEED = 1
CYCLES = 8
DOCS_PER_CYCLE = 15
HOT_RATIO = 7  # 6 of every 7 documents aim at shard 0
DELETE_EVERY = 9
PROBES_PER_CYCLE = 3

DOC_WORDS = 8
VOCAB = 20

QUERIES = [
    "wa AND wb",
    "wc OR wd",
    "wa AND NOT wb",
    "we OR wa",
]


def _config() -> IndexConfig:
    return IndexConfig(
        nbuckets=16,
        bucket_size=64,
        block_postings=8,
        ndisks=2,
        nblocks_override=200_000,
        store_contents=True,
    )


def _doc(i: int) -> str:
    return " ".join(
        f"w{chr(ord('a') + (i * 5 + k * 3) % VOCAB)}"
        for k in range(DOC_WORDS)
    )


def _skewed_ids(n: int) -> list[int]:
    """The shared skewed id stream, pinned to the epoch-0 router so
    both arms ingest the identical sequence."""
    ids = []
    cursor = 0
    for i in range(n):
        target = 0 if i % HOT_RATIO else 1
        while shard_of(cursor, SHARDS, ROUTER_SEED) != target:
            cursor += 1
        ids.append(cursor)
        cursor += 1
    return ids


def _p(samples, q) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


async def _arm(rebalance: bool) -> dict:
    gateway = AsyncShardGateway(
        _config(),
        shards=SHARDS,
        replicas=2,
        router_seed=ROUTER_SEED,
        rebalance=rebalance,
        rebalance_policy=(
            RebalancePolicy(
                max_imbalance=1.3,
                min_docs=40,
                min_shard_docs=4,
                cooldown=1,
            )
            if rebalance
            else None
        ),
    )
    await gateway.start()
    try:
        oracle = BruteForceIndex()
        ids = _skewed_ids(CYCLES * DOCS_PER_CYCLE)
        live: list[int] = []
        divergences = 0
        cycle_p95 = []
        ingested = 0
        for cycle in range(CYCLES):
            for _ in range(DOCS_PER_CYCLE):
                doc_id = ids[ingested]
                text = _doc(doc_id)
                await gateway.add_document(text, doc_id)
                oracle.add_document(doc_id, text.split())
                live.append(doc_id)
                ingested += 1
                if ingested % DELETE_EVERY == 0 and len(live) > 1:
                    victim = live.pop(len(live) // 2)
                    await gateway.delete_document(victim)
                    oracle.delete_document(victim)
            await gateway.flush()  # the planner may cut over in here
            # Probe immediately after the (possible) cutover: these
            # reads land in the window the flip-first protocol protects.
            samples = []
            for p in range(PROBES_PER_CYCLE):
                for query in QUERIES:
                    t0 = time.perf_counter()
                    got = await gateway.search_boolean(query)
                    samples.append(time.perf_counter() - t0)
                    if got.doc_ids != oracle.search_boolean(query):
                        divergences += 1
            cycle_p95.append(round(_p(samples, 0.95) * 1e3, 3))
        check = await gateway.check()
        assert check.ok, check.violations
        counts = gateway._shard_doc_counts()
        active = {s: counts[s] for s in gateway.routing.shard_ids}
        return {
            "rebalance": rebalance,
            "divergences": divergences,
            "splits": gateway.rebalance.splits,
            "merges": gateway.rebalance.merges,
            "docs_moved": gateway.rebalance.docs_moved,
            "cutover_seconds": round(
                gateway.rebalance.cutover_seconds, 4
            ),
            "routing_epoch": gateway.routing.epoch,
            "active_shards": sorted(active),
            "shard_docs": active,
            "imbalance": round(
                RebalancePlanner.imbalance(active), 4
            ),
            "reads_waited_for_rebuild": (
                gateway.repl.reads_waited_for_rebuild
            ),
            "read_failovers": gateway.repl.read_failovers,
            "cycle_read_p95_ms": cycle_p95,
        }
    finally:
        await gateway.close()


def test_ext_rebalance_split_under_skew(capfd):
    control = asyncio.run(_arm(rebalance=False))
    rebalanced = asyncio.run(_arm(rebalance=True))

    # Exactness: both arms answer byte-identically to the oracle on
    # every probe, including the ones fired right after a cutover.
    assert control["divergences"] == 0, control
    assert rebalanced["divergences"] == 0, rebalanced

    # Availability: no read ever waits on a rebuild in either arm.
    assert control["reads_waited_for_rebuild"] == 0
    assert rebalanced["reads_waited_for_rebuild"] == 0

    # The control arm never moves — epoch 0, static router, hot shard
    # keeps its ~1.7x imbalance.
    assert control["splits"] == 0 and control["routing_epoch"] == 0
    assert control["imbalance"] > 1.5

    # The rebalance arm actually moves and lands below the bound.
    assert rebalanced["splits"] >= 1
    assert rebalanced["routing_epoch"] >= 1
    assert rebalanced["docs_moved"] > 0
    assert rebalanced["imbalance"] < 1.5
    assert rebalanced["imbalance"] < control["imbalance"]

    doc = {
        "workload": {
            "shards": SHARDS,
            "cycles": CYCLES,
            "docs_per_cycle": DOCS_PER_CYCLE,
            "hot_ratio": f"{HOT_RATIO - 1}/{HOT_RATIO} to shard 0",
            "delete_every": DELETE_EVERY,
            "imbalance_bound": 1.5,
        },
        "control": control,
        "rebalanced": rebalanced,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_rebalance.json").write_text(
        json.dumps(doc, indent=2) + "\n", encoding="utf-8"
    )

    lines = [
        f"{'arm':>10} {'splits':>6} {'moved':>6} {'epoch':>5} "
        f"{'imbalance':>9} {'diverg.':>7} {'waited':>6} "
        f"{'cutover':>9}",
    ]
    for label, arm in (("control", control), ("rebalance", rebalanced)):
        lines.append(
            f"{label:>10} {arm['splits']:>6} {arm['docs_moved']:>6} "
            f"{arm['routing_epoch']:>5} {arm['imbalance']:>8.2f}x "
            f"{arm['divergences']:>7} "
            f"{arm['reads_waited_for_rebuild']:>6} "
            f"{arm['cutover_seconds'] * 1e3:>7.1f}ms"
        )
    lines.append(
        "read p95 by cycle (ms): control "
        f"{control['cycle_read_p95_ms']} / rebalance "
        f"{rebalanced['cycle_read_p95_ms']}"
    )
    report("BENCH_rebalance", "\n".join(lines), capfd)
