"""Extension X9 — executed query costs on real content-mode indexes.

X4 estimates query costs from the directory's shape; this bench *executes*
queries — sorted-list merges over postings decoded from the simulated
disks — and counts the read operations they actually pay, for the two ends
of the policy spectrum.

Reproduced claims, now with executed queries:

* boolean queries over infrequent words cost ≈1 read per word regardless
  of policy (the dual structure insulates short lists from the long-list
  layout);
* vector queries (document-derived, frequent-word-heavy) pay many times
  more reads per word under `new 0` than under `whole z`;
* both query styles return identical answers under both policies — layout
  is invisible to semantics.
"""

import numpy as np

from _common import base_config, report
from dataclasses import replace

from repro.analysis.reporting import format_table, ratio
from repro.core.policy import Limit, Policy, Style
from repro.pipeline.content import build_content_index
from repro.query.boolean import intersect

WORKLOAD_SCALE = 0.25
NBOOLEAN = 60
NVECTOR = 12

POLICIES = {
    "new 0": Policy(style=Style.NEW, limit=Limit.ZERO),
    "whole z": Policy.recommended_whole(),
}


def build_indexes():
    config = base_config()
    workload = replace(config.workload, scale=WORKLOAD_SCALE)
    # Bucket space sized to THIS bench's fixed workload scale, not to
    # REPRO_SCALE (the workload here is pinned at WORKLOAD_SCALE).
    indexes = {
        name: build_content_index(
            workload,
            policy,
            nbuckets=max(32, int(256 * WORKLOAD_SCALE)),
            bucket_size=config.bucket_size,
            block_postings=config.block_postings,
        )
        for name, policy in POLICIES.items()
    }
    return workload, indexes


def run_queries(workload, indexes):
    rng = np.random.default_rng(23)
    # Vocabulary ranked by total postings, from any index's structures.
    sample = next(iter(indexes.values()))
    ranked = sorted(
        (
            (entry.npostings, entry.word)
            for entry in sample.directory.entries()
        ),
        reverse=True,
    )
    frequent_words = [w for _, w in ranked[:50]]
    bucket_words = list(sample.buckets.words())
    infrequent = rng.choice(
        np.array(bucket_words, dtype=np.int64), size=200, replace=False
    )

    results = {}
    for name, index in indexes.items():
        # Boolean IRM: conjunctions of infrequent words.
        bool_reads = 0
        bool_answers = []
        for q in range(NBOOLEAN):
            words = infrequent[3 * q : 3 * q + 3]
            lists, reads = [], 0
            for word in words:
                postings, r = index.fetch(int(word))
                lists.append(postings.doc_ids)
                reads += r
            answer = lists[0]
            for other in lists[1:]:
                answer = intersect(answer, other)
            bool_reads += reads
            bool_answers.append(answer)
        # Vector IRM: document-derived queries over frequent words.
        vec_reads = 0
        vec_words = 0
        vec_answers = []
        for q in range(NVECTOR):
            words = rng.choice(
                np.array(frequent_words, dtype=np.int64),
                size=min(30, len(frequent_words)),
                replace=False,
            )
            scores = {}
            for word in words:
                postings, r = index.fetch(int(word))
                vec_reads += r
                vec_words += 1
                for doc in postings.doc_ids:
                    scores[doc] = scores.get(doc, 0) + 1
            vec_answers.append(sorted(scores))
        results[name] = {
            "bool_reads_per_word": bool_reads / (NBOOLEAN * 3),
            "vec_reads_per_word": vec_reads / vec_words,
            "bool_answers": bool_answers,
            "vec_answers": vec_answers,
        }
    return results


def test_ext_executed_query_costs(benchmark, capfd):
    def run():
        workload, indexes = build_indexes()
        return run_queries(workload, indexes)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (
            name,
            round(r["bool_reads_per_word"], 2),
            round(r["vec_reads_per_word"], 2),
        )
        for name, r in results.items()
    ]
    report(
        "ext_query_execution",
        format_table(
            ("policy", "boolean reads/word", "vector reads/word"),
            rows,
            title=(
                "X9: executed query costs (real posting lists decoded "
                "from the simulated disks)"
            ),
        ),
        capfd,
    )

    new0 = results["new 0"]
    wholez = results["whole z"]
    # Identical answers under both layouts.
    assert new0["bool_answers"] == wholez["bool_answers"]
    assert new0["vec_answers"] == wholez["vec_answers"]
    # Boolean: ≈1 read/word everywhere (bucket-resident words).
    assert new0["bool_reads_per_word"] < 1.5
    assert wholez["bool_reads_per_word"] < 1.5
    # Vector: new 0 pays several times more reads than whole z.
    assert wholez["vec_reads_per_word"] <= 1.0 + 1e-9
    assert (
        ratio(new0["vec_reads_per_word"], wholez["vec_reads_per_word"]) > 3
    )
