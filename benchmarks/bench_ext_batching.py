"""Extension X-batching — adaptive micro-batched reads vs. per-read frames.

The tentpole claim of the batching work (DESIGN.md §16): collapsing the
gateway's per-read frames into adaptive micro-batches buys back the
per-frame tax — pickle + syscall + dispatch, times shards × replicas —
so *saturated* open-loop throughput rises while *unloaded* p50 stays
put (the adaptive window sleeps zero until recent batch depth crosses
half the cap).  Both arms of each comparison drain the identical
deterministic Poisson schedule — same seed, same query payloads, same
scheduled instants — so every latency sample is completion minus
*scheduled* arrival and the comparison is offered-load for offered-load.

Correctness is not assumed: a differential probe run with batching and
coalescing enabled must report zero divergences before any throughput
number counts.

On a single-CPU host the frame tax is pure CPU, so batching still wins
— but both arms time-share one core and run-to-run variance is large,
hence the graduated floor (the acceptance 1.3x applies where workers
own cores).  Floors and measured ratios are archived together in
``benchmarks/results/BENCH_batching.json`` (uploaded by the CI
batching-smoke job).
"""

import json
import os

from _common import RESULTS_DIR, report
from repro.service.loadgen import LoadConfig, LoadGenerator

SHARDS = 4
READERS = 4
SATURATING_QPS = 4000.0
SATURATING_QUERIES = 1200
UNLOADED_QPS = 120.0
UNLOADED_QUERIES = 240
BATCH_SIZE = 16
BATCH_DELAY_US = 250


def _arm_config(
    batch_size: int, rate: float, queries: int, coalesce: bool = False
) -> LoadConfig:
    return LoadConfig(
        readers=READERS,
        flush_cycles=4,
        docs_per_batch=50,
        vocabulary=160,
        seed=9,
        verify=False,
        check_invariants=False,
        shards=SHARDS,
        gateway=True,
        arrival="open",
        arrival_rate_qps=rate,
        arrival_queries=queries,
        queue_limit=queries,  # measure latency, don't shed the backlog
        batch_size=batch_size,
        batch_delay_us=BATCH_DELAY_US if batch_size > 1 else 0,
        coalesce=coalesce,
    )


def _arm_metrics(report_obj) -> dict:
    doc = report_obj.as_dict()
    batching = doc["gateway"]["batching"]
    return {
        "wall_seconds": doc["wall_seconds"],
        "throughput_qps": doc["throughput_qps"],
        "completed": doc["open_loop"]["completed"],
        "scheduled": doc["open_loop"]["scheduled"],
        "shed": doc["open_loop"]["shed"],
        "deadline_exceeded": doc["open_loop"]["deadline_exceeded"],
        "latency_overall": doc["latency"]["overall"],
        "batching": batching,
    }


def test_ext_batching_open_loop_throughput(capfd):
    cpus = os.cpu_count() or 1

    # Correctness first: boundary differential probes against the
    # brute-force mirror with batching AND coalescing enabled.  Any
    # divergence voids every throughput number below.
    probe = LoadGenerator(
        LoadConfig(
            readers=2,
            flush_cycles=3,
            docs_per_batch=30,
            vocabulary=120,
            seed=4,
            verify=False,
            differential=True,
            delete_every=11,
            shards=SHARDS,
            replicas=2,
            gateway=True,
            batch_size=BATCH_SIZE,
            batch_delay_us=BATCH_DELAY_US,
            coalesce=True,
        )
    ).run()
    assert probe.divergences == 0, probe.divergence_examples

    # Saturated arms: identical schedule, only the wire transport varies.
    sat_plain = LoadGenerator(
        _arm_config(1, SATURATING_QPS, SATURATING_QUERIES)
    ).run()
    sat_batched = LoadGenerator(
        _arm_config(BATCH_SIZE, SATURATING_QPS, SATURATING_QUERIES)
    ).run()

    # Unloaded arms: the adaptive window must not tax an idle gateway.
    idle_plain = LoadGenerator(
        _arm_config(1, UNLOADED_QPS, UNLOADED_QUERIES)
    ).run()
    idle_batched = LoadGenerator(
        _arm_config(BATCH_SIZE, UNLOADED_QPS, UNLOADED_QUERIES)
    ).run()

    arms = {
        "saturated_unbatched": sat_plain,
        "saturated_batched": sat_batched,
        "unloaded_unbatched": idle_plain,
        "unloaded_batched": idle_batched,
    }
    for label, arm in arms.items():
        doc = arm.as_dict()
        assert (
            doc["open_loop"]["completed"] + doc["open_loop"]["shed"]
            + doc["open_loop"]["deadline_exceeded"]
            == doc["open_loop"]["scheduled"]
        ), f"{label}: arrivals leaked from the schedule"

    batched_doc = sat_batched.as_dict()["gateway"]["batching"]
    assert batched_doc["batch_frames"] > 0
    assert batched_doc["single_read_frames"] == 0
    plain_doc = sat_plain.as_dict()["gateway"]["batching"]
    assert plain_doc["batch_frames"] == 0

    ratio = sat_batched.throughput_qps / sat_plain.throughput_qps
    # >= 4 cores: workers own cores and the frame tax is the bottleneck
    # batching removes — the acceptance 1.3x floor applies outright.
    # Fewer cores: the saving is still real CPU (fewer pickles, fewer
    # syscalls, fewer task wakeups — measured ~1.2-1.4x on one core)
    # but both arms time-share, so the floor leaves noise headroom.
    floor = 1.3 if cpus >= 4 else 1.15 if cpus >= 2 else 1.05

    p50_plain = idle_plain.as_dict()["latency"]["overall"]["p50"]
    p50_batched = idle_batched.as_dict()["latency"]["overall"]["p50"]
    # Within 1.1x plus a 300 us absolute epsilon: at unloaded p50s of a
    # few ms, pure scheduler jitter is a measurable fraction of 10%.
    p50_budget = p50_plain * 1.1 + 300e-6

    doc = {
        "workload": {
            "shards": SHARDS,
            "readers": READERS,
            "saturating_rate_qps": SATURATING_QPS,
            "saturating_queries": SATURATING_QUERIES,
            "unloaded_rate_qps": UNLOADED_QPS,
            "unloaded_queries": UNLOADED_QUERIES,
            "batch_size": BATCH_SIZE,
            "batch_delay_us": BATCH_DELAY_US,
        },
        "arms": {
            label: _arm_metrics(arm) for label, arm in arms.items()
        },
        "differential": {
            "replicas": 2,
            "coalesce": True,
            "divergences": probe.divergences,
        },
        "comparison": {
            "cpus": cpus,
            "saturated_throughput_ratio": round(ratio, 3),
            "floor": floor,
            "unloaded_p50_unbatched_s": round(p50_plain, 6),
            "unloaded_p50_batched_s": round(p50_batched, 6),
            "unloaded_p50_budget_s": round(p50_budget, 6),
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_batching.json").write_text(
        json.dumps(doc, indent=2) + "\n", encoding="utf-8"
    )

    lines = [
        f"{'arm':>20} {'q/s':>8} {'p50 ms':>8} {'p95 ms':>8} "
        f"{'frames':>7} {'saved':>7}",
    ]
    for label, arm in arms.items():
        m = _arm_metrics(arm)
        lines.append(
            f"{label:>20} {m['throughput_qps']:>8.1f} "
            f"{m['latency_overall'].get('p50', 0.0) * 1e3:>8.2f} "
            f"{m['latency_overall'].get('p95', 0.0) * 1e3:>8.2f} "
            f"{m['batching']['batch_frames']:>7} "
            f"{m['batching']['frames_saved']:>7}"
        )
    lines.append(
        f"batched/unbatched saturated throughput: {ratio:.2f}x "
        f"(floor {floor}x, {cpus} cpu(s)); unloaded p50 "
        f"{p50_batched * 1e3:.2f} ms vs {p50_plain * 1e3:.2f} ms "
        f"(budget {p50_budget * 1e3:.2f} ms); divergences: "
        f"{probe.divergences}"
    )
    report("BENCH_batching", "\n".join(lines), capfd)

    assert ratio >= floor, (
        f"batched throughput ratio {ratio:.2f}x below {floor}x floor "
        f"({cpus} cpus)"
    )
    assert p50_batched <= p50_budget, (
        f"unloaded p50 {p50_batched * 1e3:.2f} ms exceeds the "
        f"1.1x-of-unbatched budget {p50_budget * 1e3:.2f} ms"
    )
