"""Figure 8 — cumulative I/O operations to build the final index.

Paper claims reproduced: every curve has increasing slope (updates slow
down as the index grows); the Limit=0 policies form the bottom pair;
in-place updates roughly double the operation count (each in-place update
is a read plus a write); the whole style is the upper bound, with whole,
fill-z and new-z landing within a few tens of percent of each other.
"""

from _common import base_experiment, report
from repro import figures
from repro.analysis.metrics import increasing_slope
from repro.analysis.reporting import ratio


def test_fig8_cumulative_io_operations(benchmark, capfd):
    result = benchmark.pedantic(
        lambda: figures.figure8(base_experiment()), rounds=1, iterations=1
    )
    series = result.data["series"]
    report("fig8_cumulative_io", result.rendered, capfd)

    finals = {name: s[-1] for name, s in series.items()}

    # Increasing slope on every curve.
    for name, s in series.items():
        assert increasing_slope(s), f"{name} does not steepen"
    # Bottom two lines are the Limit=0 new/fill policies.
    bottom_two = sorted(finals, key=finals.get)[:2]
    assert set(bottom_two) == {"new 0", "fill 0"}
    # In-place updates cost a read and a write, roughly doubling ops.
    assert 1.4 < ratio(finals["new z"], finals["new 0"]) < 2.2
    assert 1.4 < ratio(finals["fill z"], finals["fill 0"]) < 2.2
    # Whole is the upper bound; whole/fill-z/new-z within ~40%.
    assert finals["whole 0&z"] == max(finals.values())
    assert ratio(finals["whole 0&z"], finals["new z"]) < 1.4
    assert ratio(finals["whole 0&z"], finals["fill z"]) < 1.4
