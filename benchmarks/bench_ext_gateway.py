"""Extension X-gateway — multi-process serving vs. in-process scatter.

The acceptance claim of the gateway work: four shard-worker *processes*
behind the asyncio scatter-gather gateway sustain open-loop read
throughput competitive with the in-process 4-shard baseline — and win
outright once there are cores for the workers to own.  Both arms drain
the *identical* deterministic Poisson arrival schedule (same seed, same
query payloads, same scheduled instants), so the comparison is offered
load for offered load with no coordinated omission: every latency
sample is completion minus *scheduled* arrival.

On a single-CPU host the gateway's extra work (pickling frames across
sockets, context switches between five processes) is pure overhead with
nothing to overlap against, so the floor is honest about topology:
parity-with-headroom at >= 4 cores, graceful degradation bounds below.
The floor and the measured ratio are both archived, alongside a
separate differential-probe run that must report zero divergences.

The measured comparison is archived as
``benchmarks/results/BENCH_gateway.json`` (the CI gateway-smoke job
uploads it as a workflow artifact).
"""

import json
import os

from _common import RESULTS_DIR, report
from repro.service.loadgen import LoadConfig, LoadGenerator

SHARDS = 4
READERS = 4
RATE_QPS = 4000.0
QUERIES = 1200
FLUSH_CYCLES = 4
DOCS_PER_BATCH = 50


def _perf_config(gateway: bool) -> LoadConfig:
    return LoadConfig(
        readers=READERS,
        flush_cycles=FLUSH_CYCLES,
        docs_per_batch=DOCS_PER_BATCH,
        vocabulary=160,
        seed=9,
        verify=False,
        check_invariants=False,
        shards=SHARDS,
        gateway=gateway,
        arrival="open",
        arrival_rate_qps=RATE_QPS,
        arrival_queries=QUERIES,
        queue_limit=QUERIES,  # measure latency, don't shed the backlog
    )


def _arm_metrics(report_obj) -> dict:
    doc = report_obj.as_dict()
    return {
        "wall_seconds": doc["wall_seconds"],
        "throughput_qps": doc["throughput_qps"],
        "completed": doc["open_loop"]["completed"],
        "scheduled": doc["open_loop"]["scheduled"],
        "shed": doc["open_loop"]["shed"],
        "deadline_exceeded": doc["open_loop"]["deadline_exceeded"],
        "latency_overall": doc["latency"]["overall"],
    }


def test_ext_gateway_open_loop_throughput(capfd):
    cpus = os.cpu_count() or 1

    # Correctness first: a short gateway run with boundary differential
    # probes against the brute-force mirror.  Divergences here void any
    # throughput number below.
    probe = LoadGenerator(
        LoadConfig(
            readers=2,
            flush_cycles=3,
            docs_per_batch=30,
            vocabulary=120,
            seed=4,
            verify=False,
            differential=True,
            delete_every=11,
            shards=SHARDS,
            gateway=True,
        )
    ).run()
    assert probe.divergences == 0, probe.divergence_examples

    inproc = LoadGenerator(_perf_config(gateway=False)).run()
    gw = LoadGenerator(_perf_config(gateway=True)).run()

    for arm_report, label in ((inproc, "in-process"), (gw, "gateway")):
        doc = arm_report.as_dict()
        assert (
            doc["open_loop"]["completed"] + doc["open_loop"]["shed"]
            + doc["open_loop"]["deadline_exceeded"]
            == doc["open_loop"]["scheduled"]
        ), f"{label}: arrivals leaked from the schedule"

    gw_doc = gw.as_dict()
    assert gw_doc["gateway"]["failovers"] == 0
    ratio = gw.throughput_qps / inproc.throughput_qps
    # >= 4 cores: each worker owns one, the gateway must win outright.
    # 2-3 cores: partial overlap against the serialization tax — parity
    # band.  1 core: both arms time-share one core, so the ratio at
    # saturation *is* the frame-pickling + context-switch tax with
    # nothing to overlap it against (~0.2x observed); the floor only
    # bounds a regression of that tax.
    floor = 1.1 if cpus >= 4 else 0.75 if cpus >= 2 else 0.15

    doc = {
        "workload": {
            "shards": SHARDS,
            "readers": READERS,
            "offered_rate_qps": RATE_QPS,
            "scheduled_queries": QUERIES,
            "flush_cycles": FLUSH_CYCLES,
            "docs_per_batch": DOCS_PER_BATCH,
        },
        "arms": {
            "inprocess": _arm_metrics(inproc),
            "gateway": _arm_metrics(gw),
        },
        "differential": {
            "checks": probe.as_dict()["config"]["flush_cycles"],
            "divergences": probe.divergences,
        },
        "comparison": {
            "cpus": cpus,
            "throughput_ratio": round(ratio, 3),
            "floor": floor,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_gateway.json").write_text(
        json.dumps(doc, indent=2) + "\n", encoding="utf-8"
    )

    lines = [
        f"{'arm':>10} {'wall s':>8} {'q/s':>8} {'done':>6} "
        f"{'shed':>5} {'p95 ms':>8}",
    ]
    for label, arm in (("inprocess", inproc), ("gateway", gw)):
        m = _arm_metrics(arm)
        p95 = m["latency_overall"].get("p95", 0.0) * 1_000
        lines.append(
            f"{label:>10} {m['wall_seconds']:>8.3f} "
            f"{m['throughput_qps']:>8.1f} {m['completed']:>6} "
            f"{m['shed']:>5} {p95:>8.2f}"
        )
    lines.append(
        f"gateway/in-process throughput: {ratio:.2f}x "
        f"(floor {floor}x, {cpus} cpu(s)); differential divergences: "
        f"{probe.divergences}"
    )
    report("BENCH_gateway", "\n".join(lines), capfd)

    assert ratio >= floor, (
        f"gateway throughput ratio {ratio:.2f}x below {floor}x floor "
        f"({cpus} cpus)"
    )
