"""Extension X13 — incremental updates vs the traditional rebuild baseline.

The paper's opening argument: traditional systems rebuild the whole index
periodically, which is (a) a massive operation and (b) leaves the newest
documents unsearchable until the next rebuild — unacceptable for news,
mail, and stock feeds.  This bench quantifies the argument on our workload
by running the rebuild baseline at several periods against the
dual-structure index under the recommended new-style policy:

* a *weekly* rebuild writes several times the incremental index's block
  volume and leaves postings unsearchable for days on average;
* a *daily* rebuild fixes freshness but writes an order of magnitude more
  than weekly — the rebuild cost the paper calls massive, now paid daily;
* the incremental index is fresh at batch granularity (staleness 0 by
  construction) with bounded writes — the paper's motivation, measured.
"""

from _common import base_config, base_experiment, physical_exercise_config, report
from repro.analysis.reporting import format_table
from repro.core.policy import Policy
from repro.pipeline.exercise import ExerciseDisksProcess
from repro.pipeline.rebuild import PeriodicRebuildBaseline
from repro.storage.iotrace import OpKind

PERIODS = (1, 7, 30)


def run_comparison():
    config = base_config()
    experiment = base_experiment()
    updates = experiment.updates()
    exerciser = ExerciseDisksProcess(physical_exercise_config())

    incremental = experiment.run_policy(
        Policy.recommended_new(), exercise=False
    )
    inc_blocks = incremental.disks.trace.count_blocks(OpKind.WRITE)
    inc_time = exerciser.run(incremental.disks.trace).total_s

    rows = {
        "incremental (new z prop-2)": (inc_blocks, 0.0, inc_time)
    }
    for period in PERIODS:
        baseline = PeriodicRebuildBaseline(
            period_days=period,
            block_postings=config.block_postings,
            ndisks=config.ndisks,
        )
        result = baseline.run(updates)
        time_s = exerciser.run(result.trace).total_s
        rows[f"rebuild every {period}d"] = (
            result.total_blocks_written,
            result.mean_staleness_days,
            time_s,
        )
    return rows


def test_ext_rebuild_baseline(benchmark, capfd):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    table = [
        (
            name,
            blocks,
            round(staleness, 2),
            round(time_s, 1),
        )
        for name, (blocks, staleness, time_s) in rows.items()
    ]
    report(
        "ext_rebuild_baseline",
        format_table(
            (
                "strategy",
                "blocks written",
                "mean staleness (days)",
                "build time (s)",
            ),
            table,
            title="X13: incremental maintenance vs periodic full rebuilds",
        ),
        capfd,
    )

    inc_blocks, inc_staleness, _ = rows["incremental (new z prop-2)"]
    daily_blocks, daily_staleness, _ = rows["rebuild every 1d"]
    weekly_blocks, weekly_staleness, _ = rows["rebuild every 7d"]
    monthly_blocks, monthly_staleness, _ = rows["rebuild every 30d"]

    # Incremental: fresh at batch granularity.
    assert inc_staleness == 0.0
    # Matching incremental freshness with rebuilds (daily) costs an order
    # of magnitude more writing than the incremental index.
    assert daily_staleness == 0.0
    assert daily_blocks > 8 * inc_blocks
    # Slower rebuild schedules trade freshness for volume.
    assert daily_blocks > weekly_blocks > monthly_blocks
    assert monthly_staleness > weekly_staleness > daily_staleness
    assert weekly_staleness > 2.5  # days of unsearchable news
    # Even the weekly schedule writes more than incremental maintenance.
    assert weekly_blocks > inc_blocks
