"""Benchmark-suite configuration: make `_common` importable and warm the
shared experiment once so per-bench timings exclude the policy-independent
stages (as the paper's staged design intends)."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
