"""Benchmark-suite configuration: make `_common` importable and warm the
shared experiment once so per-bench timings exclude the policy-independent
stages (as the paper's staged design intends)."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))


def pytest_collection_modifyitems(items):
    # Everything under benchmarks/ is benchmark-scale; CI runs
    # ``pytest -m "not slow"`` so these stay out of the tier-1 gate even
    # when benchmarks/ is collected explicitly.
    for item in items:
        item.add_marker(pytest.mark.slow)
