"""Figure 9 — internal utilization of long-list disk space per policy.

Paper claims reproduced: the whole style keeps utilization high regardless
of in-place updates; without in-place updates the new and (especially)
fill styles waste most of their space; in-place updates rescue both; the
initial spike to 1.0 before any long list exists is visible.
"""

from _common import base_experiment, report
from repro import figures


def test_fig9_long_list_utilization(benchmark, capfd):
    result = benchmark.pedantic(
        lambda: figures.figure9(base_experiment()), rounds=1, iterations=1
    )
    series = result.data["series"]
    report("fig9_utilization", result.rendered, capfd)

    finals = {name: s[-1] for name, s in series.items()}

    # Initial spike: utilization is 1.0 while there are no long lists.
    assert all(s[0] == 1.0 for s in series.values())
    # Whole dominates everything.
    assert finals["whole 0&z"] == max(finals.values())
    assert finals["whole 0&z"] > 0.85
    # No in-place ⇒ collapse; fill 0 is the worst case.
    assert finals["fill 0"] == min(finals.values())
    assert finals["fill 0"] < 0.3
    # new 0 falls dramatically relative to its in-place twin.
    assert finals["new 0"] < 0.7 * finals["new z"]
    # In-place rescues new and fill.
    assert finals["new z"] > 1.4 * finals["new 0"]
    assert finals["fill z"] > 3 * finals["fill 0"]
    assert finals["new z"] > 0.7
