"""Figure 14 — time per update (the non-cumulative view of Figure 13).

Paper claims reproduced: per-update times grow as the index accumulates
long lists; the growth for new-0 is slight (its writes coalesce); the
whole-z policy is the one whose per-update time is most sensitive to the
size of the update (it moves whole lists, and small Saturday updates move
fewer postings).
"""

import numpy as np

from _common import base_experiment, physical_exercise_config, report
from repro import figures


def test_fig14_time_per_update(benchmark, capfd):
    result = benchmark.pedantic(
        lambda: figures.figure14(base_experiment(), physical_exercise_config()), rounds=1, iterations=1
    )
    series = result.data["series"]
    report("fig14_time_per_update", result.rendered, capfd)

    updates = base_experiment().updates()
    update_sizes = np.array([u.npostings for u in updates], dtype=float)

    def late_over_early(values):
        v = np.asarray(values)
        return v[-10:].mean() / max(v[1:11].mean(), 1e-9)

    # Per-update times grow for every policy...
    for name, values in series.items():
        assert late_over_early(values) > 1.05, name
    # ...but only slightly for new 0 compared to whole 0.
    assert late_over_early(series["new 0"]) < late_over_early(
        series["whole 0"]
    )

    # whole z is the policy most correlated with update size (paper: the
    # only policy whose per-update time tracks the update's posting count).
    # Both signals trend upward as the index grows, so correlate the
    # residuals after removing a quadratic trend.
    def size_correlation(values):
        v = np.asarray(values[10:], dtype=float)
        s = update_sizes[10:]
        x = np.arange(v.size, dtype=float)
        v_res = v - np.polyval(np.polyfit(x, v, 2), x)
        s_res = s - np.polyval(np.polyfit(x, s, 2), x)
        return float(np.corrcoef(v_res, s_res)[0, 1])

    correlations = {name: size_correlation(v) for name, v in series.items()}
    assert correlations["whole z"] == max(correlations.values())
    assert correlations["whole z"] > 0.4
