"""Figure 11 — impact of the proportional constant k on utilization.

Paper claims reproduced: utilization generally falls as k rises for both
the new and whole styles; the fill style does not interact with the
proportional strategy (flat reference line).
"""

from _common import base_experiment, report
from repro import figures


def test_fig11_utilization_vs_k(benchmark, capfd):
    result = benchmark.pedantic(
        lambda: figures.figure11(base_experiment()), rounds=1, iterations=1
    )
    sweep = result.data["sweep"]
    report("fig11_util_vs_k", result.rendered, capfd)

    # Utilization falls from the smallest to the largest k for new & whole.
    for style in ("new", "whole"):
        assert sweep[style][0] > sweep[style][-1] + 0.05, style
        # And the trend is broadly monotone (allow one small local bump —
        # the paper's own new-style curve has a cusp at k = 2).
        violations = sum(
            1
            for a, b in zip(sweep[style], sweep[style][1:])
            if b > a + 0.02
        )
        assert violations <= 1, style
    # The fill reference line is flat by construction.
    assert len(set(sweep["fill (e=4)"])) == 1
