"""Extension X4 — boolean vs vector IRM query costs (paper §5.2.1, [9]).

The paper concentrates on the vector-space IRM and defers boolean results
to the technical note, arguing that boolean queries use few, infrequent
words that "reside in buckets".  Reproduced claims:

* per word, boolean queries are far cheaper than vector queries under any
  policy (bucket reads vs multi-chunk long-list reads);
* the *policy choice* matters enormously for the vector IRM but barely
  for the boolean IRM — the dual structure insulates infrequent words
  from the long-list layout.
"""

from _common import base_experiment, report
from repro.analysis.reporting import format_table, ratio
from repro.core.policy import Limit, Policy, Style
from repro.query.cost import BooleanWorkload, QueryCostModel, VectorWorkload

POLICIES = {
    "new 0": Policy(style=Style.NEW, limit=Limit.ZERO),
    "new z": Policy(style=Style.NEW, limit=Limit.Z),
    "whole z": Policy(style=Style.WHOLE, limit=Limit.Z),
}

BOOLEAN = BooleanWorkload(words_per_query=4, nqueries=200)
VECTOR = VectorWorkload(words_per_query=150, nqueries=30)


def run_costs():
    experiment = base_experiment()
    word_counts: dict[int, int] = {}
    for update in experiment.updates():
        for word, count in update:
            word_counts[word] = word_counts.get(word, 0) + count
    out = {}
    for name, policy in POLICIES.items():
        run = experiment.run_policy(policy)
        manager = run.disks.manager
        bucket_words = set(
            experiment.bucket_stage().manager.words()
        )
        model = QueryCostModel(
            manager.directory, bucket_words, word_counts
        )
        out[name] = (
            model.boolean_cost(BOOLEAN) / BOOLEAN.words_per_query,
            model.vector_cost(VECTOR),
        )
    return out


def test_ext_query_irm_costs(benchmark, capfd):
    costs = benchmark.pedantic(run_costs, rounds=1, iterations=1)
    rows = [
        (name, round(b, 3), round(v, 3))
        for name, (b, v) in costs.items()
    ]
    report(
        "ext_query_irm",
        format_table(
            ("policy", "boolean reads/word", "vector reads/word"),
            rows,
            title="X4: query cost per word, boolean vs vector IRM",
        ),
        capfd,
    )

    for name, (boolean, vector) in costs.items():
        # Boolean words are bucket-resident: ≈1 read per word.
        assert boolean < 1.5, name
        # Vector queries hit long lists: never cheaper per word, and
        # strictly dearer whenever lists can span multiple chunks (the
        # whole style collapses both to exactly one read).
        assert vector >= boolean, name
    assert costs["new 0"][1] > costs["new 0"][0]
    assert costs["new z"][1] > costs["new z"][0]

    # Policy choice swings vector costs far more than boolean costs.
    vector_spread = ratio(
        max(v for _, v in costs.values()), min(v for _, v in costs.values())
    )
    boolean_spread = ratio(
        max(b for b, _ in costs.values()), min(b for b, _ in costs.values())
    )
    assert vector_spread > 2 * boolean_spread
