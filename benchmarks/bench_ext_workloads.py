"""Extension X12 — robustness across the paper's motivating feeds.

The introduction motivates in-place updates with news, electronic mail,
and stock feeds.  The evaluation only uses News; this bench re-runs the
core policy comparison on email-like and stock-like synthetic workloads
and checks that the paper's conclusions are not a News artifact:

* update-cost ordering (new 0 cheapest, whole the upper bound) holds on
  every feed;
* query-cost ordering (whole = 1 read, in-place new in the middle, new 0
  worst) holds on every feed;
* the skew the dual structure exploits is present in all three (stock
  most extreme, email least).
"""

from _common import report
from repro.analysis.reporting import format_table
from repro.core.policy import Limit, Policy, Style
from repro.pipeline.experiment import Experiment, ExperimentConfig
from repro.workload.presets import preset

DAYS = 40
SCALE = 0.6

POLICIES = {
    "new 0": Policy(style=Style.NEW, limit=Limit.ZERO),
    "new z": Policy(style=Style.NEW, limit=Limit.Z),
    "whole z": Policy.recommended_whole(),
}


def run_feeds():
    out = {}
    for feed in ("news", "email", "stock"):
        experiment = Experiment(
            ExperimentConfig(workload=preset(feed, days=DAYS, scale=SCALE))
        )
        stats = experiment.stats(frequent_fraction=0.01)
        runs = {
            name: experiment.run_policy(policy).disks
            for name, policy in POLICIES.items()
        }
        out[feed] = (stats, runs)
    return out


def test_ext_workload_robustness(benchmark, capfd):
    results = benchmark.pedantic(run_feeds, rounds=1, iterations=1)
    rows = []
    for feed, (stats, runs) in results.items():
        rows.append(
            (
                feed,
                stats.total_postings,
                f"{stats.frequent_postings_share:.0%}",
                runs["new 0"].series.io_ops[-1],
                runs["whole z"].series.io_ops[-1],
                round(runs["new 0"].final_avg_reads, 1),
                round(runs["new z"].final_avg_reads, 1),
                round(runs["whole z"].final_avg_reads, 1),
            )
        )
    report(
        "ext_workloads",
        format_table(
            (
                "feed",
                "postings",
                "top-1% share",
                "io new0",
                "io wholez",
                "reads new0",
                "reads newz",
                "reads wholez",
            ),
            rows,
            title=f"X12: policy behaviour across feeds ({DAYS} days)",
        ),
        capfd,
    )

    shares = {}
    for feed, (stats, runs) in results.items():
        shares[feed] = stats.frequent_postings_share
        # Update-cost ordering holds on every feed.
        assert (
            runs["new 0"].series.io_ops[-1]
            < runs["new z"].series.io_ops[-1]
            <= runs["whole z"].series.io_ops[-1] * 1.05
        ), feed
        # Query-cost ordering holds on every feed.
        assert runs["whole z"].final_avg_reads == 1.0, feed
        assert (
            runs["new z"].final_avg_reads < runs["new 0"].final_avg_reads
        ), feed
    # Skew gradient: stock most concentrated, email least.
    assert shares["stock"] > shares["news"] > shares["email"]
