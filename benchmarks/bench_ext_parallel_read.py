"""Extension X10 — striping long lists across a disk array (paper §1/§5.4).

The introduction asks whether large lists can be striped across disks to
improve performance; the fill style's bottom line claims its bounded
extents make lists "automatically divided into sections of disks which can
be ... read in parallel (e.g., with a disk array)", with the §7 note that
the extent cost "can be lowered by using multiple extent sizes".

This bench prices reading the ten longest lists under the read-time model
(seek + rotation + transfer per chunk; parallel = max per-disk time):

* the whole style's single chunk cannot be parallelized at all;
* fill's chunks spread round-robin, so a disk array cuts its read time by
  roughly the disk count;
* larger extents (fewer seeks per list) close most of fill's remaining gap
  to whole — the multiple-extent-sizes lever the paper points at.
"""

from _common import base_config, base_experiment, report
from repro.analysis.readtime import list_read_time, longest_entries
from repro.analysis.reporting import format_table, ratio
from repro.core.policy import Limit, Policy, Style
from repro.storage.profiles import SEAGATE_SCSI_1994

TOP_N = 10

POLICIES = {
    "whole z": Policy.recommended_whole(),
    "fill z e=4": Policy(style=Style.FILL, limit=Limit.Z, extent_blocks=4),
    "fill z e=16": Policy(style=Style.FILL, limit=Limit.Z, extent_blocks=16),
    "new z": Policy(style=Style.NEW, limit=Limit.Z),
}


def run_model():
    experiment = base_experiment()
    bp = base_config().block_postings
    out = {}
    for name, policy in POLICIES.items():
        directory = experiment.run_policy(policy).disks.manager.directory
        top = longest_entries(directory, TOP_N)
        serial = sum(
            list_read_time(e, SEAGATE_SCSI_1994, bp, parallel=False)
            for e in top
        ) / len(top)
        parallel = sum(
            list_read_time(e, SEAGATE_SCSI_1994, bp, parallel=True)
            for e in top
        ) / len(top)
        chunks = sum(e.nchunks for e in top) / len(top)
        out[name] = (serial, parallel, chunks)
    return out


def test_ext_parallel_list_reads(benchmark, capfd):
    results = benchmark.pedantic(run_model, rounds=1, iterations=1)
    rows = [
        (
            name,
            round(chunks, 1),
            round(serial * 1000, 1),
            round(parallel * 1000, 1),
            round(serial / parallel, 2),
        )
        for name, (serial, parallel, chunks) in results.items()
    ]
    report(
        "ext_parallel_read",
        format_table(
            (
                "policy",
                "chunks/list",
                "serial read (ms)",
                "parallel read (ms)",
                "array speedup",
            ),
            rows,
            title=(
                f"X10: reading the {TOP_N} longest lists, single head vs "
                "4-disk array"
            ),
        ),
        capfd,
    )

    whole_serial, whole_parallel, _ = results["whole z"]
    fill4_serial, fill4_parallel, _ = results["fill z e=4"]
    fill16_serial, fill16_parallel, _ = results["fill z e=16"]

    # Whole: one chunk, one disk — no parallel speedup.
    assert whole_parallel == whole_serial
    # Fill: the array delivers a substantial speedup (≥ half the disks).
    assert fill4_serial / fill4_parallel > 2.0
    # Parallelism closes most of fill's gap to whole...
    serial_gap = ratio(fill4_serial, whole_serial)
    parallel_gap = ratio(fill4_parallel, whole_parallel)
    assert parallel_gap < 0.5 * serial_gap
    # ...and bigger extents close it further (the paper's multiple-extent-
    # sizes remark): fewer seeks per list.
    assert fill16_parallel < fill4_parallel
    assert ratio(fill16_parallel, whole_parallel) < parallel_gap
