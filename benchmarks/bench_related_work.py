"""Section 6 — quantitative comparison with contemporary systems.

The paper compares its index-build times with figures cited from the
literature by normalizing everything to its 259 MB database: Zobel,
Moffat & Sacks-Davis (merge-built, scaled to ≈135 min, halved to ≈67 min
for CPU progress), Fox & Lee (non-incremental merge), Harman & Candela
(8 h for 200-ish MB on a minicomputer), and its own freeWAIS measurement
(≈7 h for a fraction of the database).  Against those, the paper "predicts
a range of index build times from about 14 to 270 minutes depending on the
policy used" — the dual-structure index spans from competitive-with-batch
to slower-but-incremental, while delivering in-place updates nobody else
offered.

We regenerate that comparison at our scale: normalize our measured policy
build times to MB/minute and set them against the cited systems' rates
(also normalized per MB, which is how the paper compares).  Asserted
shape: our fastest policy beats every cited non-incremental rate, our
slowest stays within the range the cited batch systems span — i.e., the
paper's conclusion that incrementality does not cost an order of
magnitude.
"""

from _common import (
    base_experiment,
    physical_exercise_config,
    report,
    timing_policies,
)
from repro.analysis.reporting import format_table
from repro.pipeline.exercise import ExerciseDisksProcess

#: Our synthetic corpus stands in for ≈1/20 of the paper's 259 MB.
CORPUS_MB = 259 / 20

#: Cited systems, normalized to minutes per 259 MB as the paper does
#: (§6), converted to MB/min.
CITED_RATES_MB_MIN = {
    "Zobel/Moffat/Sacks-Davis (scaled, halved)": 259 / 67,
    "Fox & Lee (merge, non-incremental)": 259 / 40,
    "Harman & Candela (minicomputer)": 259 / 480,
    "freeWAIS (measured by the authors)": 259 / 420,
}


def run_policies():
    experiment = base_experiment()
    exerciser = ExerciseDisksProcess(physical_exercise_config())
    rates = {}
    for name, policy in timing_policies().items():
        if name == "fill 0":
            continue  # infeasible on the physical disks (Figure 13)
        outcome = exerciser.run(experiment.run_policy(policy).disks.trace)
        rates[name] = CORPUS_MB / (outcome.total_s / 60.0)
    return rates


def test_related_work_comparison(benchmark, capfd):
    ours = benchmark.pedantic(run_policies, rounds=1, iterations=1)
    rows = [
        (f"this work: {name}", "incremental", round(rate, 1))
        for name, rate in sorted(ours.items(), key=lambda kv: -kv[1])
    ] + [
        (name, "batch rebuild", round(rate, 1))
        for name, rate in CITED_RATES_MB_MIN.items()
    ]
    report(
        "related_work",
        format_table(
            ("system", "update model", "MB/min"),
            rows,
            title=(
                "Section 6: index build rates vs systems cited by the "
                "paper (cited rates normalized to the paper's 259 MB "
                "database; ours measured on the simulated array)"
            ),
        ),
        capfd,
    )

    fastest = max(ours.values())
    slowest = min(ours.values())
    best_cited = max(CITED_RATES_MB_MIN.values())
    worst_cited = min(CITED_RATES_MB_MIN.values())
    # The paper's headline: the fastest policy beats every cited system
    # while remaining incremental.
    assert fastest > best_cited
    # Even the slowest (query-optimal whole) stays above the slowest
    # cited batch systems — incrementality isn't an order of magnitude.
    assert slowest > worst_cited
    # And the spread brackets a wide policy range, as §6 reports
    # ("from about 14 to 270 minutes depending on the policy").
    assert fastest / slowest > 4
