"""Extension X14 — grounding BlockPosting in measured compression rates.

The paper folds compression into its parameters: "the variables
BlockPosting and BlockSize implicitly model the efficiency of the
compression algorithm applied to long lists", and its related work points
to Zobel, Moffat & Sacks-Davis's compression methods as complementary.

This bench measures bytes per posting on *real posting lists* from the
content-mode index under three gap codecs (varint, Elias gamma, Elias
delta), splitting the vocabulary into frequent (long-list) and rare
(bucket) words — whose gap distributions differ exactly the way the codecs
care about — and reports the ``BlockPosting`` each rate implies at 4 KB
blocks.

Asserted claims:

* frequent words' lists (tiny gaps) compress far below 1 byte/posting with
  the bit codecs — gamma at its best;
* rare words' lists (huge gaps) favor delta over gamma;
* every measured rate implies a BlockPosting of hundreds-to-thousands at
  4 KB — the paper's three-digit OCR-garbled value is the right order of
  magnitude for its era's ~16-byte uncompressed postings, while modern gap
  coding supports far denser blocks.
"""

import numpy as np

from dataclasses import replace

from _common import base_config, report
from repro.analysis.reporting import format_table
from repro.core.compression import bytes_per_posting, implied_block_postings
from repro.core.policy import Policy
from repro.pipeline.content import build_content_index

WORKLOAD_SCALE = 0.25
BLOCK_SIZE = 4096


def run_measurement():
    config = base_config()
    workload = replace(config.workload, scale=WORKLOAD_SCALE)
    index = build_content_index(
        workload,
        Policy.recommended_whole(),
        nbuckets=max(32, int(256 * WORKLOAD_SCALE)),
        bucket_size=config.bucket_size,
        block_postings=config.block_postings,
    )
    frequent_lists = [
        index.fetch(e.word)[0].doc_ids
        for e in sorted(
            index.directory.entries(),
            key=lambda e: e.npostings,
            reverse=True,
        )[:25]
    ]
    rng = np.random.default_rng(17)
    bucket_words = sorted(index.buckets.words())
    rare_lists = [
        index.fetch(int(w))[0].doc_ids
        for w in rng.choice(
            np.array(bucket_words, dtype=np.int64), size=200, replace=False
        )
        if len(index.buckets.get(int(w)).doc_ids) >= 2
    ]

    def mean_rate(codec, lists):
        total_bytes = sum(
            bytes_per_posting(codec, ids) * len(ids) for ids in lists
        )
        total_postings = sum(len(ids) for ids in lists)
        return total_bytes / total_postings

    out = {}
    for codec in ("varint", "gamma", "delta"):
        out[codec] = (
            mean_rate(codec, frequent_lists),
            mean_rate(codec, rare_lists),
        )
    return out


def test_ext_compression_rates(benchmark, capfd):
    rates = benchmark.pedantic(run_measurement, rounds=1, iterations=1)
    rows = [
        (
            codec,
            round(freq, 3),
            round(rare, 3),
            implied_block_postings(freq, BLOCK_SIZE),
        )
        for codec, (freq, rare) in rates.items()
    ]
    report(
        "ext_compression",
        format_table(
            (
                "codec",
                "B/posting (frequent)",
                "B/posting (rare)",
                "implied BlockPosting @4KB",
            ),
            rows,
            title=(
                "X14: measured gap-compression rates on real posting "
                "lists"
            ),
        ),
        capfd,
    )

    # Frequent lists: dense gaps compress below a byte with bit codecs.
    assert rates["gamma"][0] < 1.0
    assert rates["gamma"][0] < rates["varint"][0]
    # Rare lists: large gaps favor delta over gamma.
    assert rates["delta"][1] < rates["gamma"][1]
    # Every rate implies a plausible BlockPosting at 4 KB blocks.
    for codec, (freq, _) in rates.items():
        assert implied_block_postings(freq, BLOCK_SIZE) >= 256, codec
