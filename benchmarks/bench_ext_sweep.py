"""Extension X-sweep — the parallel policy-sweep engine + artifact cache.

The acceptance claim of the sweep work: a full Table-2 policy sweep at the
default ``REPRO_SCALE`` runs ≥ 2× faster with ``jobs=4`` and a warm
artifact cache than the plain serial cold path, while producing *identical*
results (asserted here per-policy on the metric series).  The speedup has
two independent sources: the cache skips workload generation +
ComputeBuckets (the policy-independent ~40% of the cold wall-clock), and
the pool divides the remaining policy-dependent work across cores.  On a
single-CPU host the pool degrades to serial — by design — so only the
cache half of the win is available there; the hard assertion floor scales
with ``os.cpu_count()`` accordingly (2× needs ≥ 4 usable cores, exactly
the ``jobs=4`` the acceptance criterion names) and the measured speedup
plus the CPU topology are always recorded.

The measured comparison is archived as ``benchmarks/results/BENCH_sweep.json``
(the CI sweep-smoke job uploads it as a workflow artifact).
"""

import json
import os
import tempfile
import time

from _common import RESULTS_DIR, base_config, default_jobs, report
from repro.core.policy import figure8_policies
from repro.pipeline import Experiment, PolicySweep
from repro.pipeline.artifacts import ArtifactCache

POLICIES = figure8_policies()


def _cold_serial():
    """The pre-sweep baseline: fresh experiment, no cache, one job."""
    experiment = Experiment(base_config(), cache=None)
    start = time.perf_counter()
    sweep = PolicySweep(experiment, POLICIES, jobs=1, exercise=True)
    rep = sweep.run()
    return rep, time.perf_counter() - start


def _warm_parallel(cache_dir, jobs):
    experiment = Experiment(base_config(), cache=ArtifactCache(cache_dir))
    start = time.perf_counter()
    sweep = PolicySweep(experiment, POLICIES, jobs=jobs, exercise=True)
    rep = sweep.run()
    return rep, time.perf_counter() - start


def test_ext_sweep_speedup(benchmark, capfd):
    jobs = max(4, default_jobs())
    with tempfile.TemporaryDirectory() as cache_dir:
        # Populate the artifact cache (untimed: the point of a persistent
        # cache is that this cost is paid once across invocations).
        Experiment(base_config(), cache=ArtifactCache(cache_dir)).bucket_stage()

        cold_report, cold_s = _cold_serial()
        warm_report, warm_s = benchmark.pedantic(
            _warm_parallel, args=(cache_dir, jobs), rounds=1, iterations=1
        )

    # Identical results: the sweep must not trade correctness for speed.
    cold_by_name = cold_report.by_name()
    for row in warm_report.reports:
        base = cold_by_name[row.name]
        assert row.run.disks.series.io_ops == base.run.disks.series.io_ops
        assert row.run.disks.trace.nops == base.run.disks.trace.nops
        assert row.run.exercise.feasible == base.run.exercise.feasible

    assert warm_report.cache_events.get("buckets") == "hit"
    speedup = cold_s / warm_s
    cpus = os.cpu_count() or 1

    doc = warm_report.as_dict()
    doc["comparison"] = {
        "serial_cold_seconds": round(cold_s, 6),
        "warm_seconds": round(warm_s, 6),
        "jobs": jobs,
        "cpus": cpus,
        "speedup": round(speedup, 3),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_sweep.json").write_text(
        json.dumps(doc, indent=2) + "\n", encoding="utf-8"
    )

    lines = [
        f"{'path':<22} {'seconds':>9}",
        f"{'serial, cold cache':<22} {cold_s:>9.3f}",
        f"{'jobs=' + str(jobs) + ', warm cache':<22} {warm_s:>9.3f}",
        f"speedup: {speedup:.2f}x "
        f"(mode: {warm_report.mode}, {cpus} cpu(s))",
    ]
    report("BENCH_sweep", "\n".join(lines), capfd)

    # Headline target is >= 2x with four workers actually running in
    # parallel; with fewer usable cores only the artifact-cache half of the
    # win exists, so the hard floor drops accordingly.  Each floor keeps
    # headroom for timer noise on loaded machines.
    floor = 2.0 if cpus >= 4 else 1.5 if cpus >= 2 else 1.2
    assert speedup >= floor, (
        f"sweep speedup {speedup:.2f}x below {floor}x floor ({cpus} cpus)"
    )
