"""Figure 7 — fraction of words per update in each category.

Paper claims reproduced: new words start at 1.0 and stabilize well below;
bucket words rise while the buckets fill, then decline roughly linearly as
overflow sets in; long words appear only after the fill-up phase and rise
roughly linearly; weekly peaks appear on the long-words curve (small
Saturday updates have a higher share of frequent words).
"""

import numpy as np

from _common import base_experiment, report
from repro import figures


def test_fig7_word_categories(benchmark, capfd):
    result = benchmark.pedantic(
        lambda: figures.figure7(base_experiment()), rounds=1, iterations=1
    )
    new = result.data["new"]
    bucket = result.data["bucket"]
    long_ = result.data["long"]
    n = len(new)
    report("fig7_word_categories", result.rendered, capfd)

    # New words: start at 1.0, end far lower, still nonzero (misspellings
    # and fresh vocabulary keep arriving).
    assert new[0] == 1.0
    assert 0.05 < new[-1] < 0.6
    # Bucket words: interior peak, then decline.
    peak = int(np.argmax(bucket))
    assert 2 < peak < n - 5
    assert bucket[-1] < bucket[peak] - 0.05
    # Long words: none until the buckets fill, then a roughly steady rise.
    assert long_[0] == 0.0
    first_long = next(i for i, v in enumerate(long_) if v > 0)
    assert first_long >= 1
    late = np.mean(long_[-10:])
    mid = np.mean(long_[n // 2 : n // 2 + 10])
    assert late > mid > 0
    # Weekly peaks: Saturdays (day % 7 == 0, smallest updates) carry a
    # higher long-word fraction than their weekday neighbours, on average.
    saturdays = [i for i in range(14, n) if i % 7 == 0]
    neighbours = [i for i in range(14, n) if i % 7 in (2, 3, 4)]
    assert np.mean([long_[i] for i in saturdays]) > np.mean(
        [long_[i] for i in neighbours]
    )
