"""Extension X1 — bucket tuning (paper §7 / technical note [10]).

The paper defers the study of bucket count × bucket size to its extended
technical report, noting only that tuning "uniformly affects the results".
This bench sweeps the partition of a fixed total bucket space and a sweep
of the total itself, reporting how the short/long division responds:

* with more total bucket space, fewer words overflow into long lists and
  fewer long-list I/O operations are needed;
* at a fixed total, fewer, larger buckets perform better — exactly the
  paper's report from its technical note ("using fewer, larger buckets
  offer better performance"): small buckets overflow on local spikes and
  spill moderately-frequent words into long lists prematurely.
"""

from _common import base_config, report
from repro.analysis.reporting import format_table
from repro.core.policy import Limit, Policy, Style
from repro.pipeline.experiment import Experiment, ExperimentConfig

PARTITIONS = [(64, 4096), (256, 1024), (1024, 256)]  # same 256 Ki units
TOTALS = [(128, 1024), (256, 1024), (512, 1024)]  # varying total


def run_sweep():
    rows = []
    base = base_config()
    for nbuckets, bucket_size in PARTITIONS + TOTALS:
        config = ExperimentConfig(
            workload=base.workload,
            nbuckets=nbuckets,
            bucket_size=bucket_size,
            block_postings=base.block_postings,
        )
        experiment = Experiment(config)
        bucket_stage = experiment.bucket_stage()
        run = experiment.run_policy(Policy(style=Style.NEW, limit=Limit.Z))
        rows.append(
            (
                nbuckets,
                bucket_size,
                nbuckets * bucket_size,
                bucket_stage.trace.nupdates,
                run.disks.manager.directory.nwords,
                run.disks.series.io_ops[-1],
            )
        )
    return rows


def test_ext_bucket_tuning(benchmark, capfd):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report(
        "ext_bucket_tuning",
        format_table(
            (
                "buckets",
                "size",
                "total units",
                "long-list updates",
                "long words",
                "io ops (new z)",
            ),
            rows,
            title="X1: bucket tuning — partition and total-space sweeps",
        ),
        capfd,
    )
    by_key = {(r[0], r[1]): r for r in rows}
    # More total bucket space ⇒ fewer long words and fewer I/O ops.
    small = by_key[(128, 1024)]
    large = by_key[(512, 1024)]
    assert large[4] < small[4]
    assert large[5] < small[5]
    # Partition at fixed total: fewer, larger buckets are strictly better
    # (fewer premature migrations, fewer long-list I/O operations).
    partition_ops = [by_key[p][5] for p in PARTITIONS]
    assert partition_ops[0] < partition_ops[1] < partition_ops[2]
    partition_migrations = [by_key[p][3] for p in PARTITIONS]
    assert partition_migrations[0] < partition_migrations[2]
