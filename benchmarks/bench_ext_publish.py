"""Extension X-publish — incremental copy-on-write snapshot publication.

The perf claim of the COW publication work: full-clone publish latency is
O(index) — it re-serializes every bucket, long-list chunk, and directory
entry per publish — while ``clone_incremental`` is O(batch): it copies
only what the batch's delta journal touched and shares the rest with the
previous snapshot.  Two sweeps make the claim measurable:

* **fixed batch, growing index** — publish a constant 32-document batch
  on top of 1 000 / 4 000 / 16 000 pre-loaded documents.  Full-clone p95
  must grow with the index; cow p95 must not, and must be >= 3x faster
  than the full clone at the largest size.
* **fixed index, growing batch** — publish 8 / 32 / 128-document batches
  on a 4 000-document index.  Cow latency tracks the batch size.

Both series land in ``benchmarks/results/BENCH_publish.json`` (the CI
serving-smoke job uploads it and fails when the >= 3x floor is missed).
A third measurement sweeps the shared block buffer cache's budget and
appends the hit-rate curve to ``results/ext_serving_cache.txt``.
"""

import json
import random

from _common import RESULTS_DIR, report
from repro.core.index import IndexConfig
from repro.pipeline.profiling import LatencyRecorder
from repro.service import LoadConfig, LoadGenerator
from repro.textindex import TextDocumentIndex

SIZES = (1_000, 4_000, 16_000)
FIXED_BATCH = 32
BATCH_SWEEP = (8, 32, 128)
SWEEP_NDOCS = 4_000
PUBLISHES_PER_POINT = 6

WORDS = [
    "w" + "".join(chr(ord("a") + (i // 26**p) % 26) for p in range(2, -1, -1))
    for i in range(400)
]


def _document(rng: random.Random) -> str:
    """Zipf-ish document over a letters-only vocabulary."""
    return " ".join(
        WORDS[min(int(rng.paretovariate(0.9)), len(WORDS)) - 1]
        for _ in range(rng.randint(4, 12))
    )


def _make_writer() -> TextDocumentIndex:
    return TextDocumentIndex(
        IndexConfig(
            nbuckets=64,
            bucket_size=256,
            block_postings=16,
            ndisks=2,
            nblocks_override=500_000,
            store_contents=True,
        )
    )


def _load(writer: TextDocumentIndex, rng: random.Random, ndocs: int) -> None:
    for i in range(ndocs):
        writer.add_document(_document(rng))
        if (i + 1) % 500 == 0:
            writer.flush_batch()
    if writer.index.memory.npostings:
        writer.flush_batch()


def _measure_publishes(
    writer: TextDocumentIndex, rng: random.Random, batch_docs: int
) -> dict:
    """Publish ``PUBLISHES_PER_POINT`` batches; time both modes per batch.

    Each cycle flushes one batch, then builds the next snapshot twice
    from the identical writer state: once incrementally (chained off the
    previous cow snapshot, exactly as the service does) and once through
    the full checkpoint clone — so the two series measure the same
    publication work, not different corpora.
    """
    prev = writer.clone()
    writer.index.delta.clear()
    cow_lat, full_lat = LatencyRecorder(), LatencyRecorder()
    for _ in range(PUBLISHES_PER_POINT):
        for _ in range(batch_docs):
            writer.add_document(_document(rng))
        writer.flush_batch()
        delta = writer.index.delta
        with full_lat.span():
            writer.clone()
        with cow_lat.span():
            snapshot = writer.clone_incremental(prev, delta)
        prev = snapshot
        delta.clear()
    return {
        "batch_docs": batch_docs,
        "ndocs": writer.ndocs,
        "cow": cow_lat.summary(),
        "full": full_lat.summary(),
        "speedup_p95": round(
            full_lat.summary()["p95"] / max(cow_lat.summary()["p95"], 1e-9),
            2,
        ),
    }


def test_ext_publish_latency_scaling(capfd):
    rng = random.Random(1994)

    fixed_batch_series = []
    for ndocs in SIZES:
        writer = _make_writer()
        _load(writer, rng, ndocs)
        fixed_batch_series.append(
            _measure_publishes(writer, rng, FIXED_BATCH)
        )

    writer = _make_writer()
    _load(writer, rng, SWEEP_NDOCS)
    batch_sweep_series = [
        _measure_publishes(writer, rng, batch_docs)
        for batch_docs in BATCH_SWEEP
    ]

    # Full-clone publish cost is O(index): it must grow materially from
    # the smallest to the largest corpus.  Cow cost is O(batch): its
    # growth ratio must stay well below the full clone's.
    full_small = fixed_batch_series[0]["full"]["p95"]
    full_large = fixed_batch_series[-1]["full"]["p95"]
    cow_small = fixed_batch_series[0]["cow"]["p95"]
    cow_large = fixed_batch_series[-1]["cow"]["p95"]
    assert full_large > full_small * 2.0, (full_small, full_large)
    assert (cow_large / cow_small) < (full_large / full_small), (
        fixed_batch_series
    )
    # The headline floor: >= 3x faster at the largest smoke corpus.
    assert full_large >= 3.0 * cow_large, (full_large, cow_large)

    payload = {
        "fixed_batch": {
            "batch_docs": FIXED_BATCH,
            "series": fixed_batch_series,
        },
        "batch_sweep": {
            "preloaded_docs": SWEEP_NDOCS,
            "series": batch_sweep_series,
        },
        "publishes_per_point": PUBLISHES_PER_POINT,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(
        RESULTS_DIR / "BENCH_publish.json", "w", encoding="utf-8"
    ) as fp:
        json.dump(payload, fp, indent=2, sort_keys=True)
        fp.write("\n")

    lines = [
        f"{'ndocs':>7} {'batch':>6} {'full p95 (ms)':>14} "
        f"{'cow p95 (ms)':>13} {'speedup':>8}"
    ]
    for row in fixed_batch_series + batch_sweep_series:
        lines.append(
            f"{row['ndocs']:>7,} {row['batch_docs']:>6} "
            f"{row['full']['p95'] * 1e3:>14.2f} "
            f"{row['cow']['p95'] * 1e3:>13.2f} "
            f"{row['speedup_p95']:>7.1f}x"
        )
    report("ext_publish", "\n".join(lines), capfd)


def test_ext_publish_buffer_cache_sweep(capfd):
    """Hit rate of the shared block buffer cache vs its block budget,
    appended to the serving-cache artifact (the two caches compose: the
    result cache absorbs repeated queries, the buffer cache absorbs
    distinct queries touching the same hot long lists)."""
    rows = []
    for budget in (0, 32, 128, 512):
        config = LoadConfig(
            readers=2,
            flush_cycles=10,
            docs_per_batch=40,
            vocabulary=60,
            seed=1994,
            verify=False,
            check_invariants=False,
            cache_capacity=0,  # isolate the buffer cache
            buffer_cache_blocks=budget,
            pace_s=0.001,
        )
        serving_report = LoadGenerator(config).run()
        stats = serving_report.buffer_cache or {
            "hits": 0,
            "misses": 0,
            "hit_rate": 0.0,
        }
        rows.append((budget, stats))
    # More budget never hurts: hit rate is monotone (modulo the disabled
    # row, which reports 0.0).
    rates = [stats["hit_rate"] for _, stats in rows]
    assert rates[0] == 0.0
    assert rates[-1] >= rates[1], rows

    lines = ["", "--- block buffer cache: hit rate vs budget ---"]
    lines.append(f"{'blocks':>7} {'hits':>8} {'misses':>8} {'hit rate':>9}")
    for budget, stats in rows:
        lines.append(
            f"{budget:>7} {stats['hits']:>8} {stats['misses']:>8} "
            f"{stats['hit_rate']:>9.1%}"
        )
    text = "\n".join(lines)
    # Append (not report(), which overwrites): this artifact is shared
    # with bench_ext_serving's result-cache measurement.
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(
        RESULTS_DIR / "ext_serving_cache.txt", "a", encoding="utf-8"
    ) as fp:
        fp.write(text + "\n")
    with capfd.disabled():
        print(f"\n=== ext_publish_buffer_cache ==={text}\n")


def test_ext_publish_report_shape():
    """BENCH_publish.json must stay machine-readable with stable keys."""
    path = RESULTS_DIR / "BENCH_publish.json"
    if not path.exists():  # the scaling bench writes it
        return
    data = json.loads(path.read_text(encoding="utf-8"))
    for key in ("fixed_batch", "batch_sweep"):
        assert key in data, key
        for row in data[key]["series"]:
            assert row["cow"]["p95"] >= 0
            assert row["full"]["p95"] >= 0
