"""Extension X8 — vocabulary/directory structure: hash buckets vs B-tree.

The paper's introduction notes that traditional systems "built a B-tree
that maps each word to the locations of its list on disk", §2 allows h(w)
to be "a hash function or a tree search", and the related work discusses
Cutting & Pedersen's B-tree-organized vocabulary (whose short lists live
*inside* the tree — "a very small bucket for approximately each word").

This bench builds a block-sized-fanout B+tree over the final vocabulary
and compares point-lookup I/O cost against the paper's design (hash to a
bucket: one block read for a short list; in-memory directory: zero reads
for chunk locations), across block sizes.

Asserted claims:

* the B+tree resolves any word in O(log_fanout V) block reads — ≤ 2 extra
  reads for our vocabulary at 4 KB blocks — but never beats the paper's
  hash-to-bucket single read;
* B-tree range scans deliver the vocabulary in sorted order (the paper's
  batch updates are sorted by word id — essentially a tree-friendly merge
  pattern), which the hash design cannot do.
"""

from _common import base_experiment, report
from repro.analysis.reporting import format_table
from repro.storage.btree import BTree, BTreeConfig


def build_trees():
    experiment = base_experiment()
    vocabulary = sorted(
        {word for update in experiment.updates() for word, _ in update}
    )
    trees = {}
    for block_size in (1024, 4096, 16384):
        tree = BTree(BTreeConfig.for_block(block_size, entry_bytes=16))
        for word in vocabulary:
            tree.insert(word, word % 97)  # stand-in location payload
        trees[block_size] = tree
    return vocabulary, trees


def test_ext_btree_directory(benchmark, capfd):
    vocabulary, trees = benchmark.pedantic(build_trees, rounds=1, iterations=1)
    rows = [
        (
            block_size,
            tree.config.order,
            len(tree),
            tree.height,
            tree.node_count,
            tree.lookup_cost_blocks(root_cached=True),
            round(tree.occupancy(), 2),
        )
        for block_size, tree in trees.items()
    ]
    report(
        "ext_btree",
        format_table(
            (
                "block B",
                "fanout",
                "words",
                "height",
                "nodes",
                "lookup reads",
                "occupancy",
            ),
            rows,
            title=(
                "X8: B+tree vocabulary map vs the paper's hash buckets "
                "(hash cost: 1 read for a short list, 0 for the in-memory "
                "directory)"
            ),
        ),
        capfd,
    )

    for block_size, tree in trees.items():
        # Correct and complete.
        assert len(tree) == len(vocabulary)
        assert tree.get(vocabulary[0]) is not None
        # Lookup cost is small but positive: the hash design's single
        # bucket read is never beaten once the tree outgrows its root.
        cost = tree.lookup_cost_blocks(root_cached=True)
        assert 1 <= cost <= 3, block_size
        # Bigger blocks ⇒ flatter tree.
    assert trees[16384].height <= trees[1024].height
    # Sorted range scans work (the capability hashing lacks).
    lo, hi = vocabulary[10], vocabulary[50]
    scanned = [k for k, _ in trees[4096].range(lo, hi)]
    assert scanned == [w for w in vocabulary if lo <= w <= hi]
