"""Table 1 — statistics of the (synthetic) News text database.

Paper claim reproduced: a tiny top fraction of words ("frequent words")
accounts for the vast majority of postings, while the huge remainder of the
vocabulary is infrequent — the skew that motivates the dual structure.
"""

import numpy as np

from _common import base_experiment, report
from repro import figures
from repro.analysis.reporting import format_table
from repro.workload.zipf import fit_zipf_exponent


def test_table1_corpus_statistics(benchmark, capfd):
    experiment = base_experiment()
    result = benchmark.pedantic(
        lambda: figures.table1(experiment), rounds=1, iterations=1
    )
    stats = result.data["stats"]
    top1_share = result.data["top1_share"]

    counts = {}
    for update in experiment.updates():
        for word, count in update:
            counts[word] = counts.get(word, 0) + count
    s_hat = fit_zipf_exponent(np.array(list(counts.values())))

    extra = format_table(
        ("Check", "Value"),
        [
            ("Updates (days)", len(experiment.updates())),
            ("Fitted Zipf exponent", round(s_hat, 2)),
            ("Postings share of top 1% words", f"{top1_share:.1%}"),
        ],
    )
    report("table1_corpus_stats", result.rendered + "\n\n" + extra, capfd)

    # Paper shape: frequent words are a sliver of the vocabulary yet carry
    # the vast majority of postings (thresholds hold across REPRO_SCALE).
    assert stats.frequent_words < 0.01 * stats.total_words
    assert stats.frequent_postings_share > 0.4
    assert top1_share > 0.6
    # And the distribution is Zipf-shaped.
    assert 1.0 < s_hat < 2.0
