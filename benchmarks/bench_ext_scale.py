"""Extension X2 — scaling to larger synthetic databases (paper §7, [10]).

The paper extrapolates its results to larger synthetic databases and
reports that "given the correct parameters, our algorithms scale well".
This bench doubles the corpus and checks that the qualitative policy
ordering is scale-invariant while the index quality metrics degrade only
with the *log-ish* growth of long lists, not with raw volume — and that
scaling bucket space with the corpus restores the short/long balance.
"""

from _common import base_config, report
from repro.analysis.reporting import format_table
from repro.core.policy import Limit, Policy, Style
from repro.pipeline.experiment import Experiment, ExperimentConfig

SCALES = [0.5, 1.0, 2.0]


def run_scales():
    rows = []
    base = base_config()
    for scale in SCALES:
        # Absolute corpus scales, independent of REPRO_SCALE; bucket space
        # scales with the corpus ("the correct parameters").
        config = ExperimentConfig(
            workload=base.workload.__class__(
                **{**base.workload.__dict__, "scale": scale}
            ),
            nbuckets=max(32, int(256 * scale)),
            bucket_size=base.bucket_size,
            block_postings=base.block_postings,
        )
        experiment = Experiment(config)
        new0 = experiment.run_policy(Policy(style=Style.NEW, limit=Limit.ZERO))
        newz = experiment.run_policy(Policy(style=Style.NEW, limit=Limit.Z))
        whole = experiment.run_policy(
            Policy(style=Style.WHOLE, limit=Limit.ZERO)
        )
        total_postings = sum(u.npostings for u in experiment.updates())
        rows.append(
            (
                scale,
                total_postings,
                new0.disks.series.io_ops[-1],
                newz.disks.series.io_ops[-1],
                whole.disks.series.io_ops[-1],
                round(newz.disks.final_avg_reads, 2),
                round(newz.disks.final_utilization, 2),
            )
        )
    return rows


def test_ext_scaling(benchmark, capfd):
    rows = benchmark.pedantic(run_scales, rounds=1, iterations=1)
    report(
        "ext_scale",
        format_table(
            (
                "scale",
                "postings",
                "io new0",
                "io newz",
                "io whole",
                "reads newz",
                "util newz",
            ),
            rows,
            title="X2: scaling the synthetic database",
        ),
        capfd,
    )
    for row in rows:
        _, _, io_new0, io_newz, io_whole, reads, util = row
        # Policy ordering is scale-invariant.
        assert io_new0 < io_newz <= io_whole * 1.05
        # Index quality stays healthy when buckets scale with the corpus.
        assert util > 0.6
        assert reads < 12
    # I/O volume grows with the corpus.
    assert rows[0][2] < rows[1][2] < rows[2][2]
