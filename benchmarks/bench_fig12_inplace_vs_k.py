"""Figure 12 — impact of the proportional constant k on cumulative
in-place updates.

Paper claims reproduced: in-place updates rise with k for both new and
whole styles; the new style shows a cusp at k = 2 (successive updates to a
word have similar sizes, so reserving one extra update's worth captures
most of the gain); the majority of gains come from k ≤ 2.
"""

from _common import base_experiment, report
from repro import figures
from repro.figures import FIGURE12_KS as KS


def test_fig12_in_place_updates_vs_k(benchmark, capfd):
    result = benchmark.pedantic(
        lambda: figures.figure12(base_experiment()), rounds=1, iterations=1
    )
    sweep = result.data["sweep"]
    report("fig12_inplace_vs_k", result.rendered, capfd)

    for style in ("new", "whole"):
        values = sweep[style]
        # Rising in k, (weakly) monotone.
        assert all(b >= a for a, b in zip(values, values[1:])), style
        assert values[-1] > values[0], style
        # Majority of the total gain is already captured at k = 2.
        gain_at_2 = values[KS.index(2.0)] - values[0]
        total_gain = values[-1] - values[0]
        assert gain_at_2 >= 0.6 * total_gain, style

    # The paper's cusp at k = 2: reserving one extra same-sized update's
    # worth captures most of the achievable gain.  Our workload's weekly
    # size modulation smears the exact cusp, so we assert its substance —
    # the marginal in-place gain per unit k collapses past k = 2.
    new = sweep["new"]
    rate_below_2 = (new[KS.index(2.0)] - new[KS.index(1.0)]) / 1.0
    rate_above_2 = (new[KS.index(4.0)] - new[KS.index(2.0)]) / 2.0
    assert rate_below_2 > 2 * rate_above_2
