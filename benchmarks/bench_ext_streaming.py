"""Extension X11 — streamed (lazy) vs materialized boolean evaluation.

The paper's boolean processing merges sorted lists; merging *lazily* —
decoding one block at a time and stopping when any conjunct exhausts —
means a conjunction reads its frequent operand only up to the rare
operand's **last** posting.

Measured on a content-mode index over the synthetic corpus for
"frequent AND rare" conjunctions:

* over arbitrary rare words the saving is real but moderate (a uniformly
  spread rare word's last posting sits late in the corpus);
* over rare words that stopped appearing early (vocabulary churn supplies
  plenty), the streamed evaluator skips the great majority of the frequent
  list's blocks;
* answers are identical to the materialized merge in every case.
"""

import numpy as np

from dataclasses import replace

from _common import base_config, report
from repro.analysis.reporting import format_table, ratio
from repro.core.policy import Policy
from repro.pipeline.content import build_content_index
from repro.query.boolean import intersect
from repro.query.streaming import streamed_and
from repro.storage.block import blocks_for_postings

WORKLOAD_SCALE = 0.25
NQUERIES = 30


def _measure(index, bp, pairs):
    eager_blocks = streamed_blocks = mismatches = 0
    for hot, cold in pairs:
        for word in (hot, cold):
            entry = index.directory.get(word)
            if entry is not None:
                eager_blocks += sum(
                    blocks_for_postings(c.npostings, bp)
                    for c in entry.chunks
                )
        eager_answer = intersect(
            index.fetch(hot)[0].doc_ids, index.fetch(cold)[0].doc_ids
        )
        streamed_answer, stats = streamed_and(index, [hot, cold])
        streamed_blocks += stats.blocks_read
        if streamed_answer != eager_answer:
            mismatches += 1
    return eager_blocks, streamed_blocks, mismatches


def run_comparison():
    config = base_config()
    workload = replace(config.workload, scale=WORKLOAD_SCALE)
    # Bucket space sized to THIS bench's fixed workload scale, not to
    # REPRO_SCALE (the workload here is pinned at WORKLOAD_SCALE).
    index = build_content_index(
        workload,
        Policy.recommended_new(),
        nbuckets=max(32, int(256 * WORKLOAD_SCALE)),
        bucket_size=config.bucket_size,
        block_postings=config.block_postings,
    )
    bp = config.block_postings
    frequent = [
        e.word
        for e in sorted(
            index.directory.entries(),
            key=lambda e: e.npostings,
            reverse=True,
        )
    ]
    # Two disjoint hot cohorts; shrink the query count if the vocabulary
    # is small at this scale.
    nqueries = min(NQUERIES, len(frequent) // 2)
    rng = np.random.default_rng(31)
    bucket_words = sorted(index.buckets.words())
    early_cut = index.ndocs // 4

    def last_doc(word):
        return index.buckets.get(word).doc_ids[-1]

    early_rare = [w for w in bucket_words if last_doc(w) < early_cut]
    any_rare = list(
        rng.choice(np.array(bucket_words, dtype=np.int64), size=nqueries,
                   replace=False)
    )
    rng.shuffle(early_rare)

    cohorts = {
        "any rare word": [
            (hot, int(cold))
            for hot, cold in zip(frequent[:nqueries], any_rare)
        ],
        "early rare word": [
            (hot, int(cold))
            for hot, cold in zip(
                frequent[nqueries : 2 * nqueries], early_rare[:nqueries]
            )
        ],
    }
    return {
        name: _measure(index, bp, pairs) for name, pairs in cohorts.items()
    }


def test_ext_streamed_evaluation(benchmark, capfd):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    rows = []
    for name, (eager, streamed, _) in results.items():
        saved = f"{1 - streamed / eager:.0%}" if eager else "n/a"
        rows.append((name, eager, streamed, saved))
    report(
        "ext_streaming",
        format_table(
            ("conjunct cohort", "eager blocks", "streamed blocks", "saved"),
            rows,
            title=(
                f"X11: {NQUERIES} 'frequent AND rare' conjunctions per "
                "cohort, materialized vs streamed"
            ),
        ),
        capfd,
    )
    for name, (eager, streamed, mismatches) in results.items():
        assert mismatches == 0, name
        assert streamed < eager, name
    # Arbitrary rare words: real but moderate savings.
    eager, streamed, _ = results["any rare word"]
    assert ratio(eager, streamed) > 1.2
    # Early-ending rare words: the frequent list is mostly skipped.
    eager, streamed, _ = results["early rare word"]
    assert ratio(eager, streamed) > 2.5
