"""Extension X7 — dynamic bucket growth (paper §7's open problem).

"As the size of the index grows from the addition of more documents, the
performance of the index degrades.  This implies that we need a strategy to
rebalance the division between short and long lists."

This bench runs a double-length workload (146 days) through the bucket
stage twice — fixed bucket space vs auto-growing bucket space — and then
replays both long-list traces against the recommended new-style policy.

Reproduced/extended claims:

* with fixed buckets, the long-word fraction keeps climbing and the
  long-list update stream keeps growing — the degradation the paper warns
  about;
* with the growth strategy the paper sketches (expand the bucket region at
  flush time), migrations slow down, fewer moderately-frequent words are
  forced into long lists, and late-run update costs are lower.
"""

from dataclasses import replace

from _common import base_config, report
from repro.analysis.reporting import format_table
from repro.core.policy import Policy
from repro.core.rebalance import GrowthPolicy
from repro.pipeline.compute_buckets import ComputeBucketsProcess
from repro.pipeline.compute_disks import ComputeDisksProcess, DiskStageConfig
from repro.workload.synthetic import SyntheticNews

DAYS = 146  # double the paper's run to expose the degradation


def run_both():
    config = base_config()
    workload = replace(config.workload, days=DAYS)
    updates = list(SyntheticNews(workload).batches())
    out = {}
    for label, growth in (
        ("fixed", None),
        ("growing", GrowthPolicy(occupancy_threshold=0.85)),
    ):
        stage = ComputeBucketsProcess(
            config.nbuckets, config.bucket_size, growth=growth
        )
        bucket_result = stage.run(updates)
        disks = ComputeDisksProcess(
            DiskStageConfig(
                policy=Policy.recommended_new(),
                ndisks=config.ndisks,
                block_postings=config.block_postings,
                bucket_flush_blocks=config.bucket_flush_blocks,
            )
        ).run(bucket_result.trace)
        out[label] = (bucket_result, disks)
    return out


def test_ext_bucket_growth(benchmark, capfd):
    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = []
    for label, (bucket_result, disks) in results.items():
        _, _, long_fracs = bucket_result.category_fraction_series
        late_long = sum(long_fracs[-14:]) / 14
        rows.append(
            (
                label,
                bucket_result.manager.nbuckets,
                len(bucket_result.growth_events),
                bucket_result.trace.nupdates,
                disks.manager.directory.nwords,
                round(late_long, 3),
                disks.series.io_ops[-1],
            )
        )
    report(
        "ext_bucket_growth",
        format_table(
            (
                "buckets",
                "final count",
                "growths",
                "long-list updates",
                "long words",
                "late long-frac",
                "io ops",
            ),
            rows,
            title=f"X7: fixed vs growing bucket space over {DAYS} days",
        ),
        capfd,
    )

    fixed_bucket, fixed_disks = results["fixed"]
    grown_bucket, grown_disks = results["growing"]
    # Growth actually happened.
    assert grown_bucket.growth_events
    assert grown_bucket.manager.nbuckets > fixed_bucket.manager.nbuckets
    # Rebalancing keeps more words short: fewer long words, fewer
    # long-list updates, lower late-run long-word fraction.
    assert grown_disks.manager.directory.nwords < (
        fixed_disks.manager.directory.nwords
    )
    assert grown_bucket.trace.nupdates < fixed_bucket.trace.nupdates
    _, _, fixed_long = fixed_bucket.category_fraction_series
    _, _, grown_long = grown_bucket.category_fraction_series
    assert sum(grown_long[-14:]) < sum(fixed_long[-14:])
    # And the long-list I/O bill shrinks.
    assert grown_disks.series.io_ops[-1] < fixed_disks.series.io_ops[-1]
    # Postings conserved either way.
    assert (
        grown_bucket.trace.npostings + grown_bucket.manager.total_postings
        == fixed_bucket.trace.npostings + fixed_bucket.manager.total_postings
    )
