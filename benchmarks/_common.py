"""Shared infrastructure for the benchmark/reproduction harness.

Each ``bench_*`` module regenerates one table or figure of the paper (see
DESIGN.md §4 for the index).  The pattern is:

* the *policy-independent* stages (workload generation, ComputeBuckets) run
  once per session via :func:`base_experiment` — the same economy the
  paper's staged pipeline buys;
* the benchmarked callable regenerates the figure's policy-dependent work
  from the shared long-list trace, so the timing is honest;
* the rendered table/series is printed (visible through pytest's capture
  via ``capfd.disabled``) and archived under ``benchmarks/results/``;
* shape assertions encode the paper's qualitative findings, so a failed
  reproduction fails the bench.

Set ``REPRO_SCALE`` to shrink or grow the workload (default 1.0 ≈ 1/20 of
the paper's corpus; see DESIGN.md "Substitutions").  Set ``REPRO_JOBS`` to
fan policy sweeps out over worker processes, and ``REPRO_CACHE_DIR`` to
persist the policy-independent stages across benchmark invocations (both
picked up automatically by :func:`base_experiment`).
"""

from __future__ import annotations

import functools
import pathlib

from repro.core.policy import Limit, Policy, Style
from repro.pipeline.experiment import (
    Experiment,
    ExperimentConfig,
    default_jobs,
    default_scale,
)
from repro.storage.profiles import SEAGATE_SCSI_1994
from repro.workload.synthetic import SyntheticNewsConfig

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def physical_blocks() -> int:
    """Physical per-disk capacity for the ExerciseDisks figures.

    Scaled with the corpus (the paper's 2 GB drives ÷ ~20 at scale 1, in
    4 KB blocks) so that the ``fill 0`` layout does not fit — exactly as
    on the paper's hardware — at any ``REPRO_SCALE``.
    """
    return max(1024, int(8192 * default_scale()))


@functools.lru_cache(maxsize=None)
def base_config() -> ExperimentConfig:
    """Base experimental parameters at the requested REPRO_SCALE.

    Bucket space scales with the corpus — the paper's §7 point that the
    short/long division must be rebalanced as the database grows ("given
    the correct parameters, our algorithms scale well" [10]); without
    this, larger scales drown in prematurely migrated small lists.
    """
    scale = default_scale()
    return ExperimentConfig(
        workload=SyntheticNewsConfig(scale=scale),
        nbuckets=max(32, int(256 * scale)),
    )


@functools.lru_cache(maxsize=None)
def base_experiment() -> Experiment:
    """The session-shared experiment (workload + bucket stage cached)."""
    experiment = Experiment(base_config())
    experiment.bucket_stage()
    return experiment


def physical_exercise_config():
    from repro.pipeline.exercise import ExerciseConfig

    return ExerciseConfig(
        profile=SEAGATE_SCSI_1994.with_capacity(physical_blocks()),
        ndisks=base_config().ndisks,
        buffer_blocks=base_config().buffer_blocks,
    )


def figure_policies() -> dict[str, Policy]:
    """The five curves of Figures 8–10 (whole 0 ≡ whole z in op counts)."""
    return {
        "new 0": Policy(style=Style.NEW, limit=Limit.ZERO),
        "new z": Policy(style=Style.NEW, limit=Limit.Z),
        "fill 0": Policy(style=Style.FILL, limit=Limit.ZERO),
        "fill z": Policy(style=Style.FILL, limit=Limit.Z),
        "whole 0&z": Policy(style=Style.WHOLE, limit=Limit.ZERO),
    }


def timing_policies() -> dict[str, Policy]:
    """The curves of Figures 13–14 (whole 0 and whole z differ in time;
    fill 0 is reported infeasible on the physical disks)."""
    return {
        "new 0": Policy(style=Style.NEW, limit=Limit.ZERO),
        "new z": Policy(style=Style.NEW, limit=Limit.Z),
        "fill 0": Policy(style=Style.FILL, limit=Limit.ZERO),
        "fill z": Policy(style=Style.FILL, limit=Limit.Z),
        "whole 0": Policy(style=Style.WHOLE, limit=Limit.ZERO),
        "whole z": Policy(style=Style.WHOLE, limit=Limit.Z),
    }


def report(name: str, text: str, capfd=None) -> None:
    """Print a reproduction artifact and archive it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    banner = f"\n=== {name} ===\n{text}\n"
    if capfd is not None:
        with capfd.disabled():
            print(banner)
    else:
        print(banner)
