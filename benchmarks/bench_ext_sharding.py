"""Extension X-sharding — document-partitioned flush and query scaling.

The acceptance claim of the sharding work: a 4-shard
:class:`~repro.core.sharded.ShardedTextIndex` flushes the same corpus
faster than one volume while answering every boolean / streamed / vector
query *identically* to the 1-shard oracle (asserted per query).  The
flush win has two independent sources: each shard is a fully provisioned
volume, so sharding multiplies aggregate short-list capacity and each
shard's long lists stay shorter (cheaper migrations and rewrites under
the default policy) — available even on one CPU — and ``flush_jobs``
fans the per-shard flushes out across cores when there are cores to use.
The hard floor scales with ``os.cpu_count()`` accordingly and the
measured speedup plus the CPU topology are always recorded.

Query p95 is reported per kind at shards ∈ {1, 2, 4}: scatter-gather
pays one fetch per shard per term, so sharded read latency drifts up —
the recorded series documents the trade the TUNING.md sharding section
describes.

The measured comparison is archived as
``benchmarks/results/BENCH_sharding.json`` (the CI serving-smoke job
uploads it as a workflow artifact).
"""

import json
import os
import random
import time

from _common import RESULTS_DIR, report
from repro.core.index import IndexConfig
from repro.core.sharded import build_text_index

NDOCS = 4_000
VOCAB = 1_000
BATCH = 500
SHARD_COUNTS = (1, 2, 4)
DELETE_EVERY = 37

BOOLEAN_QUERIES = [
    "w1 AND w2",
    "w3 OR w4",
    "(w1 OR w5) AND NOT w6",
    "w7 AND NOT (w8 OR w9)",
]
STREAMED_QUERIES = ["w1 AND w2 AND w3", "w4 OR w5 OR w6"]
VECTOR_QUERIES = [
    {"w1": 1.0, "w2": 0.5},
    {"w7": 2.0, "w8": 1.0, "w9": 0.25},
]
QUERY_ROUNDS = 20


def _corpus():
    rng = random.Random(5)
    words = [f"w{i}" for i in range(VOCAB)]
    return [
        " ".join(rng.choices(words, k=rng.randint(10, 30)))
        for _ in range(NDOCS)
    ]


def _config():
    return IndexConfig(nbuckets=64, bucket_size=256, store_contents=True)


def _p95_ms(samples):
    ordered = sorted(samples)
    return ordered[int(0.95 * (len(ordered) - 1))] * 1_000


def _run_arm(docs, shards, jobs):
    index = build_text_index(_config(), shards=shards, flush_jobs=jobs)
    flush_s = 0.0
    for i, text in enumerate(docs):
        index.add_document(text)
        if i % BATCH == BATCH - 1:
            start = time.perf_counter()
            index.flush_batch()
            flush_s += time.perf_counter() - start
    start = time.perf_counter()
    index.flush_batch()
    flush_s += time.perf_counter() - start
    for doc_id in range(0, NDOCS, DELETE_EVERY):
        index.delete_document(doc_id)

    latencies = {"boolean": [], "streamed": [], "vector": []}
    answers = []
    for _ in range(QUERY_ROUNDS):
        for q in BOOLEAN_QUERIES:
            start = time.perf_counter()
            got = tuple(index.search_boolean(q).doc_ids)
            latencies["boolean"].append(time.perf_counter() - start)
            answers.append(("boolean", q, got))
        for q in STREAMED_QUERIES:
            start = time.perf_counter()
            got = tuple(index.search_streamed(q).doc_ids)
            latencies["streamed"].append(time.perf_counter() - start)
            answers.append(("streamed", q, got))
        for weights in VECTOR_QUERIES:
            start = time.perf_counter()
            got = tuple(
                (s.doc_id, round(s.score, 12))
                for s in index.search_vector(weights, top_k=20)
            )
            latencies["vector"].append(time.perf_counter() - start)
            answers.append(("vector", str(weights), got))

    metrics = {
        "shards": shards,
        "flush_jobs": jobs,
        "flush_seconds": round(flush_s, 6),
        "flush_docs_per_s": round(NDOCS / flush_s, 1),
        "query_p95_ms": {
            kind: round(_p95_ms(samples), 4)
            for kind, samples in latencies.items()
        },
    }
    return metrics, answers


def test_ext_sharding_flush_and_query(capfd):
    docs = _corpus()
    cpus = os.cpu_count() or 1

    arms = {}
    oracle_answers = None
    checked = divergent = 0
    for shards in SHARD_COUNTS:
        jobs = 1 if shards == 1 else min(shards, max(1, cpus))
        metrics, answers = _run_arm(docs, shards, jobs)
        arms[str(shards)] = metrics
        if oracle_answers is None:
            oracle_answers = answers
        else:
            # Byte-identical to the 1-shard oracle: same doc ids, same
            # order, same scores — for every query of every kind.
            for (kind, q, got), (_, _, expected) in zip(
                answers, oracle_answers
            ):
                checked += 1
                if got != expected:
                    divergent += 1
            assert divergent == 0, (
                f"{divergent} sharded answers diverged from the "
                f"1-shard oracle at shards={shards}"
            )

    speedup = (
        arms["1"]["flush_seconds"] / arms["4"]["flush_seconds"]
    )
    # With >= 4 usable cores the thread pool overlaps shard flushes on
    # top of the provisioning win; with one core only the algorithmic
    # half is available, so the floor asks for parity plus headroom.
    floor = 1.15 if cpus >= 4 else 1.05 if cpus >= 2 else 1.0

    doc = {
        "workload": {
            "ndocs": NDOCS,
            "vocabulary": VOCAB,
            "docs_per_batch": BATCH,
            "delete_every": DELETE_EVERY,
            "query_rounds": QUERY_ROUNDS,
        },
        "arms": arms,
        "identity": {
            "queries_compared": checked,
            "divergences": divergent,
        },
        "comparison": {
            "cpus": cpus,
            "flush_speedup_4_shards": round(speedup, 3),
            "floor": floor,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_sharding.json").write_text(
        json.dumps(doc, indent=2) + "\n", encoding="utf-8"
    )

    lines = [
        f"{'shards':>6} {'jobs':>4} {'flush s':>9} {'docs/s':>9} "
        f"{'bool ms':>9} {'strm ms':>9} {'vect ms':>9}  (query p95)",
    ]
    for shards in SHARD_COUNTS:
        m = arms[str(shards)]
        p = m["query_p95_ms"]
        lines.append(
            f"{shards:>6} {m['flush_jobs']:>4} {m['flush_seconds']:>9.3f} "
            f"{m['flush_docs_per_s']:>9.0f} {p['boolean']:>9.3f} "
            f"{p['streamed']:>9.3f} {p['vector']:>9.3f}"
        )
    lines.append(
        f"4-shard flush speedup: {speedup:.2f}x "
        f"(floor {floor}x, {cpus} cpu(s)); "
        f"{checked} answers vs oracle, {divergent} divergences"
    )
    report("BENCH_sharding", "\n".join(lines), capfd)

    assert speedup >= floor, (
        f"4-shard flush speedup {speedup:.2f}x below {floor}x floor "
        f"({cpus} cpus)"
    )
