"""Extension X-memtier — the immediate-access memory tier (DESIGN.md §14).

The acceptance claims of the two-tier read path, measured head-to-head on
the same seeded workload across three arms:

* **time to visibility** (snapshot vs immediate): with
  ``read_tier="immediate"`` a document is queryable the moment
  ``add_document`` returns, so the ingest-to-first-hit latency must be at
  least 10x lower than the snapshot tier's floor — the flush cycle itself
  (a snapshot-tier document is invisible until its batch publishes).  The
  visibility arm flushes inline so the probe never contends with a
  concurrent merge and the measurement is deterministic;
* **correctness under concurrency**: the mid-buffer differential probes
  (immediate answers vs. the brute-force mirror of every ingested
  operation) report zero divergences in every arm while readers hammer
  the service;
* **ingest stays fast** (snapshot vs immediate+merger): with the
  background merger draining the buffer off the writer's critical path,
  ingest throughput holds at ≥0.9x the snapshot baseline whose writer
  flushes inline.

The comparison lands in ``benchmarks/results/BENCH_memtier.json`` (the CI
memtier-smoke job uploads the same report as a workflow artifact).
"""

import json

from _common import RESULTS_DIR, report
from repro.service import LoadConfig, LoadGenerator

_SHAPE = dict(
    readers=2,
    flush_cycles=10,
    docs_per_batch=40,
    vocabulary=80,
    seed=1994,
    verify=False,
    differential=True,
    differential_probes=3,
    delete_every=11,
)


def _arm(**overrides):
    return LoadGenerator(LoadConfig(**{**_SHAPE, **overrides})).run()


def test_ext_memtier_visibility_and_throughput(capfd):
    snap = _arm(read_tier="snapshot", visibility_probes=True)
    imm = _arm(read_tier="immediate")
    merged = _arm(read_tier="immediate", background_merge=True)

    # Zero divergences in every differential probe run.
    for arm in (snap, imm, merged):
        assert arm.divergences == 0, arm.divergence_examples
        assert arm.visibility["misses"] == 0

    # The background merger actually drained the buffer.
    merger = merged.memtier["merger"]
    assert merger["merges"] >= 1
    assert merger["errors"] == 0
    assert merged.memtier["buffered_postings"] == 0
    assert imm.memtier["buffered_postings"] == 0

    # Time to visibility: immediate is bounded by one in-memory insert +
    # one query; snapshot is bounded below by its own flush cycle.  The
    # inline-flush immediate arm keeps the probe off the merge lock so
    # the comparison is deterministic.
    snap_vis = snap.visibility["p50"]
    imm_vis = imm.visibility["p50"]
    speedup = snap_vis / imm_vis
    assert speedup >= 10.0, (
        f"immediate visibility {imm_vis * 1e6:.1f}us vs snapshot "
        f"{snap_vis * 1e6:.1f}us — only {speedup:.1f}x"
    )

    # Ingest throughput with merges running in the background holds
    # against the inline-flush snapshot baseline.
    docs_snap = snap.service["documents_ingested"]
    docs_merged = merged.service["documents_ingested"]
    ingest_snap = docs_snap / snap.wall_seconds
    ingest_merged = docs_merged / merged.wall_seconds
    ratio = ingest_merged / ingest_snap
    assert ratio >= 0.9, (
        f"immediate ingest {ingest_merged:,.0f} docs/s vs snapshot "
        f"{ingest_snap:,.0f} docs/s — ratio {ratio:.2f}"
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "snapshot": snap.as_dict(),
        "immediate": imm.as_dict(),
        "immediate_merged": merged.as_dict(),
        "comparison": {
            "visibility_p50_snapshot_s": snap_vis,
            "visibility_p50_immediate_s": imm_vis,
            "visibility_speedup": round(speedup, 2),
            "ingest_docs_per_s_snapshot": round(ingest_snap, 1),
            "ingest_docs_per_s_immediate": round(ingest_merged, 1),
            "ingest_ratio": round(ratio, 4),
            "divergences": (
                snap.divergences + imm.divergences + merged.divergences
            ),
        },
    }
    with open(RESULTS_DIR / "BENCH_memtier.json", "w", encoding="utf-8") as fp:
        json.dump(payload, fp, indent=2, sort_keys=True)
        fp.write("\n")

    report(
        "ext_memtier",
        "\n".join(
            [
                f"{'metric':<30} {'snapshot':>12} {'immediate':>12}",
                f"{'visibility p50 (us)':<30} "
                f"{snap_vis * 1e6:>12.1f} {imm_vis * 1e6:>12.1f}",
                f"{'ingest (docs/s)':<30} "
                f"{ingest_snap:>12,.0f} {ingest_merged:>12,.0f}",
                f"{'queries served':<30} "
                f"{snap.queries:>12,} {imm.queries:>12,}",
                f"{'divergences':<30} "
                f"{snap.divergences:>12} "
                f"{imm.divergences + merged.divergences:>12}",
                f"visibility speedup: {speedup:,.0f}x; "
                f"background merges: {merger['merges']} "
                f"({merger['errors']} errors)",
            ]
        ),
        capfd,
    )


def test_ext_memtier_report_shape():
    """BENCH_memtier.json must stay machine-readable with stable keys."""
    path = RESULTS_DIR / "BENCH_memtier.json"
    if not path.exists():  # the comparison bench writes it
        LoadConfig()  # keep imports honest even when skipped
        return
    data = json.loads(path.read_text(encoding="utf-8"))
    for arm in ("snapshot", "immediate", "immediate_merged"):
        assert arm in data, arm
        for key in ("visibility", "latency", "divergences"):
            assert key in data[arm], (arm, key)
    comparison = data["comparison"]
    for key in (
        "visibility_speedup",
        "ingest_ratio",
        "divergences",
    ):
        assert key in comparison, key
    assert comparison["divergences"] == 0
    assert comparison["visibility_speedup"] >= 10.0
