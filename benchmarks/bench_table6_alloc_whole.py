"""Table 6 — allocation strategies for the whole style (with in-place).

With the whole style every strategy gives identical query performance
(always one read), so the trade is utilization vs update time, compared by
in-place update counts as the paper does.

Paper claim reproduced: the proportional strategy is the best overall —
the only one offering high values for both utilization and the fraction of
in-place updates simultaneously.
"""

from _common import base_experiment, report
from repro import figures
from repro.core.policy import Alloc



def test_table6_allocation_strategies_whole_style(benchmark, capfd):
    result = benchmark.pedantic(
        lambda: figures.table6(base_experiment()), rounds=1, iterations=1
    )
    rows = result.data["rows"]
    report("table6_alloc_whole", result.rendered, capfd)

    # Query performance is always 1 read for whole.
    assert all(d.final_avg_reads == 1.0 for d in rows.values())

    # The paper's claim — proportional is the only strategy offering high
    # values for BOTH utilization and in-place fraction — asserted scale-
    # robustly: the best worst-of-the-two score belongs to a proportional
    # configuration.
    def joint(d):
        return min(d.final_utilization, d.counters.in_place_fraction)

    best_prop = max(
        joint(d) for (a, _), d in rows.items() if a is Alloc.PROPORTIONAL
    )
    best_other = max(
        joint(d) for (a, _), d in rows.items() if a is not Alloc.PROPORTIONAL
    )
    assert best_prop > best_other, (
        "a non-proportional strategy matched proportional on the joint "
        "utilization/in-place score"
    )
    assert best_prop > 0.8
    # More reserve ⇒ lower utilization, more in-place updates (both
    # monotone within each strategy family).
    assert (
        rows[(Alloc.CONSTANT, 200)].final_utilization
        < rows[(Alloc.CONSTANT, 0)].final_utilization
    )
    assert (
        rows[(Alloc.PROPORTIONAL, 1.5)].counters.in_place_updates
        > rows[(Alloc.PROPORTIONAL, 1.1)].counters.in_place_updates
    )
