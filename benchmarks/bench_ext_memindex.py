"""Micro-benchmark — the InMemoryIndex posting-append fast path.

Profiling the sweep showed :meth:`InMemoryIndex.add_document` allocating a
throwaway single-element ``DocPostings([doc_id])`` (plus its validation
loop) for *every posting* just to feed ``extend``.  The fast path appends
into the existing payload directly (``append_doc`` / ``add_count``) with
the same ordering checks.  This bench pits the optimized index against the
legacy per-posting-allocation loop on an identical word stream and asserts
the contents come out identical and the fast path is not slower.
"""

import random
import time

from _common import report
from repro.core.memindex import InMemoryIndex
from repro.core.postings import CountPostings, DocPostings

NDOCS = 2_000
WORDS_PER_DOC = 120
VOCAB = 20_000


def _word_stream():
    rng = random.Random(1994)
    return [
        [rng.randrange(VOCAB) for _ in range(WORDS_PER_DOC)]
        for _ in range(NDOCS)
    ]


def _fill_fast(docs):
    index = InMemoryIndex()
    for doc_id, words in enumerate(docs):
        index.add_document(doc_id, words)
    return index


def _fill_legacy(docs):
    """The pre-optimization loop: one payload allocation per posting."""
    index = InMemoryIndex()
    lists = index._lists
    for doc_id, words in enumerate(docs):
        seen = set()
        for word in words:
            if word in seen:
                continue
            seen.add(word)
            payload = lists.get(word)
            if payload is None:
                lists[word] = DocPostings([doc_id])
            else:
                payload.extend(DocPostings([doc_id]))
            index._npostings += 1
        index._ndocs += 1
    return index


def _time(fn, *args):
    start = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - start


def test_ext_memindex_append_fast_path(benchmark, capfd):
    docs = _word_stream()
    legacy, legacy_s = _time(_fill_legacy, docs)
    fast, fast_s = benchmark.pedantic(
        lambda: _time(_fill_fast, docs), rounds=1, iterations=1
    )

    # The fast path must be a pure optimization: identical index contents.
    assert fast._lists.keys() == legacy._lists.keys()
    for word, payload in fast._lists.items():
        assert payload == legacy._lists[word], word
    assert (fast.ndocs, fast.npostings) == (legacy.ndocs, legacy.npostings)

    # Same comparison for the evaluation pipeline's count payloads.
    rng = random.Random(7)
    pairs = [(rng.randrange(VOCAB), rng.randrange(1, 9)) for _ in range(200_000)]
    fast_counts, fast_counts_s = _time(
        lambda: _fill_counts_fast(pairs),
    )
    legacy_counts, legacy_counts_s = _time(lambda: _fill_counts_legacy(pairs))
    assert fast_counts._lists.keys() == legacy_counts._lists.keys()
    for word, payload in fast_counts._lists.items():
        assert payload == legacy_counts._lists[word], word
    assert fast_counts.npostings == legacy_counts.npostings

    report(
        "ext_memindex",
        "\n".join(
            [
                f"{'path':<28} {'seconds':>9}",
                f"{'add_document (legacy)':<28} {legacy_s:>9.3f}",
                f"{'add_document (fast)':<28} {fast_s:>9.3f}",
                f"{'add_counts (legacy)':<28} {legacy_counts_s:>9.3f}",
                f"{'add_counts (fast)':<28} {fast_counts_s:>9.3f}",
                f"doc speedup: {legacy_s / fast_s:.2f}x; "
                f"count speedup: {legacy_counts_s / fast_counts_s:.2f}x",
            ]
        ),
        capfd,
    )

    # Not-slower bound with generous noise headroom.
    assert fast_s <= legacy_s * 1.10, (fast_s, legacy_s)


def _fill_counts_fast(pairs):
    index = InMemoryIndex()
    index.add_counts(pairs)
    return index


def _fill_counts_legacy(pairs):
    index = InMemoryIndex()
    lists = index._lists
    for word, count in pairs:
        payload = lists.get(word)
        if payload is None:
            lists[word] = CountPostings(count)
        else:
            payload.extend(CountPostings(count))
        index._npostings += count
    return index
