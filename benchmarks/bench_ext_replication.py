"""Extension X-replication — read availability under replica murder,
and staggered vs. unscheduled grow-bucket rebuilds.

Two claims, two arms, one artifact
(``benchmarks/results/BENCH_replication.json``):

**Availability.** With 2 replicas per shard, SIGKILLing one replica
leaves query availability uninterrupted: no read waits for recovery
(``reads_waited_for_rebuild == 0`` — the structural form of the claim),
and the post-kill read p95 stays within 2x the healthy baseline (plus
an absolute noise floor, because both numbers are single-digit
milliseconds on this corpus).  The unreplicated control arm pays the
full recovery latency instead: its first post-kill read blocks on
checkpoint restore + op-log replay (``reads_waited_for_rebuild > 0``)
and is archived for comparison.  Zero divergences in both arms — every
answer is compared against an in-process twin.

**Rebuild staggering.** When every shard crosses the growth threshold
in the same flush round, unscheduled growth rehashes all of them at
once and the round's publish pays every full-clone spike together; the
scheduler serializes the grants to at most one shard per round.  The
structural claim (max growths per round: staggered <= 1, unscheduled
>= 2) is asserted; the per-round publish latencies of both schedules
are archived so the spike-smearing is visible in the artifact.
"""

import json
import time

from _common import RESULTS_DIR, report
from repro.core.index import IndexConfig
from repro.core.rebalance import GrowthPolicy
from repro.core.sharded import ShardedTextIndex
from repro.service.gateway import GatewayService

SHARDS = 2
CYCLES = 3
DOCS_PER_BATCH = 30
PROBE_READS = 40

DOC_WORDS = 18
VOCAB = 26

QUERIES = [
    "wa AND wb",
    "wc OR wd",
    "we AND NOT wb",
    "wf OR wa",
]


def _config(grow: bool = False) -> IndexConfig:
    return IndexConfig(
        nbuckets=16,
        bucket_size=64,
        block_postings=8,
        ndisks=2,
        nblocks_override=200_000,
        store_contents=True,
        crash_safe=True,
        grow_buckets=grow,
        growth=GrowthPolicy(occupancy_threshold=0.55),
    )


def _doc(i: int) -> str:
    return " ".join(
        f"w{chr(ord('a') + (i * 7 + k * 3) % VOCAB)}"
        for k in range(DOC_WORDS)
    )


def _read_window(service, twin, n) -> list[float]:
    """n timed streamed reads, each verified against the local twin."""
    samples = []
    for i in range(n):
        query = QUERIES[i % len(QUERIES)]
        t0 = time.perf_counter()
        got = service.search_boolean(query)
        samples.append(time.perf_counter() - t0)
        assert got.doc_ids == twin.search_boolean(query).doc_ids, query
    return samples


def _p(samples, q) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def _availability_arm(replicas: int) -> dict:
    service = GatewayService(
        _config(), shards=SHARDS, replicas=replicas
    )
    twin = ShardedTextIndex(_config(), shards=SHARDS)
    try:
        doc = 0
        for _ in range(CYCLES):
            for _ in range(DOCS_PER_BATCH):
                service.add_document(_doc(doc))
                twin.add_document(_doc(doc))
                doc += 1
            service.flush_and_publish()
            twin.flush_batch()
        healthy = _read_window(service, twin, PROBE_READS)
        # The murder: SIGKILL shard 0's replica 0 out of band, then keep
        # reading immediately — the gateway discovers the corpse on the
        # next read that routes to it.
        service.kill_replica(0, 0)
        t0 = time.perf_counter()
        first = _read_window(service, twin, 1)[0]
        post_kill = _read_window(service, twin, PROBE_READS - 1)
        window = time.perf_counter() - t0
        service.wait_for_recovery()
        after_recovery = _read_window(service, twin, PROBE_READS // 2)
        stats = service.gateway_stats()
        repl = stats["replication"]
        return {
            "replicas": replicas,
            "healthy_p50_ms": round(_p(healthy, 0.50) * 1e3, 3),
            "healthy_p95_ms": round(_p(healthy, 0.95) * 1e3, 3),
            "first_post_kill_read_ms": round(first * 1e3, 3),
            "post_kill_p50_ms": round(_p(post_kill, 0.50) * 1e3, 3),
            "post_kill_p95_ms": round(_p(post_kill, 0.95) * 1e3, 3),
            "post_kill_window_s": round(window, 4),
            "after_recovery_p95_ms": round(
                _p(after_recovery, 0.95) * 1e3, 3
            ),
            "reads_waited_for_rebuild": repl["reads_waited_for_rebuild"],
            "read_failovers": repl["read_failovers"],
            "rebuilds_completed": repl["rebuilds_completed"],
            "replica_divergences": repl["replica_divergences"],
        }
    finally:
        service.close()


def _storm_config() -> IndexConfig:
    """Tiny bucket space + uniform routing: every shard crosses the
    growth threshold in the same flush round, the storm the scheduler
    exists to smear out."""
    return IndexConfig(
        nbuckets=2,
        bucket_size=64,
        block_postings=16,
        ndisks=2,
        nblocks_override=100_000,
        store_contents=True,
        crash_safe=True,
        grow_buckets=True,
        growth=GrowthPolicy(occupancy_threshold=0.5),
    )


def _storm_doc(i: int) -> str:
    return " ".join(
        f"w{chr(ord('a') + (i * 3 + k) % 24)}" for k in range(6)
    )


async def _stagger_arm(stagger: bool) -> dict:
    """Growth storm under the async gateway, per-round telemetry."""
    from repro.service.gateway import AsyncShardGateway

    gateway = AsyncShardGateway(
        _storm_config(),
        shards=3,
        replicas=1,
        rebuild_stagger=stagger,
    )
    await gateway.start()
    try:
        doc = 0
        rounds = []
        for _ in range(8):
            for _ in range(12):
                await gateway.add_document(_storm_doc(doc))
                doc += 1
            before = [
                (await gateway._locked_rpc(rs.replicas[0], "info", ()))[
                    "nbuckets"
                ]
                for rs in gateway._sets
            ]
            t0 = time.perf_counter()
            await gateway.flush()
            flush_s = time.perf_counter() - t0
            after = [
                (await gateway._locked_rpc(rs.replicas[0], "info", ()))[
                    "nbuckets"
                ]
                for rs in gateway._sets
            ]
            rounds.append(
                {
                    "growths": sum(
                        1 for b, a in zip(before, after) if a > b
                    ),
                    "flush_ms": round(flush_s * 1e3, 3),
                    "publish_ms": round(
                        gateway.last_publish_seconds * 1e3, 3
                    ),
                }
            )
        report_ = await gateway.check()
        assert report_.ok, report_.violations
        publishes = [r["publish_ms"] for r in rounds]
        return {
            "stagger": stagger,
            "rounds": rounds,
            "total_growths": sum(r["growths"] for r in rounds),
            "max_growths_per_round": max(r["growths"] for r in rounds),
            "publish_p99_ms": _p(publishes, 0.99),
            "publish_max_ms": max(publishes),
            "scheduler": (
                gateway.rebuild_scheduler.as_dict()
                if gateway.rebuild_scheduler
                else None
            ),
        }
    finally:
        await gateway.close()


def test_ext_replication_availability_and_stagger(capfd):
    import asyncio

    replicated = _availability_arm(replicas=2)
    unreplicated = _availability_arm(replicas=1)
    staggered = asyncio.run(_stagger_arm(stagger=True))
    unscheduled = asyncio.run(_stagger_arm(stagger=False))

    # Availability, structurally: with a sibling, no read ever waits for
    # recovery and nothing diverges; without one, the first post-kill
    # read pays the full rebuild.
    assert replicated["reads_waited_for_rebuild"] == 0
    assert replicated["replica_divergences"] == 0
    assert replicated["rebuilds_completed"] == 1
    assert unreplicated["reads_waited_for_rebuild"] > 0

    # Availability, in milliseconds: post-kill p95 within 2x the healthy
    # baseline (5 ms absolute floor — both are tiny on this corpus and
    # scheduler noise dominates below that).
    bound_ms = max(2.0 * replicated["healthy_p95_ms"], 5.0)
    assert replicated["post_kill_p95_ms"] <= bound_ms, replicated

    # Staggering, structurally: at most one growth per round scheduled,
    # a storm (>= 2 in one round) unscheduled.
    assert staggered["max_growths_per_round"] <= 1, staggered
    assert unscheduled["max_growths_per_round"] >= 2, unscheduled
    # No growth lost, only deferred.
    assert staggered["total_growths"] >= unscheduled["total_growths"]

    doc = {
        "workload": {
            "shards": SHARDS,
            "cycles": CYCLES,
            "docs_per_batch": DOCS_PER_BATCH,
            "probe_reads": PROBE_READS,
        },
        "availability": {
            "replicated": replicated,
            "unreplicated": unreplicated,
            "post_kill_p95_bound_ms": round(bound_ms, 3),
        },
        "stagger": {
            "staggered": staggered,
            "unscheduled": unscheduled,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_replication.json").write_text(
        json.dumps(doc, indent=2) + "\n", encoding="utf-8"
    )

    lines = [
        f"{'arm':>14} {'healthy p95':>12} {'post-kill p95':>14} "
        f"{'first read':>11} {'waited':>7}",
    ]
    for label, arm in (
        ("2 replicas", replicated),
        ("1 replica", unreplicated),
    ):
        lines.append(
            f"{label:>14} {arm['healthy_p95_ms']:>10.2f}ms "
            f"{arm['post_kill_p95_ms']:>12.2f}ms "
            f"{arm['first_post_kill_read_ms']:>9.2f}ms "
            f"{arm['reads_waited_for_rebuild']:>7}"
        )
    lines.append(
        f"growth rounds: staggered max {staggered['max_growths_per_round']}"
        f"/round (publish p99 {staggered['publish_p99_ms']:.2f} ms), "
        f"unscheduled max {unscheduled['max_growths_per_round']}/round "
        f"(publish p99 {unscheduled['publish_p99_ms']:.2f} ms)"
    )
    report("BENCH_replication", "\n".join(lines), capfd)
