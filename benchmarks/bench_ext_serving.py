"""Extension X-serving — snapshot-isolated concurrent query serving.

The acceptance claim of the serving work: with 4 reader threads querying
published snapshots while the writer absorbs 20 batch updates under fault
injection (rotating crash points + transient disk faults), the service
reports zero stale-read divergences and zero invariant violations, and the
mixed workload's throughput and p50/p95/p99 tail latency land in
``benchmarks/results/BENCH_serving.json`` (the CI serving-smoke job
uploads the same report as a workflow artifact).

A second measurement isolates the snapshot-keyed result cache: the same
fixed query set replayed against a quiescent snapshot must hit the cache
and must not be slower than the uncached evaluation.
"""

import json
import time

from _common import RESULTS_DIR, report
from repro.service import LoadConfig, LoadGenerator, QueryService


def test_ext_serving_mixed_workload(benchmark, capfd):
    config = LoadConfig(
        readers=4,
        flush_cycles=20,
        docs_per_batch=20,
        seed=1994,
        verify=True,
        check_invariants=True,
        delete_every=9,
        crash_every=4,
        transient_rate=0.02,
        pace_s=0.001,
    )
    serving_report = benchmark.pedantic(
        LoadGenerator(config).run, rounds=1, iterations=1
    )

    # The serving guarantees, asserted on the measured run itself.
    assert serving_report.divergences == 0, (
        serving_report.divergence_examples
    )
    assert serving_report.service["publishes"] == config.flush_cycles
    assert serving_report.service["flush_recoveries"] >= 1  # faults fired
    assert serving_report.queries > 0
    assert serving_report.throughput_qps > 0
    overall = serving_report.latency["overall"]
    assert 0 < overall["p50"] <= overall["p95"] <= overall["p99"]

    RESULTS_DIR.mkdir(exist_ok=True)
    serving_report.write_json(RESULTS_DIR / "BENCH_serving.json")
    report(
        "ext_serving",
        "\n".join(
            [
                f"{'metric':<26} {'value':>12}",
                f"{'queries served':<26} {serving_report.queries:>12,}",
                f"{'throughput (q/s)':<26} "
                f"{serving_report.throughput_qps:>12,.0f}",
                f"{'p50 latency (us)':<26} {overall['p50'] * 1e6:>12.1f}",
                f"{'p95 latency (us)':<26} {overall['p95'] * 1e6:>12.1f}",
                f"{'p99 latency (us)':<26} {overall['p99'] * 1e6:>12.1f}",
                f"{'snapshots published':<26} "
                f"{serving_report.service['publishes']:>12}",
                f"{'crash recoveries':<26} "
                f"{serving_report.service['flush_recoveries']:>12}",
                f"{'cache hit rate':<26} "
                f"{serving_report.cache['hit_rate']:>12.1%}",
                f"{'divergences':<26} {serving_report.divergences:>12}",
            ]
        ),
        capfd,
    )


def test_ext_serving_cache_effectiveness(capfd):
    """A replayed query set against a quiescent snapshot must be served
    from the cache, identically and not slower."""
    config = LoadConfig(seed=7)
    service = QueryService(
        config.index_config(), cache_capacity=4096, track_reference=False
    )
    generator = LoadGenerator(config, service=service)
    import random

    rng = random.Random(11)
    for _ in range(200):
        service.add_document(generator._document(rng))
    service.flush_and_publish()
    queries = [generator._boolean_query(rng) for _ in range(300)]

    start = time.perf_counter()
    cold = [service.search_boolean(q).doc_ids for q in queries]
    cold_s = time.perf_counter() - start
    start = time.perf_counter()
    warm = [service.search_boolean(q).doc_ids for q in queries]
    warm_s = time.perf_counter() - start

    assert warm == cold
    stats = service.cache.stats()
    assert stats.hits >= len(queries)  # every replayed query hit
    assert warm_s <= cold_s * 1.10, (warm_s, cold_s)

    report(
        "ext_serving_cache",
        "\n".join(
            [
                f"{'pass':<10} {'seconds':>9}",
                f"{'cold':<10} {cold_s:>9.4f}",
                f"{'warm':<10} {warm_s:>9.4f}",
                f"speedup: {cold_s / warm_s:.2f}x "
                f"(hit rate {stats.hit_rate:.1%})",
            ]
        ),
        capfd,
    )


def test_ext_serving_report_shape():
    """BENCH_serving.json must stay machine-readable with stable keys."""
    path = RESULTS_DIR / "BENCH_serving.json"
    if not path.exists():  # the mixed-workload bench writes it
        LoadConfig()  # keep imports honest even when skipped
        return
    data = json.loads(path.read_text(encoding="utf-8"))
    for key in (
        "throughput_qps",
        "latency",
        "cache",
        "service",
        "divergences",
        "stage_seconds",
    ):
        assert key in data, key
    for kind in ("boolean", "streamed", "vector", "overall"):
        assert kind in data["latency"], kind
