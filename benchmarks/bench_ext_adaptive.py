"""Extension X6 — adaptive allocation (related work, Faloutsos & Jagadish).

The paper's related-work section maps one of Faloutsos & Jagadish's schemes
to "our new style with an adaptive allocation scheme (not studied here)".
We study it: reserve space per word, sized by ``k`` × the word's observed
(EWMA) update size — history-based instead of the proportional strategy's
"k × whatever was just written".

Expected/asserted behaviour: at a matched in-place fraction, adaptive
reserves less dead space than proportional — especially on the large
one-shot bucket migrations that proportional doubles but adaptive (with no
history) leaves unpadded — giving equal-or-better utilization with
comparable read cost.
"""

from _common import base_experiment, default_jobs, report
from repro.analysis.reporting import format_table
from repro.core.policy import Alloc, Limit, Policy, Style

POLICIES = {
    "prop k=1.5": Policy(
        style=Style.NEW, limit=Limit.Z, alloc=Alloc.PROPORTIONAL, k=1.5
    ),
    "prop k=2.0": Policy(
        style=Style.NEW, limit=Limit.Z, alloc=Alloc.PROPORTIONAL, k=2.0
    ),
    "adaptive k=1": Policy.adaptive_new(k=1.0),
    "adaptive k=2": Policy.adaptive_new(k=2.0),
}


def run_policies():
    experiment = base_experiment()
    runs = experiment.run_policies(
        list(POLICIES.values()), jobs=default_jobs()
    )
    return {
        name: runs[policy.name].disks for name, policy in POLICIES.items()
    }


def test_ext_adaptive_allocation(benchmark, capfd):
    results = benchmark.pedantic(run_policies, rounds=1, iterations=1)
    rows = [
        (
            name,
            round(d.final_avg_reads, 2),
            round(d.final_utilization, 3),
            round(d.counters.in_place_fraction, 3),
        )
        for name, d in results.items()
    ]
    report(
        "ext_adaptive",
        format_table(
            ("policy", "reads/list", "util", "in-place frac"),
            rows,
            title="X6: adaptive vs proportional allocation (new style)",
        ),
        capfd,
    )

    # Pair each adaptive config with the proportional config of similar
    # in-place fraction and require equal-or-better utilization.
    def closest_prop(frac):
        return min(
            (d for n, d in results.items() if n.startswith("prop")),
            key=lambda d: abs(d.counters.in_place_fraction - frac),
        )

    for name in ("adaptive k=1", "adaptive k=2"):
        adaptive = results[name]
        rival = closest_prop(adaptive.counters.in_place_fraction)
        assert adaptive.final_utilization >= rival.final_utilization - 0.02, (
            name
        )
    # More adaptive reserve ⇒ more in-place updates.
    assert (
        results["adaptive k=2"].counters.in_place_updates
        > results["adaptive k=1"].counters.in_place_updates
    )
