"""Extension X3 — varying disk count and speed; optical disks (§7, [10]).

The paper's extended report varies the number of disks and their speed and
studies updates on an optical disk.  Reproduced claims:

* more disks ⇒ faster builds (per-disk streams run in parallel), with
  diminishing returns;
* a uniformly faster disk speeds every policy up by roughly its factor;
* the optical disk is slower across the board (huge seeks, slow writes),
  and the policy ordering is unchanged — choosing the right policy matters
  on every medium.
"""

from _common import base_config, base_experiment, report
from repro.analysis.reporting import format_table, ratio
from repro.core.policy import Limit, Policy, Style
from repro.pipeline.exercise import ExerciseConfig, ExerciseDisksProcess
from repro.storage.profiles import (
    FAST_SCSI_1996,
    OPTICAL_1994,
    SEAGATE_SCSI_1994,
)

POLICIES = {
    "new 0": Policy(style=Style.NEW, limit=Limit.ZERO),
    "whole 0": Policy(style=Style.WHOLE, limit=Limit.ZERO),
}


def run_matrix():
    experiment = base_experiment()
    traces = {
        name: experiment.run_policy(p).disks.trace
        for name, p in POLICIES.items()
    }
    results = {}
    base_ndisks = base_config().ndisks
    # Disk-count sweep must replay a trace generated for that many disks.
    for ndisks in (1, 2, 4, 8):
        from repro.pipeline.compute_disks import (
            ComputeDisksProcess,
            DiskStageConfig,
        )

        disks = ComputeDisksProcess(
            DiskStageConfig(
                policy=POLICIES["new 0"],
                ndisks=ndisks,
                block_postings=base_config().block_postings,
                bucket_flush_blocks=base_config().bucket_flush_blocks,
            )
        ).run(experiment.bucket_stage().trace)
        outcome = ExerciseDisksProcess(
            ExerciseConfig(profile=SEAGATE_SCSI_1994, ndisks=ndisks)
        ).run(disks.trace)
        results[("ndisks", ndisks)] = outcome.total_s
    # Profile sweep at the base disk count.
    for profile in (SEAGATE_SCSI_1994, FAST_SCSI_1996, OPTICAL_1994):
        for name, trace in traces.items():
            outcome = ExerciseDisksProcess(
                ExerciseConfig(profile=profile, ndisks=base_ndisks)
            ).run(trace)
            results[(profile.name, name)] = outcome.total_s
    return results


def test_ext_disk_count_and_speed(benchmark, capfd):
    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    rows = [(str(k[0]), str(k[1]), round(v, 1)) for k, v in results.items()]
    report(
        "ext_disks",
        format_table(
            ("dimension", "value", "build time (s)"),
            rows,
            title="X3: disk count and profile sweeps",
        ),
        capfd,
    )

    # More disks ⇒ faster, with diminishing returns.
    t1, t2, t4, t8 = (results[("ndisks", n)] for n in (1, 2, 4, 8))
    assert t1 > t2 > t4 > t8
    assert ratio(t1, t2) > ratio(t4, t8)

    # Faster profile speeds things up.
    assert (
        results[("fast-scsi-1996", "new 0")]
        < results[("seagate-scsi-1994", "new 0")]
    )

    # Optical disk: slower across the board, same policy ordering.
    for policy in ("new 0", "whole 0"):
        assert (
            results[("optical-1994", policy)]
            > results[("seagate-scsi-1994", policy)]
        ), policy
    assert (
        results[("optical-1994", "new 0")]
        < results[("optical-1994", "whole 0")]
    )
    # The spread between policies stays large on every medium.
    for medium in ("seagate-scsi-1994", "fast-scsi-1996", "optical-1994"):
        assert (
            ratio(
                results[(medium, "whole 0")], results[(medium, "new 0")]
            )
            > 3
        ), medium
