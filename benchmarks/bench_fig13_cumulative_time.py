"""Figure 13 — cumulative wall time to build the final index
(ExerciseDisks on the physical disk model).

Paper claims reproduced: ``fill 0`` does not fit the physical disks at all
(gross under-utilization); policy times vary by a much larger factor than
operation counts (paper: ×8 vs ×2) because the append-only policy's writes
coalesce into sequential streams; the ordering from fastest to slowest is
new 0 < new z < fill z < whole z < whole 0; new 0 grows almost linearly.
"""

from _common import base_experiment, physical_exercise_config, report
from repro import figures
from repro.analysis.reporting import ratio


def test_fig13_cumulative_build_time(benchmark, capfd):
    result = benchmark.pedantic(
        lambda: figures.figure13(base_experiment(), physical_exercise_config()), rounds=1, iterations=1
    )
    series = result.data["series"]
    infeasible = result.data["infeasible"]
    outcomes = result.data["outcomes"]
    report("fig13_cumulative_time", result.rendered, capfd)

    # fill 0 is infeasible on the physical disks, as on the paper's.
    assert infeasible == ["fill 0"]

    totals = {name: s[-1] for name, s in series.items()}
    # Ordering fastest → slowest matches the paper's Figure 13.
    order = sorted(totals, key=totals.get)
    assert order == ["new 0", "new z", "fill z", "whole z", "whole 0"]
    # Times spread much wider than operation counts.
    ops = {
        name: outcomes[name][0].series.io_ops[-1] for name in totals
    }
    time_spread = ratio(max(totals.values()), min(totals.values()))
    ops_spread = ratio(max(ops.values()), min(ops.values()))
    assert time_spread > 2 * ops_spread
    assert time_spread > 4  # the paper saw ×8; we accept ≥×4

    # new 0 grows almost linearly: its slope increase is mild compared to
    # whole 0's.
    def slope_growth(values):
        steps = [b - a for a, b in zip(values, values[1:])]
        q = max(1, len(steps) // 4)
        return (sum(steps[-q:]) / q) / max(sum(steps[:q]) / q, 1e-9)

    assert slope_growth(series["new 0"]) < slope_growth(series["whole 0"])
