#!/usr/bin/env python
"""News feed: the paper's motivating scenario, end to end.

"If one is indexing news articles, electronic mail, or stock information,
the latest information is required" (§1).  This example replays a stream
of synthetic NetNews days through the full text pipeline — articles are
rendered as real text, tokenized (headers skipped), filtered, and merged
into the index one daily batch at a time — then runs queries whose answers
grow as days arrive.

Run:  python examples/news_feed.py
"""

from repro import IndexConfig, Policy
from repro.textindex import TextDocumentIndex
from repro.workload.newsgen import generate_articles, word_for_id
from repro.workload.synthetic import SyntheticNews, SyntheticNewsConfig

DAYS = 7


def main() -> None:
    news = SyntheticNews(
        SyntheticNewsConfig(days=DAYS, docs_per_day=60, seed=7)
    )
    index = TextDocumentIndex(
        IndexConfig(
            nbuckets=32,
            bucket_size=256,
            block_postings=32,
            policy=Policy.recommended_new(),
            store_contents=True,
        )
    )

    # The hottest and a mid-frequency word, to watch their lists grow.
    hot = word_for_id(1)
    warm = word_for_id(40)

    print(f"Watching {hot!r} (rank 1) and {warm!r} (rank 40)\n")
    doc_id = 0
    for day in range(DAYS):
        ndocs = 0
        for article in generate_articles(news, day, first_doc_id=doc_id):
            index.add_document(article.text)
            doc_id = article.doc_id + 1
            ndocs += 1
        batch = index.flush_batch()
        query = index.search_boolean(f"{hot} AND {warm}")
        print(
            f"day {day}: {ndocs:3d} articles | "
            f"new/bucket/long words {batch.new_words}/"
            f"{batch.bucket_words}/{batch.long_words} | "
            f"df({hot})={index.document_frequency(hot):4d} "
            f"df({warm})={index.document_frequency(warm):3d} | "
            f"'{hot} AND {warm}' -> {len(query.doc_ids)} docs "
            f"({query.read_ops} reads)"
        )

    stats = index.stats()
    print(
        f"\nAfter {DAYS} days: {index.ndocs} documents, "
        f"{stats.long_words} frequent words migrated to long lists, "
        f"long-list utilization {stats.long_utilization:.1%}, "
        f"avg {stats.avg_reads_per_long_list:.2f} reads per long list"
    )
    print(
        "The dual structure discovered the frequent words dynamically: "
        "no frequency statistics were supplied up front."
    )


if __name__ == "__main__":
    main()
