#!/usr/bin/env python
"""Quickstart: index text documents incrementally and query them.

Demonstrates the library's top-level API:

* :class:`repro.TextDocumentIndex` — tokenizer + vocabulary + the
  dual-structure index of the paper, storing real postings on a simulated
  1994-era disk array;
* incremental batch updates (the paper's core contribution: no index
  rebuilds — new documents merge in place);
* boolean and vector-space queries, with the I/O cost of each query
  reported in read operations, exactly as the paper's evaluation counts
  them.

Run:  python examples/quickstart.py
"""

from repro import IndexConfig, Policy
from repro.textindex import TextDocumentIndex

ARTICLES_DAY_1 = [
    """Date: Mon Nov 15 1993
Subject: pets

The cat sat on the mat while the dog watched the door.
Later the cat and the dog shared the rug without a fight.""",
    """Date: Mon Nov 15 1993
Subject: rodents

A mouse ran across the kitchen floor.  The cat gave chase,
but the mouse escaped behind the stove.""",
    """Date: Mon Nov 15 1993
Subject: databases

Inverted lists map each word to the documents containing it.
Updating them in place avoids rebuilding the index.""",
]

ARTICLES_DAY_2 = [
    """Date: Tue Nov 16 1993
Subject: more pets

The dog barked at the mail carrier.  The cat ignored everything.""",
    """Date: Tue Nov 16 1993
Subject: systems

Incremental updates keep the index fresh as documents arrive,
batching postings in memory and merging them to disk.""",
]


def main() -> None:
    # The recommended update-leaning policy from the paper's Section 5.4:
    # new style, in-place updates, proportional reserved space (k = 2).
    index = TextDocumentIndex(
        IndexConfig(policy=Policy.recommended_new(), store_contents=True)
    )

    print("== Day 1: index three articles, flush one batch update ==")
    for text in ARTICLES_DAY_1:
        doc_id = index.add_document(text)
        print(f"  indexed document {doc_id}")
    result = index.flush_batch()
    print(
        f"  batch 0: {result.nwords} distinct words, "
        f"{result.npostings} postings, {result.io_ops} long-list I/O ops"
    )

    print("\n== Day 2: two more articles (incremental, no rebuild) ==")
    for text in ARTICLES_DAY_2:
        index.add_document(text)
    result = index.flush_batch()
    print(
        f"  batch 1: {result.new_words} new words, "
        f"{result.bucket_words} bucket words, {result.long_words} long words"
    )

    print("\n== Boolean queries (paper §1's example form) ==")
    for query in ["cat AND dog", "(cat AND dog) OR mouse", "index AND NOT cat"]:
        answer = index.search_boolean(query)
        print(
            f"  {query!r:32s} -> docs {answer.doc_ids} "
            f"({answer.read_ops} read ops)"
        )

    print("\n== Vector query (weighted words, idf-scored) ==")
    for hit in index.search_vector({"cat": 1.0, "mouse": 2.0}, top_k=3):
        print(f"  doc {hit.doc_id}: score {hit.score:.3f}")

    print("\n== More-like-this (vector query derived from a document) ==")
    for hit in index.more_like("the dog chased the mouse", top_k=3):
        print(f"  doc {hit.doc_id}: score {hit.score:.3f}")

    stats = index.stats()
    print(
        f"\nIndex state: {stats.batches} batches, "
        f"{stats.bucket_words} words in buckets, "
        f"{stats.long_words} words with long lists, "
        f"{stats.bucket_postings} postings held in buckets"
    )


if __name__ == "__main__":
    main()
