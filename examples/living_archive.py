#!/usr/bin/env python
"""Living archive: positions, regions, deletion, and rebalancing together.

The paper's motivating environment is a 7×24 archive that can never stop
for a rebuild.  This example runs one index through everything such an
archive needs, using the library's extension features:

* positional postings — phrase and proximity queries (paper §1's "within
  so many words of each other");
* region-tagged postings — title/author-scoped search (paper §1's "occur
  within a title region");
* filter-and-sweep deletion (paper §3's design, implemented);
* automatic bucket-space growth (paper §7's rebalancing strategy).

Run:  python examples/living_archive.py
"""

from repro import GrowthPolicy, IndexConfig, Policy, Region
from repro.textindex import TextDocumentIndex

ARTICLES = [
    """Subject: markets rally on chip news
From: rivera

semiconductor stocks rallied sharply today as new fabrication
capacity came online and demand forecasts were revised upward""",
    """Subject: storage systems conference report
From: chen

researchers presented an incremental index that updates in place
as documents arrive avoiding costly rebuilds of inverted lists""",
    """Subject: chip fabrication delays expected
From: rivera

a major foundry warned of fabrication delays pushing some
semiconductor shipments into the next quarter""",
    """Subject: retraction of market note
From: editor

the earlier market note contained errors and is being withdrawn
pending review please disregard its conclusions""",
]


def main() -> None:
    index = TextDocumentIndex(
        IndexConfig(
            nbuckets=8,
            bucket_size=128,
            block_postings=32,
            policy=Policy.adaptive_new(),
            store_contents=True,
            positional=True,
            grow_buckets=True,
            growth=GrowthPolicy(occupancy_threshold=0.6),
        )
    )
    for text in ARTICLES:
        index.add_document(text)
    index.flush_batch()
    print(f"indexed {index.ndocs} articles\n")

    print("== Phrase search ==")
    answer = index.search_phrase("fabrication delays")
    print(f"  'fabrication delays' -> docs {answer.doc_ids}")

    print("\n== Proximity search (within 4 words) ==")
    answer = index.search_near("semiconductor", "rallied", 4)
    print(f"  semiconductor ~4 rallied -> docs {answer.doc_ids}")

    print("\n== Region-scoped search ==")
    print(
        "  'chip' in TITLE   ->",
        index.search_region("chip", Region.TITLE).doc_ids,
    )
    print(
        "  'rivera' as AUTHOR ->",
        index.search_region("rivera", Region.AUTHOR).doc_ids,
    )

    print("\n== Deletion: the retraction withdraws doc 3 ==")
    index.delete_document(3)
    print(
        "  'market' after delete ->",
        index.search_boolean("market").doc_ids,
        "(doc 3 filtered)",
    )
    stats = index.sweep_deletions()
    print(
        f"  background sweep rewrote {stats.lists_swept} lists, "
        f"reclaimed {stats.postings_removed} postings; filter set now "
        f"{index.deletions.ndeleted} ids"
    )

    print("\n== Bucket rebalancing ==")
    # Pour in more batches until the growth policy fires.
    filler_words = [f"topic{chr(97 + i)}" for i in range(26)]
    for day in range(12):
        for n in range(10):
            body = " ".join(
                filler_words[(day * 10 + n + j) % 26] for j in range(8)
            )
            index.add_document(f"Subject: day {day}\n\n{body}")
        index.flush_batch()
    grower = index.index.grower
    print(
        f"  growth events: {len(grower.events)}; bucket count now "
        f"{index.index.buckets.nbuckets} "
        f"(occupancy {index.index.buckets.occupancy():.0%})"
    )
    for event in grower.events:
        print(
            f"    batch {event.batch}: {event.old_nbuckets} -> "
            f"{event.new_nbuckets} buckets "
            f"(occupancy was {event.occupancy_before:.0%})"
        )
    print("\narchive remained queryable throughout — no rebuilds.")


if __name__ == "__main__":
    main()
