#!/usr/bin/env python
"""Policy tuning: explore the paper's update-time / query-time trade-off.

Runs the experiment pipeline (size-only evaluation mode, as in the paper)
over a synthetic workload for the named policies of Sections 3.1 and 5.4,
then prints the three-way trade-off the paper quantifies: index build
time, query performance, and disk space.

This is the "which policy should my IR system use?" decision table from
the paper's Bottom Line, regenerated for your parameters — edit WORKLOAD
and POLICIES to explore your own corner of the space.

Run:  python examples/policy_tuning.py
"""

from repro import Policy
from repro.analysis.bottomline import (
    PolicyMeasurement,
    Preference,
    bottom_line,
    comparison_table,
)
from repro.core.policy import Limit, Style
from repro.pipeline.experiment import Experiment, ExperimentConfig
from repro.workload.synthetic import SyntheticNewsConfig

WORKLOAD = SyntheticNewsConfig(days=40, docs_per_day=120)

POLICIES = [
    ("update-optimized (§3.1)", Policy.update_optimized()),
    ("recommended new (§5.4)", Policy.recommended_new()),
    ("balanced fill (§3.1)", Policy.balanced()),
    ("recommended whole (§5.4)", Policy.recommended_whole()),
    ("naive whole (no reserve)", Policy(style=Style.WHOLE, limit=Limit.ZERO)),
]


def main() -> None:
    experiment = Experiment(ExperimentConfig(workload=WORKLOAD))
    print("Generating workload and running the bucket stage once...")
    stats = experiment.stats(frequent_fraction=0.01)
    print(
        f"  corpus: {stats.documents} docs, {stats.total_postings} postings; "
        f"top 1% of words carry {stats.frequent_postings_share:.0%} "
        "of postings\n"
    )

    measurements = []
    for _label, policy in POLICIES:
        run = experiment.run_policy(policy, exercise=True)
        measurements.append(
            PolicyMeasurement(
                policy=policy,
                build_time_s=run.exercise.total_s,
                reads_per_list=run.disks.final_avg_reads,
                utilization=run.disks.final_utilization,
            )
        )

    print(comparison_table(measurements))
    print("\nBottom lines (paper §5.4, derived from the measurements):")
    for preference in Preference:
        rec = bottom_line(measurements, preference)
        print(f"  {preference.value:12s} -> {rec.policy.name}: {rec.reason}")


if __name__ == "__main__":
    main()
