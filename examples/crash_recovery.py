#!/usr/bin/env python
"""Crash recovery: checkpoint an index mid-stream and resume after a crash.

The paper requires that "the incremental update of the index can be
restarted if it is aborted" (§1) and flushes buckets and the directory at
every batch boundary so the previous state survives on disk.  This example
makes the property concrete:

1. index three daily batches and checkpoint;
2. index a fourth batch but "crash" before it flushes;
3. restore from the checkpoint — the first three batches answer queries
   exactly as before, the unflushed work is cleanly absent;
4. re-ingest the lost day and continue.

Run:  python examples/crash_recovery.py
"""

import io

from repro import IndexConfig, Policy
from repro.textindex import TextDocumentIndex


def make_index() -> TextDocumentIndex:
    return TextDocumentIndex(
        IndexConfig(
            nbuckets=64,
            bucket_size=256,
            block_postings=32,
            policy=Policy.recommended_new(),
            store_contents=True,
        )
    )


DAYS = [
    ["the cat sat", "a dog barked", "cat and dog together"],
    ["the mouse arrived", "cat chased mouse"],
    ["quiet day for the dog"],
    ["breaking news about the cat"],  # will be lost in the crash
]


def main() -> None:
    index = make_index()
    for day, docs in enumerate(DAYS[:3]):
        for doc in docs:
            index.add_document(doc)
        index.flush_batch()
        print(f"day {day}: flushed {len(docs)} documents")

    snapshot = io.BytesIO()
    index.save(snapshot)  # one self-contained snapshot: index + vocabulary
    print(f"checkpoint taken ({len(snapshot.getvalue())} bytes)")

    # Day 3 arrives... and the machine dies before the batch flushes.
    for doc in DAYS[3]:
        index.add_document(doc)
    print("day 3: ingested but CRASH before flush_batch()")
    answer_before = index.search_boolean("cat").doc_ids
    del index

    # Recovery: one call restores index, vocabulary, and deletion filter.
    snapshot.seek(0)
    restored = TextDocumentIndex.load(snapshot)

    answer_after = restored.search_boolean("cat").doc_ids
    print(f"after restore, 'cat' -> docs {answer_after}")
    assert answer_after == [0, 2, 4], "restored index diverged!"
    assert answer_before != answer_after, (
        "the unflushed day should be absent after recovery"
    )
    print("unflushed day 3 is cleanly absent (no partial state)")

    # Replay the lost day and continue as if nothing happened.
    for doc in DAYS[3]:
        restored.add_document(doc)
    restored.flush_batch()
    print(
        "day 3 re-ingested; 'cat' ->",
        restored.search_boolean("cat").doc_ids,
    )
    print("recovery complete: restart-from-last-flush works as the paper "
          "requires")


if __name__ == "__main__":
    main()
