"""Lexical analysis of documents (paper Section 4.2).

"To generate a batch update, each document in the batch is lexically
analyzed to produce a token stream.  Sequences of letters and sequences of
numbers are tokens — all other characters are ignored.  Certain lines of a
document (such as 'Date:' lines) are also ignored.  Finally, duplicate
tokens for a document are dropped. ... Tokens are converted to words by
converting upper case letters to lower case."

The tokenizer reproduces those rules:

* a token is a maximal run of ASCII letters **or** a maximal run of digits
  (a mixed run like ``abc123`` yields two tokens, ``abc`` and ``123``);
* lines whose first token-ish prefix matches an ignored header (``Date:``
  and friends, configurable) contribute nothing;
* tokens are lowercased into *words*;
* per-document deduplication happens one level up (the in-memory index and
  the batch builder both deduplicate), but :func:`tokenize_document`
  offers it directly for convenience.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

#: Header lines the paper's lexer skips; NetNews/RFC-822 style headers.
DEFAULT_IGNORED_PREFIXES = (
    "date:",
    "message-id:",
    "path:",
    "references:",
    "xref:",
    "received:",
    "nntp-posting-host:",
)


#: A small English stop list for full-text configurations.  The paper (§1)
#: notes that a full text index covers "every word occurring in documents
#: (minus perhaps some stop words)"; stopping is off by default because the
#: abstracts-style evaluation keeps everything.
DEFAULT_STOP_WORDS = frozenset(
    "a an and are as at be by for from has he in is it its of on that the "
    "to was were will with".split()
)


@dataclass(frozen=True)
class TokenizerConfig:
    """Tokenizer rules; defaults follow the paper."""

    ignored_prefixes: tuple[str, ...] = DEFAULT_IGNORED_PREFIXES
    lowercase: bool = True
    #: Maximum token length kept (guards against binary garbage; the paper
    #: filtered encoded binaries out at the document level, see documents.py).
    max_token_length: int = 64
    #: Words dropped from the token stream (paper §1: "minus perhaps some
    #: stop words").  Empty by default.  Matched after lowercasing.
    stop_words: frozenset[str] = frozenset()

    @classmethod
    def full_text(cls) -> "TokenizerConfig":
        """A full-text configuration with the default English stop list."""
        return cls(stop_words=DEFAULT_STOP_WORDS)


def _line_ignored(line: str, prefixes: tuple[str, ...]) -> bool:
    stripped = line.lstrip().lower()
    return any(stripped.startswith(p) for p in prefixes)


def tokenize_line(line: str, config: TokenizerConfig | None = None) -> Iterator[str]:
    """Yield the tokens of one line: letter runs and digit runs."""
    cfg = config or TokenizerConfig()
    token: list[str] = []
    mode = ""  # "alpha", "digit", or "" outside a token

    def finish() -> Iterator[str]:
        nonlocal token
        if token and len(token) <= cfg.max_token_length:
            text = "".join(token)
            if cfg.lowercase:
                text = text.lower()
            if text.lower() not in cfg.stop_words:
                yield text
        token = []

    for ch in line:
        if ch.isascii() and ch.isalpha():
            kind = "alpha"
        elif ch.isdigit():
            kind = "digit"
        else:
            kind = ""
        if kind and kind == mode:
            token.append(ch)
        else:
            yield from finish()
            mode = kind
            if kind:
                token.append(ch)
    yield from finish()


def tokenize(text: str, config: TokenizerConfig | None = None) -> Iterator[str]:
    """Yield all tokens of a document, skipping ignored header lines."""
    cfg = config or TokenizerConfig()
    for line in text.splitlines():
        if _line_ignored(line, cfg.ignored_prefixes):
            continue
        yield from tokenize_line(line, cfg)


def tokenize_document(
    text: str, config: TokenizerConfig | None = None
) -> list[str]:
    """The document's distinct words, in first-appearance order.

    This is the unit the abstracts-style index stores: one posting per
    (word, document) pair.
    """
    seen: set[str] = set()
    out: list[str] = []
    for token in tokenize(text, config):
        if token not in seen:
            seen.add(token)
            out.append(token)
    return out
