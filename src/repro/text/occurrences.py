"""Occurrence-level tokenization: positions and regions (paper §1).

Extends the §4.2 lexer with the two posting attributes the paper names:
the **word offset** within the document (a running token index over the
kept tokens) and the **region** the word occurs in (title, abstract,
author, body).

Region detection is line-based, matching News/RFC-822 structure:

* lines matching an *ignored* prefix (``Date:`` etc.) contribute nothing,
  exactly as before;
* lines matching a *region* prefix (``Subject:`` → TITLE, ``From:`` →
  AUTHOR, ``Summary:``/``Keywords:`` → ABSTRACT by default) are indexed
  into that region, with the header tag itself stripped;
* all other lines are BODY.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..core.positional import Region
from .tokenizer import TokenizerConfig, _line_ignored, tokenize_line

#: Default region-tagged header prefixes for News articles.
DEFAULT_REGION_PREFIXES: dict[str, Region] = {
    "subject:": Region.TITLE,
    "title:": Region.TITLE,
    "from:": Region.AUTHOR,
    "author:": Region.AUTHOR,
    "summary:": Region.ABSTRACT,
    "keywords:": Region.ABSTRACT,
    "abstract:": Region.ABSTRACT,
}


@dataclass(frozen=True)
class Occurrence:
    """One word occurrence: the token, its offset, and its region."""

    word: str
    position: int
    region: Region


@dataclass(frozen=True)
class RegionRules:
    """Line-prefix → region mapping (case-insensitive)."""

    prefixes: dict[str, Region] = field(
        default_factory=lambda: dict(DEFAULT_REGION_PREFIXES)
    )

    def region_of(self, line: str) -> tuple[Region, str]:
        """The line's region and the line text with any matched header
        prefix stripped."""
        stripped = line.lstrip()
        lowered = stripped.lower()
        for prefix, region in self.prefixes.items():
            if lowered.startswith(prefix):
                return region, stripped[len(prefix):]
        return Region.BODY, line


def tokenize_occurrences(
    text: str,
    config: TokenizerConfig | None = None,
    rules: RegionRules | None = None,
) -> Iterator[Occurrence]:
    """Yield every kept token with its position and region.

    Positions number the kept tokens of the document consecutively from 0
    (the paper's "word offset within the document"); skipped header lines
    do not advance the counter.
    """
    cfg = config or TokenizerConfig()
    region_rules = rules or RegionRules()
    position = 0
    for line in text.splitlines():
        if _line_ignored(line, cfg.ignored_prefixes):
            continue
        region, content = region_rules.region_of(line)
        for token in tokenize_line(content, cfg):
            yield Occurrence(token, position, region)
            position += 1
