"""Word ⇄ integer mapping (paper §4.2).

"At this point all words in batch updates are converted to unique integers
to simplify the remaining computations.  (Words are numbered
alphabetically.)"

True alphabetical numbering requires knowing the whole vocabulary up front;
an *incremental* system cannot renumber on every new word.  We provide both:

* :class:`Vocabulary` — arrival-order ids, the incremental mapping the
  library uses; and
* :func:`alphabetical_ids` — the paper's batch renumbering, used by the
  pipeline when reproducing the exact trace formats of Figures 5 and 6.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class Vocabulary:
    """Bidirectional word ⇄ id mapping with arrival-order ids."""

    def __init__(self) -> None:
        self._ids: dict[str, int] = {}
        self._words: list[str] = []

    def __len__(self) -> int:
        return len(self._words)

    def __contains__(self, word: str) -> bool:
        return word in self._ids

    def id_of(self, word: str) -> int:
        """The id for ``word``, assigning a fresh one if unseen."""
        word_id = self._ids.get(word)
        if word_id is None:
            word_id = len(self._words)
            self._ids[word] = word_id
            self._words.append(word)
        return word_id

    def lookup(self, word: str) -> int | None:
        """The id for ``word`` if it has one, else None (no assignment)."""
        return self._ids.get(word)

    def word_of(self, word_id: int) -> str:
        """Inverse lookup; raises ``IndexError`` on unknown ids."""
        return self._words[word_id]

    def ids_of(self, words: Iterable[str]) -> list[int]:
        """Map many words, assigning ids as needed."""
        return [self.id_of(w) for w in words]

    def words(self) -> Iterator[str]:
        """All words in id order."""
        return iter(self._words)

    # -- persistence ----------------------------------------------------------

    def save(self, path) -> None:
        """Write one word per line, in id order."""
        with open(path, "w", encoding="utf-8") as fp:
            for word in self._words:
                fp.write(word + "\n")

    @classmethod
    def load(cls, path) -> "Vocabulary":
        vocab = cls()
        with open(path, "r", encoding="utf-8") as fp:
            for line in fp:
                vocab.id_of(line.rstrip("\n"))
        return vocab


class VocabularyView:
    """Read-only, size-bounded view of a live :class:`Vocabulary`.

    The writer's vocabulary is append-only: existing ids never change,
    new words only extend it.  A published snapshot can therefore share
    the writer's dict and list outright as long as it (a) never assigns
    ids and (b) ignores words assigned after the snapshot was taken.
    This view enforces both, bounding every lookup at the vocabulary
    size captured at publish time — O(1) publication cost regardless of
    vocabulary size.

    Reading a dict entry while the writer inserts another is atomic
    under CPython, so concurrent readers need no locking.
    """

    __slots__ = ("_base", "_size")

    def __init__(self, base: Vocabulary, size: int | None = None) -> None:
        self._base = base
        self._size = len(base) if size is None else size

    def __len__(self) -> int:
        return self._size

    def __contains__(self, word: str) -> bool:
        return self.lookup(word) is not None

    def id_of(self, word: str) -> int:
        word_id = self.lookup(word)
        if word_id is None:
            raise TypeError(
                "cannot assign new word ids through a published "
                "vocabulary view"
            )
        return word_id

    def lookup(self, word: str) -> int | None:
        word_id = self._base._ids.get(word)
        if word_id is None or word_id >= self._size:
            return None
        return word_id

    def word_of(self, word_id: int) -> str:
        if not 0 <= word_id < self._size:
            raise IndexError(
                f"word id {word_id} outside view of size {self._size}"
            )
        return self._base._words[word_id]

    def ids_of(self, words: Iterable[str]) -> list[int]:
        return [self.id_of(w) for w in words]

    def words(self) -> Iterator[str]:
        return iter(self._base._words[: self._size])

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fp:
            for word in self.words():
                fp.write(word + "\n")


def alphabetical_ids(words: Iterable[str]) -> dict[str, int]:
    """The paper's numbering: distinct words sorted, then numbered from 1.

    (Figure 5 reserves ``0 0`` as the end-of-batch marker, so numbering
    starts at 1.)
    """
    return {
        word: i + 1 for i, word in enumerate(sorted(set(words)))
    }
