"""Text substrate: tokenization, documents, vocabulary, batch updates."""

from .batchupdate import (
    END_MARKER,
    BatchUpdate,
    build_batch_update,
    read_updates,
    write_updates,
)
from .occurrences import (
    DEFAULT_REGION_PREFIXES,
    Occurrence,
    RegionRules,
    tokenize_occurrences,
)
from .documents import (
    Document,
    DocumentBatch,
    FilterConfig,
    admit,
    filter_batch,
    text_fraction,
)
from .tokenizer import (
    DEFAULT_IGNORED_PREFIXES,
    DEFAULT_STOP_WORDS,
    TokenizerConfig,
    tokenize,
    tokenize_document,
    tokenize_line,
)
from .vocabulary import Vocabulary, VocabularyView, alphabetical_ids

__all__ = [
    "BatchUpdate",
    "DEFAULT_IGNORED_PREFIXES",
    "DEFAULT_STOP_WORDS",
    "DEFAULT_REGION_PREFIXES",
    "Occurrence",
    "RegionRules",
    "tokenize_occurrences",
    "Document",
    "DocumentBatch",
    "END_MARKER",
    "FilterConfig",
    "TokenizerConfig",
    "Vocabulary",
    "VocabularyView",
    "admit",
    "alphabetical_ids",
    "build_batch_update",
    "filter_batch",
    "read_updates",
    "text_fraction",
    "tokenize",
    "tokenize_document",
    "tokenize_line",
    "write_updates",
]
