"""Documents, batches, and the paper's document-level filters (§4.1).

The paper's News pipeline applies two filters before indexing:

* documents shorter than ~1024 characters are dropped ("to increase the
  average document size to a more typical range of about 2K characters");
* non-English documents — chiefly encoded binaries and pictures — are
  filtered out.

We reproduce both.  The binary/non-English heuristic checks the fraction of
characters that are ASCII letters or common punctuation; uuencoded blocks
and base64 blobs fail it decisively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator


@dataclass(frozen=True)
class Document:
    """One raw text document with an externally assigned identity."""

    doc_id: int
    text: str

    def __post_init__(self) -> None:
        if self.doc_id < 0:
            raise ValueError("doc_id must be >= 0")


@dataclass(frozen=True)
class FilterConfig:
    """Document admission rules (paper §4.1)."""

    min_length: int = 1024
    #: Minimum fraction of "texty" characters (letters, spaces, common
    #: punctuation) for a document to count as English prose.
    min_text_fraction: float = 0.75

    def __post_init__(self) -> None:
        if self.min_length < 0:
            raise ValueError("min_length must be >= 0")
        if not 0.0 <= self.min_text_fraction <= 1.0:
            raise ValueError("min_text_fraction must be in [0, 1]")


_TEXTY = set(" \t\n.,;:!?'\"()-")


def text_fraction(text: str) -> float:
    """Fraction of characters that look like English prose."""
    if not text:
        return 0.0
    good = sum(
        1 for ch in text if (ch.isascii() and ch.isalpha()) or ch in _TEXTY
    )
    return good / len(text)


def admit(doc: Document, config: FilterConfig | None = None) -> bool:
    """True when the document passes the paper's filters."""
    cfg = config or FilterConfig()
    if len(doc.text) < cfg.min_length:
        return False
    return text_fraction(doc.text) >= cfg.min_text_fraction


@dataclass
class DocumentBatch:
    """One day's worth of admitted documents (the paper's batch unit)."""

    day: int
    documents: list[Document] = field(default_factory=list)

    @property
    def ndocs(self) -> int:
        return len(self.documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self.documents)


def filter_batch(
    day: int,
    documents: Iterable[Document],
    config: FilterConfig | None = None,
) -> DocumentBatch:
    """Apply the admission filters to a day's raw documents."""
    cfg = config or FilterConfig()
    batch = DocumentBatch(day=day)
    for doc in documents:
        if admit(doc, cfg):
            batch.documents.append(doc)
    return batch
