"""Batch updates: word-occurrence pairs per day (paper §4.2, Table 3).

"A batch update contains a list of words that appear in the documents of
the batch and the number of times each word occurs in the batch."  The
count is the number of *documents containing* the word — duplicates within
a document were dropped by the lexer — i.e. the size of the in-memory
inverted list the update stands for.

The text serialization follows the paper's artifacts:

* Table-3 style (word form): ``abandons 1`` pairs, whitespace separated;
* Figure-5 style (integer form): ``<word-id> <count>`` lines with a
  ``0 0`` line marking the end of each batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, TextIO


@dataclass
class BatchUpdate:
    """One day's word-occurrence pairs, in ascending word-id order."""

    day: int
    pairs: list[tuple[int, int]] = field(default_factory=list)
    ndocs: int = 0

    def __post_init__(self) -> None:
        prev = -1
        for word, count in self.pairs:
            if word <= prev:
                raise ValueError(
                    f"pairs must be sorted by strictly increasing word id; "
                    f"{word} after {prev}"
                )
            if word <= 0:
                raise ValueError("word ids must be >= 1 (0 is the marker)")
            if count <= 0:
                raise ValueError(f"word {word} has non-positive count {count}")
            prev = word

    @property
    def nwords(self) -> int:
        return len(self.pairs)

    @property
    def npostings(self) -> int:
        return sum(count for _, count in self.pairs)

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(self.pairs)


def build_batch_update(
    day: int, doc_word_sets: Iterable[Iterable[int]]
) -> BatchUpdate:
    """Aggregate per-document word sets into one batch update.

    Each element of ``doc_word_sets`` is one document's distinct word ids;
    the update records, per word, the number of documents containing it.
    """
    counts: dict[int, int] = {}
    ndocs = 0
    for words in doc_word_sets:
        ndocs += 1
        for word in set(words):
            counts[word] = counts.get(word, 0) + 1
    pairs = sorted(counts.items())
    return BatchUpdate(day=day, pairs=pairs, ndocs=ndocs)


# -- Figure-5 text format -------------------------------------------------------

END_MARKER = "0 0"


def write_updates(updates: Iterable[BatchUpdate], fp: TextIO) -> None:
    """Serialize batch updates in the Figure-5 integer format."""
    for update in updates:
        for word, count in update.pairs:
            fp.write(f"{word} {count}\n")
        fp.write(END_MARKER + "\n")


def read_updates(fp: TextIO) -> Iterator[BatchUpdate]:
    """Parse the Figure-5 format back into batch updates."""
    day = 0
    pairs: list[tuple[int, int]] = []
    for raw in fp:
        line = raw.strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 2:
            raise ValueError(f"malformed batch-update line: {line!r}")
        word, count = int(parts[0]), int(parts[1])
        if (word, count) == (0, 0):
            yield BatchUpdate(day=day, pairs=pairs)
            day += 1
            pairs = []
        else:
            pairs.append((word, count))
    if pairs:
        yield BatchUpdate(day=day, pairs=pairs)
