"""Programmatic regeneration of every table and figure in the paper.

Each ``table_*`` / ``figure_*`` function reruns the relevant slice of the
evaluation pipeline against an :class:`~repro.pipeline.Experiment` and
returns a :class:`FigureResult` holding both the machine-readable data and
the rendered fixed-width text.  The benchmark suite asserts the paper's
claims on the data; the CLI (``repro figure <id>``) and any downstream
user can regenerate an artifact directly::

    from repro.figures import regenerate
    print(regenerate("fig8").rendered)

All functions share the experiment's cached policy-independent stages, so
regenerating several figures costs little more than regenerating one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .analysis.reporting import format_series, format_table
from .core.policy import Alloc, Limit, Policy, Style
from .pipeline.compute_buckets import ComputeBucketsProcess
from .pipeline.exercise import ExerciseConfig, ExerciseDisksProcess
from .pipeline.experiment import (
    Experiment,
    ExperimentConfig,
    default_jobs,
    default_scale,
)
from .storage.profiles import SEAGATE_SCSI_1994
from .workload.synthetic import SyntheticNews, SyntheticNewsConfig


@dataclass
class FigureResult:
    """One regenerated artifact: identifier, rendered text, raw data."""

    name: str
    title: str
    rendered: str
    data: dict = field(default_factory=dict)


def _series_policies() -> dict[str, Policy]:
    """The five curves of Figures 8–10."""
    return {
        "new 0": Policy(style=Style.NEW, limit=Limit.ZERO),
        "new z": Policy(style=Style.NEW, limit=Limit.Z),
        "fill 0": Policy(style=Style.FILL, limit=Limit.ZERO),
        "fill z": Policy(style=Style.FILL, limit=Limit.Z),
        "whole 0&z": Policy(style=Style.WHOLE, limit=Limit.ZERO),
    }


def _timing_policies() -> dict[str, Policy]:
    """The six policies of Figures 13–14 (whole 0 ≠ whole z in time)."""
    return {
        "new 0": Policy(style=Style.NEW, limit=Limit.ZERO),
        "new z": Policy(style=Style.NEW, limit=Limit.Z),
        "fill 0": Policy(style=Style.FILL, limit=Limit.ZERO),
        "fill z": Policy(style=Style.FILL, limit=Limit.Z),
        "whole 0": Policy(style=Style.WHOLE, limit=Limit.ZERO),
        "whole z": Policy(style=Style.WHOLE, limit=Limit.Z),
    }


def default_exercise_config(
    experiment: Experiment, physical_blocks: int = 8192
) -> ExerciseConfig:
    """Physical disks scaled with the corpus (DESIGN.md §7: small enough
    that the fill-0 layout does not fit, as on the paper's hardware)."""
    return ExerciseConfig(
        profile=SEAGATE_SCSI_1994.with_capacity(physical_blocks),
        ndisks=experiment.config.ndisks,
        buffer_blocks=experiment.config.buffer_blocks,
    )


# -- Table 1 ---------------------------------------------------------------------


def table1(experiment: Experiment) -> FigureResult:
    """Corpus statistics of the (synthetic) News database."""
    stats = experiment.stats(frequent_fraction=0.002)
    top1 = experiment.stats(frequent_fraction=0.01)
    return FigureResult(
        name="table1",
        title="Table 1: corpus statistics",
        rendered=stats.as_table(),
        data={"stats": stats, "top1_share": top1.frequent_postings_share},
    )


# -- Figure 1 --------------------------------------------------------------------


def figure1(
    watched: int = 5,
    days: int = 30,
    docs_per_day: int = 400,
    nbuckets: int = 100,
    bucket_size: int = 8000,
) -> FigureResult:
    """Bucket animation on the paper's small 100-bucket system."""
    news = SyntheticNews(
        SyntheticNewsConfig(days=days, docs_per_day=docs_per_day)
    )
    process = ComputeBucketsProcess(
        nbuckets=nbuckets, bucket_size=bucket_size, watch_buckets=(watched,)
    )
    result = process.run(news.batches())
    history = result.animations[watched]
    rendered = format_series(
        {
            "words": [s.nwords for s in history],
            "postings": [s.npostings for s in history],
            "words+postings": [s.size for s in history],
        },
        xlabel="change",
        max_points=16,
        title=(
            f"Figure 1: bucket {watched} contents per change "
            f"(capacity {bucket_size} units)"
        ),
    )
    return FigureResult(
        name="fig1",
        title="Figure 1: bucket animation",
        rendered=rendered,
        data={"history": history, "capacity": bucket_size},
    )


# -- Figure 7 --------------------------------------------------------------------


def figure7(experiment: Experiment) -> FigureResult:
    """Fraction of words per update in each category."""
    new, bucket, long_ = (
        experiment.bucket_stage().category_fraction_series
    )
    rendered = format_series(
        {"new": new, "bucket": bucket, "long": long_},
        max_points=15,
        title="Figure 7: fraction of words per update in each category",
    )
    return FigureResult(
        name="fig7",
        title="Figure 7: word categories per update",
        rendered=rendered,
        data={"new": new, "bucket": bucket, "long": long_},
    )


# -- Figures 8, 9, 10 ---------------------------------------------------------------


def _fan_out(experiment: Experiment, policies, exercise: bool = False) -> None:
    """Pre-run a policy set through :meth:`Experiment.run_policies`.

    With ``REPRO_JOBS > 1`` this routes through the parallel
    :class:`~repro.pipeline.sweep.PolicySweep`; the subsequent per-policy
    ``run_policy`` calls then hit the experiment's in-process cache, so
    every figure/table regenerator is a sweep client without bespoke
    plumbing.
    """
    experiment.run_policies(
        list(policies), exercise=exercise, jobs=default_jobs()
    )


def _series_figure(
    experiment: Experiment, attr: str, name: str, title: str
) -> FigureResult:
    _fan_out(experiment, _series_policies().values())
    runs = {
        label: experiment.run_policy(policy)
        for label, policy in _series_policies().items()
    }
    series = {
        label: getattr(run.disks.series, attr) for label, run in runs.items()
    }
    return FigureResult(
        name=name,
        title=title,
        rendered=format_series(series, max_points=15, title=title),
        data={"series": series, "runs": runs},
    )


def figure8(experiment: Experiment) -> FigureResult:
    """Cumulative I/O operations per policy."""
    return _series_figure(
        experiment,
        "io_ops",
        "fig8",
        "Figure 8: cumulative I/O operations per policy",
    )


def figure9(experiment: Experiment) -> FigureResult:
    """Long-list disk utilization per policy."""
    return _series_figure(
        experiment,
        "utilization",
        "fig9",
        "Figure 9: long-list disk utilization per policy",
    )


def figure10(experiment: Experiment) -> FigureResult:
    """Average read operations per long list."""
    return _series_figure(
        experiment,
        "avg_reads",
        "fig10",
        "Figure 10: average read operations per long list",
    )


# -- Tables 5 and 6 -------------------------------------------------------------------


TABLE5_STRATEGIES: tuple[tuple[Alloc, float], ...] = (
    (Alloc.CONSTANT, 50),
    (Alloc.CONSTANT, 100),
    (Alloc.BLOCK, 1),
    (Alloc.BLOCK, 4),
    (Alloc.PROPORTIONAL, 1.5),
    (Alloc.PROPORTIONAL, 2.0),
)

TABLE6_STRATEGIES: tuple[tuple[Alloc, float], ...] = (
    (Alloc.CONSTANT, 0),
    (Alloc.CONSTANT, 100),
    (Alloc.CONSTANT, 200),
    (Alloc.BLOCK, 1),
    (Alloc.BLOCK, 4),
    (Alloc.BLOCK, 8),
    (Alloc.PROPORTIONAL, 1.1),
    (Alloc.PROPORTIONAL, 1.2),
    (Alloc.PROPORTIONAL, 1.5),
)


def _alloc_table(
    experiment: Experiment,
    style: Style,
    strategies,
    name: str,
    title: str,
    with_reads: bool,
) -> FigureResult:
    policies = {
        (alloc, k): Policy(style=style, limit=Limit.Z, alloc=alloc, k=k)
        for alloc, k in strategies
    }
    _fan_out(experiment, policies.values())
    rows = {
        key: experiment.run_policy(policy).disks
        for key, policy in policies.items()
    }
    headers = (
        ("Allocation", "k", "Read", "Util", "In-place", "Frac")
        if with_reads
        else ("Allocation", "k", "Util", "In-place", "Frac")
    )
    table_rows = []
    for (alloc, k), disks in rows.items():
        row = [alloc.value, k]
        if with_reads:
            row.append(round(disks.final_avg_reads, 2))
        row.extend(
            [
                round(disks.final_utilization, 2),
                disks.counters.in_place_updates,
                round(disks.counters.in_place_fraction, 2),
            ]
        )
        table_rows.append(tuple(row))
    return FigureResult(
        name=name,
        title=title,
        rendered=format_table(headers, table_rows, title=title),
        data={"rows": rows},
    )


def table5(experiment: Experiment) -> FigureResult:
    """Allocation strategies for the new style."""
    return _alloc_table(
        experiment,
        Style.NEW,
        TABLE5_STRATEGIES,
        "table5",
        "Table 5: allocation strategies, new style",
        with_reads=True,
    )


def table6(experiment: Experiment) -> FigureResult:
    """Allocation strategies for the whole style."""
    return _alloc_table(
        experiment,
        Style.WHOLE,
        TABLE6_STRATEGIES,
        "table6",
        "Table 6: allocation strategies, whole style",
        with_reads=False,
    )


# -- Figures 11 and 12 -----------------------------------------------------------------


FIGURE11_KS = (1.0, 1.25, 1.5, 2.0, 2.5, 3.0, 4.0)
FIGURE12_KS = (1.0, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0, 4.0)


def _k_sweep(experiment: Experiment, ks, metric: Callable) -> dict:
    _fan_out(
        experiment,
        [
            Policy(style=style, limit=Limit.Z, alloc=Alloc.PROPORTIONAL, k=k)
            for k in ks
            for style in (Style.NEW, Style.WHOLE)
        ]
        + [Policy(style=Style.FILL, limit=Limit.Z, extent_blocks=4)],
    )
    out = {"new": [], "whole": []}
    for k in ks:
        for style_name, style in (("new", Style.NEW), ("whole", Style.WHOLE)):
            policy = Policy(
                style=style, limit=Limit.Z, alloc=Alloc.PROPORTIONAL, k=k
            )
            out[style_name].append(metric(experiment.run_policy(policy).disks))
    fill = metric(
        experiment.run_policy(
            Policy(style=Style.FILL, limit=Limit.Z, extent_blocks=4)
        ).disks
    )
    out["fill (e=4)"] = [fill] * len(ks)
    return out


def figure11(experiment: Experiment) -> FigureResult:
    """Utilization vs the proportional constant k."""
    sweep = _k_sweep(
        experiment, FIGURE11_KS, lambda d: d.final_utilization
    )
    rows = [
        (
            k,
            round(sweep["new"][i], 3),
            round(sweep["whole"][i], 3),
            round(sweep["fill (e=4)"][i], 3),
        )
        for i, k in enumerate(FIGURE11_KS)
    ]
    title = "Figure 11: long-list utilization vs proportional k"
    return FigureResult(
        name="fig11",
        title=title,
        rendered=format_table(
            ("k", "new", "whole", "fill (e=4)"), rows, title=title
        ),
        data={"sweep": sweep, "ks": FIGURE11_KS},
    )


def figure12(experiment: Experiment) -> FigureResult:
    """Cumulative in-place updates vs the proportional constant k."""
    sweep = _k_sweep(
        experiment, FIGURE12_KS, lambda d: d.counters.in_place_updates
    )
    rows = [
        (k, sweep["new"][i], sweep["whole"][i], sweep["fill (e=4)"][i])
        for i, k in enumerate(FIGURE12_KS)
    ]
    title = "Figure 12: cumulative in-place updates vs proportional k"
    return FigureResult(
        name="fig12",
        title=title,
        rendered=format_table(
            ("k", "new", "whole", "fill (e=4)"), rows, title=title
        ),
        data={"sweep": sweep, "ks": FIGURE12_KS},
    )


# -- Figures 13 and 14 -----------------------------------------------------------------


def _exercise_all(experiment: Experiment, exercise_config: ExerciseConfig):
    # Fan out the trace replays; exercising against the figure-specific
    # physical config stays serial (it is cheap relative to ComputeDisks).
    _fan_out(experiment, _timing_policies().values())
    exerciser = ExerciseDisksProcess(exercise_config)
    outcomes = {}
    for name, policy in _timing_policies().items():
        disks = experiment.run_policy(policy).disks
        outcomes[name] = (disks, exerciser.run(disks.trace))
    return outcomes


def figure13(
    experiment: Experiment, exercise_config: ExerciseConfig | None = None
) -> FigureResult:
    """Cumulative build time on the physical disk model."""
    config = exercise_config or default_exercise_config(experiment)
    outcomes = _exercise_all(experiment, config)
    feasible = {
        name: ex.result.cumulative_s
        for name, (_, ex) in outcomes.items()
        if ex.feasible
    }
    infeasible = [
        name for name, (_, ex) in outcomes.items() if not ex.feasible
    ]
    title = (
        "Figure 13: cumulative time (seconds, simulated 1994 SCSI array)"
    )
    parts = [format_series(feasible, max_points=15, title=title)]
    if infeasible:
        parts.append(
            format_table(
                ("policy", "outcome"),
                [(n, "did not fit physical disks") for n in infeasible],
            )
        )
    return FigureResult(
        name="fig13",
        title=title,
        rendered="\n\n".join(parts),
        data={
            "series": feasible,
            "infeasible": infeasible,
            "outcomes": outcomes,
        },
    )


def figure14(
    experiment: Experiment, exercise_config: ExerciseConfig | None = None
) -> FigureResult:
    """Time per update on the physical disk model."""
    config = exercise_config or default_exercise_config(experiment)
    outcomes = _exercise_all(experiment, config)
    series = {
        name: ex.result.per_update_s
        for name, (_, ex) in outcomes.items()
        if ex.feasible
    }
    title = "Figure 14: time per update (seconds, simulated)"
    return FigureResult(
        name="fig14",
        title=title,
        rendered=format_series(series, max_points=15, title=title),
        data={"series": series, "outcomes": outcomes},
    )


# -- registry ---------------------------------------------------------------------------


REGISTRY: dict[str, Callable] = {
    "table1": table1,
    "fig1": figure1,
    "fig7": figure7,
    "fig8": figure8,
    "fig9": figure9,
    "fig10": figure10,
    "table5": table5,
    "table6": table6,
    "fig11": figure11,
    "fig12": figure12,
    "fig13": figure13,
    "fig14": figure14,
}


def regenerate(
    name: str, experiment: Experiment | None = None
) -> FigureResult:
    """Regenerate one artifact by id (``fig8``, ``table5``, ...).

    ``fig1`` builds its own small system; everything else runs against
    ``experiment`` (a fresh base-configuration experiment by default).
    """
    try:
        fn = REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown artifact {name!r}; choose from {sorted(REGISTRY)}"
        ) from None
    if name == "fig1":
        return fn()
    if experiment is None:
        experiment = Experiment(
            ExperimentConfig(
                workload=SyntheticNewsConfig(scale=default_scale())
            )
        )
    return fn(experiment)
