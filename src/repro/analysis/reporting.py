"""Fixed-width rendering of the reproduced tables and figure series.

The benchmark harness prints the same rows and series the paper reports,
so ``pytest benchmarks/ --benchmark-only`` output doubles as the
reproduction record (captured in ``bench_output.txt``).  Two renderers:

* :func:`format_table` — paper-style tables (Tables 1, 5, 6);
* :func:`format_series` — down-sampled numeric series for the figures,
  one labelled column per curve.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a fixed-width table with right-aligned numeric columns."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[float]],
    xlabel: str = "update",
    max_points: int = 12,
    title: str | None = None,
) -> str:
    """Render curves as a down-sampled table: one row per sampled x.

    All series must share a length; ``max_points`` evenly spaced samples
    (always including the final index) are shown.
    """
    lengths = {len(v) for v in series.values()}
    if len(lengths) != 1:
        raise ValueError(f"series lengths differ: {lengths}")
    (n,) = lengths
    if n == 0:
        raise ValueError("series are empty")
    step = max(1, n // max_points)
    xs = list(range(0, n, step))
    if xs[-1] != n - 1:
        xs.append(n - 1)
    headers = [xlabel] + list(series)
    rows = [[x + 1] + [series[name][x] for name in series] for x in xs]
    return format_table(headers, rows, title=title)


def ratio(a: float, b: float) -> float:
    """Safe ratio a/b used in shape assertions (inf when b is 0)."""
    if b == 0:
        return float("inf")
    return a / b
