"""Per-update measurement series: the data behind the paper's figures.

Each experiment produces, per policy, one :class:`UpdateSeries` whose lists
are indexed by update number ("the index after update", the x-axis of
Figures 7–10 and 13–14).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CategoryCounts:
    """Word-category tallies for one update (paper Figure 7)."""

    new: int = 0
    bucket: int = 0
    long: int = 0

    @property
    def total(self) -> int:
        return self.new + self.bucket + self.long

    def fractions(self) -> tuple[float, float, float]:
        """(new, bucket, long) fractions; zeros for an empty update."""
        total = self.total
        if total == 0:
            return (0.0, 0.0, 0.0)
        return (self.new / total, self.bucket / total, self.long / total)


@dataclass
class UpdateSeries:
    """Per-update measurements for one policy run."""

    #: Cumulative I/O operations after each update (Figure 8).
    io_ops: list[int] = field(default_factory=list)
    #: Long-list internal utilization after each update (Figure 9).
    utilization: list[float] = field(default_factory=list)
    #: Average read ops per long list after each update (Figure 10).
    avg_reads: list[float] = field(default_factory=list)
    #: Cumulative in-place updates after each update (Figure 12's y-axis).
    in_place: list[int] = field(default_factory=list)
    #: Number of words with long lists after each update.
    long_words: list[int] = field(default_factory=list)
    #: Blocks allocated to long lists after each update.
    long_blocks: list[int] = field(default_factory=list)

    @property
    def nupdates(self) -> int:
        return len(self.io_ops)

    def final(self, name: str):
        """The final-index value of a series (e.g. ``final('io_ops')``)."""
        values = getattr(self, name)
        if not values:
            raise ValueError(f"series {name!r} is empty")
        return values[-1]


def increasing_slope(values: list[int] | list[float]) -> bool:
    """True when a cumulative series is convex-ish: the mean step in the
    last quarter exceeds the mean step in the first quarter.

    Used by the benchmark shape assertions for the paper's "all the curves
    have increasing slope" observation.
    """
    if len(values) < 8:
        raise ValueError("need at least 8 points to judge slope growth")
    steps = [b - a for a, b in zip(values, values[1:])]
    quarter = max(1, len(steps) // 4)
    head = sum(steps[:quarter]) / quarter
    tail = sum(steps[-quarter:]) / quarter
    return tail > head
