"""The paper's "Bottom Line": turning measurements into a recommendation.

Section 5.4 closes each style's discussion with a bottom line — use the
new style when update time matters and query time does not; use fill when
a disk array wants bounded extents; use whole when query time is critical.
:func:`bottom_line` reproduces that decision logic over a set of measured
policy runs, and :func:`comparison_table` renders the three-way trade-off
(build time, reads per list, utilization) the recommendation rests on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..core.policy import Policy, Style
from .reporting import format_table


class Preference(enum.Enum):
    """What the deployment cares about most (the §5.4 framing)."""

    UPDATE_TIME = "update time"
    QUERY_TIME = "query time"
    BALANCED = "balanced"


@dataclass(frozen=True)
class PolicyMeasurement:
    """The three numbers the paper's bottom lines weigh."""

    policy: Policy
    build_time_s: float
    reads_per_list: float
    utilization: float

    def __post_init__(self) -> None:
        if self.build_time_s < 0 or self.reads_per_list < 0:
            raise ValueError("measurements must be >= 0")
        if not 0 <= self.utilization <= 1:
            raise ValueError("utilization must be in [0, 1]")


@dataclass(frozen=True)
class Recommendation:
    """A chosen policy plus the reasoning, in the paper's voice."""

    policy: Policy
    reason: str


def bottom_line(
    measurements: list[PolicyMeasurement],
    preference: Preference,
    min_utilization: float = 0.5,
) -> Recommendation:
    """Choose a policy the way §5.4 does.

    * ``UPDATE_TIME``: fastest build; but policies with unusable space
      efficiency (below ``min_utilization``) are excluded — the paper
      calls the extreme update-optimized layouts "unrealistic due to the
      resulting extremely poor utilization rates" unless update time is
      truly the only concern, in which case pass ``min_utilization=0``.
    * ``QUERY_TIME``: fewest reads per list; ties break to faster builds
      (the whole styles all read once, so build time separates them).
    * ``BALANCED``: minimize (normalized build time + normalized reads),
      subject to the utilization floor — the fill/new-with-reserve middle
      ground the paper lands on.
    """
    if not measurements:
        raise ValueError("no measurements supplied")
    usable = [
        m for m in measurements if m.utilization >= min_utilization
    ] or measurements
    if preference is Preference.UPDATE_TIME:
        best = min(usable, key=lambda m: m.build_time_s)
        return Recommendation(
            best.policy,
            f"fastest feasible build ({best.build_time_s:.1f} s) at "
            f"{best.utilization:.0%} utilization",
        )
    if preference is Preference.QUERY_TIME:
        best = min(usable, key=lambda m: (m.reads_per_list, m.build_time_s))
        return Recommendation(
            best.policy,
            f"best read cost ({best.reads_per_list:.2f} reads/list); "
            f"build costs {best.build_time_s:.1f} s",
        )
    max_time = max(m.build_time_s for m in usable) or 1.0
    max_reads = max(m.reads_per_list for m in usable) or 1.0
    best = min(
        usable,
        key=lambda m: m.build_time_s / max_time + m.reads_per_list / max_reads,
    )
    return Recommendation(
        best.policy,
        f"best combined cost: {best.build_time_s:.1f} s build, "
        f"{best.reads_per_list:.2f} reads/list, "
        f"{best.utilization:.0%} utilization",
    )


def comparison_table(measurements: list[PolicyMeasurement]) -> str:
    """Render the §5.4 trade-off table, fastest build first."""
    rows = [
        (
            m.policy.name,
            round(m.build_time_s, 1),
            round(m.reads_per_list, 2),
            f"{m.utilization:.0%}",
        )
        for m in sorted(measurements, key=lambda m: m.build_time_s)
    ]
    return format_table(
        ("policy", "build time (s)", "reads/list", "utilization"),
        rows,
        title="Update time vs query time vs space (paper §5.4)",
    )


def expected_style(preference: Preference) -> Style:
    """The style family §5.4's prose recommends per preference — used by
    tests to check the data-driven choice agrees with the paper."""
    return {
        Preference.UPDATE_TIME: Style.NEW,
        Preference.QUERY_TIME: Style.WHOLE,
        Preference.BALANCED: Style.NEW,  # new-with-reserve or fill
    }[preference]
