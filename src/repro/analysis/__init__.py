"""Measurement series and report rendering for the experiment pipeline."""

from .bottomline import (
    PolicyMeasurement,
    Preference,
    Recommendation,
    bottom_line,
    comparison_table,
)
from .metrics import CategoryCounts, UpdateSeries, increasing_slope
from .readtime import chunk_read_time, list_read_time, longest_entries
from .reporting import format_series, format_table, ratio

__all__ = [
    "CategoryCounts",
    "PolicyMeasurement",
    "Preference",
    "Recommendation",
    "bottom_line",
    "comparison_table",
    "UpdateSeries",
    "format_series",
    "format_table",
    "chunk_read_time",
    "increasing_slope",
    "list_read_time",
    "longest_entries",
    "ratio",
]
