"""List read-time model: serial vs disk-array-parallel reads.

The paper's introduction asks: "If multiple disks are available, can we
stripe large lists across multiple disks to improve performance?" and its
fill-style bottom line answers for one layout: bounded extents mean "long
lists are automatically divided into sections of disks which can be
written to disk and read in parallel (e.g., with a disk array)".

This model prices reading one long list from its directory entry:

* every chunk costs one positioned read — seek (average stroke) plus
  rotational latency plus the transfer of its data blocks;
* **serial**: chunks are read one after another — total time is the sum
  (the single-head view behind Figure 10's op counting);
* **parallel**: each disk's chunks are read by that disk concurrently —
  total time is the *maximum* per-disk time, the disk-array advantage the
  fill style's layout buys and the whole style (one chunk, one disk)
  cannot exploit.
"""

from __future__ import annotations

from ..core.directory import LongListEntry
from ..storage.block import blocks_for_postings
from ..storage.profiles import DiskProfile


def chunk_read_time(
    chunk, profile: DiskProfile, block_postings: int
) -> float:
    """Seconds to read one chunk's data blocks after a positioned seek."""
    data_blocks = blocks_for_postings(chunk.npostings, block_postings)
    return (
        profile.seek_s(profile.nblocks // 3)
        + profile.rotational_latency_s
        + profile.transfer_s(data_blocks, is_write=False)
    )


def list_read_time(
    entry: LongListEntry,
    profile: DiskProfile,
    block_postings: int,
    parallel: bool,
) -> float:
    """Seconds to read a whole long list, serially or disk-parallel."""
    per_disk: dict[int, float] = {}
    for chunk in entry.chunks:
        per_disk[chunk.disk] = per_disk.get(chunk.disk, 0.0) + (
            chunk_read_time(chunk, profile, block_postings)
        )
    if not per_disk:
        return 0.0
    if parallel:
        return max(per_disk.values())
    return sum(per_disk.values())


def longest_entries(directory, n: int) -> list[LongListEntry]:
    """The ``n`` longest lists — where striping matters most."""
    return sorted(
        directory.entries(), key=lambda e: e.npostings, reverse=True
    )[:n]
