"""Synthetic News workload: the corpus substrate for the evaluation.

The paper indexed 73 daily batches of NetNews articles (Nov 13 1993 –
Jan 31 1994, one day missing, one day's gathering interrupted).  We do not
have 1993 NetNews; per DESIGN.md we substitute a seeded generator that
reproduces the distributional properties the evaluation depends on:

* **Zipf word frequencies** — ranks drawn from an unbounded Zipf law, so a
  handful of frequent words carry the vast majority of postings (paper
  Table 1) while the tail supplies an endless stream of rare words;
* **new-word arrival** — deep-tail ranks are previously unseen words, so
  every update contains new words even late in the run (paper Figure 7's
  "new words" curve stabilizing well above zero);
* **per-document deduplication** — a document contributes one posting per
  distinct word, the abstracts-index convention of the paper;
* **weekly periodicity** — Saturday/Sunday batches are smaller, producing
  Figure 7's seven-day peaks on the long-words curve;
* **one interrupted day** — a near-empty batch mid-run, reproducing the
  spike the paper attributes to "an interruption in the gathering of data".

Every quantity is derived from a deterministic per-day RNG, so batches can
be generated independently, lazily, and reproducibly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..text.batchupdate import BatchUpdate

#: Day-of-week factors, day 0 being a Saturday (the paper's run started on
#: Saturday, November 13th, 1993).
_WEEK_PROFILE = (0.45, 0.65, 1.0, 1.05, 1.0, 1.0, 0.95)


@dataclass(frozen=True)
class SyntheticNewsConfig:
    """Parameters of the synthetic News corpus.

    The default scale targets roughly one million postings over the run —
    about 1/20 of the paper's corpus — which keeps the full experiment
    suite tractable in pure Python while leaving every curve's shape
    intact.  ``scale`` multiplies the per-day document counts.
    """

    days: int = 73
    docs_per_day: int = 160
    scale: float = 1.0
    zipf_s: float = 1.3
    #: Lognormal parameters of per-document token counts (before dedup).
    tokens_per_doc_mu: float = 4.85  # median ≈ 128 tokens
    tokens_per_doc_sigma: float = 0.55
    #: The day whose gathering was interrupted (paper: update 31).
    interrupted_day: int = 31
    interrupted_factor: float = 0.04
    seed: int = 1994
    #: Zipf exponent skewing document *placement* across shards in the
    #: document-partitioned pipeline (shard 0 hottest; 0 = uniform
    #: hashing).  The corpus itself is unchanged — the skew is consumed
    #: by :func:`repro.pipeline.sharding.split_updates` and mirrors the
    #: serving layer's ``doc_skew`` workload knob.
    doc_skew: float = 0.0

    def __post_init__(self) -> None:
        if self.days <= 0 or self.docs_per_day <= 0:
            raise ValueError("days and docs_per_day must be > 0")
        if self.scale <= 0:
            raise ValueError("scale must be > 0")
        if self.zipf_s <= 1.0:
            raise ValueError("zipf_s must be > 1 for the unbounded law")
        if not 0 <= self.interrupted_day:
            raise ValueError("interrupted_day must be >= 0")
        if self.doc_skew < 0:
            raise ValueError("doc_skew must be >= 0")


class SyntheticNews:
    """Deterministic generator of daily document batches."""

    def __init__(self, config: SyntheticNewsConfig | None = None) -> None:
        self.config = config or SyntheticNewsConfig()

    # -- sizing ------------------------------------------------------------

    def docs_on_day(self, day: int) -> int:
        """Documents gathered on ``day`` (weekly profile + interruption)."""
        cfg = self.config
        if not 0 <= day < cfg.days:
            raise ValueError(f"day {day} outside [0, {cfg.days})")
        base = cfg.docs_per_day * cfg.scale * _WEEK_PROFILE[day % 7]
        if day == cfg.interrupted_day:
            base *= cfg.interrupted_factor
        return max(1, int(round(base)))

    def _rng(self, day: int) -> np.random.Generator:
        return np.random.default_rng(
            np.random.SeedSequence((self.config.seed, day))
        )

    # -- documents -----------------------------------------------------------

    def day_documents(self, day: int) -> list[np.ndarray]:
        """The day's documents, each as a sorted array of distinct word ids.

        Word ids are Zipf ranks (>= 1): small ids are the frequent words,
        deep-tail ids appear once and rarely recur.
        """
        cfg = self.config
        rng = self._rng(day)
        ndocs = self.docs_on_day(day)
        sizes = rng.lognormal(
            cfg.tokens_per_doc_mu, cfg.tokens_per_doc_sigma, size=ndocs
        )
        sizes = np.maximum(8, sizes.astype(np.int64))
        all_tokens = rng.zipf(cfg.zipf_s, size=int(sizes.sum()))
        docs: list[np.ndarray] = []
        offset = 0
        for size in sizes:
            tokens = all_tokens[offset : offset + size]
            offset += size
            docs.append(np.unique(tokens))
        return docs

    def batch_update(self, day: int) -> BatchUpdate:
        """The day's word-occurrence pairs (the paper's batch update)."""
        docs = self.day_documents(day)
        words = np.concatenate(docs) if docs else np.empty(0, dtype=np.int64)
        ids, counts = np.unique(words, return_counts=True)
        pairs = [(int(w), int(c)) for w, c in zip(ids, counts)]
        return BatchUpdate(day=day, pairs=pairs, ndocs=len(docs))

    def batches(self) -> Iterator[BatchUpdate]:
        """All daily batch updates in order."""
        for day in range(self.config.days):
            yield self.batch_update(day)

    # -- whole-corpus statistics -------------------------------------------------

    def word_counts(self) -> dict[int, int]:
        """Total postings per word across the whole run."""
        counts: dict[int, int] = {}
        for update in self.batches():
            for word, count in update.pairs:
                counts[word] = counts.get(word, 0) + count
        return counts
