"""Workload substrate: synthetic News corpus and Zipf tooling."""

from .newsgen import generate_articles, id_for_word, render_article, word_for_id
from .presets import PRESETS, preset
from .synthetic import SyntheticNews, SyntheticNewsConfig
from .zipf import (
    bounded_zipf_probabilities,
    concentration,
    fit_zipf_exponent,
    sample_bounded_zipf,
    sample_unbounded_zipf,
)

__all__ = [
    "PRESETS",
    "SyntheticNews",
    "SyntheticNewsConfig",
    "bounded_zipf_probabilities",
    "concentration",
    "fit_zipf_exponent",
    "generate_articles",
    "id_for_word",
    "preset",
    "render_article",
    "sample_bounded_zipf",
    "sample_unbounded_zipf",
    "word_for_id",
]
