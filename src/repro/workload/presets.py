"""Named workload presets for the paper's motivating feeds.

The introduction motivates incremental updates with three dynamic sources:
"news articles, electronic mail, or stock information".  The synthetic
generator is parametric enough to model all three; these presets pick the
parameters:

* ``news`` — the evaluation base case: medium documents, moderately
  skewed vocabulary, weekly volume cycle;
* ``email`` — shorter messages, higher volume, flatter frequency curve
  (personal vocabularies overlap less, so the tail is fatter);
* ``stock`` — terse tickers drawn from a small hot set: very short
  documents with an extremely skewed frequency law, arriving every day of
  the week at similar volume.

The presets share every structural property the dual structure relies on
(Zipf-ish skew, per-document dedup, continuous new-word arrival), so the
paper's policy conclusions should — and, per the X12 benchmark, do — hold
across all of them.
"""

from __future__ import annotations

from .synthetic import SyntheticNewsConfig


def news(days: int = 73, scale: float = 1.0) -> SyntheticNewsConfig:
    """The evaluation base case (see DESIGN.md §6)."""
    return SyntheticNewsConfig(days=days, scale=scale)


def email(days: int = 73, scale: float = 1.0) -> SyntheticNewsConfig:
    """Electronic mail: many short messages, fat-tailed vocabulary."""
    return SyntheticNewsConfig(
        days=days,
        docs_per_day=320,
        scale=scale,
        zipf_s=1.2,  # flatter head, fatter tail
        tokens_per_doc_mu=3.9,  # median ≈ 50 tokens
        tokens_per_doc_sigma=0.7,
        seed=404,
    )


def stock(days: int = 73, scale: float = 1.0) -> SyntheticNewsConfig:
    """Stock information: terse updates over a small hot symbol set."""
    return SyntheticNewsConfig(
        days=days,
        docs_per_day=600,
        scale=scale,
        zipf_s=1.9,  # extreme concentration on the hot symbols
        tokens_per_doc_mu=2.9,  # median ≈ 18 tokens
        tokens_per_doc_sigma=0.4,
        seed=777,
    )


PRESETS = {"news": news, "email": email, "stock": stock}


def preset(name: str, days: int = 73, scale: float = 1.0) -> SyntheticNewsConfig:
    """Look up a preset by name."""
    try:
        factory = PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload preset {name!r}; choose from {sorted(PRESETS)}"
        ) from None
    return factory(days=days, scale=scale)
