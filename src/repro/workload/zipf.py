"""Zipf-distributed word sampling and rank-frequency fitting.

The paper (§2) grounds the dual-structure design in the shape of word
frequencies: "The lengths of the inverted lists for a database of text
documents have a roughly exponential distribution (the Zipf curve)."  The
synthetic corpus generator draws word ranks from a Zipf distribution, and
the corpus-statistics tests fit the exponent back out to confirm the
workload has the property the design exploits.
"""

from __future__ import annotations

import numpy as np


def bounded_zipf_probabilities(s: float, n: int) -> np.ndarray:
    """Probabilities of ranks ``1..n`` under a bounded Zipf(s) law."""
    if s <= 0:
        raise ValueError("s must be > 0")
    if n <= 0:
        raise ValueError("n must be > 0")
    weights = 1.0 / np.arange(1, n + 1, dtype=np.float64) ** s
    return weights / weights.sum()


def sample_bounded_zipf(
    rng: np.random.Generator, s: float, n: int, size: int
) -> np.ndarray:
    """Draw ``size`` ranks in ``1..n`` from a bounded Zipf(s) law."""
    probs = bounded_zipf_probabilities(s, n)
    return rng.choice(np.arange(1, n + 1), size=size, p=probs)


def sample_unbounded_zipf(
    rng: np.random.Generator, s: float, size: int
) -> np.ndarray:
    """Draw ``size`` ranks from the unbounded Zipf(s) law (``s > 1``).

    The unbounded law is what gives the synthetic corpus its open-ended
    vocabulary: deep-tail ranks are words never seen before (including the
    paper's observation that misspellings enter the index like any word).
    """
    if s <= 1.0:
        raise ValueError("the unbounded Zipf law requires s > 1")
    return rng.zipf(s, size=size)


def fit_zipf_exponent(counts: np.ndarray) -> float:
    """Estimate the Zipf exponent from observed word counts.

    Least-squares slope of log(frequency) against log(rank), over the head
    of the distribution (tail ranks are dominated by ties at count 1 and
    bias the fit).  Returns the positive exponent ``s``.
    """
    counts = np.sort(np.asarray(counts, dtype=np.float64))[::-1]
    counts = counts[counts > 0]
    if counts.size < 3:
        raise ValueError("need at least 3 positive counts to fit")
    head = counts[: max(3, counts.size // 10)]
    ranks = np.arange(1, head.size + 1, dtype=np.float64)
    slope, _intercept = np.polyfit(np.log(ranks), np.log(head), 1)
    return float(-slope)


def concentration(counts: np.ndarray, top_fraction: float) -> float:
    """Fraction of all postings carried by the top ``top_fraction`` of words.

    This is the paper's Table-1 "postings for frequent words" statistic
    (frequent = words ranking in a small top percentile by frequency).
    """
    if not 0.0 < top_fraction <= 1.0:
        raise ValueError("top_fraction must be in (0, 1]")
    counts = np.sort(np.asarray(counts, dtype=np.float64))[::-1]
    total = counts.sum()
    if total <= 0:
        return 0.0
    top_n = max(1, int(round(top_fraction * counts.size)))
    return float(counts[:top_n].sum() / total)
