"""Render synthetic documents as actual text articles.

The evaluation pipeline consumes word-occurrence pairs directly, but the
library's text-facing API (tokenizer → vocabulary → index) deserves an
end-to-end exercise with real text.  This module renders the synthetic
workload's word-id documents into NetNews-looking articles — headers the
tokenizer must skip, a body of pseudo-words — such that tokenizing the
article recovers exactly the generated word set.

Word ids map to pseudo-words bijectively (``1 → "ba"``, base-25 consonant/
vowel syllables), so the words are lowercase alphabetic, pronounceable-ish,
and round-trip through the tokenizer unchanged.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..text.documents import Document
from .synthetic import SyntheticNews

_CONSONANTS = "bcdfghjklmnpqrstvwxz"  # 20
_VOWELS = "aeiou"  # 5


def word_for_id(word_id: int) -> str:
    """Deterministic pseudo-word for a word id (>= 1).

    Ids map to syllable strings in a bijective base-100 numeration
    (consonant+vowel pairs), so distinct ids give distinct words and every
    word tokenizes back to itself.
    """
    if word_id < 1:
        raise ValueError("word ids start at 1")
    n = word_id
    syllables: list[str] = []
    while n > 0:
        n -= 1
        digit = n % 100
        n //= 100
        syllables.append(_CONSONANTS[digit // 5] + _VOWELS[digit % 5])
    return "".join(reversed(syllables))


def id_for_word(word: str) -> int:
    """Inverse of :func:`word_for_id`."""
    if not word or len(word) % 2 != 0:
        raise ValueError(f"not a generated word: {word!r}")
    n = 0
    for i in range(0, len(word), 2):
        c, v = word[i], word[i + 1]
        ci = _CONSONANTS.find(c)
        vi = _VOWELS.find(v)
        if ci < 0 or vi < 0:
            raise ValueError(f"not a generated word: {word!r}")
        n = n * 100 + (ci * 5 + vi) + 1
    return n


def render_article(
    doc_id: int,
    word_ids: Iterable[int],
    day: int = 0,
    words_per_line: int = 10,
) -> str:
    """Render one document's word ids as a News-style article."""
    words = [word_for_id(int(w)) for w in word_ids]
    lines = [
        f"Path: news.example.org!synthetic!day{day}",
        f"Message-ID: <{doc_id}@synthetic.example>",
        f"Date: day {day} of the synthetic run",
        "",
    ]
    for i in range(0, len(words), words_per_line):
        lines.append(" ".join(words[i : i + words_per_line]))
    return "\n".join(lines) + "\n"


def generate_articles(
    news: SyntheticNews, day: int, first_doc_id: int = 0
) -> Iterator[Document]:
    """Yield the day's documents as rendered text articles."""
    for offset, word_ids in enumerate(news.day_documents(day)):
        doc_id = first_doc_id + offset
        yield Document(
            doc_id=doc_id,
            text=render_article(doc_id, word_ids.tolist(), day=day),
        )
