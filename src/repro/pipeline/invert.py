"""InvertIndex process: document batches → batch updates (paper §4.2).

"The invert index process accepts a sequence of document batches as input,
processes them, and generates a batch update for each batch.  A batch
update contains a list of words that appear in the documents of the batch
and the number of times each word occurs in the batch."

This stage exercises the full text substrate: tokenization with header
skipping, per-document deduplication, lowercasing, vocabulary numbering.
Word ids handed to the rest of the pipeline are vocabulary ids shifted by
one, because the batch-update trace format reserves id 0 as the
end-of-batch marker (Figure 5).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..text.batchupdate import BatchUpdate, build_batch_update
from ..text.documents import DocumentBatch
from ..text.tokenizer import TokenizerConfig, tokenize_document
from ..text.vocabulary import Vocabulary


class InvertIndexProcess:
    """Turns text document batches into integer batch updates."""

    def __init__(
        self,
        vocabulary: Vocabulary | None = None,
        tokenizer_config: TokenizerConfig | None = None,
    ) -> None:
        self.vocabulary = vocabulary or Vocabulary()
        self.tokenizer_config = tokenizer_config

    def word_id(self, word: str) -> int:
        """Pipeline word id for a token (vocabulary id + 1; 0 is reserved)."""
        return self.vocabulary.id_of(word) + 1

    def invert_batch(self, batch: DocumentBatch) -> BatchUpdate:
        """Produce the batch update for one day of documents."""
        doc_word_sets: list[list[int]] = []
        for doc in batch:
            words = tokenize_document(doc.text, self.tokenizer_config)
            doc_word_sets.append([self.word_id(w) for w in words])
        return build_batch_update(batch.day, doc_word_sets)

    def run(self, batches: Iterable[DocumentBatch]) -> Iterator[BatchUpdate]:
        """Invert a sequence of document batches lazily, in order."""
        for batch in batches:
            yield self.invert_batch(batch)
