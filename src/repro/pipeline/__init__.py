"""The Figure-3 experiment pipeline: invert → buckets → disks → exercise."""

from .artifacts import ArtifactCache
from .compute_buckets import (
    BucketStageResult,
    ComputeBucketsProcess,
    LongListTrace,
    LongListUpdate,
)
from .compute_disks import ComputeDisksProcess, DiskStageConfig, DiskStageResult
from .content import build_content_index
from .exercise import ExerciseConfig, ExerciseDisksProcess, ExerciseOutcome
from .experiment import Experiment, ExperimentConfig, PolicyRun, default_scale
from .invert import InvertIndexProcess
from .profiling import HitMissCounters, StageTimings
from .rebuild import PeriodicRebuildBaseline, RebuildResult
from .sharding import (
    ShardedExperiment,
    ShardedPolicyReport,
    ShardRunMetrics,
    split_update,
    split_updates,
)
from .stats import CorpusStats, corpus_stats
from .sweep import PolicySweep, SweepPolicyReport, SweepReport

__all__ = [
    "ArtifactCache",
    "BucketStageResult",
    "ComputeBucketsProcess",
    "ComputeDisksProcess",
    "CorpusStats",
    "DiskStageConfig",
    "DiskStageResult",
    "ExerciseConfig",
    "ExerciseDisksProcess",
    "ExerciseOutcome",
    "Experiment",
    "ExperimentConfig",
    "HitMissCounters",
    "InvertIndexProcess",
    "LongListTrace",
    "LongListUpdate",
    "PeriodicRebuildBaseline",
    "PolicyRun",
    "PolicySweep",
    "RebuildResult",
    "ShardRunMetrics",
    "ShardedExperiment",
    "ShardedPolicyReport",
    "StageTimings",
    "SweepPolicyReport",
    "SweepReport",
    "build_content_index",
    "corpus_stats",
    "default_scale",
    "split_update",
    "split_updates",
]
