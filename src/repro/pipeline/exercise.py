"""ExerciseDisks stage wrapper: I/O trace → wall-clock timings (§4.5).

Thin orchestration over :class:`~repro.storage.exerciser.DiskExerciser`:
runs a policy's trace on the *physical* disk profile and classifies the
outcome.  A trace whose addresses exceed the physical capacity is reported
infeasible — the paper's fate for ``fill 0``: "our disks were not large
enough to store the long lists for this policy due to gross
underutilization of disk space."
"""

from __future__ import annotations

from dataclasses import dataclass

from ..storage.disk import DiskFullError
from ..storage.exerciser import DiskExerciser, ExerciseResult
from ..storage.faults import FaultPlan
from ..storage.iotrace import IOTrace
from ..storage.profiles import SEAGATE_SCSI_1994, DiskProfile


@dataclass(frozen=True)
class ExerciseConfig:
    """Physical execution parameters (paper Table 4: Disks, BufferBlock).

    A ``fault_plan`` injects transient I/O failures into the exercised
    disks; each failed request is retried up to ``max_retries`` times with
    linear backoff (``retry_backoff_s``, ``2×``, ``3×``, ...) charged to
    the failing disk's stream time.
    """

    profile: DiskProfile | None = None
    ndisks: int = 4
    buffer_blocks: int = 256
    fault_plan: FaultPlan | None = None
    max_retries: int = 4
    retry_backoff_s: float = 0.002


@dataclass
class ExerciseOutcome:
    """Result of exercising one policy's trace."""

    feasible: bool
    result: ExerciseResult | None = None
    reason: str = ""

    @property
    def total_s(self) -> float:
        if not self.feasible or self.result is None:
            raise RuntimeError(f"policy was infeasible: {self.reason}")
        return self.result.total_s


class ExerciseDisksProcess:
    """Runs traces on the physical disk model."""

    def __init__(self, config: ExerciseConfig | None = None) -> None:
        self.config = config or ExerciseConfig()

    def run(self, trace: IOTrace) -> ExerciseOutcome:
        profile = self.config.profile or SEAGATE_SCSI_1994
        exerciser = DiskExerciser(
            profile,
            self.config.ndisks,
            self.config.buffer_blocks,
            fault_plan=self.config.fault_plan,
            max_retries=self.config.max_retries,
            retry_backoff_s=self.config.retry_backoff_s,
        )
        try:
            result = exerciser.run(trace)
        except DiskFullError as exc:
            return ExerciseOutcome(feasible=False, reason=str(exc))
        return ExerciseOutcome(feasible=True, result=result)
