"""Content-addressed on-disk cache for policy-independent stage artifacts.

The paper's staged pipeline exists so that expensive, policy-independent
work — generating the News workload and running ComputeBuckets — is done
*once* and its output replayed against every policy.  The in-process
:class:`~repro.pipeline.experiment.Experiment` already memoizes those
stages for one Python process; this module extends the economy across
processes and invocations, the way the paper's own trace *files* did.

Artifacts are keyed by a stable fingerprint of the producing configuration
plus a cache-format version, so any config change is a cache miss and a
format change invalidates everything at once.  Two artifact kinds exist:

* ``updates`` — the generated batch updates, stored in the paper's
  Figure-5 integer text format plus per-batch document counts;
* ``buckets`` — the ComputeBuckets output: the long-list trace (Figure-5
  text), the Figure-7 category tallies, the final bucket contents, and
  any Figure-1 animation histories.

Artifacts are plain JSON (never pickle), written with atomic renames so
concurrent workers can share one cache directory without torn files, and
validated on load — fingerprint, SHA-256 payload checksum, and structural
invariants — so a corrupted artifact is treated as a miss and regenerated,
never trusted blindly.

The cache is **off by default**; set ``REPRO_CACHE_DIR`` (or pass an
:class:`ArtifactCache` explicitly) to enable it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import os
import pathlib
import secrets
from typing import Any, Mapping

from ..core.buckets import BucketManager, BucketSample
from ..core.postings import CountPostings
from ..text.batchupdate import BatchUpdate, read_updates, write_updates
from ..workload.synthetic import SyntheticNewsConfig
from .compute_buckets import BucketStageResult, LongListTrace

#: Bump when the artifact layout or the meaning of a fingerprinted field
#: changes; every existing artifact becomes a miss.
CACHE_FORMAT = 1

ENV_VAR = "REPRO_CACHE_DIR"


# -- fingerprints --------------------------------------------------------------


def _fingerprint(fields: Mapping[str, Any]) -> str:
    """SHA-256 over a canonical JSON encoding of ``fields``."""
    canonical = json.dumps(
        dict(fields), sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:32]


def updates_fingerprint(workload: SyntheticNewsConfig) -> str:
    """Cache key of the generated batch updates (workload config only)."""
    fields = dataclasses.asdict(workload)
    fields["__format__"] = CACHE_FORMAT
    fields["__kind__"] = "updates"
    return _fingerprint(fields)


def bucket_fingerprint(config) -> str:
    """Cache key of the ComputeBuckets output.

    Only the fields that influence the bucket stage participate: the
    workload plus the bucket geometry and the watch list.  Disk-side
    parameters (policies, allocator, profile) deliberately do not — the
    whole point of the staged pipeline is that they cannot change this
    stage's output.
    """
    fields: dict[str, Any] = dataclasses.asdict(config.workload)
    fields["nbuckets"] = config.nbuckets
    fields["bucket_size"] = config.bucket_size
    fields["watch_buckets"] = list(config.watch_buckets)
    fields["__format__"] = CACHE_FORMAT
    fields["__kind__"] = "buckets"
    return _fingerprint(fields)


def _payload_sha(payload: Mapping[str, Any]) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
            "utf-8"
        )
    ).hexdigest()


# -- cached bucket stage -------------------------------------------------------


class CachedBucketStage:
    """A :class:`BucketStageResult` reloaded from the artifact cache.

    Duck-typed rather than subclassed: the trace and categories (what the
    sweep and Figure 7 need) are materialized eagerly; the bucket manager —
    only consulted by a few extension benches — is rebuilt lazily from the
    stored bucket contents on first access.
    """

    def __init__(
        self,
        trace: LongListTrace,
        categories,
        manager_payload: Mapping[str, Any],
        animations: dict[int, list[BucketSample]],
    ) -> None:
        self.trace = trace
        self.categories = categories
        self.animations = animations
        self.growth_events: list = []
        self._manager_payload = manager_payload
        self._manager: BucketManager | None = None

    @property
    def manager(self) -> BucketManager:
        if self._manager is None:
            payload = self._manager_payload
            manager = BucketManager(
                int(payload["nbuckets"]), int(payload["bucket_size"])
            )
            for bucket_id, lists in payload["buckets"]:
                bucket = manager.buckets[int(bucket_id)]
                for word, count in lists:
                    bucket.lists[int(word)] = CountPostings(int(count))
                    bucket.npostings += int(count)
            manager._step = int(payload["step"])
            for bucket_id, samples in self.animations.items():
                manager._watched[bucket_id] = samples
            self._manager = manager
        return self._manager

    @property
    def category_fraction_series(self):
        """(new, bucket, long) fraction series — mirrors the live result."""
        return BucketStageResult.category_fraction_series.fget(self)  # type: ignore[attr-defined]


# -- the cache -----------------------------------------------------------------


class ArtifactCache:
    """A shared, concurrency-safe directory of stage artifacts."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    @classmethod
    def from_env(cls, environ: Mapping[str, str] | None = None):
        """The cache named by ``REPRO_CACHE_DIR``, or None (cache off)."""
        env = os.environ if environ is None else environ
        directory = env.get(ENV_VAR, "").strip()
        return cls(directory) if directory else None

    # -- low-level document I/O -------------------------------------------

    def _path(self, kind: str, fingerprint: str) -> pathlib.Path:
        return self.root / f"{kind}-{fingerprint}.json"

    def _write_atomic(self, path: pathlib.Path, document: dict) -> None:
        """Publish a document with write-to-temp + atomic rename.

        Concurrent writers race benignly: every temp file is unique, and
        ``os.replace`` guarantees readers only ever see a complete file.
        """
        tmp = path.with_name(
            f".{path.name}.{os.getpid()}.{secrets.token_hex(4)}.tmp"
        )
        try:
            with open(tmp, "w", encoding="utf-8") as fp:
                json.dump(document, fp, separators=(",", ":"))
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink(missing_ok=True)
        self.stores += 1

    def _read_payload(self, kind: str, fingerprint: str) -> dict | None:
        """Load and verify one artifact; any defect is a miss, not an error."""
        path = self._path(kind, fingerprint)
        try:
            with open(path, encoding="utf-8") as fp:
                document = json.load(fp)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        try:
            payload = document["payload"]
            valid = (
                document.get("format") == CACHE_FORMAT
                and document.get("kind") == kind
                and document.get("fingerprint") == fingerprint
                and document.get("sha256") == _payload_sha(payload)
            )
        except (KeyError, TypeError):
            valid = False
        if not valid:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def _store_payload(
        self, kind: str, fingerprint: str, payload: dict
    ) -> None:
        self._write_atomic(
            self._path(kind, fingerprint),
            {
                "format": CACHE_FORMAT,
                "kind": kind,
                "fingerprint": fingerprint,
                "sha256": _payload_sha(payload),
                "payload": payload,
            },
        )

    # -- batch updates -----------------------------------------------------

    def store_updates(
        self, workload: SyntheticNewsConfig, updates: list[BatchUpdate]
    ) -> None:
        buffer = io.StringIO()
        write_updates(updates, buffer)
        self._store_payload(
            "updates",
            updates_fingerprint(workload),
            {
                "text": buffer.getvalue(),
                "ndocs": [update.ndocs for update in updates],
            },
        )

    def load_updates(
        self, workload: SyntheticNewsConfig
    ) -> list[BatchUpdate] | None:
        payload = self._read_payload(
            "updates", updates_fingerprint(workload)
        )
        if payload is None:
            return None
        try:
            parsed = list(read_updates(io.StringIO(payload["text"])))
            ndocs = payload["ndocs"]
            if len(parsed) != workload.days or len(ndocs) != len(parsed):
                raise ValueError("batch count does not match the workload")
            return [
                BatchUpdate(day=u.day, pairs=u.pairs, ndocs=int(n))
                for u, n in zip(parsed, ndocs)
            ]
        except (KeyError, TypeError, ValueError):
            # Structurally corrupt payload: regenerate rather than trust it.
            self.hits -= 1
            self.misses += 1
            return None

    # -- bucket stage ------------------------------------------------------

    def store_bucket_stage(self, config, result: BucketStageResult) -> None:
        """Persist a ComputeBuckets output (evaluation mode only).

        Results carrying non-count payloads or growth events have no JSON
        form here and are silently skipped — the in-process memoization
        still covers them.
        """
        if result.growth_events:
            return
        manager = result.manager
        buckets_payload = []
        for bucket_id, bucket in enumerate(manager.buckets):
            if not bucket.lists:
                continue
            lists = []
            for word, payload in bucket.lists.items():
                if not isinstance(payload, CountPostings):
                    return
                lists.append([word, payload.count])
            buckets_payload.append([bucket_id, lists])
        buffer = io.StringIO()
        result.trace.write_text(buffer)
        self._store_payload(
            "buckets",
            bucket_fingerprint(config),
            {
                "trace": buffer.getvalue(),
                "categories": [
                    [c.new, c.bucket, c.long] for c in result.categories
                ],
                "manager": {
                    "nbuckets": manager.nbuckets,
                    "bucket_size": manager.bucket_size,
                    "step": manager._step,
                    "buckets": buckets_payload,
                },
                "animations": [
                    [
                        bucket_id,
                        [[s.step, s.nwords, s.npostings] for s in samples],
                    ]
                    for bucket_id, samples in sorted(
                        result.animations.items()
                    )
                ],
            },
        )

    def load_bucket_stage(self, config) -> CachedBucketStage | None:
        from ..analysis.metrics import CategoryCounts

        payload = self._read_payload("buckets", bucket_fingerprint(config))
        if payload is None:
            return None
        try:
            trace = LongListTrace.read_text(io.StringIO(payload["trace"]))
            categories = [
                CategoryCounts(new=int(n), bucket=int(b), long=int(lo))
                for n, b, lo in payload["categories"]
            ]
            if trace.nbatches != len(categories) or trace.nbatches != (
                config.workload.days
            ):
                raise ValueError("trace/category batch counts disagree")
            animations = {
                int(bucket_id): [
                    BucketSample(int(step), int(nwords), int(npostings))
                    for step, nwords, npostings in samples
                ]
                for bucket_id, samples in payload["animations"]
            }
            return CachedBucketStage(
                trace, categories, payload["manager"], animations
            )
        except (KeyError, TypeError, ValueError):
            self.hits -= 1
            self.misses += 1
            return None
