"""Corpus statistics: the paper's Table 1.

Table 1 reports, for the News abstracts database: total words (vocabulary),
total postings, documents, average postings per word, the number of
frequent vs infrequent words, and the share of postings each group carries
(frequent = words ranking in a small top percentile by frequency; the
paper's prose example uses the top fraction of words carrying the vast
majority of postings).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..analysis.reporting import format_table
from ..text.batchupdate import BatchUpdate


@dataclass(frozen=True)
class CorpusStats:
    """Whole-corpus statistics in the shape of the paper's Table 1."""

    total_words: int
    total_postings: int
    documents: int
    avg_postings_per_word: float
    frequent_fraction: float
    frequent_words: int
    infrequent_words: int
    frequent_postings_share: float
    infrequent_postings_share: float

    def as_table(self) -> str:
        """Render in the paper's Table-1 layout."""
        rows = [
            ("Total Words", self.total_words),
            ("Total Postings", self.total_postings),
            ("Documents", self.documents),
            ("Average Postings per Word", round(self.avg_postings_per_word, 1)),
            (
                f"Frequent Words (top {self.frequent_fraction:.1%})",
                self.frequent_words,
            ),
            ("Infrequent Words", self.infrequent_words),
            (
                "Postings for Frequent Words",
                f"{self.frequent_postings_share:.1%}",
            ),
            (
                "Postings for Infrequent Words",
                f"{self.infrequent_postings_share:.1%}",
            ),
        ]
        return format_table(
            ("Statistic", "Value"), rows, title="Text Document Database: News"
        )


def corpus_stats(
    updates: Iterable[BatchUpdate], frequent_fraction: float = 0.002
) -> CorpusStats:
    """Aggregate batch updates into Table-1 statistics.

    ``frequent_fraction`` is the top-percentile cutoff defining "frequent";
    the paper's table uses a small top fraction of the frequency ranking.
    """
    if not 0.0 < frequent_fraction < 1.0:
        raise ValueError("frequent_fraction must be in (0, 1)")
    counts: dict[int, int] = {}
    ndocs = 0
    for update in updates:
        ndocs += update.ndocs
        for word, count in update:
            counts[word] = counts.get(word, 0) + count
    if not counts:
        raise ValueError("no words in corpus")
    values = np.sort(np.fromiter(counts.values(), dtype=np.int64))[::-1]
    total_words = int(values.size)
    total_postings = int(values.sum())
    nfrequent = max(1, int(round(frequent_fraction * total_words)))
    frequent_postings = int(values[:nfrequent].sum())
    return CorpusStats(
        total_words=total_words,
        total_postings=total_postings,
        documents=ndocs,
        avg_postings_per_word=total_postings / total_words,
        frequent_fraction=frequent_fraction,
        frequent_words=nfrequent,
        infrequent_words=total_words - nfrequent,
        frequent_postings_share=frequent_postings / total_postings,
        infrequent_postings_share=(
            (total_postings - frequent_postings) / total_postings
        ),
    )
