"""ComputeBuckets process: batch updates → long-list update trace (§4.3).

"The compute buckets process takes the sequence of batch updates as inputs,
runs the bucket algorithm described in Section 2 on the sequence (we use a
modular arithmetic hash function for h(w)), and generates a single trace
file of updates to long lists.  Each update in the file indicates the word
involved and the number of postings to be added to the corresponding long
list on disk.  (Note that the postings for an update can come from the new
postings in a batch or from previous postings in a bucket.)"

This stage is **policy-independent**: the experiment runner executes it
once and replays its output against every long-list policy — the exact
economy the paper's staged design buys.

Alongside the trace, the stage records the Figure-7 word-category counts
per update and (optionally) the Figure-1 bucket animation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, TextIO

from ..analysis.metrics import CategoryCounts
from ..core.buckets import BucketManager, BucketSample
from ..core.postings import CountPostings
from ..core.rebalance import BucketGrower, GrowthEvent, GrowthPolicy
from ..text.batchupdate import BatchUpdate


@dataclass(frozen=True)
class LongListUpdate:
    """One long-list update event: append ``npostings`` to ``word``."""

    word: int
    npostings: int

    def __post_init__(self) -> None:
        if self.word <= 0 or self.npostings <= 0:
            raise ValueError(f"malformed long-list update: {self!r}")


class LongListTrace:
    """The single trace file of long-list updates, batch by batch.

    Text format is the paper's Figure 5: ``<word> <npostings>`` lines with
    ``0 0`` terminating each batch.
    """

    END_MARKER = "0 0"

    def __init__(self) -> None:
        self.batches: list[list[LongListUpdate]] = []

    @property
    def nbatches(self) -> int:
        return len(self.batches)

    @property
    def nupdates(self) -> int:
        return sum(len(b) for b in self.batches)

    @property
    def npostings(self) -> int:
        return sum(u.npostings for b in self.batches for u in b)

    def write_text(self, fp: TextIO) -> None:
        for batch in self.batches:
            for update in batch:
                fp.write(f"{update.word} {update.npostings}\n")
            fp.write(self.END_MARKER + "\n")

    @classmethod
    def read_text(cls, fp: TextIO) -> "LongListTrace":
        trace = cls()
        current: list[LongListUpdate] = []
        for raw in fp:
            line = raw.strip()
            if not line:
                continue
            word_s, count_s = line.split()
            word, count = int(word_s), int(count_s)
            if (word, count) == (0, 0):
                trace.batches.append(current)
                current = []
            else:
                current.append(LongListUpdate(word, count))
        if current:
            trace.batches.append(current)
        return trace


@dataclass
class BucketStageResult:
    """Everything the ComputeBuckets stage produces."""

    trace: LongListTrace
    categories: list[CategoryCounts]
    manager: BucketManager
    #: Figure-1 samples for watched buckets (bucket id → history).
    animations: dict[int, list[BucketSample]] = field(default_factory=dict)
    #: Bucket growth events (when a grower is attached, paper §7).
    growth_events: list[GrowthEvent] = field(default_factory=list)

    @property
    def category_fraction_series(
        self,
    ) -> tuple[list[float], list[float], list[float]]:
        """(new, bucket, long) fraction series across updates (Figure 7)."""
        new, bucket, long_ = [], [], []
        for counts in self.categories:
            n, b, lo = counts.fractions()
            new.append(n)
            bucket.append(b)
            long_.append(lo)
        return new, bucket, long_


class ComputeBucketsProcess:
    """Runs the §2 bucket algorithm over a sequence of batch updates."""

    def __init__(
        self,
        nbuckets: int,
        bucket_size: int,
        watch_buckets: Iterable[int] = (),
        growth: GrowthPolicy | None = None,
    ) -> None:
        self.manager = BucketManager(nbuckets, bucket_size)
        self.grower = BucketGrower(growth) if growth is not None else None
        self._long_words: set[int] = set()
        for bucket_id in watch_buckets:
            self.manager.watch(bucket_id)

    def process_update(
        self, update: BatchUpdate
    ) -> tuple[list[LongListUpdate], CategoryCounts]:
        """Apply one batch update; return its long-list events and the
        Figure-7 category tallies."""
        events: list[LongListUpdate] = []
        counts = CategoryCounts()
        for word, npostings in update:
            if word in self._long_words:
                counts.long += 1
                events.append(LongListUpdate(word, npostings))
                continue
            if self.manager.contains(word):
                counts.bucket += 1
            else:
                counts.new += 1
            migrations = self.manager.insert(word, CountPostings(npostings))
            for mword, mpayload in migrations:
                self._long_words.add(mword)
                events.append(LongListUpdate(mword, len(mpayload)))
        return events, counts

    def run(self, updates: Iterable[BatchUpdate]) -> BucketStageResult:
        """Process all batch updates and collect the stage outputs."""
        trace = LongListTrace()
        categories: list[CategoryCounts] = []
        for batch_no, update in enumerate(updates):
            events, counts = self.process_update(update)
            trace.batches.append(events)
            categories.append(counts)
            if self.grower is not None:
                self.grower.maybe_grow(self.manager, batch=batch_no)
        animations = {
            bucket_id: self.manager.history(bucket_id)
            for bucket_id in self.manager._watched
        }
        return BucketStageResult(
            trace=trace,
            categories=categories,
            manager=self.manager,
            animations=animations,
            growth_events=(
                list(self.grower.events) if self.grower is not None else []
            ),
        )
