"""Parallel policy-sweep engine over the Table-2 policy space.

Every figure and table of the paper's evaluation is a sweep: one workload,
one long-list trace, many policies.  The trace is policy-*independent*
(the staged Figure-3 pipeline computes it once), so the policy-dependent
stages — ComputeDisks replay and ExerciseDisks — are embarrassingly
parallel.  :class:`PolicySweep` fans them out over a
``ProcessPoolExecutor``:

* results come back in deterministic input-policy order and are byte-for-
  byte identical to the serial path (asserted in tests);
* ``jobs=1``, a single-CPU host, or an unavailable pool degrade gracefully
  to an in-process serial loop over the very same per-policy function;
* per-policy, per-stage wall-clock and trace-size metrics are recorded and
  dumped as machine-readable JSON (:meth:`SweepReport.write_json`);
* fault injection composes: a configured
  :class:`~repro.storage.faults.FaultPlan` is re-derived per policy with a
  deterministic seed (identical under any job count) and installed in the
  executing process, so named crash points and transient faults keep
  working under the pooled runner — they are never silently dropped.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from ..core.policy import Policy
from ..storage import faults
from ..storage.faults import FaultPlan
from .compute_buckets import LongListTrace
from .compute_disks import ComputeDisksProcess, DiskStageConfig
from .exercise import ExerciseConfig, ExerciseDisksProcess
from .experiment import Experiment, PolicyRun
from .profiling import StageTimings, timed


def derive_fault_plan(base: FaultPlan | None, index: int) -> FaultPlan | None:
    """A fresh, deterministically re-seeded plan for policy ``index``.

    A :class:`FaultPlan` is stateful (trigger counters, RNG); sharing one
    instance across a sweep would make each policy's faults depend on the
    order the previous policies ran in — and make parallel results diverge
    from serial ones.  Instead every policy gets its own plan with a seed
    derived from ``(base.seed, index)``, identical under any job count.
    """
    if base is None:
        return None
    return FaultPlan(
        seed=(base.seed * 0x9E3779B1 + index + 1) & 0x7FFFFFFF,
        crash_at=base.crash_at,
        crash_at_hit=base.crash_at_hit,
        crash_on_read=base.crash_on_read,
        crash_on_write=base.crash_on_write,
        crash_on_alloc=base.crash_on_alloc,
        crash_on_free=base.crash_on_free,
        torn_writes=base.torn_writes,
        transient_rate=base.transient_rate,
        max_transient_per_op=base.max_transient_per_op,
    )


# -- per-policy work unit ------------------------------------------------------
#
# The same function body serves both execution modes: the serial loop calls
# it directly; pool workers receive the shared trace once via the pool
# initializer and call it per submitted policy.

_WORKER_TRACE: LongListTrace | None = None


def _pool_init(trace: LongListTrace) -> None:
    global _WORKER_TRACE
    _WORKER_TRACE = trace


def _run_one_policy(
    trace: LongListTrace,
    disk_config: DiskStageConfig,
    exercise_config: ExerciseConfig | None,
    fault_plan: FaultPlan | None,
) -> PolicyRun:
    """ComputeDisks replay (+ optional ExerciseDisks) for one policy."""
    with faults.injected(fault_plan) if fault_plan is not None else (
        _null_context()
    ):
        with timed() as disks_span:
            disks = ComputeDisksProcess(disk_config).run(trace)
        outcome = None
        exercise_seconds = 0.0
        if exercise_config is not None:
            with timed() as exercise_span:
                outcome = ExerciseDisksProcess(exercise_config).run(
                    disks.trace
                )
            exercise_seconds = exercise_span[0]
    return PolicyRun(
        policy=disk_config.policy,
        disks=disks,
        exercise=outcome,
        disks_seconds=disks_span[0],
        exercise_seconds=exercise_seconds,
    )


class _null_context:
    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return None


def _pool_task(
    index: int,
    disk_config: DiskStageConfig,
    exercise_config: ExerciseConfig | None,
    fault_plan: FaultPlan | None,
) -> tuple[int, PolicyRun]:
    assert _WORKER_TRACE is not None, "pool initializer did not run"
    return index, _run_one_policy(
        _WORKER_TRACE, disk_config, exercise_config, fault_plan
    )


# -- sweep results -------------------------------------------------------------


@dataclass
class SweepPolicyReport:
    """One policy's outcome plus its profiling metrics."""

    policy: Policy
    run: PolicyRun

    @property
    def name(self) -> str:
        return self.policy.name

    def as_dict(self) -> dict:
        """JSON-ready summary (the per-policy rows of BENCH_sweep.json)."""
        disks = self.run.disks
        totals = disks.manager.directory.totals()
        row = {
            "policy": self.name,
            "disks_seconds": round(self.run.disks_seconds, 6),
            "exercise_seconds": round(self.run.exercise_seconds, 6),
            "trace_ops": disks.trace.nops,
            "trace_blocks": disks.trace.count_blocks(),
            "io_ops": disks.series.io_ops[-1] if disks.series.io_ops else 0,
            "utilization": round(totals.utilization(disks.manager.block_postings), 6),
            "avg_reads_per_list": round(totals.avg_reads_per_list, 6),
            "in_place_updates": disks.counters.in_place_updates,
        }
        if self.run.exercise is not None:
            row["feasible"] = self.run.exercise.feasible
            if self.run.exercise.feasible:
                row["build_seconds_simulated"] = round(
                    self.run.exercise.total_s, 6
                )
            else:
                row["infeasible_reason"] = self.run.exercise.reason
        return row


@dataclass
class SweepReport:
    """Everything one :class:`PolicySweep` run produced."""

    reports: list[SweepPolicyReport]
    jobs_requested: int
    jobs_effective: int
    mode: str  # "serial" | "process-pool"
    shared_seconds: dict[str, float]
    cache_events: dict[str, str]
    total_seconds: float
    warnings: list[str] = field(default_factory=list)
    scale: float = 1.0
    days: int = 0

    def by_name(self) -> dict[str, SweepPolicyReport]:
        return {r.name: r for r in self.reports}

    @property
    def policy_seconds(self) -> float:
        return sum(
            r.run.disks_seconds + r.run.exercise_seconds for r in self.reports
        )

    def as_dict(self) -> dict:
        """The BENCH_sweep.json document."""
        return {
            "schema": "repro-sweep/1",
            "workload": {"days": self.days, "scale": self.scale},
            "jobs": {
                "requested": self.jobs_requested,
                "effective": self.jobs_effective,
                "mode": self.mode,
            },
            "cache_events": dict(self.cache_events),
            "stages": {
                stage: round(seconds, 6)
                for stage, seconds in sorted(self.shared_seconds.items())
            },
            "policies": [r.as_dict() for r in self.reports],
            "policy_seconds": round(self.policy_seconds, 6),
            "total_seconds": round(self.total_seconds, 6),
            "warnings": list(self.warnings),
        }

    def write_json(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fp:
            json.dump(self.as_dict(), fp, indent=2, sort_keys=False)
            fp.write("\n")


# -- the sweep runner ----------------------------------------------------------


class PolicySweep:
    """Fan the policy-dependent stages out over a process pool.

    ``jobs`` is the requested fan-out; the effective worker count is
    clamped to the policy count and (by default) the machine's CPU count —
    on a single-CPU host a pool only adds overhead, so the sweep degrades
    to the serial loop.  Pass ``clamp_to_cpus=False`` to force a real pool
    regardless (the equivalence tests do, so the pooled path is exercised
    everywhere).
    """

    def __init__(
        self,
        experiment: Experiment,
        policies: list[Policy],
        jobs: int = 1,
        exercise: bool = False,
        exercise_config: ExerciseConfig | None = None,
        clamp_to_cpus: bool = True,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if len(set(policies)) != len(policies):
            raise ValueError("duplicate policies in sweep")
        self.experiment = experiment
        self.policies = list(policies)
        self.jobs = jobs
        self.exercise = exercise
        self.exercise_config = exercise_config
        self.clamp_to_cpus = clamp_to_cpus

    # -- plumbing ----------------------------------------------------------

    def _effective_jobs(self) -> tuple[int, list[str]]:
        warnings: list[str] = []
        jobs = min(self.jobs, len(self.policies))
        if self.clamp_to_cpus:
            cpus = os.cpu_count() or 1
            if jobs > cpus:
                warnings.append(
                    f"requested jobs={self.jobs} clamped to {cpus} CPU(s)"
                )
                jobs = cpus
        return max(1, jobs), warnings

    def _exercise_config_for(self, plan: FaultPlan | None):
        if not self.exercise:
            return None
        if self.exercise_config is not None:
            if plan is not None:
                return dataclasses.replace(
                    self.exercise_config, fault_plan=plan
                )
            return self.exercise_config
        return self.experiment.exercise_config(fault_plan=plan)

    def _tasks(self):
        base_plan = self.experiment.config.fault_plan
        for index, policy in enumerate(self.policies):
            plan = derive_fault_plan(base_plan, index)
            yield (
                index,
                self.experiment.disk_stage_config(policy),
                self._exercise_config_for(plan),
                plan,
            )

    # -- execution ---------------------------------------------------------

    def run(self) -> SweepReport:
        """Run the sweep; results arrive in input-policy order."""
        experiment = self.experiment
        with timed() as total_span:
            # Policy-independent stages run (or load from the artifact
            # cache) in the parent, exactly once — the paper's economy.
            trace = experiment.bucket_stage().trace
            jobs, warnings = self._effective_jobs()
            runs: list[PolicyRun | None] = [None] * len(self.policies)
            mode = "serial"
            if jobs > 1:
                try:
                    mode = "process-pool"
                    self._run_pool(trace, jobs, runs)
                except (OSError, ImportError) as exc:
                    warnings.append(
                        f"process pool unavailable ({exc}); ran serially"
                    )
                    mode = "serial"
                    runs = [None] * len(self.policies)
            if mode == "serial":
                for task in self._tasks():
                    index, disk_config, exercise_config, plan = task
                    runs[index] = _run_one_policy(
                        trace, disk_config, exercise_config, plan
                    )
            reports = []
            for policy, run in zip(self.policies, runs):
                assert run is not None
                self._adopt(policy, run)
                reports.append(SweepPolicyReport(policy=policy, run=run))
        return SweepReport(
            reports=reports,
            jobs_requested=self.jobs,
            jobs_effective=jobs,
            mode=mode,
            shared_seconds=dict(experiment.timings.seconds),
            cache_events=dict(experiment.cache_events),
            total_seconds=total_span[0],
            warnings=warnings,
            scale=experiment.config.workload.scale,
            days=experiment.config.workload.days,
        )

    def _run_pool(
        self, trace: LongListTrace, jobs: int, runs: list
    ) -> None:
        # Prefer fork where available: workers inherit the parent's
        # imports, and the shared trace ships once per worker via the
        # initializer instead of once per task.
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            context = multiprocessing.get_context()
        with ProcessPoolExecutor(
            max_workers=jobs,
            mp_context=context,
            initializer=_pool_init,
            initargs=(trace,),
        ) as pool:
            futures = [
                pool.submit(_pool_task, index, disk_config, exercise_config, plan)
                for index, disk_config, exercise_config, plan in self._tasks()
            ]
            for future in futures:
                index, run = future.result()
                runs[index] = run

    def _adopt(self, policy: Policy, run: PolicyRun) -> None:
        """Land a finished run in the experiment's per-policy cache."""
        experiment = self.experiment
        experiment.timings.add("disks", run.disks_seconds)
        if self.exercise:
            experiment.timings.add("exercise", run.exercise_seconds)
        # Only standard-config exercise outcomes are interchangeable with
        # Experiment.run_policy's; sweeps over a custom exercise config
        # keep their results to themselves.
        if self.exercise_config is None:
            experiment._policy_runs.setdefault((policy, self.exercise), run)
            if self.exercise:
                experiment._policy_runs.setdefault(
                    (policy, False),
                    PolicyRun(
                        policy=policy,
                        disks=run.disks,
                        exercise=None,
                        disks_seconds=run.disks_seconds,
                    ),
                )
