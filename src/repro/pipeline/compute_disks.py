"""ComputeDisks process: long-list trace + policy → I/O trace (§4.4).

"The compute disks process takes as input the trace file of long list
updates and computes the sequence of I/O system calls required to implement
the policies described in Section 3.  In addition, the write operations for
saving the buckets and the directory are added at the end of each batch
update."

The stage replays the policy-independent long-list trace through a
:class:`~repro.core.longlists.LongListManager` configured with one policy,
records every I/O system call on an :class:`~repro.storage.IOTrace`, and
samples the per-update metric series (cumulative ops, utilization, reads
per list, in-place updates) that Figures 8–12 and Tables 5–6 are built of.

The disk array here uses a large *virtual* capacity: the paper's
ComputeDisks stage generated traces even for the ``fill 0`` policy whose
layout later proved too large for the physical disks; infeasibility is the
ExerciseDisks stage's verdict, not this one's.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.metrics import UpdateSeries
from ..core.flush import FlushManager
from ..core.longlists import LongListCounters, LongListManager
from ..core.policy import Policy
from ..core.postings import CountPostings
from ..storage.diskarray import DiskArray, DiskArrayConfig
from ..storage.iotrace import IOTrace
from ..storage.profiles import SEAGATE_SCSI_1994, DiskProfile
from .compute_buckets import LongListTrace


@dataclass(frozen=True)
class DiskStageConfig:
    """Parameters of the ComputeDisks stage (paper Table 4 slice)."""

    policy: Policy
    ndisks: int = 4
    block_postings: int = 64
    #: Blocks the bucket region occupies per flush (constant across a run).
    bucket_flush_blocks: int = 1024
    #: Virtual per-disk capacity for trace generation (16 GB at 4 KB).
    virtual_blocks: int = 4_194_304
    allocator: str = "first-fit"
    profile: DiskProfile | None = None


@dataclass
class DiskStageResult:
    """Everything the ComputeDisks stage produces for one policy."""

    policy: Policy
    trace: IOTrace
    series: UpdateSeries
    counters: LongListCounters
    manager: LongListManager

    @property
    def final_avg_reads(self) -> float:
        return self.manager.directory.avg_reads_per_list()

    @property
    def final_utilization(self) -> float:
        return self.manager.directory.utilization(
            self.manager.block_postings
        )


class ComputeDisksProcess:
    """Replays a long-list trace against one allocation policy."""

    def __init__(self, config: DiskStageConfig) -> None:
        self.config = config
        profile = config.profile or SEAGATE_SCSI_1994
        self.trace = IOTrace()
        self.array = DiskArray(
            DiskArrayConfig(
                ndisks=config.ndisks,
                profile=profile,
                allocator=config.allocator,
                nblocks_override=config.virtual_blocks,
            )
        )
        self.manager = LongListManager(
            config.policy,
            self.array,
            config.block_postings,
            trace=self.trace,
        )
        self.flusher = FlushManager(
            self.array, config.block_postings, trace=self.trace
        )

    def run(self, long_trace: LongListTrace) -> DiskStageResult:
        """Replay every batch of the long-list trace."""
        series = UpdateSeries()
        directory = self.manager.directory
        bp = self.config.block_postings
        for batch in long_trace.batches:
            for update in batch:
                self.manager.append(update.word, CountPostings(update.npostings))
            self.flusher.flush(self.config.bucket_flush_blocks, directory)
            self.manager.end_batch()
            self.trace.end_batch()
            # One fused directory traversal feeds every per-update metric;
            # sampling the properties individually re-walked all chunks
            # four times per batch and dominated the stage's profile.
            totals = directory.totals()
            series.io_ops.append(self.trace.nops)
            series.utilization.append(totals.utilization(bp))
            series.avg_reads.append(totals.avg_reads_per_list)
            series.in_place.append(self.manager.counters.in_place_updates)
            series.long_words.append(totals.nwords)
            series.long_blocks.append(totals.nblocks)
        return DiskStageResult(
            policy=self.config.policy,
            trace=self.trace,
            series=series,
            counters=self.manager.counters,
            manager=self.manager,
        )
