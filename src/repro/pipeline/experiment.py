"""The experiment runner: the full Figure-3 data flow, end to end.

``News → InvertIndex → ComputeBuckets → ComputeDisks → ExerciseDisks``

An :class:`Experiment` owns one workload and caches the policy-independent
stages (workload generation and the bucket stage run once; every policy
replays the same long-list trace) — the same decoupling the paper's design
is built around.  Each benchmark constructs an experiment at an appropriate
scale and asks for the policy runs it needs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from ..core.policy import Policy
from ..storage.faults import FaultPlan
from ..storage.profiles import SEAGATE_SCSI_1994, DiskProfile
from ..text.batchupdate import BatchUpdate
from ..workload.synthetic import SyntheticNews, SyntheticNewsConfig
from .artifacts import ArtifactCache
from .compute_buckets import BucketStageResult, ComputeBucketsProcess
from .compute_disks import ComputeDisksProcess, DiskStageConfig, DiskStageResult
from .exercise import ExerciseConfig, ExerciseDisksProcess, ExerciseOutcome
from .profiling import StageTimings, timed
from .stats import CorpusStats, corpus_stats


@dataclass(frozen=True)
class ExperimentConfig:
    """Base-case experimental parameters (paper Tables 4, reconstructed).

    The bucket sizing is calibrated so the buckets fill within the first
    ~10–20 updates of the default workload and then steadily overflow —
    the regime all of the paper's figures live in.
    """

    workload: SyntheticNewsConfig = field(default_factory=SyntheticNewsConfig)
    nbuckets: int = 256
    bucket_size: int = 1024
    block_postings: int = 64
    bucket_unit_bytes: int = 4
    block_size: int = 4096
    ndisks: int = 4
    virtual_blocks: int = 4_194_304
    allocator: str = "first-fit"
    profile: DiskProfile | None = None
    buffer_blocks: int = 256
    watch_buckets: tuple[int, ...] = ()
    #: Inject transient I/O faults into the ExerciseDisks stage; failed
    #: requests are retried with backoff (the ``--inject-faults`` knob).
    fault_plan: FaultPlan | None = None
    io_max_retries: int = 4
    io_retry_backoff_s: float = 0.002

    @property
    def bucket_flush_blocks(self) -> int:
        """Blocks one bucket-region flush writes (fixed-size region)."""
        total_bytes = self.nbuckets * self.bucket_size * self.bucket_unit_bytes
        return -(-total_bytes // self.block_size)

    def scaled(self, factor: float) -> "ExperimentConfig":
        """A config with the workload scaled by ``factor`` (extension X2)."""
        return replace(
            self, workload=replace(self.workload, scale=factor)
        )


@dataclass
class PolicyRun:
    """Joined outcome of ComputeDisks (+ optionally ExerciseDisks) for one
    policy."""

    policy: Policy
    disks: DiskStageResult
    exercise: ExerciseOutcome | None = None
    #: Wall-clock seconds of the two policy-dependent stages (profiling).
    disks_seconds: float = 0.0
    exercise_seconds: float = 0.0


def default_scale() -> float:
    """Workload scale factor for the benchmark suite.

    Controlled by ``REPRO_SCALE`` (default 1.0); the full paper-shaped run
    is ``1.0``, smaller values keep CI fast, larger values stress-test.
    """
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def default_jobs() -> int:
    """Worker processes for policy sweeps (``REPRO_JOBS``, default 1).

    With the default of 1 every sweep stays on the in-process serial path;
    setting it makes :meth:`Experiment.run_policies` and the figure/table
    regenerators fan policy-dependent stages out over a process pool.
    """
    return max(1, int(os.environ.get("REPRO_JOBS", "1")))


class Experiment:
    """One workload, many policies, with stage-level caching.

    In-process, every stage is memoized.  With an :class:`ArtifactCache`
    attached (explicitly, or via ``REPRO_CACHE_DIR``) the policy-independent
    stages are additionally persisted across processes and invocations.
    Stage wall-clock is recorded on :attr:`timings`; cache hits and misses
    on :attr:`cache_events`.
    """

    def __init__(
        self,
        config: ExperimentConfig | None = None,
        cache: ArtifactCache | None = None,
    ) -> None:
        self.config = config or ExperimentConfig()
        self.cache = cache if cache is not None else ArtifactCache.from_env()
        self.timings = StageTimings()
        self.cache_events: dict[str, str] = {}
        self._updates: list[BatchUpdate] | None = None
        self._bucket_result: BucketStageResult | None = None
        self._policy_runs: dict[tuple, PolicyRun] = {}

    # -- cached stages -------------------------------------------------------

    def updates(self) -> list[BatchUpdate]:
        """The workload's batch updates (generated once, cached on disk
        when an artifact cache is attached)."""
        if self._updates is None:
            with self.timings.stage("generate"):
                updates = None
                if self.cache is not None:
                    updates = self.cache.load_updates(self.config.workload)
                    self.cache_events["updates"] = (
                        "hit" if updates is not None else "miss"
                    )
                if updates is None:
                    news = SyntheticNews(self.config.workload)
                    updates = list(news.batches())
                    if self.cache is not None:
                        self.cache.store_updates(
                            self.config.workload, updates
                        )
                self._updates = updates
        return self._updates

    def stats(self, frequent_fraction: float = 0.002) -> CorpusStats:
        """Table-1 statistics of the workload."""
        return corpus_stats(self.updates(), frequent_fraction)

    def bucket_stage(self) -> BucketStageResult:
        """ComputeBuckets output (run once; shared by all policies).

        On an artifact-cache hit the batch updates are not regenerated at
        all — the trace and bucket stats replay straight from disk, the
        economy the paper's staged design is built around.
        """
        if self._bucket_result is None:
            with self.timings.stage("buckets"):
                result = None
                if self.cache is not None:
                    result = self.cache.load_bucket_stage(self.config)
                    self.cache_events["buckets"] = (
                        "hit" if result is not None else "miss"
                    )
                if result is None:
                    process = ComputeBucketsProcess(
                        self.config.nbuckets,
                        self.config.bucket_size,
                        watch_buckets=self.config.watch_buckets,
                    )
                    result = process.run(self.updates())
                    if self.cache is not None:
                        self.cache.store_bucket_stage(self.config, result)
                self._bucket_result = result
        return self._bucket_result

    # -- per-policy stages -----------------------------------------------------

    def run_policy(self, policy: Policy, exercise: bool = False) -> PolicyRun:
        """ComputeDisks (and optionally ExerciseDisks) for one policy."""
        key = (policy, exercise)
        cached = self._policy_runs.get(key)
        if cached is not None:
            return cached
        # Reuse the disk stage from a non-exercised run of the same policy.
        base = self._policy_runs.get((policy, False))
        disks_seconds = 0.0
        if base is not None:
            disks = base.disks
            disks_seconds = base.disks_seconds
        else:
            trace = self.bucket_stage().trace
            with self.timings.stage("disks"), timed() as span:
                process = ComputeDisksProcess(self.disk_stage_config(policy))
                disks = process.run(trace)
            disks_seconds = span[0]
        outcome = None
        exercise_seconds = 0.0
        if exercise:
            with self.timings.stage("exercise"), timed() as span:
                exerciser = ExerciseDisksProcess(self.exercise_config())
                outcome = exerciser.run(disks.trace)
            exercise_seconds = span[0]
        run = PolicyRun(
            policy=policy,
            disks=disks,
            exercise=outcome,
            disks_seconds=disks_seconds,
            exercise_seconds=exercise_seconds,
        )
        self._policy_runs[key] = run
        return run

    # -- stage-config plumbing (shared with the sweep runner) ---------------

    def disk_stage_config(self, policy: Policy) -> DiskStageConfig:
        """The ComputeDisks parameters this experiment implies for a policy."""
        return DiskStageConfig(
            policy=policy,
            ndisks=self.config.ndisks,
            block_postings=self.config.block_postings,
            bucket_flush_blocks=self.config.bucket_flush_blocks,
            virtual_blocks=self.config.virtual_blocks,
            allocator=self.config.allocator,
            profile=self.config.profile,
        )

    def exercise_config(
        self, fault_plan: FaultPlan | None = None
    ) -> ExerciseConfig:
        """The ExerciseDisks parameters (``fault_plan`` overrides config)."""
        return ExerciseConfig(
            profile=self.config.profile or SEAGATE_SCSI_1994,
            ndisks=self.config.ndisks,
            buffer_blocks=self.config.buffer_blocks,
            fault_plan=fault_plan or self.config.fault_plan,
            max_retries=self.config.io_max_retries,
            retry_backoff_s=self.config.io_retry_backoff_s,
        )

    def run_policies(
        self,
        policies: list[Policy],
        exercise: bool = False,
        jobs: int = 1,
    ) -> dict[str, PolicyRun]:
        """Run many policies; keyed by :attr:`Policy.name`.

        With ``jobs > 1`` the policy-dependent stages fan out over a
        process pool via :class:`~repro.pipeline.sweep.PolicySweep`
        (results are identical to the serial path and land in this
        experiment's per-policy cache either way).
        """
        if jobs > 1:
            from .sweep import PolicySweep

            PolicySweep(
                self, policies, jobs=jobs, exercise=exercise
            ).run()
            return {
                p.name: self._policy_runs[(p, exercise)] for p in policies
            }
        return {p.name: self.run_policy(p, exercise=exercise) for p in policies}
