"""The experiment runner: the full Figure-3 data flow, end to end.

``News → InvertIndex → ComputeBuckets → ComputeDisks → ExerciseDisks``

An :class:`Experiment` owns one workload and caches the policy-independent
stages (workload generation and the bucket stage run once; every policy
replays the same long-list trace) — the same decoupling the paper's design
is built around.  Each benchmark constructs an experiment at an appropriate
scale and asks for the policy runs it needs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from ..core.policy import Policy
from ..storage.faults import FaultPlan
from ..storage.profiles import SEAGATE_SCSI_1994, DiskProfile
from ..text.batchupdate import BatchUpdate
from ..workload.synthetic import SyntheticNews, SyntheticNewsConfig
from .compute_buckets import BucketStageResult, ComputeBucketsProcess
from .compute_disks import ComputeDisksProcess, DiskStageConfig, DiskStageResult
from .exercise import ExerciseConfig, ExerciseDisksProcess, ExerciseOutcome
from .stats import CorpusStats, corpus_stats


@dataclass(frozen=True)
class ExperimentConfig:
    """Base-case experimental parameters (paper Tables 4, reconstructed).

    The bucket sizing is calibrated so the buckets fill within the first
    ~10–20 updates of the default workload and then steadily overflow —
    the regime all of the paper's figures live in.
    """

    workload: SyntheticNewsConfig = field(default_factory=SyntheticNewsConfig)
    nbuckets: int = 256
    bucket_size: int = 1024
    block_postings: int = 64
    bucket_unit_bytes: int = 4
    block_size: int = 4096
    ndisks: int = 4
    virtual_blocks: int = 4_194_304
    allocator: str = "first-fit"
    profile: DiskProfile | None = None
    buffer_blocks: int = 256
    watch_buckets: tuple[int, ...] = ()
    #: Inject transient I/O faults into the ExerciseDisks stage; failed
    #: requests are retried with backoff (the ``--inject-faults`` knob).
    fault_plan: FaultPlan | None = None
    io_max_retries: int = 4
    io_retry_backoff_s: float = 0.002

    @property
    def bucket_flush_blocks(self) -> int:
        """Blocks one bucket-region flush writes (fixed-size region)."""
        total_bytes = self.nbuckets * self.bucket_size * self.bucket_unit_bytes
        return -(-total_bytes // self.block_size)

    def scaled(self, factor: float) -> "ExperimentConfig":
        """A config with the workload scaled by ``factor`` (extension X2)."""
        return replace(
            self, workload=replace(self.workload, scale=factor)
        )


@dataclass
class PolicyRun:
    """Joined outcome of ComputeDisks (+ optionally ExerciseDisks) for one
    policy."""

    policy: Policy
    disks: DiskStageResult
    exercise: ExerciseOutcome | None = None


def default_scale() -> float:
    """Workload scale factor for the benchmark suite.

    Controlled by ``REPRO_SCALE`` (default 1.0); the full paper-shaped run
    is ``1.0``, smaller values keep CI fast, larger values stress-test.
    """
    return float(os.environ.get("REPRO_SCALE", "1.0"))


class Experiment:
    """One workload, many policies, with stage-level caching."""

    def __init__(self, config: ExperimentConfig | None = None) -> None:
        self.config = config or ExperimentConfig()
        self._updates: list[BatchUpdate] | None = None
        self._bucket_result: BucketStageResult | None = None
        self._policy_runs: dict[tuple, PolicyRun] = {}

    # -- cached stages -------------------------------------------------------

    def updates(self) -> list[BatchUpdate]:
        """The workload's batch updates (generated once)."""
        if self._updates is None:
            news = SyntheticNews(self.config.workload)
            self._updates = list(news.batches())
        return self._updates

    def stats(self, frequent_fraction: float = 0.002) -> CorpusStats:
        """Table-1 statistics of the workload."""
        return corpus_stats(self.updates(), frequent_fraction)

    def bucket_stage(self) -> BucketStageResult:
        """ComputeBuckets output (run once; shared by all policies)."""
        if self._bucket_result is None:
            process = ComputeBucketsProcess(
                self.config.nbuckets,
                self.config.bucket_size,
                watch_buckets=self.config.watch_buckets,
            )
            self._bucket_result = process.run(self.updates())
        return self._bucket_result

    # -- per-policy stages -----------------------------------------------------

    def run_policy(self, policy: Policy, exercise: bool = False) -> PolicyRun:
        """ComputeDisks (and optionally ExerciseDisks) for one policy."""
        key = (policy, exercise)
        cached = self._policy_runs.get(key)
        if cached is not None:
            return cached
        # Reuse the disk stage from a non-exercised run of the same policy.
        base = self._policy_runs.get((policy, False))
        if base is not None:
            disks = base.disks
        else:
            process = ComputeDisksProcess(
                DiskStageConfig(
                    policy=policy,
                    ndisks=self.config.ndisks,
                    block_postings=self.config.block_postings,
                    bucket_flush_blocks=self.config.bucket_flush_blocks,
                    virtual_blocks=self.config.virtual_blocks,
                    allocator=self.config.allocator,
                    profile=self.config.profile,
                )
            )
            disks = process.run(self.bucket_stage().trace)
        outcome = None
        if exercise:
            exerciser = ExerciseDisksProcess(
                ExerciseConfig(
                    profile=self.config.profile or SEAGATE_SCSI_1994,
                    ndisks=self.config.ndisks,
                    buffer_blocks=self.config.buffer_blocks,
                    fault_plan=self.config.fault_plan,
                    max_retries=self.config.io_max_retries,
                    retry_backoff_s=self.config.io_retry_backoff_s,
                )
            )
            outcome = exerciser.run(disks.trace)
        run = PolicyRun(policy=policy, disks=disks, exercise=outcome)
        self._policy_runs[key] = run
        return run

    def run_policies(
        self, policies: list[Policy], exercise: bool = False
    ) -> dict[str, PolicyRun]:
        """Run many policies; keyed by :attr:`Policy.name`."""
        return {p.name: self.run_policy(p, exercise=exercise) for p in policies}
