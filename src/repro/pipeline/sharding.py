"""Document-partitioned variant of the evaluation pipeline.

``repro experiment --shards N`` models what sharding (see
:mod:`repro.core.sharded`) does to the paper's workload: the batch
updates are split as if every document had been routed to one of N
independent volumes by the stable doc-id hash, and each shard then runs
its own ComputeBuckets → ComputeDisks pipeline under the *same*
provisioning as a full volume — exactly how the serving layer builds a
:class:`~repro.core.sharded.ShardedTextIndex`, where every shard carries
a complete :class:`~repro.core.index.IndexConfig` of its own.

The split is at the update level.  A day's :class:`BatchUpdate` records,
per word, the number of documents containing it; document-hash routing
scatters those documents across shards, so each word's count splits into
per-shard counts that sum to the original.  The split is deterministic
in ``(day, word, router_seed)`` — repeated runs and any job count
produce identical shard workloads — and exact per "document slot" for
small counts, with large counts split evenly plus a hashed remainder
(what a multinomial concentrates to).

Reported metrics keep the paper's cost model meaningful per shard: each
shard's long-list I/O is its own Figure-9 series, the total is the work
the whole collection costs, and the *critical path* (the largest
per-shard total) is what a parallel flush would wait for.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.policy import Policy
from ..core.shard import shard_of
from ..text.batchupdate import BatchUpdate
from .compute_buckets import ComputeBucketsProcess
from .compute_disks import ComputeDisksProcess
from .experiment import Experiment

#: Counts up to this size are split slot-by-slot (exact document-hash
#: model); above it, evenly with a hashed remainder (indistinguishable
#: in aggregate, O(nshards) instead of O(count)).
_EXACT_SPLIT_MAX = 64

#: Resolution of the deterministic uniform draw feeding the skewed CDF.
_SKEW_GRAIN = 1 << 20


def _skew_cdf(nshards: int, doc_skew: float) -> list[float] | None:
    """Cumulative Zipf shard weights (shard 0 hottest), or None."""
    if doc_skew <= 0.0 or nshards <= 1:
        return None
    weights = [1.0 / (s + 1) ** doc_skew for s in range(nshards)]
    total = sum(weights)
    cdf, acc = [], 0.0
    for w in weights:
        acc += w / total
        cdf.append(acc)
    return cdf


def _slot(
    day: int,
    word: int,
    j: int,
    nshards: int,
    seed: int,
    skew_cdf: list[float] | None = None,
) -> int:
    """Shard owning the ``j``-th document slot of ``word`` on ``day``.

    Feeds a synthetic doc identity through the same stable mix the
    serving router uses, so the model inherits its distribution.  With
    ``skew_cdf`` the mix becomes a uniform draw mapped through the Zipf
    CDF instead — the pipeline's model of ``doc_skew`` placement, with
    the same determinism in ``(day, word, j, seed)``.
    """
    key = (day * 1_000_003 + word) * 97 + j
    if skew_cdf is None:
        return shard_of(key, nshards, seed)
    u = shard_of(key, _SKEW_GRAIN, seed) / _SKEW_GRAIN
    for s, edge in enumerate(skew_cdf):
        if u < edge:
            return s
    return nshards - 1


def split_update(
    update: BatchUpdate,
    nshards: int,
    seed: int = 0,
    doc_skew: float = 0.0,
) -> list[BatchUpdate]:
    """Split one day's update into per-shard updates.

    Per word, the per-shard counts are non-negative and sum to the
    original count; per-shard pair lists stay sorted by word id.  With
    ``nshards <= 1`` the original update is returned unchanged.  With
    ``doc_skew > 0`` document slots land on Zipf-skewed shards (shard 0
    hottest) instead of uniformly — the pipeline model of the serving
    layer's skewed placement workload.
    """
    if nshards <= 1:
        return [update]
    skew_cdf = _skew_cdf(nshards, doc_skew)
    pairs: list[list[tuple[int, int]]] = [[] for _ in range(nshards)]
    for word, count in update.pairs:
        counts = [0] * nshards
        if count > _EXACT_SPLIT_MAX and skew_cdf is None:
            base, rem = divmod(count, nshards)
            for s in range(nshards):
                counts[s] = base
            for j in range(rem):
                counts[_slot(update.day, word, j, nshards, seed)] += 1
        elif count > _EXACT_SPLIT_MAX:
            # Skewed even-split: proportional floors plus a hashed
            # remainder, so hot words skew exactly like rare ones.
            prev_edge = 0.0
            floors = []
            for s, edge in enumerate(skew_cdf):
                floors.append(int(count * (edge - prev_edge)))
                prev_edge = edge
            for s in range(nshards):
                counts[s] = floors[s]
            for j in range(count - sum(floors)):
                counts[
                    _slot(update.day, word, j, nshards, seed, skew_cdf)
                ] += 1
        else:
            for j in range(count):
                counts[
                    _slot(update.day, word, j, nshards, seed, skew_cdf)
                ] += 1
        for s in range(nshards):
            if counts[s]:
                pairs[s].append((word, counts[s]))
    ndocs = [0] * nshards
    for j in range(update.ndocs):
        ndocs[_slot(update.day, 0, j, nshards, seed, skew_cdf)] += 1
    return [
        BatchUpdate(day=update.day, pairs=pairs[s], ndocs=ndocs[s])
        for s in range(nshards)
    ]


def split_updates(
    updates: list[BatchUpdate],
    nshards: int,
    seed: int = 0,
    doc_skew: float = 0.0,
) -> list[list[BatchUpdate]]:
    """Per-shard update streams: ``result[s]`` is shard ``s``'s days."""
    streams: list[list[BatchUpdate]] = [[] for _ in range(max(1, nshards))]
    for update in updates:
        for s, part in enumerate(
            split_update(update, nshards, seed, doc_skew)
        ):
            streams[s].append(part)
    return streams


@dataclass
class ShardRunMetrics:
    """One shard's pipeline outcome under one policy."""

    shard: int
    npostings: int
    io_ops: int
    utilization: float
    avg_reads_per_list: float
    in_place_updates: int
    #: Documents routed to this shard over the whole run.
    ndocs: int = 0

    def as_dict(self) -> dict:
        return {
            "shard": self.shard,
            "npostings": self.npostings,
            "io_ops": self.io_ops,
            "utilization": round(self.utilization, 6),
            "avg_reads_per_list": round(self.avg_reads_per_list, 4),
            "in_place_updates": self.in_place_updates,
            "ndocs": self.ndocs,
        }


@dataclass
class ShardedPolicyReport:
    """Aggregate of one policy's per-shard pipeline runs."""

    policy: str
    nshards: int
    router_seed: int
    doc_skew: float = 0.0
    shards: list[ShardRunMetrics] = field(default_factory=list)

    @property
    def io_ops_total(self) -> int:
        """Work the whole collection costs (sum over shards)."""
        return sum(m.io_ops for m in self.shards)

    @property
    def io_ops_critical_path(self) -> int:
        """What a parallel flush waits for (largest shard total)."""
        return max((m.io_ops for m in self.shards), default=0)

    @property
    def parallel_speedup(self) -> float:
        """Total work over the critical path: the ideal speedup of
        flushing all shards concurrently."""
        critical = self.io_ops_critical_path
        return self.io_ops_total / critical if critical else 0.0

    @property
    def utilization(self) -> float:
        """Posting-weighted mean long-list utilization."""
        total = sum(m.npostings for m in self.shards)
        if not total:
            return 0.0
        return (
            sum(m.utilization * m.npostings for m in self.shards) / total
        )

    @property
    def avg_reads_per_list(self) -> float:
        """Posting-weighted mean reads per long list."""
        total = sum(m.npostings for m in self.shards)
        if not total:
            return 0.0
        return (
            sum(m.avg_reads_per_list * m.npostings for m in self.shards)
            / total
        )

    @property
    def doc_imbalance(self) -> float:
        """max/mean over per-shard document counts (1.0 = balanced)."""
        from ..core.rebalance import RebalancePlanner

        return RebalancePlanner.imbalance([m.ndocs for m in self.shards])

    @property
    def io_imbalance(self) -> float:
        """max/mean over per-shard long-list I/O (the critical-path
        skew a parallel flush actually waits on)."""
        from ..core.rebalance import RebalancePlanner

        return RebalancePlanner.imbalance([m.io_ops for m in self.shards])

    @property
    def doc_imbalance_post_split(self) -> float:
        """Projected doc imbalance if the hottest shard were split in
        half onto a new shard — what one online split would buy."""
        from ..core.rebalance import RebalancePlanner

        counts = sorted(m.ndocs for m in self.shards)
        if not counts:
            return 0.0
        hot = counts.pop()
        counts.extend([hot // 2, hot - hot // 2])
        return RebalancePlanner.imbalance(counts)

    def as_dict(self) -> dict:
        return {
            "policy": self.policy,
            "nshards": self.nshards,
            "router_seed": self.router_seed,
            "doc_skew": self.doc_skew,
            "io_ops_total": self.io_ops_total,
            "io_ops_critical_path": self.io_ops_critical_path,
            "parallel_speedup": round(self.parallel_speedup, 4),
            "utilization": round(self.utilization, 6),
            "avg_reads_per_list": round(self.avg_reads_per_list, 4),
            "doc_imbalance": round(self.doc_imbalance, 4),
            "io_imbalance": round(self.io_imbalance, 4),
            "doc_imbalance_post_split": round(
                self.doc_imbalance_post_split, 4
            ),
            "shards": [m.as_dict() for m in self.shards],
        }


class ShardedExperiment:
    """Run the evaluation pipeline per shard and aggregate.

    Wraps an :class:`~repro.pipeline.experiment.Experiment` for its
    (cached) workload generation; the per-shard bucket stages are
    computed once and shared across policies, mirroring the unsharded
    runner's staging economy.
    """

    def __init__(
        self,
        experiment: Experiment,
        nshards: int,
        router_seed: int = 0,
        doc_skew: float | None = None,
    ) -> None:
        if nshards < 2:
            raise ValueError(
                "ShardedExperiment needs nshards >= 2; use Experiment "
                "for the single-volume pipeline"
            )
        self.experiment = experiment
        self.nshards = nshards
        self.router_seed = router_seed
        # Default to the workload's own skew so `repro experiment
        # --doc-skew` shapes both the corpus config and the split model.
        if doc_skew is None:
            doc_skew = getattr(
                experiment.config.workload, "doc_skew", 0.0
            )
        self.doc_skew = doc_skew
        self._streams: list[list[BatchUpdate]] | None = None
        self._traces: list | None = None

    def shard_streams(self) -> list[list[BatchUpdate]]:
        if self._streams is None:
            self._streams = split_updates(
                self.experiment.updates(),
                self.nshards,
                self.router_seed,
                self.doc_skew,
            )
        return self._streams

    def _shard_traces(self) -> list:
        """Per-shard bucket-stage traces (policy-independent, run once)."""
        if self._traces is None:
            config = self.experiment.config
            traces = []
            for stream in self.shard_streams():
                process = ComputeBucketsProcess(
                    config.nbuckets,
                    config.bucket_size,
                    watch_buckets=config.watch_buckets,
                )
                traces.append(process.run(stream).trace)
            self._traces = traces
        return self._traces

    def run_policy(self, policy: Policy) -> ShardedPolicyReport:
        """ComputeDisks per shard under ``policy``; aggregate report."""
        report = ShardedPolicyReport(
            policy=policy.name,
            nshards=self.nshards,
            router_seed=self.router_seed,
            doc_skew=self.doc_skew,
        )
        streams = self.shard_streams()
        for s, trace in enumerate(self._shard_traces()):
            process = ComputeDisksProcess(
                self.experiment.disk_stage_config(policy)
            )
            disks = process.run(trace)
            report.shards.append(
                ShardRunMetrics(
                    shard=s,
                    npostings=sum(u.npostings for u in streams[s]),
                    io_ops=disks.series.io_ops[-1]
                    if disks.series.io_ops
                    else 0,
                    utilization=disks.final_utilization,
                    avg_reads_per_list=disks.final_avg_reads,
                    in_place_updates=disks.counters.in_place_updates,
                    ndocs=sum(u.ndocs for u in streams[s]),
                )
            )
        return report
