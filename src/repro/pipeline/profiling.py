"""Per-stage wall-clock profiling for the experiment pipeline.

The paper's staged design (Figure 3) makes the cost structure of a
reproduction legible: each stage — generate, invert, buckets, disks,
exercise — is a separate process whose output can be saved and replayed.
:class:`StageTimings` gives the repo the measurement half of that story:
lightweight ``perf_counter`` spans recorded per stage (and per policy for
the policy-dependent stages), merged across workers by the sweep runner,
and dumped as machine-readable JSON (``BENCH_sweep.json``) so the perf
trajectory of the codebase accumulates run over run.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class StageTimings:
    """Accumulated wall-clock seconds per named stage.

    A stage may be entered more than once (e.g. ``disks`` across many
    policies); seconds accumulate and ``counts`` records the spans.
    """

    seconds: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    def add(self, stage: str, seconds: float) -> None:
        """Fold one measured span into a stage's total."""
        if seconds < 0:
            raise ValueError(f"negative span for stage {stage!r}")
        self.seconds[stage] = self.seconds.get(stage, 0.0) + seconds
        self.counts[stage] = self.counts.get(stage, 0) + 1

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a ``with`` block and record it under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def get(self, stage: str) -> float:
        """Total seconds recorded for a stage (0.0 if never entered)."""
        return self.seconds.get(stage, 0.0)

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def merge(self, other: "StageTimings") -> None:
        """Fold another timings object in (sweep workers → parent)."""
        for stage, seconds in other.seconds.items():
            self.seconds[stage] = self.seconds.get(stage, 0.0) + seconds
            self.counts[stage] = self.counts.get(stage, 0) + other.counts.get(
                stage, 1
            )

    def as_dict(self) -> dict[str, float]:
        """JSON-ready ``{stage: seconds}`` map, rounded for stable diffs."""
        return {
            stage: round(seconds, 6)
            for stage, seconds in sorted(self.seconds.items())
        }


@dataclass
class HitMissCounters:
    """Thread-safe hit/miss/eviction tallies for a shared cache.

    The counter protocol the block buffer cache
    (:class:`repro.storage.buffercache.BlockBufferCache`) reports into:
    ``note_hit``/``note_miss`` on every lookup, ``note_eviction`` when
    capacity pressure drops an entry, ``note_invalidated`` when a publish
    drops entries overlapping the batch's dirty blocks.  One instance is
    shared across reader threads, so increments take a lock (contention
    is negligible next to the block decode a miss implies).
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidated: int = 0

    def __post_init__(self) -> None:
        import threading

        self._lock = threading.Lock()

    def note_hit(self) -> None:
        with self._lock:
            self.hits += 1

    def note_miss(self) -> None:
        with self._lock:
            self.misses += 1

    def note_eviction(self) -> None:
        with self._lock:
            self.evictions += 1

    def note_invalidated(self) -> None:
        with self._lock:
            self.invalidated += 1

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when idle)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidated": self.invalidated,
            "hit_rate": round(self.hit_rate, 6),
        }


@contextmanager
def timed() -> Iterator[list[float]]:
    """Time a block; yields a one-slot list filled with elapsed seconds."""
    out = [0.0]
    start = time.perf_counter()
    try:
        yield out
    finally:
        out[0] = time.perf_counter() - start


def percentile(samples: list[float], p: float) -> float:
    """Nearest-rank percentile of ``samples`` (0 < p <= 100).

    Nearest-rank rather than interpolation so a reported p99 is always a
    latency some query actually experienced.  Returns 0.0 for no samples.
    """
    if not 0.0 < p <= 100.0:
        raise ValueError("percentile p must be in (0, 100]")
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, -(-len(ordered) * p // 100))  # ceil without math import
    return ordered[int(rank) - 1]


@dataclass
class LatencyRecorder:
    """Per-query latency samples and their tail summary.

    The serving layer's counterpart to :class:`StageTimings`: where stage
    timers measure *aggregate* wall-clock per pipeline stage, this records
    each individual operation so the tail (p95/p99) — the metric a serving
    system is judged on — survives aggregation.  Each reader thread records
    into its own instance; :meth:`merge` folds them together afterwards, so
    no locking is needed on the hot path.
    """

    samples: list[float] = field(default_factory=list)

    def record(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("negative latency sample")
        self.samples.append(seconds)

    @contextmanager
    def span(self) -> Iterator[None]:
        """Time a ``with`` block and record it as one sample."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(time.perf_counter() - start)

    def merge(self, other: "LatencyRecorder") -> None:
        self.samples.extend(other.samples)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)

    def summary(self) -> dict[str, float]:
        """JSON-ready latency digest (seconds, rounded for stable diffs)."""
        if not self.samples:
            return {"count": 0}
        return {
            "count": len(self.samples),
            "mean": round(self.total / len(self.samples), 9),
            "p50": round(percentile(self.samples, 50), 9),
            "p95": round(percentile(self.samples, 95), 9),
            "p99": round(percentile(self.samples, 99), 9),
            "max": round(max(self.samples), 9),
        }
