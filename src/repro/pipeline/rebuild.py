"""The traditional baseline: periodic full index rebuilds (paper §1).

"Traditional information retrieval systems ... assume a relatively static
body of documents.  Given a body of documents, these systems build the
inverted list index from scratch, laying out each list sequentially and
contiguously to others on disk (with no gaps). ... Periodically, e.g.,
every weekend, new documents would be added to the database and a brand
new index would be built.  Rebuilding the index is a massive operation,
but its cost is amortized over multiple days of operation."

:class:`PeriodicRebuildBaseline` implements that strategy over the same
daily batch updates the dual-structure pipeline consumes, so the two can
be compared head-to-head (benchmark X13):

* on a rebuild day the *entire* accumulated index is written from scratch
  — each word's list in one contiguous run, lists packed with no gaps,
  striped across the disks, perfectly coalescible;
* between rebuilds arriving batches are **not queryable**: the paper's
  freshness problem, measured here as *staleness* — the average number of
  days a posting waits between arriving and becoming searchable;
* query cost is always one read per list (the layout is optimal), and
  utilization is maximal — the rebuild baseline wins those metrics by
  construction; what it loses is freshness and write volume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..storage.block import blocks_for_postings
from ..storage.iotrace import IOTrace, OpKind, Target, TraceOp
from ..text.batchupdate import BatchUpdate


@dataclass
class RebuildResult:
    """Outcome of running the rebuild baseline over a workload."""

    period_days: int
    rebuild_days: list[int]
    #: Blocks written by each rebuild (the massive operation).
    blocks_per_rebuild: list[int]
    #: Mean days a posting waited before becoming searchable.
    mean_staleness_days: float
    #: Postings never searchable because no rebuild followed their arrival.
    postings_never_indexed: int
    trace: IOTrace = field(repr=False, default=None)

    @property
    def total_blocks_written(self) -> int:
        return sum(self.blocks_per_rebuild)

    @property
    def nrebuilds(self) -> int:
        return len(self.rebuild_days)


class PeriodicRebuildBaseline:
    """Rebuild the whole index from scratch every ``period_days``."""

    def __init__(
        self,
        period_days: int,
        block_postings: int = 64,
        ndisks: int = 4,
    ) -> None:
        if period_days <= 0:
            raise ValueError("period_days must be > 0")
        if block_postings <= 0 or ndisks <= 0:
            raise ValueError("block_postings and ndisks must be > 0")
        self.period_days = period_days
        self.block_postings = block_postings
        self.ndisks = ndisks

    def run(self, updates: list[BatchUpdate]) -> RebuildResult:
        """Replay the daily batches, rebuilding on schedule.

        The rebuild on day ``d`` indexes everything that arrived on days
        ``<= d`` (the weekend build covers the week's arrivals).
        """
        counts: dict[int, int] = {}
        pending: list[tuple[int, int]] = []  # (arrival day, postings)
        staleness_weighted = 0.0
        staleness_postings = 0
        rebuild_days: list[int] = []
        blocks_per_rebuild: list[int] = []
        trace = IOTrace()

        for day, update in enumerate(updates):
            for word, count in update:
                counts[word] = counts.get(word, 0) + count
            pending.append((day, update.npostings))
            if (day + 1) % self.period_days == 0:
                rebuild_days.append(day)
                blocks = self._rebuild(counts, trace)
                blocks_per_rebuild.append(blocks)
                for arrival, npostings in pending:
                    staleness_weighted += (day - arrival) * npostings
                    staleness_postings += npostings
                pending.clear()
            trace.end_batch()

        never = sum(npostings for _, npostings in pending)
        mean_staleness = (
            staleness_weighted / staleness_postings
            if staleness_postings
            else 0.0
        )
        return RebuildResult(
            period_days=self.period_days,
            rebuild_days=rebuild_days,
            blocks_per_rebuild=blocks_per_rebuild,
            mean_staleness_days=mean_staleness,
            postings_never_indexed=never,
            trace=trace,
        )

    def _rebuild(self, counts: dict[int, int], trace: IOTrace) -> int:
        """Write the whole index sequentially, striped across the disks.

        Lists are packed contiguously "with no gaps" — block boundaries do
        not align to lists, so the index occupies exactly
        ``ceil(postings / BlockPosting)`` blocks per disk share.  Each
        disk's share is one long sequential stream (which the exerciser
        coalesces): rebuilds run at the data rate, exactly the economics
        the paper describes.
        """
        # Round-robin the words' posting mass across the disks, packed.
        per_disk_postings = [0] * self.ndisks
        disk = 0
        for word in sorted(counts):
            per_disk_postings[disk] += counts[word]
            disk = (disk + 1) % self.ndisks
        total_blocks = 0
        for disk_id, npostings in enumerate(per_disk_postings):
            if npostings == 0:
                continue
            nblocks = blocks_for_postings(npostings, self.block_postings)
            trace.append(
                TraceOp(
                    kind=OpKind.WRITE,
                    target=Target.LONG_LIST,
                    disk=disk_id,
                    start=0,
                    nblocks=nblocks,
                    word=0,
                    npostings=npostings,
                )
            )
            total_blocks += nblocks
        return total_blocks
