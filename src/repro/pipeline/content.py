"""Content-mode experiment support: a real index over the synthetic corpus.

The evaluation pipeline proper runs on posting counts.  For experiments
that must *execute* retrieval — measuring the read operations actual
boolean and vector queries pay — this module builds a full content-mode
:class:`~repro.core.index.DualStructureIndex` from the same synthetic
workload, batch by batch, so the resulting disk layout is exactly what the
counting pipeline predicts (asserted by
``tests/integration/test_mode_cross_validation.py``).
"""

from __future__ import annotations

from ..core.index import DualStructureIndex, IndexConfig
from ..core.policy import Policy
from ..workload.synthetic import SyntheticNews, SyntheticNewsConfig


def build_content_index(
    workload: SyntheticNewsConfig,
    policy: Policy,
    nbuckets: int = 256,
    bucket_size: int = 1024,
    block_postings: int = 64,
    ndisks: int = 4,
    virtual_blocks: int = 4_194_304,
) -> DualStructureIndex:
    """Ingest the whole synthetic corpus into a content-mode index.

    One flush per day, documents in arrival order — the library-side twin
    of the counting pipeline's run.
    """
    index = DualStructureIndex(
        IndexConfig(
            nbuckets=nbuckets,
            bucket_size=bucket_size,
            block_postings=block_postings,
            ndisks=ndisks,
            nblocks_override=virtual_blocks,
            store_contents=True,
            policy=policy,
            trace_enabled=False,
        )
    )
    news = SyntheticNews(workload)
    doc_id = 0
    for day in range(workload.days):
        for words in news.day_documents(day):
            index.add_document([int(w) for w in words], doc_id=doc_id)
            doc_id += 1
        index.flush_batch()
    return index
