"""repro — a reproduction of Tomasic, Garcia-Molina & Shoens (SIGMOD 1994),
"Incremental Updates of Inverted Lists for Text Document Retrieval".

The package implements the paper's dual-structure inverted index (buckets of
short lists + policy-managed long lists), the full family of long-list
allocation policies, a simulated multi-disk storage subsystem, boolean and
vector-space query processing, and the staged experiment pipeline that
regenerates every table and figure of the paper's evaluation.

Quick start::

    from repro import TextDocumentIndex

    index = TextDocumentIndex()
    index.add_document("the cat sat with the dog")
    index.flush_batch()
    index.search_boolean("cat AND dog")

See README.md for the architecture tour and DESIGN.md for the experiment
index.
"""

from .core import (
    Alloc,
    BatchResult,
    DeletionManager,
    DualStructureIndex,
    GrowthPolicy,
    IndexConfig,
    IndexStats,
    Limit,
    Policy,
    PositionalPostings,
    Region,
    Style,
    WordCategory,
    figure8_policies,
)
from .figures import FigureResult, regenerate
from .pipeline import Experiment, ExperimentConfig
from .storage import DiskArrayConfig, DiskProfile, IOTrace
from .textindex import QueryAnswer, TextDocumentIndex
from .core.sharded import ShardedTextIndex, build_text_index
from .workload import SyntheticNews, SyntheticNewsConfig

__version__ = "1.0.0"

__all__ = [
    "Alloc",
    "BatchResult",
    "DeletionManager",
    "DiskArrayConfig",
    "DiskProfile",
    "DualStructureIndex",
    "Experiment",
    "ExperimentConfig",
    "FigureResult",
    "GrowthPolicy",
    "IOTrace",
    "IndexConfig",
    "IndexStats",
    "Limit",
    "Policy",
    "PositionalPostings",
    "QueryAnswer",
    "Region",
    "ShardedTextIndex",
    "Style",
    "SyntheticNews",
    "SyntheticNewsConfig",
    "TextDocumentIndex",
    "WordCategory",
    "build_text_index",
    "figure8_policies",
    "regenerate",
    "__version__",
]
