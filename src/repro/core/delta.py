"""Per-batch delta journal feeding incremental copy-on-write publication.

Between two published snapshots the writer mutates a bounded set of
structures: the buckets that absorbed short postings, the directory
entries and chunks of long lists that were appended to or relocated, the
disk blocks rewritten or freed by those moves, and the deletion set.
``DeltaJournal`` records exactly that dirty set so that
``checkpoint.clone_incremental`` can deep-copy only what changed and
structurally share everything else with the previous snapshot, and so
the serving cache can evict only results whose terms intersect the
batch's dirty vocabulary.

The journal is attached once by ``DualStructureIndex`` (content mode
only) and referenced by the disks, the bucket manager, the long-list
manager, the flush manager, and the deletion manager.  It is a single
long-lived object cleared in place after each successful publish, so
re-attachment is only needed when ``recover()`` rebuilds the structures
wholesale.

Recording is deliberately a superset: anything that *might* differ from
the previous snapshot is marked dirty.  Over-recording costs a little
sharing; under-recording would leak writer mutations into published
snapshots, so every mutation path must pass through a ``note_*`` hook.
"""

from __future__ import annotations


class FrozenStateError(RuntimeError):
    """A mutation reached an index structure frozen at publish time.

    Raised by the debug-mode write barrier (``invariants.freeze_index``)
    when a published snapshot — whose buckets, chunks, and blocks may be
    structurally shared with other snapshots — is mutated.  Any
    occurrence is a bug in the copy-on-write discipline, never a
    recoverable condition.
    """


class DeltaJournal:
    """Dirty-set record of all writer mutations since the last publish."""

    __slots__ = (
        "dirty_words",
        "dirty_buckets",
        "dirty_blocks",
        "deletions_changed",
        "structure_changed",
        "recovered",
        "batches",
    )

    def __init__(self) -> None:
        self.dirty_words: set[int] = set()
        self.dirty_buckets: set[int] = set()
        self.dirty_blocks: set[tuple[int, int]] = set()
        self.deletions_changed = False
        self.structure_changed = False
        self.recovered = False
        self.batches = 0

    # ------------------------------------------------------------------
    # Recording hooks (called from the flush / deletion / storage paths)
    # ------------------------------------------------------------------
    def note_word(self, word: int) -> None:
        """A long-list directory entry (or its chunks) changed."""
        self.dirty_words.add(word)

    def note_bucket(self, bucket_id: int) -> None:
        """A bucket's resident short lists changed."""
        self.dirty_buckets.add(bucket_id)

    def note_block(self, disk_id: int, block: int) -> None:
        """A single stored block was written or freed."""
        self.dirty_blocks.add((disk_id, block))

    def note_blocks(self, disk_id: int, start: int, nblocks: int) -> None:
        """A contiguous block range was written or freed."""
        add = self.dirty_blocks.add
        for block in range(start, start + nblocks):
            add((disk_id, block))

    def note_deletions(self) -> None:
        """The deleted-document set changed (delete or sweep drain)."""
        self.deletions_changed = True

    def note_structure(self) -> None:
        """A structural change (bucket growth) invalidated sharing."""
        self.structure_changed = True

    def note_recovery(self) -> None:
        """Crash recovery rebuilt the index; journal coverage is void."""
        self.recovered = True

    def note_batch(self) -> None:
        """A flush completed; used to cross-check publish bookkeeping."""
        self.batches += 1

    # ------------------------------------------------------------------
    # Publication protocol
    # ------------------------------------------------------------------
    @property
    def requires_full(self) -> bool:
        """True when only a full clone is safe.

        Bucket growth rehashes every resident word, and crash recovery
        replaces the structures the journal was observing — in both
        cases the dirty set no longer bounds the divergence from the
        previous snapshot, so the publisher falls back to the full
        checkpoint clone (the differential-testing oracle).
        """
        return self.structure_changed or self.recovered

    def clear(self) -> None:
        """Reset in place after a successful publish.

        In-place so every structure holding a reference to the journal
        (disks, managers) keeps observing the same object — no
        re-wiring after publish.
        """
        self.dirty_words.clear()
        self.dirty_buckets.clear()
        self.dirty_blocks.clear()
        self.deletions_changed = False
        self.structure_changed = False
        self.recovered = False
        self.batches = 0

    def summary(self) -> dict:
        """Diagnostic view used in publish traces and tests."""
        return {
            "dirty_words": len(self.dirty_words),
            "dirty_buckets": len(self.dirty_buckets),
            "dirty_blocks": len(self.dirty_blocks),
            "deletions_changed": self.deletions_changed,
            "structure_changed": self.structure_changed,
            "recovered": self.recovered,
            "batches": self.batches,
        }
