"""Buckets: the short-list half of the dual-structure index (paper §2).

Every inverted list starts life as a *short list* inside a bucket — a
fixed-size region of disk holding the lists of many words.  Sizes are
measured in *units*: one unit per word plus one unit per posting stored in
the bucket ("for each inverted list in the bucket, we need to store the word
it represents plus all of its postings").

When an insertion overflows a bucket, the longest short list is evicted and
becomes a *long list*; the bucket is left partially empty.  The buckets thus
**dynamically discover the frequent words** — the central idea of the paper.

:class:`BucketManager` also supports the per-bucket animation capture behind
the paper's Figure 1: when a bucket is watched, every change to it (new word
inserted, postings appended, word evicted) appends a ``(words, postings)``
sample to its history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from .postings import PostingPayload


@dataclass
class BucketSample:
    """One Figure-1 animation sample: bucket contents after a change."""

    step: int
    nwords: int
    npostings: int

    @property
    def size(self) -> int:
        """Occupied units: words + postings."""
        return self.nwords + self.npostings


class Bucket:
    """One fixed-capacity bucket of short lists.

    The capacity is in units (words + postings).  ``insert`` may leave the
    bucket over capacity; the manager resolves overflow by evicting longest
    lists, because eviction decisions (and the resulting long-list creation)
    belong one level up.
    """

    __slots__ = ("capacity", "lists", "npostings")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("bucket capacity must be > 0")
        self.capacity = capacity
        self.lists: dict[int, PostingPayload] = {}
        self.npostings = 0

    @property
    def nwords(self) -> int:
        return len(self.lists)

    @property
    def size(self) -> int:
        """Occupied units: one per word plus one per posting."""
        return self.nwords + self.npostings

    @property
    def overflowing(self) -> bool:
        return self.size > self.capacity

    def insert(self, word: int, payload: PostingPayload) -> None:
        """Add (or append to) the short list for ``word``."""
        existing = self.lists.get(word)
        if existing is None:
            self.lists[word] = payload.copy()
        else:
            existing.extend(payload)
        self.npostings += len(payload)

    def remove_longest(self) -> tuple[int, PostingPayload]:
        """Evict and return the longest short list (ties: lowest word id,
        making experiments deterministic; the paper chooses arbitrarily)."""
        if not self.lists:
            raise ValueError("cannot evict from an empty bucket")
        word = min(
            self.lists, key=lambda w: (-len(self.lists[w]), w)
        )
        payload = self.lists.pop(word)
        self.npostings -= len(payload)
        return word, payload

    def remove(self, word: int) -> PostingPayload:
        """Remove a specific word's short list."""
        payload = self.lists.pop(word)
        self.npostings -= len(payload)
        return payload


def modular_hash(nbuckets: int) -> Callable[[int], int]:
    """The paper's bucket hash: modular arithmetic on the word id."""

    def h(word: int) -> int:
        return word % nbuckets

    return h


class BucketManager:
    """All buckets plus the overflow/eviction algorithm of paper §2.

    ``insert`` returns the list of ``(word, payload)`` migrations the
    insertion caused — short lists promoted to long lists.  The caller
    (ComputeBuckets or the index facade) routes those to the long-list
    manager; this class knows nothing about disks.
    """

    #: Delta-journal hook (attached by ``DualStructureIndex`` in content
    #: mode); ``frozen`` is set on published snapshots by the debug-mode
    #: write barrier (``invariants.freeze_index``).  Bucket instances are
    #: shared between consecutive snapshots, so mutation is policed at the
    #: manager level (``Bucket`` uses ``__slots__`` and stays flag-free).
    journal = None
    frozen = False

    def __init__(
        self,
        nbuckets: int,
        bucket_size: int,
        hash_fn: Callable[[int], int] | None = None,
    ) -> None:
        if nbuckets <= 0:
            raise ValueError("nbuckets must be > 0")
        self.nbuckets = nbuckets
        self.bucket_size = bucket_size
        self.buckets = [Bucket(bucket_size) for _ in range(nbuckets)]
        self.hash_fn = hash_fn or modular_hash(nbuckets)
        self._watched: dict[int, list[BucketSample]] = {}
        self._step = 0

    # -- animation (Figure 1) ---------------------------------------------

    def watch(self, bucket_id: int) -> None:
        """Start recording Figure-1 samples for ``bucket_id``."""
        self._watched.setdefault(bucket_id, [])

    def history(self, bucket_id: int) -> list[BucketSample]:
        """Recorded samples for a watched bucket."""
        return self._watched[bucket_id]

    def _record(self, bucket_id: int) -> None:
        samples = self._watched.get(bucket_id)
        if samples is not None:
            bucket = self.buckets[bucket_id]
            samples.append(
                BucketSample(self._step, bucket.nwords, bucket.npostings)
            )
        self._step += 1

    # -- core algorithm -----------------------------------------------------

    def bucket_of(self, word: int) -> int:
        """h(w): which bucket holds (or would hold) the word's short list."""
        bucket_id = self.hash_fn(word)
        if not 0 <= bucket_id < self.nbuckets:
            raise ValueError(
                f"hash function returned {bucket_id} outside "
                f"[0, {self.nbuckets})"
            )
        return bucket_id

    def contains(self, word: int) -> bool:
        """True when the word currently has a short list."""
        return word in self.buckets[self.bucket_of(word)].lists

    def get(self, word: int) -> PostingPayload | None:
        """The word's short-list payload, or None."""
        return self.buckets[self.bucket_of(word)].lists.get(word)

    def insert(
        self, word: int, payload: PostingPayload
    ) -> list[tuple[int, PostingPayload]]:
        """Insert an in-memory list into the word's bucket.

        Returns the migrations caused: while the bucket overflows, its
        longest short list is evicted and reported for promotion to a long
        list.  (An in-memory list larger than the whole bucket simply passes
        straight through as its own migration.)
        """
        if self.frozen:
            from .delta import FrozenStateError

            raise FrozenStateError(
                "attempt to insert into a frozen (published) bucket manager"
            )
        bucket_id = self.bucket_of(word)
        bucket = self.buckets[bucket_id]
        if self.journal is not None:
            self.journal.note_bucket(bucket_id)
            self.journal.note_word(word)
        bucket.insert(word, payload)
        self._record(bucket_id)
        migrations: list[tuple[int, PostingPayload]] = []
        while bucket.overflowing:
            evicted = bucket.remove_longest()
            migrations.append(evicted)
            self._record(bucket_id)
        return migrations

    def remove(self, word: int) -> PostingPayload:
        """Remove a word's short list (used when promoting externally)."""
        if self.frozen:
            from .delta import FrozenStateError

            raise FrozenStateError(
                "attempt to remove from a frozen (published) bucket manager"
            )
        bucket_id = self.bucket_of(word)
        if self.journal is not None:
            self.journal.note_bucket(bucket_id)
            self.journal.note_word(word)
        payload = self.buckets[bucket_id].remove(word)
        self._record(bucket_id)
        return payload

    # -- statistics ----------------------------------------------------------

    @property
    def total_words(self) -> int:
        return sum(b.nwords for b in self.buckets)

    @property
    def total_postings(self) -> int:
        return sum(b.npostings for b in self.buckets)

    @property
    def total_units(self) -> int:
        """Occupied units across all buckets."""
        return self.total_words + self.total_postings

    @property
    def capacity_units(self) -> int:
        """Total capacity: nbuckets × bucket_size (the paper's BucketTotal)."""
        return self.nbuckets * self.bucket_size

    def occupancy(self) -> float:
        """Fraction of bucket capacity in use."""
        return self.total_units / self.capacity_units

    def words(self) -> Iterator[int]:
        """All words currently holding short lists."""
        for bucket in self.buckets:
            yield from bucket.lists

    def flush_blocks(self, block_size: int, unit_bytes: int = 4) -> int:
        """Disk blocks one full flush of the bucket region occupies.

        Buckets live in a fixed-size region regardless of occupancy.  A
        unit (one word or one posting) costs ``unit_bytes`` on disk — the
        paper notes that BucketSize "implicitly models the efficiency of
        the compression algorithm applied to in-memory inverted lists",
        i.e. units are compressed bytes, not raw postings.
        """
        if block_size <= 0 or unit_bytes <= 0:
            raise ValueError("block_size and unit_bytes must be > 0")
        total_bytes = self.nbuckets * self.bucket_size * unit_bytes
        return -(-total_bytes // block_size)
