"""Long-list allocation policies (paper Section 3, Table 2).

A policy is determined by three variables:

``Limit`` — when to update in place.
    * ``ZERO``: never.  The paper then forces ``Alloc = constant`` with
      ``k = 0`` because reserved space could never be used.
    * ``Z``: update in place whenever the in-memory list fits entirely in
      the slack ``z`` at the end of the list's last chunk ("an in-memory
      inverted list is never split into two different chunks for an
      in-place update").

``Style`` — how new postings reach disk when not updating in place.
    * ``FILL``: write fixed-size extents of ``e`` blocks until the
      in-memory list is exhausted; the last extent's unused space becomes
      the list's future slack.
    * ``NEW``: write one new chunk holding the in-memory list plus
      reserved space.
    * ``WHOLE``: read the entire long list, append, and write the combined
      list as a single new chunk (with reserved space); the old chunk
      retires to the RELEASE list.

``Alloc`` — reserved space ``f(x)`` for a chunk written with ``x`` postings.
    * ``CONSTANT``: ``f(x) = x + k`` postings.
    * ``BLOCK``: round the chunk up to a multiple of ``k`` blocks.
    * ``PROPORTIONAL``: ``f(x) = k · x`` postings (``k >= 1``).

The named constructors at the bottom reproduce the specific policies the
paper discusses: the update-optimized and query-optimized extremes of
Section 3, and the recommended policies of Section 5.4.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from ..storage.block import blocks_for_postings


class Style(enum.Enum):
    """How non-in-place writes are organized on disk."""

    FILL = "fill"
    NEW = "new"
    WHOLE = "whole"


class Limit(enum.Enum):
    """In-place update rule: never (ZERO) or when it fits in slack (Z)."""

    ZERO = "0"
    Z = "z"


class Alloc(enum.Enum):
    """Reserved-space strategy for written chunks.

    ``ADAPTIVE`` is the scheme the paper's related-work section attributes
    to Faloutsos & Jagadish and leaves unstudied ("our new style with an
    adaptive allocation scheme (not studied here)"): reserve space sized by
    the *observed* update behaviour of each word — here, ``k`` predicted
    future updates at the word's exponentially-weighted mean update size.
    """

    CONSTANT = "constant"
    BLOCK = "block"
    PROPORTIONAL = "proportional"
    ADAPTIVE = "adaptive"


@dataclass(frozen=True)
class Policy:
    """A complete long-list allocation policy.

    ``k`` parameterizes the Alloc strategy (postings for ``constant``,
    blocks for ``block``, a multiplier for ``proportional``).
    ``extent_blocks`` is the fill style's global extent size ``e``.
    """

    style: Style
    limit: Limit = Limit.Z
    alloc: Alloc = Alloc.CONSTANT
    k: float = 0.0
    extent_blocks: int = 4
    #: Smoothing factor of the adaptive strategy's per-word update-size
    #: estimate (ignored by the other strategies).
    ewma_alpha: float = 0.5

    def __post_init__(self) -> None:
        if self.extent_blocks <= 0:
            raise ValueError("extent_blocks must be > 0")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.alloc is Alloc.CONSTANT and self.k < 0:
            raise ValueError("constant allocation needs k >= 0")
        if self.alloc is Alloc.BLOCK and (
            self.k < 1 or self.k != int(self.k)
        ):
            raise ValueError("block allocation needs an integer k >= 1")
        if self.alloc is Alloc.PROPORTIONAL and self.k < 1.0:
            raise ValueError("proportional allocation needs k >= 1")
        if self.alloc is Alloc.ADAPTIVE and self.k <= 0:
            raise ValueError("adaptive allocation needs k > 0")
        if self.limit is Limit.ZERO and not (
            self.alloc is Alloc.CONSTANT and self.k == 0
        ):
            # Paper Section 3.1: with Limit = 0 reserved space is never
            # used, so Alloc is forced to constant with k = 0.
            raise ValueError(
                "Limit=0 policies must use Alloc=constant with k=0 "
                "(reserved space would never be used)"
            )

    # -- naming ----------------------------------------------------------

    @property
    def name(self) -> str:
        """Short label in the paper's style, e.g. ``new z prop-2.0``."""
        base = f"{self.style.value} {self.limit.value}"
        if self.style is Style.FILL:
            return f"{base} e={self.extent_blocks}"
        if self.limit is Limit.ZERO:
            return base
        if self.alloc is Alloc.CONSTANT and self.k == 0:
            return base
        return f"{base} {self.alloc.value[:4]}-{self.k:g}"

    # -- reserved space ---------------------------------------------------

    def chunk_blocks(
        self,
        npostings: int,
        block_postings: int,
        predicted_update: float = 0.0,
    ) -> int:
        """Blocks to allocate for a chunk written with ``npostings``
        postings, including reserved space ``f(x)`` (paper Section 3,
        fourth issue).  Fill-style chunks are always ``extent_blocks``.

        ``predicted_update`` feeds the adaptive strategy: the manager's
        running estimate of the word's next in-memory list size.
        """
        if self.style is Style.FILL:
            return self.extent_blocks
        if self.alloc is Alloc.CONSTANT:
            target = npostings + int(self.k)
            return blocks_for_postings(target, block_postings)
        if self.alloc is Alloc.BLOCK:
            needed = blocks_for_postings(npostings, block_postings)
            k = int(self.k)
            return k * -(-needed // k)
        if self.alloc is Alloc.ADAPTIVE:
            target = npostings + int(math.ceil(self.k * predicted_update))
            return blocks_for_postings(target, block_postings)
        # PROPORTIONAL
        target = int(math.ceil(self.k * npostings))
        return blocks_for_postings(max(target, npostings), block_postings)

    def in_place_limit(self, slack: int) -> int:
        """The paper's ``Limit`` value: 0, or the current slack ``z``."""
        return 0 if self.limit is Limit.ZERO else slack

    # -- the policies the paper names --------------------------------------

    @classmethod
    def update_optimized(cls) -> "Policy":
        """Section 3.1's fastest-update extreme: ``new`` style, never
        in place — blocks stream to the end of the data with no reads."""
        return cls(style=Style.NEW, limit=Limit.ZERO)

    @classmethod
    def query_optimized(cls, k: float = 1.2) -> "Policy":
        """Section 3.1's fastest-query policy: ``whole`` with in-place
        updates and proportional reserve, guaranteeing one read per list."""
        return cls(
            style=Style.WHOLE, limit=Limit.Z, alloc=Alloc.PROPORTIONAL, k=k
        )

    @classmethod
    def balanced(cls, extent_blocks: int = 4) -> "Policy":
        """Section 3.1's trade-off policy: fill fixed extents in place."""
        return cls(style=Style.FILL, limit=Limit.Z, extent_blocks=extent_blocks)

    @classmethod
    def adaptive_new(cls, k: float = 1.0, ewma_alpha: float = 0.5) -> "Policy":
        """The related-work adaptive scheme on the new style: reserve room
        for ``k`` future updates at the word's observed update size."""
        return cls(
            style=Style.NEW,
            limit=Limit.Z,
            alloc=Alloc.ADAPTIVE,
            k=k,
            ewma_alpha=ewma_alpha,
        )

    @classmethod
    def recommended_new(cls, k: float = 2.0) -> "Policy":
        """Section 5.4 bottom line for update-leaning workloads: new style,
        in-place, proportional reserve at the cusp constant."""
        return cls(
            style=Style.NEW, limit=Limit.Z, alloc=Alloc.PROPORTIONAL, k=k
        )

    @classmethod
    def recommended_whole(cls, k: float = 1.2) -> "Policy":
        """Section 5.4 bottom line for query-critical workloads."""
        return cls.query_optimized(k=k)


def figure8_policies(extent_blocks: int = 4) -> list[Policy]:
    """The five policies of Figures 8–10 and 13–14.

    ``whole 0`` and ``whole z`` coincide in operation counts (each append
    costs one read and one write either way), so the counting figures label
    a single curve "whole 0 & whole z"; we return both for the timing
    figures, where they differ.
    """
    return [
        Policy(style=Style.NEW, limit=Limit.ZERO),
        Policy(style=Style.NEW, limit=Limit.Z),
        Policy(style=Style.FILL, limit=Limit.ZERO, extent_blocks=extent_blocks),
        Policy(style=Style.FILL, limit=Limit.Z, extent_blocks=extent_blocks),
        Policy(style=Style.WHOLE, limit=Limit.ZERO),
        Policy(style=Style.WHOLE, limit=Limit.Z),
    ]
