"""The long-list directory (paper Section 3, first issue).

"The pointers to all chunks are recorded in the directory.  The directory
entries for a word may point to chunks on multiple disks.  The directory
resides in memory at all times.  Periodically, the directory is written to
disk."

The directory also supplies the two index-quality metrics of the evaluation:

* **internal long-list utilization** (Figure 9): fraction of the space
  allocated to long-list blocks that actually holds postings;
* **average read operations per long list** (Figure 10): total chunks
  divided by the number of words with long lists — the vector-IRM query
  cost proxy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..storage.block import Chunk


@dataclass
class LongListEntry:
    """Directory entry for one word: its chunks, oldest first."""

    word: int
    chunks: list[Chunk] = field(default_factory=list)

    @property
    def npostings(self) -> int:
        return sum(c.npostings for c in self.chunks)

    @property
    def nblocks(self) -> int:
        return sum(c.nblocks for c in self.chunks)

    @property
    def nchunks(self) -> int:
        return len(self.chunks)

    @property
    def last_chunk(self) -> Chunk | None:
        return self.chunks[-1] if self.chunks else None


@dataclass(frozen=True)
class DirectoryTotals:
    """Whole-directory tallies gathered by one :meth:`Directory.totals` pass."""

    nwords: int
    nchunks: int
    npostings: int
    nblocks: int

    @property
    def avg_reads_per_list(self) -> float:
        if self.nwords == 0:
            return 0.0
        return self.nchunks / self.nwords

    def utilization(self, block_postings: int) -> float:
        if self.nblocks == 0:
            return 1.0
        return self.npostings / (self.nblocks * block_postings)


class Directory:
    """In-memory map from word to its long-list chunks."""

    def __init__(self) -> None:
        self._entries: dict[int, LongListEntry] = {}

    def __contains__(self, word: int) -> bool:
        return word in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, word: int) -> LongListEntry | None:
        return self._entries.get(word)

    def entry(self, word: int) -> LongListEntry:
        """The entry for ``word``, created empty if absent."""
        entry = self._entries.get(word)
        if entry is None:
            entry = LongListEntry(word)
            self._entries[word] = entry
        return entry

    def remove(self, word: int) -> LongListEntry:
        """Drop a word's entry (used when a list is rewritten wholesale)."""
        return self._entries.pop(word)

    def entries(self) -> Iterator[LongListEntry]:
        yield from self._entries.values()

    def words(self) -> Iterator[int]:
        yield from self._entries

    # -- evaluation metrics --------------------------------------------------

    @property
    def nwords(self) -> int:
        """Number of words with long lists."""
        return len(self._entries)

    def totals(self) -> "DirectoryTotals":
        """All whole-directory tallies in one pass over the chunks.

        The evaluation samples several directory metrics after *every*
        batch update; the per-metric properties below each re-walk every
        chunk, which profiling showed dominating the ComputeDisks stage.
        One fused traversal keeps the sampling honest and cheap.
        """
        nchunks = npostings = nblocks = 0
        for entry in self._entries.values():
            for chunk in entry.chunks:
                nchunks += 1
                npostings += chunk.npostings
                nblocks += chunk.nblocks
        return DirectoryTotals(
            nwords=len(self._entries),
            nchunks=nchunks,
            npostings=npostings,
            nblocks=nblocks,
        )

    @property
    def total_chunks(self) -> int:
        return sum(e.nchunks for e in self._entries.values())

    @property
    def total_postings(self) -> int:
        return sum(e.npostings for e in self._entries.values())

    @property
    def total_blocks(self) -> int:
        return sum(e.nblocks for e in self._entries.values())

    def avg_reads_per_list(self) -> float:
        """Figure 10's metric: average chunks (= read ops) per long list.

        Returns 0.0 when there are no long lists yet (the paper's curves
        only start once lists exist)."""
        return self.totals().avg_reads_per_list

    def utilization(self, block_postings: int) -> float:
        """Figure 9's metric: postings ÷ allocated posting capacity.

        Defined as 1.0 when there are no long lists (the paper's curves
        show a spike to 1.0 before the first migration)."""
        return self.totals().utilization(block_postings)

    # -- flush sizing ----------------------------------------------------------

    def flush_blocks(self, block_size: int, entry_bytes: int = 16) -> int:
        """Disk blocks a directory flush occupies.

        Each chunk pointer costs ``entry_bytes`` (word id, disk, start,
        length, fill).  An empty directory still writes one block — the
        paper's Figure 6 trace shows the empty-directory write at the start
        of the run.
        """
        total_bytes = max(self.total_chunks, 1) * entry_bytes
        return -(-total_bytes // block_size)
