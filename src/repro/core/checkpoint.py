"""Checkpoint and restore of a dual-structure index.

The paper relies on periodic flushes of the buckets and directory so that
"the incremental update of the index can be restarted if it is aborted"
(§1).  This module makes that concrete for the library: a checkpoint is a
self-contained binary snapshot of everything the index needs to resume —
configuration, directory, bucket contents, free-space maps, flush-region
bookkeeping, counters, and (in content mode) the simulated disks' block
payloads.

Checkpoints are only taken at batch boundaries (the in-memory batch must be
empty), matching the paper's recovery granularity: work since the last flush
is replayed, never half-applied.

Format: a small framed binary format (magic ``DSIX``, version byte, then
length-prefixed sections).  ``save``/``load`` work on file paths or binary
file objects.
"""

from __future__ import annotations

import io
import struct
from typing import BinaryIO

from dataclasses import replace as _dc_replace

from ..storage import faults
from ..storage.block import Chunk
from ..storage.blockmap import ABSENT, LayeredBlocks
from ..storage.diskarray import DiskArray
from ..storage.freelist import BuddyFreeList
from ..storage.iotrace import IOTrace
from ..storage.profiles import PROFILES, SEAGATE_SCSI_1994
from .buckets import Bucket, BucketManager
from .delta import DeltaJournal
from .directory import LongListEntry
from .flush import FlushManager
from .index import DualStructureIndex, IndexConfig
from .longlists import LongListManager
from .memindex import InMemoryIndex
from .policy import Alloc, Limit, Policy, Style
from .positional import PositionalPostings
from .postings import CountPostings, DocPostings

_MAGIC = b"DSIX"
_VERSION = 1

CP_BEGIN_SAVE = faults.register_crash_point(
    "checkpoint.begin-save", "checkpoint save started, header not written"
)
CP_MID_SAVE = faults.register_crash_point(
    "checkpoint.mid-save",
    "directory section written, buckets and free lists not yet",
)
CP_END_SAVE = faults.register_crash_point(
    "checkpoint.end-save", "all sections written, save about to return"
)
CP_COW_PUBLISH = faults.register_crash_point(
    "checkpoint.cow-publish",
    "incremental clone assembly started, nothing published yet",
)


class CheckpointError(Exception):
    """Raised on malformed checkpoints or un-checkpointable state."""


# -- low-level helpers ---------------------------------------------------------


def _w_u32(fp: BinaryIO, value: int) -> None:
    fp.write(struct.pack("<I", value))


def _w_u64(fp: BinaryIO, value: int) -> None:
    fp.write(struct.pack("<Q", value))


def _w_f64(fp: BinaryIO, value: float) -> None:
    fp.write(struct.pack("<d", value))


def _w_bytes(fp: BinaryIO, data: bytes) -> None:
    _w_u32(fp, len(data))
    fp.write(data)


def _w_str(fp: BinaryIO, text: str) -> None:
    _w_bytes(fp, text.encode("utf-8"))


def _r_u32(fp: BinaryIO) -> int:
    data = fp.read(4)
    if len(data) != 4:
        raise CheckpointError("truncated checkpoint (u32)")
    return struct.unpack("<I", data)[0]


def _r_u64(fp: BinaryIO) -> int:
    data = fp.read(8)
    if len(data) != 8:
        raise CheckpointError("truncated checkpoint (u64)")
    return struct.unpack("<Q", data)[0]


def _r_f64(fp: BinaryIO) -> float:
    data = fp.read(8)
    if len(data) != 8:
        raise CheckpointError("truncated checkpoint (f64)")
    return struct.unpack("<d", data)[0]


def _r_bytes(fp: BinaryIO) -> bytes:
    n = _r_u32(fp)
    data = fp.read(n)
    if len(data) != n:
        raise CheckpointError("truncated checkpoint (bytes)")
    return data


def _r_str(fp: BinaryIO) -> str:
    return _r_bytes(fp).decode("utf-8")


def _w_chunk(fp: BinaryIO, chunk: Chunk) -> None:
    fp.write(
        struct.pack(
            "<IQQQQ",
            chunk.disk,
            chunk.start,
            chunk.nblocks,
            chunk.npostings,
            chunk.reserved,
        )
    )


def _r_chunk(fp: BinaryIO) -> Chunk:
    data = fp.read(36)
    if len(data) != 36:
        raise CheckpointError("truncated checkpoint (chunk)")
    disk, start, nblocks, npostings, reserved = struct.unpack("<IQQQQ", data)
    return Chunk(
        disk=disk,
        start=start,
        nblocks=nblocks,
        npostings=npostings,
        reserved=reserved,
    )


def _w_payload(fp: BinaryIO, payload) -> None:
    if isinstance(payload, CountPostings):
        fp.write(b"C")
        _w_u64(fp, payload.count)
    elif isinstance(payload, PositionalPostings):
        fp.write(b"P")
        _w_bytes(fp, payload.encode())
    elif isinstance(payload, DocPostings):
        fp.write(b"D")
        _w_bytes(fp, payload.encode())
    else:
        raise CheckpointError(f"cannot checkpoint payload {type(payload)!r}")


def _r_payload(fp: BinaryIO):
    tag = fp.read(1)
    if tag == b"C":
        return CountPostings(_r_u64(fp))
    if tag == b"D":
        return DocPostings.decode(_r_bytes(fp))
    if tag == b"P":
        return PositionalPostings.decode(_r_bytes(fp))
    raise CheckpointError(f"unknown payload tag {tag!r}")


# -- save -----------------------------------------------------------------------


def save(index: DualStructureIndex, target) -> None:
    """Write a checkpoint of ``index`` to a path or binary file object.

    Raises :class:`CheckpointError` when the in-memory batch is not empty
    (checkpoints happen at batch boundaries) or the array uses a buddy
    allocator (whose internal state is not interval-shaped).
    """
    if len(index.memory) != 0:
        raise CheckpointError(
            "checkpoint requires an empty in-memory batch; call "
            "flush_batch() first"
        )
    for disk in index.array.disks:
        if isinstance(disk.freelist, BuddyFreeList):
            raise CheckpointError("buddy allocator state is not checkpointable")
    if hasattr(target, "write"):
        _save(index, target)
    else:
        with open(target, "wb") as fp:
            _save(index, fp)


def _save(index: DualStructureIndex, fp: BinaryIO) -> None:
    cfg = index.config
    faults.crash_point(CP_BEGIN_SAVE)
    fp.write(_MAGIC)
    fp.write(bytes([_VERSION]))
    # configuration — the bucket count is taken from the *live* manager,
    # not the config: bucket growth enlarges the manager and re-syncs the
    # config, but the manager is authoritative if they ever disagree (a
    # checkpoint that under-counts buckets would rebuild a manager too
    # small for the grown bucket ids and corrupt the restore).
    _w_u32(fp, index.buckets.nbuckets)
    _w_u32(fp, cfg.bucket_size)
    _w_u32(fp, cfg.block_postings)
    _w_u32(fp, cfg.ndisks)
    _w_str(fp, cfg.allocator)
    _w_str(fp, cfg.policy.style.value)
    _w_str(fp, cfg.policy.limit.value)
    _w_str(fp, cfg.policy.alloc.value)
    _w_f64(fp, cfg.policy.k)
    _w_u32(fp, cfg.policy.extent_blocks)
    _w_u32(fp, 1 if cfg.store_contents else 0)
    _w_u32(fp, 1 if cfg.positional else 0)
    _w_u64(fp, cfg.nblocks_override or 0)
    _w_u32(fp, 1 if cfg.trace_enabled else 0)
    _w_u32(fp, cfg.directory_entry_bytes)
    profile = cfg.profile or SEAGATE_SCSI_1994
    _w_str(fp, profile.name)
    # progress
    _w_u64(fp, index._batches)
    _w_u64(fp, index._next_doc_id)
    _w_u32(fp, index.array._next_disk)
    # directory
    entries = list(index.longlists.directory.entries())
    _w_u64(fp, len(entries))
    for entry in entries:
        _w_u64(fp, entry.word)
        _w_u32(fp, len(entry.chunks))
        for chunk in entry.chunks:
            _w_chunk(fp, chunk)
    faults.crash_point(CP_MID_SAVE)
    # buckets
    nonempty = [
        (i, b) for i, b in enumerate(index.buckets.buckets) if b.lists
    ]
    _w_u64(fp, len(nonempty))
    for bucket_id, bucket in nonempty:
        _w_u32(fp, bucket_id)
        _w_u32(fp, len(bucket.lists))
        for word, payload in bucket.lists.items():
            _w_u64(fp, word)
            _w_payload(fp, payload)
    # flush regions (shadow bookkeeping)
    _w_u32(fp, len(index.flusher._bucket_regions))
    for chunk in index.flusher._bucket_regions:
        _w_chunk(fp, chunk)
    have_dir = index.flusher._directory_region is not None
    _w_u32(fp, 1 if have_dir else 0)
    if have_dir:
        _w_chunk(fp, index.flusher._directory_region)
    # free lists: store allocated state as free intervals
    for disk in index.array.disks:
        intervals = list(disk.freelist.intervals())
        _w_u64(fp, disk.freelist.nblocks)
        _w_u64(fp, len(intervals))
        for start, length in intervals:
            _w_u64(fp, start)
            _w_u64(fp, length)
    # disk contents
    _w_u32(fp, 1 if cfg.store_contents else 0)
    if cfg.store_contents:
        for disk in index.array.disks:
            blocks = disk._blocks
            _w_u64(fp, len(blocks))
            for block, data in blocks.items():
                _w_u64(fp, block)
                _w_bytes(fp, data)
    # counters
    c = index.longlists.counters
    for value in (
        c.appends,
        c.appends_to_existing,
        c.in_place_updates,
        c.reads,
        c.writes,
        c.blocks_read,
        c.blocks_written,
        c.lists_created,
        c.whole_moves,
    ):
        _w_u64(fp, value)
    # adaptive-allocation update-size estimates
    sizes = index.longlists._update_sizes
    _w_u64(fp, len(sizes))
    for word, estimate in sizes.items():
        _w_u64(fp, word)
        _w_f64(fp, estimate)
    faults.crash_point(CP_END_SAVE)


# -- load -----------------------------------------------------------------------


def load(source) -> DualStructureIndex:
    """Reconstruct a :class:`DualStructureIndex` from a checkpoint."""
    if hasattr(source, "read"):
        return _load(source)
    with open(source, "rb") as fp:
        return _load(fp)


def _load(fp: BinaryIO) -> DualStructureIndex:
    if fp.read(4) != _MAGIC:
        raise CheckpointError("not a dual-structure index checkpoint")
    version = fp.read(1)
    if version != bytes([_VERSION]):
        raise CheckpointError(f"unsupported checkpoint version {version!r}")
    nbuckets = _r_u32(fp)
    bucket_size = _r_u32(fp)
    block_postings = _r_u32(fp)
    ndisks = _r_u32(fp)
    allocator = _r_str(fp)
    policy = Policy(
        style=Style(_r_str(fp)),
        limit=Limit(_r_str(fp)),
        alloc=Alloc(_r_str(fp)),
        k=_r_f64(fp),
        extent_blocks=_r_u32(fp),
    )
    store_contents = bool(_r_u32(fp))
    positional = bool(_r_u32(fp))
    nblocks_override = _r_u64(fp) or None
    trace_enabled = bool(_r_u32(fp))
    directory_entry_bytes = _r_u32(fp)
    profile_name = _r_str(fp)
    profile = PROFILES.get(profile_name, SEAGATE_SCSI_1994)
    config = IndexConfig(
        nbuckets=nbuckets,
        bucket_size=bucket_size,
        block_postings=block_postings,
        ndisks=ndisks,
        allocator=allocator,
        policy=policy,
        store_contents=store_contents,
        positional=positional,
        nblocks_override=nblocks_override,
        trace_enabled=trace_enabled,
        directory_entry_bytes=directory_entry_bytes,
        profile=profile,
    )
    index = DualStructureIndex(config)
    index._batches = _r_u64(fp)
    index._next_doc_id = _r_u64(fp)
    index.array._next_disk = _r_u32(fp)
    # directory
    nentries = _r_u64(fp)
    for _ in range(nentries):
        word = _r_u64(fp)
        nchunks = _r_u32(fp)
        entry = index.longlists.directory.entry(word)
        for _ in range(nchunks):
            entry.chunks.append(_r_chunk(fp))
    # buckets
    nbucket_records = _r_u64(fp)
    for _ in range(nbucket_records):
        bucket_id = _r_u32(fp)
        nwords = _r_u32(fp)
        bucket = index.buckets.buckets[bucket_id]
        for _ in range(nwords):
            word = _r_u64(fp)
            payload = _r_payload(fp)
            bucket.lists[word] = payload
            bucket.npostings += len(payload)
    # flush regions
    nregions = _r_u32(fp)
    index.flusher._bucket_regions = [_r_chunk(fp) for _ in range(nregions)]
    if _r_u32(fp):
        index.flusher._directory_region = _r_chunk(fp)
    # free lists
    for disk in index.array.disks:
        nblocks = _r_u64(fp)
        if nblocks != disk.freelist.nblocks:
            raise CheckpointError(
                "checkpoint disk capacity does not match configuration"
            )
        nintervals = _r_u64(fp)
        disk.freelist._starts = []
        disk.freelist._lengths = []
        for _ in range(nintervals):
            disk.freelist._starts.append(_r_u64(fp))
            disk.freelist._lengths.append(_r_u64(fp))
        disk.freelist.check_invariants()
    # disk contents
    if _r_u32(fp):
        for disk in index.array.disks:
            nblocks_stored = _r_u64(fp)
            for _ in range(nblocks_stored):
                block = _r_u64(fp)
                disk._blocks[block] = _r_bytes(fp)
    # counters
    c = index.longlists.counters
    (
        c.appends,
        c.appends_to_existing,
        c.in_place_updates,
        c.reads,
        c.writes,
        c.blocks_read,
        c.blocks_written,
        c.lists_created,
        c.whole_moves,
    ) = (_r_u64(fp) for _ in range(9))
    # adaptive-allocation update-size estimates
    nsizes = _r_u64(fp)
    for _ in range(nsizes):
        word = _r_u64(fp)
        index.longlists._update_sizes[word] = _r_f64(fp)
    return index


def clone(index: DualStructureIndex) -> DualStructureIndex:
    """An independent deep copy of ``index`` via the checkpoint format.

    The serving layer's copy-on-publish primitive: the copy shares no
    mutable structure with the original (directory, buckets, free lists,
    disk block payloads are all rebuilt from the serialized form), so
    readers holding the copy never observe a half-flushed bucket or a
    partially relocated long list while the writer mutates the original.
    Same preconditions as :func:`save` — call at a batch boundary.
    """
    buf = io.BytesIO()
    save(index, buf)
    buf.seek(0)
    return load(buf)


def roundtrip(index: DualStructureIndex) -> DualStructureIndex:
    """Save to memory and load back (test/debug convenience)."""
    return clone(index)


# -- incremental copy-on-write clone -------------------------------------------


def _config_fingerprint(cfg: IndexConfig) -> tuple:
    """The structural parameters two clones of one index must agree on.

    This is exactly the projection the serialized format round-trips —
    fault plans, crash safety, and bucket growth are deliberately absent
    (``_load`` never reconstructs them), so a full clone and an
    incremental clone of the same writer compare equal.
    """
    return (
        cfg.nbuckets,
        cfg.bucket_size,
        cfg.block_postings,
        cfg.ndisks,
        cfg.allocator,
        cfg.policy,
        cfg.store_contents,
        cfg.positional,
        cfg.nblocks_override,
        cfg.trace_enabled,
        cfg.directory_entry_bytes,
        (cfg.profile or SEAGATE_SCSI_1994).name,
    )


def clone_incremental(
    index: DualStructureIndex,
    prev: DualStructureIndex,
    delta: DeltaJournal,
) -> DualStructureIndex:
    """An O(batch) clone of ``index`` sharing structure with ``prev``.

    ``prev`` must be the immediately preceding published clone of the
    same writer (itself produced by :func:`clone` or this function) and
    ``delta`` the journal of every writer mutation since ``prev`` was
    taken.  The result is equivalent to ``clone(index)`` but deep-copies
    only the dirty set:

    * untouched ``Bucket`` objects, directory entries, and chunk records
      are shared with ``prev`` by reference;
    * untouched disk blocks are shared through a
      :class:`~repro.storage.blockmap.LayeredBlocks` overlay whose only
      own entries are the batch's dirty blocks (rewrites carry the
      writer's bytes, frees are masked with ``ABSENT``);
    * dirty words, buckets, and flush regions are copied fresh from the
      writer, never aliased to it.

    Shared state is safe because published clones are never mutated —
    enforced in debug mode by ``invariants.freeze_index``.  Raises
    :class:`CheckpointError` whenever the delta cannot vouch for the
    divergence (bucket growth, crash recovery, bookkeeping mismatch) —
    callers fall back to the full :func:`clone`, which doubles as the
    differential-testing oracle for this fast path.
    """
    cfg = prev.config
    if delta is None:
        raise CheckpointError("incremental clone requires a delta journal")
    if delta.requires_full:
        raise CheckpointError(
            "delta journal cannot vouch for sharing (structure change or "
            "crash recovery since the previous publish); use a full clone"
        )
    if not cfg.store_contents:
        raise CheckpointError("incremental clone requires content mode")
    if len(index.memory) != 0:
        raise CheckpointError(
            "incremental clone requires an empty in-memory batch; call "
            "flush_batch() first"
        )
    if index.longlists.release:
        raise CheckpointError(
            "incremental clone requires an empty RELEASE list (publish at "
            "a batch boundary, not mid-sweep)"
        )
    for disk in index.array.disks:
        if isinstance(disk.freelist, BuddyFreeList):
            raise CheckpointError(
                "buddy allocator state is not checkpointable"
            )
    if _config_fingerprint(cfg) != _config_fingerprint(index.config):
        raise CheckpointError(
            "previous clone was built from a different configuration"
        )
    if prev._batches + delta.batches != index._batches:
        raise CheckpointError(
            f"delta journal covers {delta.batches} batch(es) but the "
            f"writer advanced from {prev._batches} to {index._batches}; "
            "the journal was cleared at the wrong boundary"
        )
    faults.crash_point(CP_COW_PUBLISH)

    out = DualStructureIndex.__new__(DualStructureIndex)
    out.config = cfg
    out.trace = IOTrace() if cfg.trace_enabled else None

    # Disks: writer free-space intervals, block maps layered over prev.
    # A full clone always reconstructs a plain (fault-free) DiskArray,
    # so the incremental path does the same for exact parity.
    out.array = DiskArray(cfg.array_config())
    out.array._next_disk = index.array._next_disk
    dirty_by_disk: dict[int, list[int]] = {}
    for disk_id, block in delta.dirty_blocks:
        dirty_by_disk.setdefault(disk_id, []).append(block)
    for disk_id, disk in enumerate(out.array.disks):
        writer_disk = index.array.disks[disk_id]
        disk.freelist._starts = list(writer_disk.freelist._starts)
        disk.freelist._lengths = list(writer_disk.freelist._lengths)
        disk.freelist.check_invariants()
        overlay: dict = {}
        writer_blocks = writer_disk._blocks
        for block in dirty_by_disk.get(disk_id, ()):
            payload = writer_blocks.get(block)
            overlay[block] = ABSENT if payload is None else payload
        disk._blocks = LayeredBlocks.over(
            prev.array.disks[disk_id]._blocks, overlay
        )

    # Buckets: share every untouched Bucket object with prev; dirty
    # buckets are rebuilt from the writer with payloads copied so the
    # clone never aliases writer-mutable state.
    out.buckets = BucketManager(cfg.nbuckets, cfg.bucket_size)
    shared_buckets = list(prev.buckets.buckets)
    for bucket_id in delta.dirty_buckets:
        source = index.buckets.buckets[bucket_id]
        fresh = Bucket(source.capacity)
        for word, payload in source.lists.items():
            fresh.lists[word] = payload.copy()
        fresh.npostings = source.npostings
        shared_buckets[bucket_id] = fresh
    out.buckets.buckets = shared_buckets

    # Long lists: share untouched directory entries (and their Chunk
    # records) with prev; dirty words get fresh entries with fresh chunk
    # copies — in-place updates mutate Chunk.npostings on the writer, so
    # chunk records of dirty words must never be aliased.
    content_cls = PositionalPostings if cfg.positional else DocPostings
    out.longlists = LongListManager(
        cfg.policy,
        out.array,
        cfg.block_postings,
        trace=out.trace,
        content_cls=content_cls,
    )
    entries = dict(prev.longlists.directory._entries)
    for word in delta.dirty_words:
        source_entry = index.longlists.directory.get(word)
        if source_entry is None:
            # The word has no long list any more (bucket-resident, or
            # removed by a deletion sweep).
            entries.pop(word, None)
        else:
            entries[word] = LongListEntry(
                word=word,
                chunks=[
                    Chunk(
                        disk=c.disk,
                        start=c.start,
                        nblocks=c.nblocks,
                        npostings=c.npostings,
                        reserved=c.reserved,
                    )
                    for c in source_entry.chunks
                ],
            )
    out.longlists.directory._entries = entries
    out.longlists.counters = _dc_replace(index.longlists.counters)
    out.longlists._update_sizes = dict(index.longlists._update_sizes)

    # Flush regions: small, always rewritten each batch — copy fresh.
    # FlushCounters stay zero, matching what a load reconstructs.
    out.flusher = FlushManager(
        out.array,
        cfg.block_postings,
        trace=out.trace,
        directory_entry_bytes=cfg.directory_entry_bytes,
    )
    out.flusher._bucket_regions = [
        Chunk(
            disk=c.disk,
            start=c.start,
            nblocks=c.nblocks,
            npostings=c.npostings,
            reserved=c.reserved,
        )
        for c in index.flusher._bucket_regions
    ]
    if index.flusher._directory_region is not None:
        c = index.flusher._directory_region
        out.flusher._directory_region = Chunk(
            disk=c.disk,
            start=c.start,
            nblocks=c.nblocks,
            npostings=c.npostings,
            reserved=c.reserved,
        )
    out.memory = InMemoryIndex()
    out.grower = None
    out._batches = index._batches
    out._next_doc_id = index._next_doc_id
    out._last_recovery_point = None
    out._aborted_batch = None
    out._aborted_next_doc_id = 0
    out.delta = DeltaJournal()
    out._attach_journal()
    return out
