"""The immediate-access in-memory tier: a queryable compressed write buffer.

The paper's visibility contract is batch-grained: a document ingested into
the in-memory batch (:mod:`repro.core.memindex`) becomes searchable only
at the flush that publishes it, so read-your-writes latency is bounded
below by the whole flush + publish path.  Moffat & Mackenzie's immediate-
access dynamic indexing and Asadi & Lin's in-memory incremental indexing
(PAPERS.md) point at the LSM-style alternative this module implements: an
*accumulative* index that absorbs ``add_document`` / ``delete_document``
the moment they happen and is queryable concurrently, while the ordinary
flush path drains it into the dual-structure disk index in the background.

Structure — one writer, lock-free readers:

* the **active segment** is an append-only ``term -> [doc ids]`` map the
  writer inserts into; readers slice it under the *visibility watermark*
  (the highest fully inserted doc id), so a half-inserted document is
  never observable — its id sits above the watermark until every term is
  in place;
* once the active segment reaches the seal threshold it is **sealed**:
  its lists are gap-compressed with a :data:`repro.core.compression.CODECS`
  codec into an immutable :class:`SealedSegment`, and a fresh active
  segment rotates in with a single atomic view swap — readers never see a
  list mid-compression;
* **tombstones** record buffered deletions (of snapshot documents and of
  buffered documents alike) as an immutable frozenset replaced wholesale
  per delete, filtering both tiers' answers;
* at each publish :meth:`MemTier.rebase` swaps in the new base snapshot
  and drops everything the snapshot now covers — under the writer lock,
  so nothing is ever lost or double-counted; a reader holding the old
  view keeps a consistent (old base + buffered) state whose merged answer
  is identical.

Epoch accounting for the result cache: a global counter bumps on every
mutation, and per-term / universe / tombstone epochs record *when* each
facet last changed.  :meth:`MemTier.clean_since` lets the cache keep an
immediate-tier entry across unrelated buffered writes and drop exactly
the entries whose terms (or universe, or deletion set) the buffer
touched since the entry was computed.

Read-op accounting: memory postings are free of I/O charge — the same
convention :meth:`DualStructureIndex.fetch` and the streaming cursors
already use for the unflushed batch — so an immediate-tier query charges
exactly the read ops its snapshot-tier evaluation would.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable

from .compression import CODECS


class SealedSegment:
    """An immutable, gap-compressed memory segment.

    Built in one shot from a retired active segment; after construction
    it is never mutated, so readers may decode from it without locks.
    Every document inside is complete (sealing happens only at document
    boundaries), hence no watermark filtering on the sealed path.
    """

    __slots__ = ("_lists", "ndocs", "npostings", "min_doc", "max_doc",
                 "codec", "nbytes")

    def __init__(self, lists: dict[str, list[int]], ndocs: int,
                 codec: str) -> None:
        encode, _ = CODECS[codec]
        self.codec = codec
        self.ndocs = ndocs
        self.npostings = 0
        self.nbytes = 0
        self.min_doc = -1
        self.max_doc = -1
        packed: dict[str, tuple[bytes, int]] = {}
        for term, doc_ids in lists.items():
            blob = encode(doc_ids)
            packed[term] = (blob, len(doc_ids))
            self.npostings += len(doc_ids)
            self.nbytes += len(blob)
            if self.min_doc < 0 or doc_ids[0] < self.min_doc:
                self.min_doc = doc_ids[0]
            if doc_ids[-1] > self.max_doc:
                self.max_doc = doc_ids[-1]
        self._lists = packed

    def __contains__(self, term: str) -> bool:
        return term in self._lists

    def postings(self, term: str) -> list[int]:
        """The term's ascending doc ids (decoded per call)."""
        entry = self._lists.get(term)
        if entry is None:
            return []
        blob, count = entry
        _, decode = CODECS[self.codec]
        return list(decode(blob, count))

    def terms(self) -> Iterable[str]:
        return self._lists.keys()


class ActiveSegment:
    """The unsealed, append-only segment the writer inserts into.

    Lists only ever grow at the tail and doc ids arrive in increasing
    order, so a reader holding a view slices each list to the ids at or
    below its captured watermark (a bisect on the immutable-so-far
    prefix) — concurrent appends extend the list past the slice but never
    reorder it.
    """

    __slots__ = ("lists", "ndocs", "npostings", "min_doc", "max_doc")

    def __init__(self) -> None:
        self.lists: dict[str, list[int]] = {}
        self.ndocs = 0
        self.npostings = 0
        self.min_doc = -1
        self.max_doc = -1

    def add(self, doc_id: int, terms: Iterable[str]) -> int:
        """Append one document's postings; returns postings added."""
        added = 0
        lists = self.lists
        for term in terms:
            docs = lists.get(term)
            if docs is None:
                lists[term] = [doc_id]
            else:
                docs.append(doc_id)
            added += 1
        self.ndocs += 1
        self.npostings += added
        if self.min_doc < 0:
            self.min_doc = doc_id
        self.max_doc = doc_id
        return added

    def postings_upto(self, term: str, watermark: int) -> list[int]:
        """The term's doc ids at or below ``watermark`` (copied)."""
        docs = self.lists.get(term)
        if not docs:
            return []
        # The slice point is stable: ids are ascending and appends only
        # extend the tail, so bisect over a concurrent append is safe.
        return docs[: bisect_right(docs, watermark)]


class MemTierView:
    """One atomically captured read view of the memory tier.

    Everything a two-tier evaluation needs, frozen at capture time: the
    base disk snapshot, the sealed segments, the (shared but
    watermark-sliced) active segment, the tombstone set, the visibility
    watermark, and the epoch to stamp cached results with.  Answers
    computed from one view are internally consistent even while the
    writer keeps ingesting or a background merge publishes: each of
    these fields is immutable or safely sliceable.
    """

    __slots__ = ("base", "sealed", "active", "tombstones", "visible",
                 "epoch")

    def __init__(self, base, sealed, active, tombstones, visible,
                 epoch) -> None:
        self.base = base
        self.sealed = sealed
        self.active = active
        self.tombstones = tombstones
        self.visible = visible
        self.epoch = epoch

    @property
    def base_ndocs(self) -> int:
        """Doc ids below this live in the base snapshot's universe."""
        return self.base.ndocs if self.base is not None else 0

    @property
    def ndocs(self) -> int:
        """The merged universe size: base plus every visible buffered doc."""
        return max(self.base_ndocs, self.visible + 1)

    @property
    def buffered_docs(self) -> int:
        """Visible buffered documents (sealed + active under watermark)."""
        return max(0, self.ndocs - self.base_ndocs)

    def postings(self, term: str) -> list[int]:
        """The term's buffered doc ids, ascending, tombstones *not* yet
        filtered (the merge layer filters once over both tiers)."""
        runs: list[int] = []
        for segment in self.sealed:
            runs.extend(segment.postings(term))
        runs.extend(self.active.postings_upto(term, self.visible))
        return runs

    def is_empty(self) -> bool:
        """True when the merged answer equals the base snapshot's."""
        return (
            not self.tombstones
            and not self.sealed
            and self.visible < self.base_ndocs
        )


class MemTier:
    """The writer-owned memory tier with lock-free reader views.

    Threading contract (the same one the serving layer already lives
    by): all mutators — :meth:`add_document`, :meth:`delete_document`,
    :meth:`rebase` — are called under the service's writer lock;
    :meth:`view` and :meth:`clean_since` are safe from any number of
    reader threads concurrently, because every published structure is
    either immutable (sealed segments, tombstone frozensets, the view
    tuple itself) or append-only under a captured watermark (the active
    segment's lists).
    """

    def __init__(self, *, codec: str = "delta", seal_docs: int = 64,
                 seal_postings: int = 8192, base=None) -> None:
        if codec not in CODECS:
            raise ValueError(f"unknown codec {codec!r}")
        if seal_docs < 1 or seal_postings < 1:
            raise ValueError("seal thresholds must be >= 1")
        self.codec = codec
        self.seal_docs = seal_docs
        self.seal_postings = seal_postings
        self._base = base
        self._sealed: tuple[SealedSegment, ...] = ()
        self._active = ActiveSegment()
        self._tombstones: frozenset[int] = frozenset()
        self._visible = (base.ndocs - 1) if base is not None else -1
        self._epoch = 0
        self._term_epochs: dict[str, int] = {}
        self._ndocs_epoch = -1
        self._tombstone_epoch = -1
        self.seals = 0
        self.rebases = 0

    # -- writer side -------------------------------------------------------

    def add_document(self, doc_id: int, words: Iterable[str]) -> None:
        """Absorb one document immediately (distinct lowercased terms).

        Postings land in the active segment first; the watermark moves
        only after the *whole* document is inserted, so a concurrent
        reader either sees all of the document or none of it.
        """
        if doc_id <= self._visible:
            raise ValueError(
                f"doc id {doc_id} is not above the watermark "
                f"{self._visible}"
            )
        terms = sorted({w.lower() for w in words})
        self._epoch += 1
        epoch = self._epoch
        for term in terms:
            self._term_epochs[term] = epoch
        self._ndocs_epoch = epoch
        self._active.add(doc_id, terms)
        # Publication point: the document becomes visible here, whole.
        self._visible = doc_id
        if (
            self._active.ndocs >= self.seal_docs
            or self._active.npostings >= self.seal_postings
        ):
            self._seal()

    def delete_document(self, doc_id: int) -> None:
        """Tombstone a document (snapshot-resident or buffered) now."""
        self._epoch += 1
        self._tombstone_epoch = self._epoch
        # Copy-on-write: readers holding the old frozenset keep a
        # consistent deletion filter.
        self._tombstones = self._tombstones | {doc_id}

    def _seal(self) -> None:
        """Compress the active segment and rotate a fresh one in.

        The sealed segment is fully built *before* it becomes reachable,
        and the retired active segment is never appended to again — a
        reader mid-iteration on the old structures stays correct.
        """
        active = self._active
        if not active.ndocs:
            return
        segment = SealedSegment(active.lists, active.ndocs, self.codec)
        self._sealed = self._sealed + (segment,)
        self._active = ActiveSegment()
        self.seals += 1

    def rebase(self, base) -> None:
        """Swap in the freshly published base snapshot and drop what it
        covers (called at publish time, under the writer lock).

        The flush that produced ``base`` drained the writer's whole
        batch and applied every pending deletion, so normally *all*
        buffered postings and tombstones are covered; anything above the
        new base's universe (which cannot happen under the writer lock,
        but is pruned rather than asserted away) is re-buffered.
        """
        base_ndocs = base.ndocs
        survivors = ActiveSegment()
        kept_docs: set[int] = set()
        for segment in self._sealed + (self._active,):
            source = (
                segment.lists
                if isinstance(segment, ActiveSegment)
                else {t: segment.postings(t) for t in segment.terms()}
            )
            for term, docs in source.items():
                for doc_id in docs:
                    if doc_id < base_ndocs:
                        continue
                    survivors.lists.setdefault(term, []).append(doc_id)
                    survivors.npostings += 1
                    kept_docs.add(doc_id)
        survivors.ndocs = len(kept_docs)
        if kept_docs:
            survivors.min_doc = min(kept_docs)
            survivors.max_doc = max(kept_docs)
        self._sealed = ()
        self._active = survivors
        self._tombstones = frozenset(
            d for d in self._tombstones if d >= base_ndocs
        )
        self._base = base
        self._visible = max(self._visible, base_ndocs - 1)
        self._epoch += 1
        self.rebases += 1
        # Facet epochs reset: cache entries that survive the service's
        # publish_delta had terms disjoint from the flushed batch's dirty
        # vocabulary and universe/deletion changes already evicted the
        # sensitive ones — so the drained buffer is clean for all of them.
        self._term_epochs.clear()
        self._ndocs_epoch = -1
        self._tombstone_epoch = -1

    # -- reader side -------------------------------------------------------

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def base(self):
        return self._base

    def view(self) -> MemTierView:
        """Capture one consistent read view (no locks).

        Field order matters: the structural tuple (base, sealed, active,
        tombstones) is read before the watermark, so ``visible`` can
        only run *ahead* of the captured structures — ids it admits that
        the old active segment does not contain are simply absent, which
        degrades to an earlier (still consistent) prefix of the ingest
        stream, never a torn document.
        """
        base = self._base
        sealed = self._sealed
        active = self._active
        tombstones = self._tombstones
        epoch = self._epoch
        visible = self._visible
        return MemTierView(base, sealed, active, tombstones, visible,
                           epoch)

    def clean_since(self, terms: Iterable[str], since_epoch: int,
                    universe_sensitive: bool) -> bool:
        """True when a result computed at ``since_epoch`` over ``terms``
        is still exact at the current epoch.

        The buffered-delta analogue of the cache's publish-time rules:
        the deletion filter must not have changed, the universe must not
        have grown (for universe-sensitive answers), and none of the
        entry's terms may have been buffered since.
        """
        if self._tombstone_epoch > since_epoch:
            return False
        if universe_sensitive and self._ndocs_epoch > since_epoch:
            return False
        epochs = self._term_epochs
        return all(epochs.get(t, -1) <= since_epoch for t in terms)

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        """Point-in-time counters (writer thread or tests)."""
        sealed_postings = sum(s.npostings for s in self._sealed)
        return {
            "codec": self.codec,
            "epoch": self._epoch,
            "sealed_segments": len(self._sealed),
            "sealed_postings": sealed_postings,
            "sealed_bytes": sum(s.nbytes for s in self._sealed),
            "active_docs": self._active.ndocs,
            "active_postings": self._active.npostings,
            "buffered_postings": sealed_postings + self._active.npostings,
            "tombstones": len(self._tombstones),
            "seals": self.seals,
            "rebases": self.rebases,
        }
