"""Positional and region-tagged postings (paper §1).

"Each posting may include a variety of information, such as the word
offset (within the document) where w occurs or the region where w occurs
(title, abstract, author list, etc.)" — and the query side: "the query may
also give additional conditions, such as requiring that 'cat' and 'dog'
occur within so many words of each other, or that 'mouse' occur within a
title region."

:class:`PositionalPostings` is a drop-in payload for the dual-structure
machinery: ``len()`` still counts *postings* (word–document pairs), so
bucket sizing, policy accounting and all evaluation metrics are unchanged;
each posting simply carries its occurrence positions and a region bitmask.
The wire encoding extends the delta+varint scheme:

    per posting: doc-id gap | region mask | #positions | position gaps

Region vocabulary follows the paper's examples (title, abstract, author,
body as the catch-all); masks are bit-ors so a word seen in both title and
body carries both flags.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable

from .postings import decode_varint, encode_varint


class Region(enum.IntFlag):
    """Document regions a posting can be tagged with (paper §1)."""

    BODY = 1
    TITLE = 2
    ABSTRACT = 4
    AUTHOR = 8

    @classmethod
    def all_regions(cls) -> "Region":
        return cls.BODY | cls.TITLE | cls.ABSTRACT | cls.AUTHOR


@dataclass(frozen=True)
class PositionalPosting:
    """One posting: a document plus where the word occurs in it."""

    doc_id: int
    positions: tuple[int, ...]
    regions: Region = Region.BODY

    def __post_init__(self) -> None:
        if self.doc_id < 0:
            raise ValueError("doc_id must be >= 0")
        if not self.positions:
            raise ValueError("a posting needs at least one position")
        if any(
            b <= a for a, b in zip(self.positions, self.positions[1:])
        ) or self.positions[0] < 0:
            raise ValueError("positions must be strictly increasing and >= 0")
        if int(self.regions) <= 0:
            raise ValueError("a posting needs at least one region flag")


class PositionalPostings:
    """A strictly doc-id-increasing sequence of positional postings.

    Implements the same payload protocol as :class:`DocPostings`
    (``len``/``extend``/``split``/``copy``/``encode``/``decode``) so the
    entire index stack works unchanged.
    """

    __slots__ = ("entries",)

    def __init__(self, entries: Iterable[PositionalPosting] = ()) -> None:
        items = list(entries)
        for prev, cur in zip(items, items[1:]):
            if cur.doc_id <= prev.doc_id:
                raise ValueError(
                    "doc ids must be strictly increasing; "
                    f"{cur.doc_id} after {prev.doc_id}"
                )
        self.entries = items

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        return f"PositionalPostings({self.entries!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PositionalPostings)
            and other.entries == self.entries
        )

    @property
    def doc_ids(self) -> list[int]:
        """Document ids only — what boolean/vector queries consume."""
        return [p.doc_id for p in self.entries]

    def extend(self, other: "PositionalPostings") -> None:
        if not isinstance(other, PositionalPostings):
            raise TypeError("cannot mix payload kinds in one index")
        if other.entries:
            if (
                self.entries
                and other.entries[0].doc_id <= self.entries[-1].doc_id
            ):
                raise ValueError(
                    "appended postings must have larger doc ids "
                    f"({other.entries[0].doc_id} after "
                    f"{self.entries[-1].doc_id})"
                )
            self.entries.extend(other.entries)

    def split(
        self, npostings: int
    ) -> tuple["PositionalPostings", "PositionalPostings"]:
        if npostings < 0:
            raise ValueError("split point must be >= 0")
        head, tail = PositionalPostings(), PositionalPostings()
        head.entries = self.entries[:npostings]
        tail.entries = self.entries[npostings:]
        return head, tail

    def copy(self) -> "PositionalPostings":
        out = PositionalPostings()
        out.entries = list(self.entries)
        return out

    def without_docs(self, doc_ids) -> "PositionalPostings":
        """A copy with the given documents removed (deletion sweeps)."""
        out = PositionalPostings()
        out.entries = [e for e in self.entries if e.doc_id not in doc_ids]
        return out

    # -- codec ---------------------------------------------------------------

    def encode(self) -> bytes:
        out = bytearray()
        prev_doc = -1
        for posting in self.entries:
            out += encode_varint(posting.doc_id - prev_doc - 1)
            prev_doc = posting.doc_id
            out += encode_varint(int(posting.regions))
            out += encode_varint(len(posting.positions))
            prev_pos = -1
            for pos in posting.positions:
                out += encode_varint(pos - prev_pos - 1)
                prev_pos = pos
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "PositionalPostings":
        out = cls()
        offset = 0
        prev_doc = -1
        while offset < len(data):
            gap, offset = decode_varint(data, offset)
            doc = prev_doc + 1 + gap
            prev_doc = doc
            regions_raw, offset = decode_varint(data, offset)
            npositions, offset = decode_varint(data, offset)
            positions = []
            prev_pos = -1
            for _ in range(npositions):
                pgap, offset = decode_varint(data, offset)
                prev_pos = prev_pos + 1 + pgap
                positions.append(prev_pos)
            out.entries.append(
                PositionalPosting(doc, tuple(positions), Region(regions_raw))
            )
        return out

    # -- construction helpers -----------------------------------------------------

    @classmethod
    def single(
        cls,
        doc_id: int,
        positions: Iterable[int],
        regions: Region = Region.BODY,
    ) -> "PositionalPostings":
        return cls([PositionalPosting(doc_id, tuple(positions), regions)])

    def positions_for(self, doc_id: int) -> tuple[int, ...] | None:
        """Positions of the word in ``doc_id`` (binary search)."""
        lo, hi = 0, len(self.entries)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.entries[mid].doc_id < doc_id:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(self.entries) and self.entries[lo].doc_id == doc_id:
            return self.entries[lo].positions
        return None
