"""Long lists and the Figure-2 update algorithm — the heart of the paper.

:class:`LongListManager` owns the directory, talks to the disk array, and
applies a :class:`~repro.core.policy.Policy` to every append of an in-memory
list ``M`` to a word's long list ``L``.  The paper's pseudo-code::

    1  if y <= Limit then
    2      UPDATE(M)                      -- in-place append into slack z
    3  else
    4      if Style = whole then
    5          b := READ(L)
    6          WRITE_RESERVED(M and b)    -- old chunks retire to RELEASE
    7      if Style = fill then
    8          WHILE (M not empty)
    9              WRITE(M, M)            -- one fixed-size extent at a time
    10     if Style = new then
    11         WRITE_RESERVED(M)

where ``y = len(M)`` and ``z`` is the posting slack at the end of ``L``'s
last chunk.  Consequence of lines 1–2 (paper §3): an in-memory list is never
split across chunks by an in-place update — either all of ``M`` fits in the
slack or the style machinery runs.

Every disk operation is recorded on an :class:`~repro.storage.IOTrace`
(when attached) so the ComputeDisks stage of the pipeline is literally this
class running over a long-list update trace.

In content mode (``store_contents=True`` on the disk array) the manager also
moves real posting bytes: each block stores a self-contained delta+varint
encoding of the postings that live in it, so queries can read lists back by
visiting exactly the chunks the directory names — paying exactly the read
operations the evaluation charges.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..storage import faults
from ..storage.block import Chunk, blocks_for_postings
from ..storage.diskarray import DiskArray
from ..storage.iotrace import IOTrace, OpKind, Target, TraceOp
from .directory import Directory, LongListEntry
from .policy import Policy, Style
from .postings import CountPostings, DocPostings, PostingPayload, empty_like

CP_BEFORE_INPLACE_WRITE = faults.register_crash_point(
    "longlists.before-inplace-write",
    "UPDATE(M): tail block read, in-place write not yet applied",
)
CP_AFTER_WHOLE_READ = faults.register_crash_point(
    "longlists.after-whole-read",
    "whole style: old chunks read and retired to RELEASE, new chunk not "
    "yet written",
)
CP_AFTER_CHUNK_ALLOC = faults.register_crash_point(
    "longlists.after-chunk-alloc",
    "WRITE_RESERVED: chunk allocated, not yet entered in the directory",
)
CP_FILL_EXTENT = faults.register_crash_point(
    "longlists.fill-extent",
    "fill style: between extent writes of one update",
)
CP_BEFORE_RELEASE_FREE = faults.register_crash_point(
    "longlists.before-release-free",
    "batch boundary reached, RELEASE list not yet freed",
)
CP_MID_RELEASE_FREE = faults.register_crash_point(
    "longlists.mid-release-free",
    "some RELEASE chunks freed, the rest still allocated",
)


@dataclass
class LongListCounters:
    """Cumulative activity of the long-list manager.

    ``appends_to_existing`` is the paper's "total possible number of
    in-place updates"; ``in_place_updates`` over it gives the Table-5/6
    ``Frac`` column.
    """

    appends: int = 0
    appends_to_existing: int = 0
    in_place_updates: int = 0
    reads: int = 0
    writes: int = 0
    blocks_read: int = 0
    blocks_written: int = 0
    lists_created: int = 0
    whole_moves: int = 0

    @property
    def io_ops(self) -> int:
        return self.reads + self.writes

    @property
    def in_place_fraction(self) -> float:
        if self.appends_to_existing == 0:
            return 0.0
        return self.in_place_updates / self.appends_to_existing


class LongListManager:
    """Applies the update policy to long lists on a simulated disk array."""

    #: Delta-journal hook (attached by ``DualStructureIndex`` in content
    #: mode) and the publish-time write barrier flag.
    journal = None
    frozen = False
    #: Optional per-snapshot decoded-chunk cache (serving layer attaches a
    #: ``storage.buffercache.BlockBufferCache`` to published snapshots).
    buffer_cache = None

    def __init__(
        self,
        policy: Policy,
        array: DiskArray,
        block_postings: int,
        trace: IOTrace | None = None,
        content_cls: type = DocPostings,
    ) -> None:
        if block_postings <= 0:
            raise ValueError("block_postings must be > 0")
        self.policy = policy
        self.array = array
        self.block_postings = block_postings
        self.trace = trace
        self.content_cls = content_cls
        self.directory = Directory()
        self.release: list[Chunk] = []
        self.counters = LongListCounters()
        self._content = array.config.store_contents
        # Per-word EWMA of in-memory list sizes (adaptive allocation),
        # observed *after* each update so predictions use history only.
        self._update_sizes: dict[int, float] = {}
        self._current_prediction = 0.0

    def _check_unfrozen(self, action: str) -> None:
        if self.frozen:
            from .delta import FrozenStateError

            raise FrozenStateError(
                f"attempt to {action} a frozen (published) long-list manager"
            )

    # -- trace plumbing ------------------------------------------------------

    def _record(
        self,
        kind: OpKind,
        chunk_disk: int,
        start: int,
        nblocks: int,
        word: int,
        npostings: int,
    ) -> None:
        if kind is OpKind.READ:
            self.counters.reads += 1
            self.counters.blocks_read += nblocks
        else:
            self.counters.writes += 1
            self.counters.blocks_written += nblocks
        if self.trace is not None:
            self.trace.append(
                TraceOp(
                    kind=kind,
                    target=Target.LONG_LIST,
                    disk=chunk_disk,
                    start=start,
                    nblocks=nblocks,
                    word=word,
                    npostings=npostings,
                )
            )

    # -- content-mode block encoding ------------------------------------------

    def _encode_blocks(self, payload: PostingPayload) -> list[bytes]:
        """Encode a payload into self-contained per-block byte strings."""
        if not isinstance(payload, self.content_cls):
            raise TypeError(
                f"content mode requires {self.content_cls.__name__} payloads"
            )
        blocks: list[bytes] = []
        remaining = payload
        while len(remaining) > 0:
            head, remaining = remaining.split(self.block_postings)
            data = head.encode()
            if len(data) > self.array.profile.block_size:
                raise ValueError(
                    f"{len(head)} postings encode to {len(data)} bytes, "
                    f"exceeding the {self.array.profile.block_size}-byte "
                    "block; lower block_postings"
                )
            blocks.append(data)
        return blocks

    def _write_chunk_contents(self, chunk: Chunk, payload: PostingPayload) -> None:
        if not self._content:
            return
        self.array.disks[chunk.disk].write_blocks(
            chunk.start, self._encode_blocks(payload)
        )

    def _read_chunk_postings(self, chunk: Chunk):
        data_blocks = blocks_for_postings(chunk.npostings, self.block_postings)
        # The buffer cache sits *below* all read-op and trace accounting:
        # a hit skips only the block-store access and the decode, so cached
        # serving reports exactly the Figure-10 costs of uncached serving.
        cache = self.buffer_cache
        if cache is not None:
            cached = cache.get(chunk.disk, chunk.start, chunk.npostings)
            if cached is not None:
                return cached
        raw = self.array.disks[chunk.disk].read_blocks(chunk.start, data_blocks)
        postings = self.content_cls()
        for block in raw:
            postings.extend(self.content_cls.decode(block))
        if cache is not None:
            cache.put(
                chunk.disk, chunk.start, data_blocks, chunk.npostings, postings
            )
        return postings

    def read_postings(self, word: int):
        """Read a word's full long list back (content mode only).

        Performs one traced read per chunk — the cost model of Figure 10 —
        and returns the decoded, sorted document ids.
        """
        if not self._content:
            raise RuntimeError("read_postings requires content mode")
        entry = self.directory.get(word)
        postings = self.content_cls()
        if entry is None:
            return postings
        for chunk in entry.chunks:
            self._record(
                OpKind.READ,
                chunk.disk,
                chunk.start,
                chunk.nblocks,
                word,
                chunk.npostings,
            )
            postings.extend(self._read_chunk_postings(chunk))
        return postings

    # -- the Figure-2 algorithm -------------------------------------------------

    def append(self, word: int, payload: PostingPayload) -> None:
        """Append the in-memory list ``payload`` to ``word``'s long list.

        Creates the long list on first call for a word (bucket overflow
        promotion lands here).
        """
        y = len(payload)
        if y <= 0:
            raise ValueError("an update must carry at least one posting")
        self._check_unfrozen("append to")
        if self.journal is not None:
            self.journal.note_word(word)
        self.counters.appends += 1
        # Adaptive allocation predicts from *prior* updates only: the first
        # write of a word (often a bulk bucket migration) reserves nothing,
        # and steady words converge to their typical update size.
        self._current_prediction = self._update_sizes.get(word, 0.0)
        entry = self.directory.entry(word)
        last = entry.last_chunk
        if last is None:
            self.counters.lists_created += 1
        else:
            self.counters.appends_to_existing += 1
            z = last.slack(self.block_postings)
            if y <= self.policy.in_place_limit(z):
                self._update_in_place(entry, last, payload)
                return
        if self.policy.style is Style.WHOLE:
            self._append_whole(entry, payload)
        elif self.policy.style is Style.FILL:
            self._append_fill(entry, payload)
        else:
            self._append_new(entry, payload)
        self._observe_update(word, y)

    def _update_in_place(
        self, entry: LongListEntry, chunk: Chunk, payload: PostingPayload
    ) -> None:
        """UPDATE(M): read the tail block, append, write back in place."""
        y = len(payload)
        # Read the last block currently containing postings.
        data_blocks = blocks_for_postings(chunk.npostings, self.block_postings)
        read_block = chunk.start + data_blocks - 1
        self._record(
            OpKind.READ, chunk.disk, read_block, 1, entry.word, chunk.npostings
        )
        faults.crash_point(CP_BEFORE_INPLACE_WRITE)
        touched = chunk.blocks_touched_by_append(y, self.block_postings)
        if self._content:
            # Rewrite the partial tail block plus any newly filled blocks.
            in_tail = chunk.npostings - (touched.start - chunk.start) * (
                self.block_postings
            )
            old_tail = self.content_cls()
            if in_tail > 0:
                raw = self.array.disks[chunk.disk].read_blocks(
                    touched.start, 1
                )[0]
                old_tail = self.content_cls.decode(raw)
            combined = old_tail
            combined.extend(payload)  # type: ignore[arg-type]
            self.array.disks[chunk.disk].write_blocks(
                touched.start, self._encode_blocks(combined)
            )
        chunk.npostings += y
        self._record(
            OpKind.WRITE,
            chunk.disk,
            touched.start,
            touched.nblocks,
            entry.word,
            y,
        )
        self.counters.in_place_updates += 1
        self._observe_update(entry.word, y)

    def _append_whole(
        self, entry: LongListEntry, payload: PostingPayload
    ) -> None:
        """whole style: READ(L); WRITE_RESERVED(M and b)."""
        combined = empty_like(payload)
        for chunk in entry.chunks:
            self._record(
                OpKind.READ,
                chunk.disk,
                chunk.start,
                chunk.nblocks,
                entry.word,
                chunk.npostings,
            )
            if self._content:
                combined.extend(self._read_chunk_postings(chunk))
            else:
                combined.extend(CountPostings(chunk.npostings))
            self.release.append(chunk)
        if entry.chunks:
            self.counters.whole_moves += 1
            faults.crash_point(CP_AFTER_WHOLE_READ)
        combined.extend(payload)
        entry.chunks = []
        self._write_reserved(entry, combined)

    def _append_new(self, entry: LongListEntry, payload: PostingPayload) -> None:
        """new style: WRITE_RESERVED(M) as a fresh chunk."""
        self._write_reserved(entry, payload)

    def _write_reserved(
        self, entry: LongListEntry, payload: PostingPayload
    ) -> None:
        """WRITE_RESERVED: one chunk sized by the Alloc strategy."""
        x = len(payload)
        nblocks = self.policy.chunk_blocks(
            x,
            self.block_postings,
            predicted_update=self._current_prediction,
        )
        chunk = self.array.allocate_chunk(nblocks)
        faults.crash_point(CP_AFTER_CHUNK_ALLOC)
        chunk.npostings = x
        chunk.reserved = nblocks * self.block_postings - x
        entry.chunks.append(chunk)
        self._write_chunk_contents(chunk, payload)
        # The write op covers the data blocks; reserved blocks are
        # allocated but not transferred.
        written = blocks_for_postings(x, self.block_postings)
        self._record(
            OpKind.WRITE, chunk.disk, chunk.start, written, entry.word, x
        )

    def _append_fill(self, entry: LongListEntry, payload: PostingPayload) -> None:
        """fill style: WRITE(M, M) until the in-memory list is empty."""
        extent_capacity = self.policy.extent_blocks * self.block_postings
        remaining = payload
        while len(remaining) > 0:
            faults.crash_point(CP_FILL_EXTENT)
            head, remaining = remaining.split(extent_capacity)
            chunk = self.array.allocate_chunk(self.policy.extent_blocks)
            chunk.npostings = len(head)
            entry.chunks.append(chunk)
            self._write_chunk_contents(chunk, head)
            written = blocks_for_postings(len(head), self.block_postings)
            self._record(
                OpKind.WRITE,
                chunk.disk,
                chunk.start,
                written,
                entry.word,
                len(head),
            )

    def _observe_update(self, word: int, y: int) -> None:
        """Fold an update's size into the word's EWMA estimate."""
        alpha = self.policy.ewma_alpha
        prev = self._update_sizes.get(word)
        self._update_sizes[word] = (
            float(y) if prev is None else alpha * y + (1 - alpha) * prev
        )

    # -- rewriting (deletion sweeps) --------------------------------------------

    def rewrite(self, word: int, payload: PostingPayload) -> None:
        """Replace a long list's contents wholesale.

        Used by the deletion sweeper (paper §3): the old chunks retire to
        the RELEASE list and the new contents are written through the
        policy's own style, so reclamation pays normal policy I/O.  An
        empty payload removes the word from the directory entirely.
        """
        self._check_unfrozen("rewrite")
        entry = self.directory.get(word)
        if entry is None:
            raise KeyError(f"word {word} has no long list to rewrite")
        if self.journal is not None:
            self.journal.note_word(word)
        self.release.extend(entry.chunks)
        entry.chunks = []
        if len(payload) == 0:
            self.directory.remove(word)
            return
        self._current_prediction = self._update_sizes.get(word, 0.0)
        if self.policy.style is Style.FILL:
            self._append_fill(entry, payload)
        else:
            self._write_reserved(entry, payload)

    # -- batch boundary ------------------------------------------------------

    def end_batch(self) -> None:
        """Free the RELEASE list (paper §3: old whole-style chunks are only
        returned to free space when the buckets and directory flush)."""
        self._check_unfrozen("end a batch on")
        faults.crash_point(CP_BEFORE_RELEASE_FREE)
        for chunk in self.release:
            self.array.free_chunk(chunk)
            faults.crash_point(CP_MID_RELEASE_FREE)
        self.release.clear()
